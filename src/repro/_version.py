"""Single source of the package version."""

__version__ = "0.1.0"
