"""The perf trajectory store: bench history, baselines, regression gates.

The repo accumulates ``results/bench_*.json`` snapshots, but a snapshot
only shows the latest run -- a regression between PRs is invisible until
a CI speedup gate happens to trip.  This module is the trajectory layer
on top: every benchmark case appends one JSON line to
``results/perf_history.jsonl`` (via ``benchmarks/benchjson.py``), each
stamped with run metadata (git sha, UTC timestamp, host, python/numpy
versions), and this module loads the history, computes per-case
baselines, and flags cases whose latest run degrades beyond a tolerance
band -- surfaced as ``repro perf-report`` and CI's ``perf-regression``
job.

The gate compares **speedup ratios, not milliseconds**: absolute times
vary wildly across hosts (the history deliberately mixes machines), but
a vectorization or sharding speedup is a within-run ratio of two
measurements on the same box, so "the speedup collapsed" is meaningful
everywhere.  The band is multiplicative and deliberately generous
(default: fail below 35% of the baseline median) -- this is a tripwire
for collapses, not a detector of 5% drift.
"""

from __future__ import annotations

import json
import platform as _platform
import subprocess
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from statistics import median
from typing import Dict, List, Optional, Union

__all__ = [
    "DEFAULT_TOLERANCE",
    "HISTORY_PATH",
    "Baseline",
    "Regression",
    "append_history",
    "check_regressions",
    "compute_baselines",
    "load_history",
    "render_report",
    "run_metadata",
]

_REPO_ROOT = Path(__file__).resolve().parents[3]
HISTORY_PATH = _REPO_ROOT / "results" / "perf_history.jsonl"

# Latest speedup below this fraction of the baseline median fails the
# gate.  Case-specific overrides go through check_regressions(bands=...).
DEFAULT_TOLERANCE = 0.35


def run_metadata() -> dict:
    """The provenance block stamped onto every recorded bench case."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        sha = None
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "git_sha": sha,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": _platform.node(),
        "python": _platform.python_version(),
        "numpy": numpy_version,
    }


def append_history(case: dict, path: Union[str, Path, None] = None) -> Path:
    """Append one case record as a JSON line (the jsonl append is atomic
    enough for a single-writer bench run; readers skip torn lines)."""
    path = Path(path) if path is not None else HISTORY_PATH
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(case, sort_keys=True) + "\n")
    return path


def load_history(path: Union[str, Path, None] = None) -> List[dict]:
    """All history records in append order; torn/blank lines skipped."""
    path = Path(path) if path is not None else HISTORY_PATH
    if not path.exists():
        return []
    records = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and "name" in record:
            records.append(record)
    return records


def _case_key(record: dict) -> str:
    bench = record.get("bench") or ""
    name = record["name"]
    return f"{bench}/{name}" if bench and not name.startswith(bench) else name


def _speedups(records: List[dict]) -> List[float]:
    return [
        float(r["speedup"])
        for r in records
        if r.get("speedup") is not None and float(r["speedup"]) > 0
    ]


@dataclass
class Baseline:
    """One case's reference point: the median speedup of its history."""

    case: str
    runs: int
    median_speedup: float
    latest_speedup: Optional[float]


@dataclass
class Regression:
    """A gated case whose latest run fell out of its tolerance band."""

    case: str
    baseline: float
    latest: float
    floor: float
    band: float
    runs: int

    def describe(self) -> str:
        return (
            f"{self.case}: latest speedup {self.latest:.2f}x fell below "
            f"{self.floor:.2f}x ({self.band:.0%} band) of the "
            f"{self.runs}-run baseline median {self.baseline:.2f}x"
        )


def _grouped(history: List[dict]) -> Dict[str, List[dict]]:
    groups: Dict[str, List[dict]] = {}
    for record in history:
        groups.setdefault(_case_key(record), []).append(record)
    return groups


def compute_baselines(history: List[dict]) -> Dict[str, Baseline]:
    """Per-case baselines over the full history (median of speedups)."""
    baselines: Dict[str, Baseline] = {}
    for case, records in sorted(_grouped(history).items()):
        speedups = _speedups(records)
        if not speedups:
            continue
        latest = _speedups(records[-1:])
        baselines[case] = Baseline(
            case=case,
            runs=len(speedups),
            median_speedup=median(speedups),
            latest_speedup=latest[0] if latest else None,
        )
    return baselines


def check_regressions(
    history: List[dict],
    tolerance: float = DEFAULT_TOLERANCE,
    bands: Optional[Dict[str, float]] = None,
) -> List[Regression]:
    """Gate each case's *latest* run against the median of its priors.

    A case needs at least one prior run to be gated (the committed
    seeded history provides it -- the first CI run is therefore green by
    construction, not by luck).  ``bands`` overrides the tolerance per
    case key.  Returns the failing cases, worst collapse first.
    """
    regressions = []
    for case, records in sorted(_grouped(history).items()):
        prior = _speedups(records[:-1])
        latest = _speedups(records[-1:])
        if not prior or not latest:
            continue
        baseline = median(prior)
        band = (bands or {}).get(case, tolerance)
        floor = baseline * band
        if latest[0] < floor:
            regressions.append(
                Regression(
                    case=case,
                    baseline=baseline,
                    latest=latest[0],
                    floor=floor,
                    band=band,
                    runs=len(prior),
                )
            )
    regressions.sort(key=lambda r: r.latest / r.baseline)
    return regressions


def render_report(
    history: List[dict],
    tolerance: float = DEFAULT_TOLERANCE,
    bands: Optional[Dict[str, float]] = None,
) -> str:
    """The trajectory as a text table: one row per case, newest last.

    Shows run counts, the baseline median, the latest speedup, and the
    trend (latest over median); regressed cases get a trailing flag and
    a detail block.
    """
    baselines = compute_baselines(history)
    regressions = {r.case: r for r in check_regressions(history, tolerance, bands)}
    lines = [
        f"perf trajectory: {len(history)} record(s), "
        f"{len(baselines)} case(s)",
        f"{'case':<36} {'runs':>5} {'baseline':>9} {'latest':>9} {'trend':>7}",
    ]
    for case, base in baselines.items():
        latest = base.latest_speedup
        trend = (
            f"{latest / base.median_speedup:>6.2f}x"
            if latest and base.median_speedup > 0
            else "     --"
        )
        flag = "  << REGRESSION" if case in regressions else ""
        lines.append(
            f"{case:<36} {base.runs:>5} {base.median_speedup:>8.2f}x "
            f"{latest if latest is not None else 0.0:>8.2f}x {trend}{flag}"
        )
    for regression in regressions.values():
        lines.append(regression.describe())
    if not regressions:
        lines.append("no regressions: every gated case is inside its band")
    return "\n".join(lines)
