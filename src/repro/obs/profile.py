"""Wall-clock profiling: where the hours actually go.

PR 9's tracer answers *what happened in what order* -- its logical tick
clock makes traces replayable and byte-identical across runs, which is
exactly why it cannot answer *where the time went*.  This module is the
other half of the split: a :class:`WallProfiler` that records the very
same span taxonomy (``advance.propose_fanout``, ``shard.validate``,
``staging.commit``, ``wal.fsync``, ...) but stamps every span with real
``time.perf_counter`` durations, so a profiled contention hour decomposes
into a per-phase wall-clock breakdown instead of a tick ordering.

The profiler attaches *alongside* the tracer, never instead of it::

    from repro.obs import Telemetry, WallProfiler
    telemetry = Telemetry(profiler=WallProfiler())
    sage = Sage(source, telemetry=telemetry)
    ...
    print(render_profile(telemetry.profiler))

**The parity contract carries over.**  Profiling observes, never
participates: a profiled run's accounting trajectory (state digests *and*
WAL bytes) is byte-identical to a bare run's, and the deterministic
tracer's output is byte-identical whether or not a profiler rides along
-- both property-tested in ``tests/obs/test_platform_telemetry.py``.
The price of wall time is that the *profiler's own* output is not
replayable: two identical runs produce different durations.  That is the
wall-clock-vs-logical-tick split by design -- the profiler is excluded
from every byte-parity artifact, while the tracer remains the replayable
record.

**Serial emission still holds.**  Like the tracer, the profiler's span
stack is only ever touched from the serial drive.  Work that happens in
pool threads (per-shard phase-one validation) is measured *in* the worker
with plain ``perf_counter`` arithmetic and recorded at the serial commit
point via :meth:`WallProfiler.record_span`, which synthesizes an
already-closed span carrying the measured duration -- per-shard wall
attribution without a single cross-thread profiler call.  Because those
shards validated concurrently, their wall times may legitimately sum to
more than the enclosing phase's duration; the analyzer clamps self-times
at zero for exactly this case.

Durations and timestamps are microseconds (so profiler spans export
through the same Chrome-trace path as tracer spans with ``ts`` already in
the unit Perfetto expects).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.trace import Event, Span, Tracer

__all__ = [
    "Probe",
    "SpanStats",
    "WallClock",
    "WallProfiler",
    "render_profile",
]


class WallClock:
    """``time.perf_counter`` in microseconds -- the profiler's clock."""

    __slots__ = ()

    def __call__(self) -> float:
        return time.perf_counter() * 1e6


@dataclass
class SpanStats:
    """Aggregated wall statistics for one span name (microseconds).

    ``self_time`` is duration minus child-span time, clamped at zero per
    span (pool-parallel children recorded via
    :meth:`WallProfiler.record_span` may exceed their serial parent).
    ``by_shard`` decomposes names whose spans carry a ``shard`` argument
    (``shard.validate`` / ``shard.commit``) into per-shard rows.
    """

    name: str
    count: int = 0
    total: float = 0.0
    self_time: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    max: float = 0.0
    by_shard: Dict[int, "SpanStats"] = field(default_factory=dict)


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile over an ascending list (empty -> 0.0)."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-int(q * len(sorted_values) * 100) // 100))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class WallProfiler(Tracer):
    """A tracer on a wall clock, plus per-name aggregation.

    Spans carry real ``perf_counter`` microseconds; everything else --
    counter ids, the serial open stack, parent nesting, the ambient hour
    -- is inherited from :class:`~repro.obs.trace.Tracer`, so the
    analyzer (:mod:`repro.obs.analyze`) and the Chrome-trace exporter
    work on a profile exactly as they do on a trace.  ``clock`` injects a
    deterministic stand-in for tests.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        super().__init__(clock=clock if clock is not None else WallClock())

    def record_span(self, name: str, duration: float, **args: object) -> Span:
        """Record a pre-measured span (e.g. pool-parallel shard work).

        The span closes at the current clock reading and extends
        ``duration`` microseconds back from it, parented under whatever
        span is open on the serial stack -- measurement happened
        elsewhere (a worker thread), emission happens here, serially.
        """
        self._next_id += 1
        end = self._clock()
        span = Span(
            self._next_id,
            self._open[-1].span_id if self._open else None,
            name,
            end - duration,
            end,
            self.hour,
            args,
            self,
        )
        self.spans.append(span)
        return span

    def aggregate(self) -> Dict[str, SpanStats]:
        """Per-name wall statistics: count / total / self / p50 / p95 /
        max, with per-shard sub-rows for shard-labelled spans."""
        from repro.obs.analyze import self_times

        selfs = self_times(self)
        groups: Dict[str, List[Span]] = {}
        for span in self.spans:
            groups.setdefault(span.name, []).append(span)
        stats: Dict[str, SpanStats] = {}
        for name in sorted(groups):
            spans = groups[name]
            stats[name] = entry = _stats_of(name, spans, selfs)
            shards: Dict[int, List[Span]] = {}
            for span in spans:
                shard = span.args.get("shard")
                if shard is not None:
                    shards.setdefault(int(shard), []).append(span)
            for shard in sorted(shards):
                entry.by_shard[shard] = _stats_of(name, shards[shard], selfs)
        return stats


def _stats_of(
    name: str, spans: List[Span], selfs: Dict[int, float]
) -> SpanStats:
    durations = sorted(span.duration for span in spans)
    return SpanStats(
        name=name,
        count=len(spans),
        total=sum(durations),
        self_time=sum(selfs.get(span.span_id, 0.0) for span in spans),
        p50=_percentile(durations, 0.50),
        p95=_percentile(durations, 0.95),
        max=durations[-1] if durations else 0.0,
    )


def render_profile(profiler: WallProfiler) -> str:
    """The aggregation as a fixed-width text table (milliseconds)."""
    stats = profiler.aggregate()
    total_wall = sum(s.self_time for s in stats.values())
    lines = [
        f"{'span':<28} {'count':>7} {'total':>10} {'self':>10} "
        f"{'p50':>9} {'p95':>9} {'max':>9} {'self%':>6}"
    ]
    ordered = sorted(stats.values(), key=lambda s: -s.self_time)
    for entry in ordered:
        lines.append(_stats_row(entry.name, entry, total_wall))
        for shard, sub in sorted(entry.by_shard.items()):
            lines.append(_stats_row(f"  [shard {shard}]", sub, total_wall))
    lines.append(
        f"{'(total self time)':<28} {'':>7} {'':>10} "
        f"{total_wall / 1e3:>8.2f}ms"
    )
    return "\n".join(lines)


def _stats_row(label: str, s: SpanStats, total_wall: float) -> str:
    share = (s.self_time / total_wall * 100.0) if total_wall > 0 else 0.0
    return (
        f"{label:<28} {s.count:>7} {s.total / 1e3:>8.2f}ms "
        f"{s.self_time / 1e3:>8.2f}ms {s.p50 / 1e3:>7.2f}ms "
        f"{s.p95 / 1e3:>7.2f}ms {s.max / 1e3:>7.2f}ms {share:>5.1f}%"
    )


class _TeeSpan:
    """One ``with`` handle entering a tracer span and its profiler twin.

    The deterministic span is primary: ``duration`` (read by the WAL
    fsync-tick histogram) and ``args`` delegate to it, so metrics fed
    from span fields stay byte-deterministic with a profiler attached.
    """

    __slots__ = ("_halves",)

    def __init__(self, halves: Tuple[Span, ...]) -> None:
        self._halves = halves

    def __enter__(self) -> "_TeeSpan":
        for half in self._halves:
            half.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        for half in reversed(self._halves):
            half.__exit__(exc_type, exc, tb)
        return False

    def set(self, **args: object) -> None:
        for half in self._halves:
            half.set(**args)

    @property
    def duration(self) -> float:
        return self._halves[0].duration

    @property
    def args(self) -> Dict[str, object]:
        return self._halves[0].args


class Probe:
    """Fans one instrumentation site out to the tracer *and* a profiler.

    The platform's telemetry handle (``Sage._tracer``, the WAL writer's
    ``_tracer``, the accountant's attached tracer) is this object when a
    profiler is configured, and the plain tracer otherwise -- call sites
    are written once against the common ``span`` / ``event`` / ``hour``
    surface.  The tracer half always goes first (its tick sequence must
    not depend on the profiler's presence); consumers that need one half
    specifically (the sharded commit point's per-shard attribution)
    reach it via ``.tracer`` / ``.profiler``.
    """

    __slots__ = ("tracer", "profiler")

    def __init__(self, tracer: Tracer, profiler: WallProfiler) -> None:
        self.tracer = tracer
        self.profiler = profiler

    @property
    def hour(self) -> int:
        return self.tracer.hour

    @hour.setter
    def hour(self, value: int) -> None:
        self.tracer.hour = value
        self.profiler.hour = value

    def span(self, name: str, **args: object) -> _TeeSpan:
        return _TeeSpan(
            (self.tracer.span(name, **args), self.profiler.span(name, **args))
        )

    def event(self, name: str, **args: object) -> Event:
        self.profiler.event(name, **args)
        return self.tracer.event(name, **args)
