"""Span-tree analytics over any trace or profile.

Everything here operates on a *span source* -- any object with ``spans``
(closed :class:`~repro.obs.trace.Span` records) and ``events`` lists:
the deterministic :class:`~repro.obs.trace.Tracer`, the wall-clock
:class:`~repro.obs.profile.WallProfiler`, or a :class:`LoadedTrace`
parsed back from an exported artifact.  The queries are the ones the
perf work actually needs:

* :func:`span_forest` / :func:`self_times` -- the nesting tree and the
  self-vs-child time rollup (self time clamps at zero: pool-parallel
  children synthesized via ``record_span`` may out-sum their serial
  parent);
* :func:`critical_path` -- per hour-root, the max-duration child chain,
  i.e. where an hour's wall time concentrates;
* :func:`phase_breakdown` / :func:`hour_coverage` -- the per-phase table
  and the fraction of root time explained by instrumented children;
* :func:`diff_profiles` -- two runs side by side, per span name;
* :func:`collapsed_stacks` / :func:`load_collapsed` -- the flamegraph
  exporter (Brendan Gregg's collapsed-stack format, one
  ``root;child;leaf <self-weight>`` line per tree node) and its inverse;
* :func:`load_chrome_trace` -- the Chrome trace-event exporter's inverse.

Both loaders are tested as round trips: a Chrome trace document loads
back into the same span tree (:func:`span_tree_shape` equality), and
``collapsed_stacks(load_collapsed(text)) == text`` exactly (weights are
integer microseconds, so the synthetic layout's float arithmetic is
exact).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.trace import Event, Span

__all__ = [
    "LoadedTrace",
    "PhaseRow",
    "SpanNode",
    "collapsed_stacks",
    "critical_path",
    "diff_profiles",
    "hour_coverage",
    "load_chrome_trace",
    "load_collapsed",
    "phase_breakdown",
    "render_breakdown",
    "render_critical_path",
    "render_diff",
    "self_times",
    "span_forest",
    "span_tree_shape",
    "write_collapsed",
]


class LoadedTrace:
    """A span source reconstructed from an exported artifact."""

    def __init__(
        self, spans: List[Span], events: Optional[List[Event]] = None
    ) -> None:
        self.spans = spans
        self.events = events if events is not None else []

    def span_names(self) -> List[str]:
        return [span.name for span in self.spans]

    def find_spans(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]


@dataclass
class SpanNode:
    """One span plus its nested children (ordered by start, then id)."""

    span: Span
    children: List["SpanNode"] = field(default_factory=list)


def span_forest(source) -> List[SpanNode]:
    """The source's spans as parent-linked trees, roots first-to-last."""
    nodes = {span.span_id: SpanNode(span) for span in source.spans}
    roots: List[SpanNode] = []
    for span in source.spans:
        node = nodes[span.span_id]
        parent = nodes.get(span.parent_id) if span.parent_id is not None else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    order = lambda n: (n.span.start, n.span.span_id)
    for node in nodes.values():
        node.children.sort(key=order)
    roots.sort(key=order)
    return roots


def self_times(source) -> Dict[int, float]:
    """Per ``span_id``: duration minus child time, clamped at zero."""
    child_sum: Dict[int, float] = {}
    for span in source.spans:
        if span.parent_id is not None:
            child_sum[span.parent_id] = (
                child_sum.get(span.parent_id, 0.0) + span.duration
            )
    return {
        span.span_id: max(0.0, span.duration - child_sum.get(span.span_id, 0.0))
        for span in source.spans
    }


def span_tree_shape(source) -> tuple:
    """The forest as a canonical nested tuple -- loader round-trip tests
    compare shapes, not list order or id assignment."""

    def shape(node: SpanNode) -> tuple:
        span = node.span
        return (
            span.name,
            span.start,
            span.end,
            span.hour,
            tuple(sorted(span.args.items())),
            tuple(shape(child) for child in node.children),
        )

    return tuple(shape(root) for root in span_forest(source))


def critical_path(source, root_name: str = "advance.hour") -> List[List[Span]]:
    """Per ``root_name`` span: the chain of max-duration children.

    The path answers "what would I have to shrink to shrink this hour":
    each step descends into the child span that contributed the most
    time, until a leaf.  Returns one path (root first) per matching
    span, in start order.
    """
    paths = []
    for root in span_forest(source):
        stack = [root]
        while stack:
            node = stack.pop()
            if node.span.name == root_name:
                path = [node.span]
                cursor = node
                while cursor.children:
                    cursor = max(
                        cursor.children,
                        key=lambda c: (c.span.duration, -c.span.span_id),
                    )
                    path.append(cursor.span)
                paths.append(path)
            else:
                stack.extend(reversed(node.children))
    return paths


@dataclass
class PhaseRow:
    """One span name's share of a run (units follow the source clock)."""

    name: str
    count: int
    total: float
    self_time: float
    share: float  # of summed root duration


def phase_breakdown(source) -> List[PhaseRow]:
    """Per-phase rollup, largest self time first.

    ``share`` is self time over the summed duration of root spans --
    across all rows it sums to ~1.0 when every root's subtree nests
    cleanly (clamping and pool-parallel children can push it either way,
    which is exactly what :func:`hour_coverage` quantifies).
    """
    selfs = self_times(source)
    groups: Dict[str, List[Span]] = {}
    root_total = 0.0
    for span in source.spans:
        groups.setdefault(span.name, []).append(span)
        if span.parent_id is None:
            root_total += span.duration
    rows = [
        PhaseRow(
            name=name,
            count=len(spans),
            total=sum(s.duration for s in spans),
            self_time=sum(selfs.get(s.span_id, 0.0) for s in spans),
            share=(
                sum(selfs.get(s.span_id, 0.0) for s in spans) / root_total
                if root_total > 0
                else 0.0
            ),
        )
        for name, spans in groups.items()
    ]
    rows.sort(key=lambda r: (-r.self_time, r.name))
    return rows


def hour_coverage(source, root_name: str = "advance.hour") -> float:
    """Fraction of ``root_name`` time explained by instrumented children.

    ``1 - self(root) / total(root)``: the acceptance gate for the
    profiler is that a contention hour's breakdown covers >= 90% of the
    measured hour, i.e. the hour span spends at most 10% of its wall
    time outside every child span.  Returns 0.0 when no root spans
    matched (nothing measured means nothing covered).
    """
    selfs = self_times(source)
    total = unexplained = 0.0
    for span in source.spans:
        if span.name == root_name:
            total += span.duration
            unexplained += selfs.get(span.span_id, 0.0)
    if total <= 0.0:
        return 0.0
    return 1.0 - unexplained / total


@dataclass
class DiffRow:
    """One span name across two runs (``ratio`` is b over a)."""

    name: str
    count_a: int
    count_b: int
    total_a: float
    total_b: float
    delta: float
    ratio: float


def diff_profiles(a, b) -> List[DiffRow]:
    """Per-name totals of two span sources side by side.

    Names missing from one side appear with zero count/total there
    (ratio is ``inf`` for new phases, 0 for vanished ones); rows come
    sorted by absolute delta, biggest movement first.
    """

    def totals(source) -> Dict[str, Tuple[int, float]]:
        acc: Dict[str, Tuple[int, float]] = {}
        for span in source.spans:
            count, total = acc.get(span.name, (0, 0.0))
            acc[span.name] = (count + 1, total + span.duration)
        return acc

    ta, tb = totals(a), totals(b)
    rows = []
    for name in sorted(set(ta) | set(tb)):
        count_a, total_a = ta.get(name, (0, 0.0))
        count_b, total_b = tb.get(name, (0, 0.0))
        ratio = (total_b / total_a) if total_a > 0 else float("inf")
        rows.append(
            DiffRow(
                name=name,
                count_a=count_a,
                count_b=count_b,
                total_a=total_a,
                total_b=total_b,
                delta=total_b - total_a,
                ratio=ratio,
            )
        )
    rows.sort(key=lambda r: (-abs(r.delta), r.name))
    return rows


# ----------------------------------------------------------------------
# Collapsed-stack flamegraphs
# ----------------------------------------------------------------------

_FRAME_SHARD = re.compile(r"^(?P<name>.+) \[shard (?P<shard>\d+)\]$")


def _frame_label(span: Span) -> str:
    """A span's flamegraph frame: the name, plus the shard when tagged --
    so per-shard attribution survives into the flamegraph."""
    shard = span.args.get("shard")
    if shard is None:
        return span.name
    return f"{span.name} [shard {int(shard)}]"


def collapsed_stacks(source) -> str:
    """The source as collapsed stacks: ``root;child;leaf <self-weight>``.

    One line per tree node (self weight in integer microseconds, zero
    included -- zero-weight frames keep the tree shape round-trippable),
    identical stacks merged, lines sorted -- the exact input
    ``flamegraph.pl`` / speedscope / inferno expect.
    """
    selfs = self_times(source)
    weights: Dict[str, int] = {}

    def walk(node: SpanNode, prefix: str) -> None:
        stack = (
            f"{prefix};{_frame_label(node.span)}"
            if prefix
            else _frame_label(node.span)
        )
        weight = int(round(selfs.get(node.span.span_id, 0.0)))
        weights[stack] = weights.get(stack, 0) + weight
        for child in node.children:
            walk(child, stack)

    for root in span_forest(source):
        walk(root, "")
    return "".join(
        f"{stack} {weights[stack]}\n" for stack in sorted(weights)
    )


def write_collapsed(source, path) -> Path:
    """Write the collapsed stacks atomically (tmp + ``os.replace``)."""
    import os

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(collapsed_stacks(source), encoding="utf-8")
    os.replace(tmp, path)
    return path


class _StackNode:
    __slots__ = ("self_weight", "children")

    def __init__(self) -> None:
        self.self_weight = 0
        self.children: Dict[str, "_StackNode"] = {}


def load_collapsed(text: Union[str, Path]) -> LoadedTrace:
    """Parse collapsed stacks back into a synthetic span source.

    Aggregation is lossy by design (per-stack totals, not individual
    spans), so the reconstruction lays each stack out once: children
    first, the node's own self weight last, all in integer microseconds
    from zero -- a canonical layout under which
    ``collapsed_stacks(load_collapsed(text)) == text`` exactly.
    """
    if isinstance(text, Path):
        text = text.read_text(encoding="utf-8")
    root = _StackNode()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, weight = line.rpartition(" ")
        node = root
        for frame in stack.split(";"):
            node = node.children.setdefault(frame, _StackNode())
        node.self_weight += int(weight)

    spans: List[Span] = []
    counter = [0]

    def emit(frame: str, node: _StackNode, start: float, parent: Optional[int]) -> float:
        counter[0] += 1
        span_id = counter[0]
        match = _FRAME_SHARD.match(frame)
        if match is not None:
            name = match.group("name")
            args: Dict[str, object] = {"shard": int(match.group("shard"))}
        else:
            name, args = frame, {}
        cursor = start
        children_of = node.children
        for child_frame in sorted(children_of):
            cursor = emit(child_frame, children_of[child_frame], cursor, span_id)
        end = cursor + node.self_weight
        # Recursion appended the children first, so the list lands in
        # close order like a live tracer's.
        spans.append(Span(span_id, parent, name, start, end, -1, args))
        return end

    cursor = 0.0
    for frame in sorted(root.children):
        cursor = emit(frame, root.children[frame], cursor, None)
    return LoadedTrace(spans)


# ----------------------------------------------------------------------
# Chrome trace loader
# ----------------------------------------------------------------------

def load_chrome_trace(document: Union[str, Path, dict]) -> LoadedTrace:
    """Parse a Chrome trace-event document back into a span source.

    Accepts the dict :func:`~repro.obs.export.chrome_trace` returns, its
    JSON text, or a path to it.  ``ph: "X"`` entries become spans
    (nesting restored from ``args.parent``), ``ph: "i"`` entries become
    events; everything else in ``args`` returns to ``span.args``.  The
    round trip preserves the tree exactly:
    ``span_tree_shape(load_chrome_trace(chrome_trace(t))) ==
    span_tree_shape(t)``.
    """
    if isinstance(document, Path):
        document = json.loads(document.read_text(encoding="utf-8"))
    elif isinstance(document, str):
        document = json.loads(document)
    spans: List[Span] = []
    events: List[Event] = []
    for entry in document.get("traceEvents", []):
        args = dict(entry.get("args", {}))
        hour = args.pop("hour", -1)
        if entry.get("ph") == "X":
            parent = args.pop("parent", None)
            spans.append(
                Span(
                    entry["id"],
                    parent,
                    entry["name"],
                    entry["ts"],
                    entry["ts"] + entry["dur"],
                    hour,
                    args,
                )
            )
        elif entry.get("ph") == "i":
            events.append(
                Event(entry["id"], entry["name"], entry["ts"], hour, args)
            )
    # Live tracers hold spans in close order; restore it.
    spans.sort(key=lambda s: (s.end, s.span_id))
    events.sort(key=lambda e: (e.ts, e.event_id))
    return LoadedTrace(spans, events)


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------

def render_breakdown(source, unit_divisor: float = 1e3, unit: str = "ms") -> str:
    """The phase breakdown as a text table (divisor 1e3: us -> ms)."""
    rows = phase_breakdown(source)
    lines = [
        f"{'phase':<28} {'count':>7} {'total':>12} {'self':>12} {'share':>7}"
    ]
    for row in rows:
        lines.append(
            f"{row.name:<28} {row.count:>7} "
            f"{row.total / unit_divisor:>10.2f}{unit} "
            f"{row.self_time / unit_divisor:>10.2f}{unit} "
            f"{row.share * 100:>6.1f}%"
        )
    coverage = hour_coverage(source)
    lines.append(f"{'hour coverage':<28} {coverage * 100:>57.1f}%")
    return "\n".join(lines)


def render_critical_path(
    source, root_name: str = "advance.hour", unit_divisor: float = 1e3,
    unit: str = "ms",
) -> str:
    """Each hour's critical path, one indented chain per hour span."""
    lines = []
    for path in critical_path(source, root_name):
        hour = path[0].hour
        lines.append(f"hour {hour}:")
        for depth, span in enumerate(path):
            lines.append(
                f"{'  ' * (depth + 1)}{span.name:<26} "
                f"{span.duration / unit_divisor:>10.2f}{unit}"
            )
    return "\n".join(lines)


def render_diff(a, b, unit_divisor: float = 1e3, unit: str = "ms") -> str:
    """The per-phase diff of two runs as a text table (b vs a)."""
    rows = diff_profiles(a, b)
    lines = [
        f"{'phase':<28} {'a total':>12} {'b total':>12} {'delta':>12} {'ratio':>7}"
    ]
    for row in rows:
        ratio = f"{row.ratio:>6.2f}x" if row.ratio != float("inf") else "   new "
        lines.append(
            f"{row.name:<28} {row.total_a / unit_divisor:>10.2f}{unit} "
            f"{row.total_b / unit_divisor:>10.2f}{unit} "
            f"{row.delta / unit_divisor:>+10.2f}{unit} {ratio}"
        )
    return "\n".join(lines)
