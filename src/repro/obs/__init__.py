"""Deterministic telemetry for the Sage platform (PR 9 + PR 10).

Sage is pitched as an always-on platform whose operators watch per-block
privacy loss and retirement in real time (Lecuyer et al., SOSP 2019,
section 6).  This package is that observability surface: a
:class:`~repro.obs.trace.Tracer` of structured spans/events over every
phase of the hourly drive, a :class:`~repro.obs.metrics.MetricsRegistry`
of privacy/throughput/durability metrics, a wall-clock
:class:`~repro.obs.profile.WallProfiler` (PR 10), span-tree analytics
(:mod:`repro.obs.analyze`), a perf-trajectory store
(:mod:`repro.obs.perfdb`), and exporters (:mod:`repro.obs.export`) for
deterministic JSON, the Prometheus text format, Chrome trace-event JSON
(Perfetto-loadable), and collapsed-stack flamegraphs.

Enable it per platform::

    from repro.obs import Telemetry, WallProfiler
    telemetry = Telemetry(profiler=WallProfiler())  # profiler optional
    sage = Sage(source, telemetry=telemetry)
    ...
    print(render_json(telemetry.metrics))

**The determinism contract.**  Telemetry never feeds back into the code
it observes, timestamps come from a logical tick clock, span IDs are a
counter, and every emission site sits on the serial drive path -- so a
traced run's accounting trajectory is byte-identical to an untraced
run's (property-tested across the batched, sharded, and durable drives),
and two identical runs export byte-identical documents.  Disabled mode
is a no-op probe in the ``faults.trip()`` style: platform attributes
hold ``None`` and every site guards with one ``is not None`` check.
Instrumentation lives only on driver/mutating paths; the pure read
surface (``propose_peek`` / ``admits_keys`` / ``can_charge`` /
``max_epsilon`` and everything they reach) stays telemetry-free,
enforced by the ``telemetry-isolation`` lint rule.

**The wall-clock / logical-tick split (PR 10).**  Correctness
observability and performance observability deliberately run on
different clocks.  The tracer keeps logical ticks: its output is
replayable and byte-identical across runs, and it participates in every
byte-parity artifact.  The :class:`~repro.obs.profile.WallProfiler`
records the *same span taxonomy* with real ``perf_counter`` durations;
it attaches alongside -- never instead of -- the tracer (a
:class:`~repro.obs.profile.Probe` tees each emission site to both), so
"where did the hour go" never costs "can I replay the hour".  The
profiler's output is excluded from byte-parity artifacts (wall time is
not replayable); the profiled *run* remains byte-identical to a bare
run, and the tracer's exports are byte-identical whether or not a
profiler rides along.  Profiling observes, never participates.

Span taxonomy (category = dotted prefix)
----------------------------------------

=========================== ==============================================
span                        covers
=========================== ==============================================
``advance.hour``            one whole ``advance()`` (volatile or durable)
``advance.open``            ingest + block registration + allocation
``advance.propose_fanout``  the parallel propose phase's pool fan-out
``session.drive``           one session's propose/decide loop for the hour
``staging.commit``          closing the hour's staged batch
``charge.batch``            one ``charge_many`` (validate + commit)
``shard.validate``          one shard's phase-1 footprint (emitted at the
                            serial commit point, one span per shard)
``shard.commit``            the cross-shard phase-2 bulk write
``wal.append``              framing + writing one hour record
``wal.fsync``               each write-ahead-log fsync
``wal.commit``              appending the commit marker
``wal.compact``             rewriting the log up to the retained snapshot
``snapshot.write``          one atomic snapshot write
``recover.run``             a whole ``Sage.recover()``
``recover.hour``            replaying one WAL hour
=========================== ==============================================

Event taxonomy
--------------

=============================== ==========================================
event                           fires
=============================== ==========================================
``speculation.adopted``         a peeked proposal's snapshot token held
``speculation.invalidated``     a peeked proposal was discarded
``charge.granted``              a session proposal was granted (staged or
                                sequential)
``charge.denied``               a proposal refused (budget/retirement)
``reservations.settle``         the hour's reservation deductions settled
                                (``sessions`` = sessions driven; one per
                                hour -- settle rides the per-session hot
                                path, so per-session instants would tax
                                the drive)
``fault.trip``                  an *armed* crash point actually fired
``recover.snapshot``            recovery loaded a snapshot
``recover.report``              ``RecoveryReport.describe`` summary
=============================== ==========================================

Metric taxonomy
---------------

Privacy: ``sage_privacy_epsilon_spent`` / ``sage_privacy_delta_spent``
(the ``stream_loss_bound``), ``sage_privacy_epsilon_headroom`` /
``sage_privacy_delta_headroom`` (distance to the global budget),
``sage_privacy_blocks_total`` / ``_live`` / ``_retired``,
``sage_privacy_renyi_orders`` / ``sage_privacy_renyi_order_saturation``
(fraction of spending blocks optimal at a grid boundary),
``sage_block_epsilon{block=...}`` / ``sage_block_delta{block=...}``
(per-block dashboard gauges), ``sage_shard_epsilon_bound{shard=...}``,
``sage_charges_granted_total`` / ``sage_charges_denied_total``
(admission/denial rates).

Throughput: ``sage_hours_advanced_total``, ``sage_sessions_driven_total``,
``sage_hour_charges`` / ``sage_hour_speculations_adopted`` /
``sage_hour_speculations_invalidated`` (last completed hour, the
``Sage.last_hour_*`` compatibility source), ``sage_speculations_*_total``,
``sage_staged_batch_requests`` (histogram of staged batch sizes).

Durability: ``sage_wal_bytes_total``, ``sage_wal_fsyncs_total``,
``sage_wal_append_bytes`` / ``sage_wal_fsync_ticks`` (histograms; ticks
are logical-clock durations unless a wall clock is injected),
``sage_wal_compact_dropped_total``, ``sage_snapshots_written_total``,
``sage_snapshot_bytes``, ``sage_fault_trips_total{point=...}``, and the
``sage_recovery_*`` gauges filled by ``observe_recovery``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.export import (
    chrome_trace,
    render_chrome_trace,
    render_json,
    render_prometheus,
    write_chrome_trace,
)
from repro.obs.metrics import BUCKET_BOUNDS, MetricsRegistry
from repro.obs.profile import (
    Probe,
    SpanStats,
    WallClock,
    WallProfiler,
    render_profile,
)
from repro.obs.trace import Event, Span, TickClock, Tracer

__all__ = [
    "BUCKET_BOUNDS",
    "Event",
    "MetricsRegistry",
    "Probe",
    "Span",
    "SpanStats",
    "Telemetry",
    "TickClock",
    "Tracer",
    "WallClock",
    "WallProfiler",
    "chrome_trace",
    "render_chrome_trace",
    "render_json",
    "render_profile",
    "render_prometheus",
    "write_chrome_trace",
]


class Telemetry:
    """One platform's telemetry: tracer, metrics, optional profiler.

    Pass to ``Sage(telemetry=...)``; the platform threads it through the
    accountant, the WAL writer, the snapshot store, and the fault
    registry.  ``clock`` overrides the tracer's logical tick clock (e.g.
    a scaled ``time.perf_counter`` for wall-clock traces -- at the cost
    of run-to-run byte determinism of the exports).  ``profiler``
    attaches a :class:`WallProfiler` *alongside* the tracer: ``probe``
    is then a :class:`Probe` teeing every emission site to both; without
    a profiler ``probe`` is the tracer itself, so the instrumented code
    pays nothing for the capability.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[WallProfiler] = None,
    ) -> None:
        self.tracer = Tracer(clock=clock)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = profiler
        self.probe = (
            self.tracer if profiler is None else Probe(self.tracer, profiler)
        )
