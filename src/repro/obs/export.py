"""Exporters: deterministic JSON, Prometheus text, Chrome trace JSON.

All three render from the registry's :meth:`~repro.obs.metrics.
MetricsRegistry.snapshot` and the tracer's span/event lists, so two runs
that emitted the same telemetry produce byte-identical exports (sorted
keys, ``repr`` float round-tripping, no timestamps beyond the logical
clock).  The Chrome trace document loads directly in Perfetto /
``chrome://tracing``: spans become ``ph: "X"`` complete events with the
tick clock as microseconds, instants become ``ph: "i"`` markers, and the
drive phase (the dotted-name prefix) becomes the category.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

__all__ = [
    "chrome_trace",
    "render_chrome_trace",
    "render_json",
    "render_prometheus",
    "write_chrome_trace",
]


def render_json(metrics) -> str:
    """The registry snapshot as canonical JSON (sorted keys, trailing
    newline) -- the ``repro obs-report`` default output."""
    return json.dumps(metrics.snapshot(), sort_keys=True, indent=2) + "\n"


def _format_number(value) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


def render_prometheus(metrics) -> str:
    """The registry snapshot in the Prometheus text exposition format."""
    snapshot = metrics.snapshot()
    lines: List[str] = []
    typed = set()

    def type_line(rendered_key: str, kind: str) -> None:
        name = rendered_key.split("{", 1)[0]
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in snapshot["counters"].items():
        type_line(key, "counter")
        lines.append(f"{key} {_format_number(value)}")
    for key, value in snapshot["gauges"].items():
        type_line(key, "gauge")
        lines.append(f"{key} {_format_number(value)}")
    for key, hist in snapshot["histograms"].items():
        name, _, labels = key.partition("{")
        labels = labels[:-1] if labels else ""
        type_line(name, "histogram")
        for bound, count in hist["buckets"].items():
            inner = f'{labels},le="{bound}"' if labels else f'le="{bound}"'
            lines.append(f"{name}_bucket{{{inner}}} {_format_number(count)}")
        suffix = f"{{{labels}}}" if labels else ""
        lines.append(f"{name}_sum{suffix} {_format_number(hist['sum'])}")
        lines.append(f"{name}_count{suffix} {_format_number(hist['count'])}")
    return "\n".join(lines) + "\n"


def chrome_trace(tracer) -> dict:
    """The tracer's records as a Chrome trace-event document (dict form).

    One process, one thread: the drive is serial by design, so ``pid`` /
    ``tid`` are constant and nesting is carried by ``args.parent`` (and
    by the ts/dur containment Perfetto renders from).
    """
    events = []
    for span in tracer.spans:
        args = {"hour": span.hour, "parent": span.parent_id}
        args.update(span.args)
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start,
                "dur": span.duration,
                "pid": 1,
                "tid": 1,
                "id": span.span_id,
                "args": args,
            }
        )
    for event in tracer.events:
        args = {"hour": event.hour}
        args.update(event.args)
        events.append(
            {
                "name": event.name,
                "cat": event.category,
                "ph": "i",
                "s": "t",
                "ts": event.ts,
                "pid": 1,
                "tid": 1,
                "id": event.event_id,
                "args": args,
            }
        )
    # One timeline: Perfetto sorts by ts, and emission ids break ties
    # deterministically.
    events.sort(key=lambda e: (e["ts"], e["id"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_chrome_trace(tracer) -> str:
    return json.dumps(chrome_trace(tracer), sort_keys=True, indent=2) + "\n"


def write_chrome_trace(tracer, path) -> Path:
    """Write the Chrome trace JSON atomically (tmp + ``os.replace``)."""
    import os

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(render_chrome_trace(tracer), encoding="utf-8")
    os.replace(tmp, path)
    return path
