"""Metrics registry: counters, gauges, and histograms for the platform.

Keys are ``(name, sorted label items)``; values are plain Python numbers
updated in place, so an increment is one dict operation and a snapshot is
a deterministic walk in sorted-key order.  The registry holds no locks:
every writer in the platform sits on the serial drive path (the same
discipline the tracer documents), and readers snapshot between hours.

Histograms use fixed power-of-four bucket bounds (:data:`BUCKET_BOUNDS`)
plus ``+Inf`` and track count/sum/min/max -- enough for the Prometheus
text exposition without per-sample storage.

The higher-level ``observe_*`` helpers translate platform state into
gauge families using only documented pure reads (``store.totals``,
``stream_loss_bound``, ``shard_loss_bounds``); the single deliberate
exception is ``retired_blocks()``, whose lazy retirement persistence is
idempotent and value-identical -- the same normalization the durability
layer's ``state_summary`` performs before digesting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["BUCKET_BOUNDS", "MetricsRegistry"]

#: Histogram bucket upper bounds (inclusive), ``+Inf`` implied.
BUCKET_BOUNDS: Tuple[float, ...] = tuple(float(4 ** k) for k in range(11))

MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, object]) -> MetricKey:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class MetricsRegistry:
    """Insertion-cheap, deterministically exportable metric store."""

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, float] = {}
        self._gauges: Dict[MetricKey, float] = {}
        self._histograms: Dict[MetricKey, dict] = {}

    # ------------------------------------------------------------------
    # Primitive instruments
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels: object) -> None:
        """Add ``value`` to a monotonic counter (created at zero)."""
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set a gauge to its latest value."""
        self._gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Fold one sample into a histogram."""
        key = _key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = {
                "buckets": [0] * (len(BUCKET_BOUNDS) + 1),
                "count": 0,
                "sum": 0.0,
                "min": value,
                "max": value,
            }
            self._histograms[key] = hist
        hist["count"] += 1
        hist["sum"] += value
        hist["min"] = min(hist["min"], value)
        hist["max"] = max(hist["max"], value)
        for index, bound in enumerate(BUCKET_BOUNDS):
            if value <= bound:
                hist["buckets"][index] += 1
                return
        hist["buckets"][-1] += 1

    # ------------------------------------------------------------------
    # Read-back (tests, compatibility properties)
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels: object) -> float:
        return self._counters.get(_key(name, labels), 0)

    def gauge_value(
        self, name: str, default: float = 0.0, **labels: object
    ) -> float:
        return self._gauges.get(_key(name, labels), default)

    def histogram_value(self, name: str, **labels: object) -> Optional[dict]:
        hist = self._histograms.get(_key(name, labels))
        return dict(hist) if hist is not None else None

    # ------------------------------------------------------------------
    # Platform observers (privacy / throughput / durability families)
    # ------------------------------------------------------------------
    def observe_dashboard(self, accountant, strong: bool = False) -> int:
        """Per-block loss gauges in one pass -- the metrics export path of
        :func:`repro.core.odometer.loss_dashboard`.

        Fills ``sage_block_epsilon{block=...}`` / ``sage_block_delta``
        for every registered block with the same vectorized single pass
        over the struct-of-arrays totals the dashboard helper uses, so
        per-block loss lands in the JSON/Prometheus snapshots without a
        second scan.  Sharded accountants are covered transparently:
        ``store.totals`` is the global-row-space mirror spanning every
        shard.  ``strong=True`` routes through the per-block strong
        odometer instead (one odometer load per block).  Returns the
        number of blocks observed.
        """
        from repro.core.odometer import loss_dashboard

        import numpy as np

        keys = accountant.block_keys
        if strong:
            for key, loss in loss_dashboard(accountant, strong=True).items():
                self.set_gauge("sage_block_epsilon", loss.epsilon, block=key)
                self.set_gauge("sage_block_delta", loss.delta, block=key)
            return len(keys)
        from repro.core.accountant import TOT_DELTA, TOT_EPS

        totals = accountant.store.totals
        eps = totals[:, TOT_EPS]
        delta = np.minimum(1.0, totals[:, TOT_DELTA])
        for key, e, d in zip(keys, eps, delta):
            self.set_gauge("sage_block_epsilon", float(e), block=key)
            self.set_gauge("sage_block_delta", float(d), block=key)
        return len(keys)

    def observe_privacy(self, accountant) -> None:
        """Stream-level privacy gauges: loss bound vs the global budget,
        block lifecycle counts, and Renyi order saturation.

        ``retired_blocks()`` may lazily persist already-proven retirement
        -- idempotent and value-identical, the normalization every parity
        fingerprint performs anyway.
        """
        loss = accountant.stream_loss_bound()
        self.set_gauge("sage_privacy_epsilon_spent", loss.epsilon)
        self.set_gauge("sage_privacy_delta_spent", loss.delta)
        self.set_gauge(
            "sage_privacy_epsilon_headroom", accountant.epsilon_global - loss.epsilon
        )
        self.set_gauge(
            "sage_privacy_delta_headroom", accountant.delta_global - loss.delta
        )
        n_blocks = len(accountant.block_keys)
        n_retired = len(accountant.retired_blocks())
        self.set_gauge("sage_privacy_blocks_total", n_blocks)
        self.set_gauge("sage_privacy_blocks_retired", n_retired)
        self.set_gauge("sage_privacy_blocks_live", n_blocks - n_retired)
        self._observe_order_saturation(accountant)
        shard_bounds = getattr(accountant, "shard_loss_bounds", None)
        if shard_bounds is not None:
            for shard, bound in enumerate(shard_bounds()):
                self.set_gauge(
                    "sage_shard_epsilon_bound", bound.epsilon, shard=shard
                )

    def _observe_order_saturation(self, accountant) -> None:
        """Fraction of spending blocks whose optimal Renyi order sits on
        the grid boundary (either end) -- when it climbs, the configured
        order grid is limiting the accounting, not the data."""
        import numpy as np

        from repro.core.accountant import TOT_EPS, TOTALS_BASE

        filt = getattr(accountant, "batch_filter", None)
        orders = getattr(filt, "orders", None)
        penalty = getattr(filt, "_penalty", None)
        if not orders or penalty is None:
            return
        self.set_gauge("sage_privacy_renyi_orders", len(orders))
        totals = accountant.store.totals
        spending = totals[:, TOT_EPS] > 0.0
        if not spending.any():
            self.set_gauge("sage_privacy_renyi_order_saturation", 0.0)
            return
        rdp = totals[np.flatnonzero(spending), TOTALS_BASE:]
        best = np.argmin(rdp + np.asarray(penalty), axis=1)
        saturated = (best == 0) | (best == len(orders) - 1)
        self.set_gauge(
            "sage_privacy_renyi_order_saturation", float(saturated.mean())
        )

    def observe_recovery(self, report) -> None:
        """Durability gauges from a :class:`~repro.core.durability.
        RecoveryReport` (replay depth, snapshot used, digest checks)."""
        self.set_gauge("sage_recovery_replayed_hours", report.replayed_hours)
        self.set_gauge("sage_recovery_hours_committed", report.hours_committed)
        self.set_gauge(
            "sage_recovery_snapshot_hour",
            -1 if report.snapshot_hour is None else report.snapshot_hour,
        )
        self.set_gauge(
            "sage_recovery_digests_verified", report.digests_verified
        )
        self.set_gauge("sage_recovery_fresh_pipelines", report.fresh_pipelines)

    # ------------------------------------------------------------------
    # Deterministic snapshot (the exporters' single source)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """All metrics as a plain dict with deterministic key order."""

        def render(table: Dict[MetricKey, object]) -> dict:
            return {
                _render_key(key): value for key, value in sorted(table.items())
            }

        histograms = {}
        for key, hist in sorted(self._histograms.items()):
            buckets = {}
            cumulative = 0
            # Cumulative ``le`` counts, the Prometheus histogram contract.
            for bound, count in zip(BUCKET_BOUNDS, hist["buckets"]):
                cumulative += count
                buckets[_format_bound(bound)] = cumulative
            buckets["+Inf"] = hist["count"]
            histograms[_render_key(key)] = {
                "count": hist["count"],
                "sum": hist["sum"],
                "min": hist["min"],
                "max": hist["max"],
                "buckets": buckets,
            }
        return {
            "counters": render(self._counters),
            "gauges": render(self._gauges),
            "histograms": histograms,
        }


def _format_bound(bound: float) -> str:
    return str(int(bound)) if float(bound).is_integer() else repr(bound)


def _render_key(key: MetricKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f'{label}="{value}"' for label, value in labels)
    return f"{name}{{{inner}}}"
