"""Deterministic tracing: logical spans and instant events.

The tracer exists to make the hourly drive *replayable*: two runs of the
same workload must emit byte-identical traces, and a traced run must stay
byte-identical to an untraced one.  Both properties fall out of two
choices:

* **Logical time.**  Timestamps come from an injected clock; the default
  :class:`TickClock` is a monotonic counter that advances by one on every
  read, so span ordering and durations are pure functions of the emission
  order.  Injecting ``time.perf_counter`` (scaled) turns the same spans
  into real wall-clock profiles for production use -- nothing else
  changes.
* **Serial emission.**  Instrumentation sites live only on the drive's
  serial coordination points (the platform never emits from inside a
  worker thread), so the emission order -- and therefore every tick -- is
  deterministic.  Per-shard validation spans, for example, are emitted at
  the serial commit point from the batch's per-shard footprint rather
  than from the validation pool.

Span identifiers are a plain counter (no UUIDs, no PIDs), the ``hour``
field is the platform's committed-hour index at emission time, and the
tracer never feeds anything back into the code it observes -- the
accounting trajectory cannot depend on whether tracing is on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

__all__ = ["Event", "Span", "TickClock", "Tracer"]


class TickClock:
    """Monotonic logical clock: every read advances time by one tick."""

    __slots__ = ("_now",)

    def __init__(self) -> None:
        self._now = 0.0

    def __call__(self) -> float:
        now = self._now + 1.0
        self._now = now
        return now


class Span:
    """One closed phase of the drive (``ph: "X"`` in Chrome trace terms).

    The record doubles as its own ``with`` handle: :meth:`Tracer.span`
    builds it (IDs assigned, start unread) and entering the block reads
    the start tick, so no separate scope object is allocated.  Span
    emission sits on the per-session hot path of the hourly drive --
    slots and a fused handle keep a span to roughly a microsecond.
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "hour",
        "args",
        "_tracer",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        end: float,
        hour: int,
        args: Optional[Dict[str, object]] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end = end
        self.hour = hour
        self.args = {} if args is None else args
        self._tracer = tracer

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.start = tracer._clock()
        tracer._open.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        tracer._open.pop()
        self.end = tracer._clock()
        tracer.spans.append(self)
        return False

    def __repr__(self) -> str:
        return (
            f"Span(span_id={self.span_id}, parent_id={self.parent_id}, "
            f"name={self.name!r}, start={self.start}, end={self.end}, "
            f"hour={self.hour}, args={self.args})"
        )

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def category(self) -> str:
        """Dotted-name prefix, e.g. ``wal.fsync`` -> ``wal``."""
        return self.name.split(".", 1)[0]

    def set(self, **args: object) -> None:
        """Attach result arguments discovered while the span is open."""
        self.args.update(args)


class Event:
    """One instant marker (``ph: "i"`` in Chrome trace terms)."""

    __slots__ = ("event_id", "name", "ts", "hour", "args")

    def __init__(
        self,
        event_id: int,
        name: str,
        ts: float,
        hour: int,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        self.event_id = event_id
        self.name = name
        self.ts = ts
        self.hour = hour
        self.args = {} if args is None else args

    def __repr__(self) -> str:
        return (
            f"Event(event_id={self.event_id}, name={self.name!r}, "
            f"ts={self.ts}, hour={self.hour}, args={self.args})"
        )

    @property
    def category(self) -> str:
        return self.name.split(".", 1)[0]


class Tracer:
    """Collects spans and events with counter IDs and an injected clock.

    ``spans`` holds closed spans in close order; ``events`` holds instants
    in emission order.  ``hour`` is ambient context -- the platform sets
    it to the committed-hour index at the top of every ``advance`` (and to
    the replayed hour during recovery), so every record carries the hour
    it belongs to without threading an argument through each call site.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock if clock is not None else TickClock()
        self._next_id = 0
        self._open: List[Span] = []
        self.spans: List[Span] = []
        self.events: List[Event] = []
        self.hour = -1

    # ------------------------------------------------------------------
    def span(self, name: str, **args: object) -> Span:
        """Open a span around a ``with`` block; closes even on error.

        The ``with`` target is the :class:`Span`, so the block can attach
        result arguments via :meth:`Span.set` before it closes.  The start
        tick reads on block entry; the parent is whatever span is open at
        build time (build and entry are always adjacent at the call sites).
        """
        self._next_id += 1
        return Span(
            self._next_id,
            self._open[-1].span_id if self._open else None,
            name,
            0.0,
            0.0,
            self.hour,
            args,
            self,
        )

    def event(self, name: str, **args: object) -> Event:
        """Record an instant event at the current clock reading."""
        self._next_id += 1
        record = Event(
            event_id=self._next_id,
            name=name,
            ts=self._clock(),
            hour=self.hour,
            args=args,
        )
        self.events.append(record)
        return record

    # ------------------------------------------------------------------
    def span_names(self) -> List[str]:
        return [span.name for span in self.spans]

    def event_names(self) -> List[str]:
        return [event.name for event in self.events]

    def find_spans(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def find_events(self, name: str) -> List[Event]:
        return [event for event in self.events if event.name == name]
