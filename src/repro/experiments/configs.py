"""Table 1: the experimental training pipelines, transcribed.

Paper hyperparameters are kept verbatim where the laptop-scale substrate
allows; the two deliberate deviations (documented in EXPERIMENTS.md) are

* hidden sizes -- the paper's Taxi NN uses (5000, 100) and Criteo NN
  (1024, 32); we default to (64, 32) and (64, 16), which preserve the
  qualitative NN-beats-linear-with-enough-data behaviour at 100x less
  compute; and
* DP-SGD batch sizes are capped at n/4 for tiny training sets so the RDP
  sampling analysis stays meaningful.

Every config knows how to build its trainer function and its SLAed
validator, so runners and examples share one source of truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core.pipeline import HistogramPipeline, StatisticPipeline, TrainingPipeline
from repro.core.validation.accuracy import DPAccuracyValidator
from repro.core.validation.loss import DPLossValidator
from repro.data.criteo import CRITEO_CARDINALITIES
from repro.errors import DataError
from repro.ml.estimators import (
    DPSGDClassifierEstimator,
    DPSGDRegressorEstimator,
    MLPClassifierEstimator,
    MLPRegressorEstimator,
)
from repro.ml.linear import AdaSSPRegressor, RidgeRegression
from repro.ml.sgd import SGDConfig

__all__ = [
    "ModelPipelineConfig",
    "TAXI_LR",
    "TAXI_NN",
    "CRITEO_LG",
    "CRITEO_NN",
    "TAXI_SPEED_TARGETS",
    "CRITEO_COUNT_TARGETS",
    "taxi_speed_pipeline",
    "criteo_count_pipeline",
    "MODEL_CONFIGS",
]

# Row-norm bound of the featurized Taxi matrix: 8 one-hot groups of unit
# norm -> ||x||_2 = sqrt(8) exactly.
TAXI_X_BOUND = math.sqrt(8.0)


@dataclass(frozen=True)
class ModelPipelineConfig:
    """One row of Table 1 (model pipelines)."""

    name: str
    dataset: str                      # "taxi" | "criteo"
    metric: str                       # "mse" | "accuracy"
    algorithm: str                    # "adassp" | "dpsgd"
    hidden_sizes: Tuple[int, ...]
    sgd: Optional[SGDConfig]
    clip_norm: float
    epsilon_large: float
    epsilon_small: float
    delta: float
    targets: Tuple[float, ...]
    naive_metric: float               # predict-the-mean / majority baseline
    loss_bound: float = 1.0
    # Non-private baseline hyperparameters: without noise, small batches
    # and more steps converge far better, so the NP curves of Fig. 5 get
    # their own schedule (defaults to ``sgd`` when None).
    np_sgd: Optional[SGDConfig] = None

    # ------------------------------------------------------------------
    def trainer_fn(self) -> Callable:
        """The pipeline's DP ``trainer_fn(X, y, budget, rng)``."""
        if self.algorithm == "adassp":
            def train(X, y, budget, rng):
                est = AdaSSPRegressor(
                    budget, rho=0.1, x_bound=TAXI_X_BOUND, y_bound=1.0
                )
                return est.fit(X, y, rng)
            return train
        if self.algorithm == "dpsgd":
            regression = self.metric == "mse"
            def train(X, y, budget, rng):
                cls = DPSGDRegressorEstimator if regression else DPSGDClassifierEstimator
                sgd = self._effective_sgd(X.shape[0])
                # Labels live in a public range; clip regression outputs
                # into it (free post-processing, bounds unstable runs).
                clip = (0.0, 1.0) if regression else None
                est = cls(
                    budget, self.hidden_sizes, sgd,
                    clip_norm=self.clip_norm, output_clip=clip,
                )
                return est.fit(X, y, rng)
            return train
        raise DataError(f"unknown algorithm {self.algorithm!r}")

    def np_trainer_fn(self) -> Callable:
        """The non-private counterpart (the "NP" curves of Fig. 5)."""
        if self.algorithm == "adassp":
            def train(X, y, budget, rng):
                return RidgeRegression(regularization=1e-3).fit(X, y, rng)
            return train
        regression = self.metric == "mse"
        def train(X, y, budget, rng):
            cls = MLPRegressorEstimator if regression else MLPClassifierEstimator
            sgd = self.np_sgd or self.sgd
            batch = min(sgd.batch_size, max(16, X.shape[0] // 4))
            est = cls(
                self.hidden_sizes,
                SGDConfig(
                    learning_rate=sgd.learning_rate,
                    epochs=sgd.epochs,
                    batch_size=batch,
                    momentum=sgd.momentum,
                ),
                output_clip=(0.0, 1.0) if regression else None,
            )
            return est.fit(X, y, rng)
        return train

    def _effective_sgd(self, n: int) -> Optional[SGDConfig]:
        """Cap the batch size at n/4 so subsampling stays meaningful."""
        if self.sgd is None:
            return None
        batch = min(self.sgd.batch_size, max(16, n // 4))
        return SGDConfig(
            learning_rate=self.sgd.learning_rate,
            epochs=self.sgd.epochs,
            batch_size=batch,
            momentum=self.sgd.momentum,
        )

    def validator(self, target: float, confidence: float = 0.95):
        if self.metric == "mse":
            return DPLossValidator(target, self.loss_bound, confidence)
        return DPAccuracyValidator(target, confidence)

    def erm_fn(self) -> Optional[Callable]:
        """Closed-form ERM losses for the REJECT test (LR only)."""
        if self.algorithm != "adassp":
            return None
        def erm(X, y):
            model = RidgeRegression(regularization=1e-6).fit(X, y)
            residual = y - model.predict(X)
            return residual ** 2
        return erm

    def pipeline(self, target: float, confidence: float = 0.95) -> TrainingPipeline:
        return TrainingPipeline(
            name=f"{self.name}-t{target:g}",
            trainer_fn=self.trainer_fn(),
            validator=self.validator(target, confidence),
            metric=self.metric,
            erm_fn=self.erm_fn(),
        )


# ----------------------------------------------------------------------
# Table 1, transcribed (budgets/targets verbatim; architectures scaled)
# ----------------------------------------------------------------------
TAXI_LR = ModelPipelineConfig(
    name="taxi-lr",
    dataset="taxi",
    metric="mse",
    algorithm="adassp",
    hidden_sizes=(),
    sgd=None,
    clip_norm=1.0,
    epsilon_large=1.0,
    epsilon_small=0.05,
    delta=1e-6,
    targets=(0.0024, 0.003, 0.004, 0.005, 0.006, 0.007),
    naive_metric=0.0069,
)

TAXI_NN = ModelPipelineConfig(
    name="taxi-nn",
    dataset="taxi",
    metric="mse",
    algorithm="dpsgd",
    hidden_sizes=(64, 32),            # paper: (5000, 100)
    # Paper: lr 0.01, epochs 3, batch 1024, clip 1 at 37M samples; re-tuned
    # for laptop-scale q = batch/n (see EXPERIMENTS.md).  Regression
    # gradients here are small, so a tight clip cuts noise 4x for free.
    sgd=SGDConfig(learning_rate=0.3, epochs=6, batch_size=2048, momentum=0.9),
    np_sgd=SGDConfig(learning_rate=0.05, epochs=4, batch_size=256, momentum=0.9),
    clip_norm=0.25,
    epsilon_large=1.0,
    epsilon_small=0.1,                # Fig. 5b's small budget
    delta=1e-6,
    targets=(0.002, 0.003, 0.004, 0.005, 0.006, 0.007),
    naive_metric=0.0069,
)

CRITEO_LG = ModelPipelineConfig(
    name="criteo-lg",
    dataset="criteo",
    metric="accuracy",
    algorithm="dpsgd",
    hidden_sizes=(),
    # Paper: lr 0.1, batch 512, clip 1 at 45M samples.  At laptop scale the
    # sampling rate q = batch/n is ~100x larger, so the same budget buys a
    # larger noise multiplier; bigger batches + looser clipping restore the
    # signal-to-noise the paper's regime had (see EXPERIMENTS.md).
    sgd=SGDConfig(learning_rate=0.2, epochs=3, batch_size=4096),
    np_sgd=SGDConfig(learning_rate=0.5, epochs=4, batch_size=256),
    clip_norm=4.0,
    epsilon_large=1.0,
    epsilon_small=0.25,
    delta=1e-6,
    targets=(0.74, 0.75, 0.76, 0.77, 0.78),
    naive_metric=0.743,
)

CRITEO_NN = ModelPipelineConfig(
    name="criteo-nn",
    dataset="criteo",
    metric="accuracy",
    algorithm="dpsgd",
    hidden_sizes=(64, 16),            # paper: (1024, 32)
    sgd=SGDConfig(learning_rate=0.1, epochs=5, batch_size=4096),
    np_sgd=SGDConfig(learning_rate=0.1, epochs=5, batch_size=256),
    clip_norm=4.0,
    epsilon_large=1.0,
    epsilon_small=0.25,
    delta=1e-6,
    targets=(0.74, 0.75, 0.76, 0.77, 0.78),
    naive_metric=0.743,
)

MODEL_CONFIGS = {c.name: c for c in (TAXI_LR, TAXI_NN, CRITEO_LG, CRITEO_NN)}

# Statistics pipelines (Table 1's Avg.Speed x3 and Counts x26 rows).
TAXI_SPEED_TARGETS = (1.0, 5.0, 7.5, 10.0, 15.0)       # km/h absolute error
CRITEO_COUNT_TARGETS = (0.01, 0.05, 0.10)              # frequency abs. error

_SPEED_KEYS = {"hour_of_day": 24, "day_of_week": 7, "week_of_month": 5}


def taxi_speed_pipeline(
    granularity: str, target: float, confidence: float = 0.95
) -> StatisticPipeline:
    """One of the three Avg.Speed pipelines (hour/day/week granularity)."""
    if granularity not in _SPEED_KEYS:
        raise DataError(f"granularity must be one of {sorted(_SPEED_KEYS)}")
    return StatisticPipeline(
        name=f"avg-speed-{granularity}-t{target:g}",
        key_column=granularity,
        value_column="speed_kmh",
        nkeys=_SPEED_KEYS[granularity],
        value_range=60.0,
        target=target,
        confidence=confidence,
    )


def criteo_count_pipeline(
    feature_index: int, target: float, confidence: float = 0.95
) -> HistogramPipeline:
    """One of the 26 per-feature histogram pipelines."""
    if not 0 <= feature_index < len(CRITEO_CARDINALITIES):
        raise DataError(
            f"feature_index must be in [0, {len(CRITEO_CARDINALITIES)})"
        )
    return HistogramPipeline(
        name=f"counts-{feature_index}-t{target:g}",
        key_column=f"cat_{feature_index}",
        nkeys=CRITEO_CARDINALITIES[feature_index],
        target=target,
        confidence=confidence,
    )
