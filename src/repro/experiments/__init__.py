"""Experiment runners regenerating every table and figure of §5."""

from repro.experiments.configs import (
    CRITEO_COUNT_TARGETS,
    CRITEO_LG,
    CRITEO_NN,
    MODEL_CONFIGS,
    ModelPipelineConfig,
    TAXI_LR,
    TAXI_NN,
    TAXI_SPEED_TARGETS,
    criteo_count_pipeline,
    taxi_speed_pipeline,
)
from repro.experiments.regimes import Regime, accepts, accepts_accuracy, accepts_loss
from repro.experiments.reporting import (
    format_fig5,
    format_fig6,
    format_fig7,
    format_fig8,
    format_table2,
)
from repro.experiments.runners import (
    DEFAULT_SCHEDULE,
    RunTable,
    TrainingRun,
    collect_training_runs,
    fig5_series,
    fig6_required_samples,
    run_fig7_lr,
    run_fig8,
    table2_violation_rates,
)

__all__ = [
    "ModelPipelineConfig",
    "MODEL_CONFIGS",
    "TAXI_LR",
    "TAXI_NN",
    "CRITEO_LG",
    "CRITEO_NN",
    "TAXI_SPEED_TARGETS",
    "CRITEO_COUNT_TARGETS",
    "taxi_speed_pipeline",
    "criteo_count_pipeline",
    "Regime",
    "accepts",
    "accepts_loss",
    "accepts_accuracy",
    "TrainingRun",
    "RunTable",
    "collect_training_runs",
    "fig5_series",
    "fig6_required_samples",
    "table2_violation_rates",
    "run_fig7_lr",
    "run_fig8",
    "DEFAULT_SCHEDULE",
    "format_fig5",
    "format_fig6",
    "format_table2",
    "format_fig7",
    "format_fig8",
]
