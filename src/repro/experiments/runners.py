"""Runners that regenerate every table and figure of the paper's §5.

The heavy lifting is shared: :func:`collect_training_runs` trains each
Table 1 model over a doubling schedule of sample sizes, in three modes
(non-private, DP at the large budget, DP at the small budget), and records
per-run test statistics plus held-out metrics.  Fig. 5, Fig. 6 and Table 2
are all post-processings of that one table:

* Fig. 5  -- held-out metric vs. sample size per mode;
* Fig. 6  -- smallest n whose test statistics a regime accepts, per target;
* Table 2 -- of the models each regime accepted first (the privacy-adaptive
  training outcome), the fraction violating their target on held-out data.

Fig. 7 and Fig. 8 have dedicated runners (block-vs-query training, and the
workload simulator sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.criteo import CriteoGenerator
from repro.data.taxi import TaxiGenerator
from repro.dp.budget import PrivacyBudget
from repro.experiments.configs import ModelPipelineConfig
from repro.experiments.regimes import Regime, accepts
from repro.errors import DataError
from repro.ml.linear import AdaSSPRegressor
from repro.ml.metrics import accuracy, mse, squared_errors
from repro.workload.simulator import (
    WorkloadConfig,
    WorkloadReport,
    WorkloadSimulator,
)

__all__ = [
    "TrainingRun",
    "RunTable",
    "collect_training_runs",
    "fig5_series",
    "fig6_required_samples",
    "table2_violation_rates",
    "run_fig7_lr",
    "run_fig8",
    "DEFAULT_SCHEDULE",
]

DEFAULT_SCHEDULE: Tuple[int, ...] = (2_000, 4_000, 8_000, 16_000, 32_000, 64_000, 128_000)

# Fig. 2's stage split: validation gets a third of the pipeline epsilon.
_VALIDATION_SHARE = 1.0 / 3.0


def _generator(dataset: str, points_per_hour: int = 16_000):
    if dataset == "taxi":
        return TaxiGenerator(points_per_hour=points_per_hour)
    if dataset == "criteo":
        return CriteoGenerator(points_per_hour=points_per_hour)
    raise DataError(f"unknown dataset {dataset!r}")


@dataclass
class TrainingRun:
    """One (mode, n, seed) training outcome."""

    mode: str                  # "np" | "dp-large" | "dp-small"
    n: int
    seed: int
    test_stats: np.ndarray     # per-example losses (mse) or 0/1 (accuracy)
    heldout_metric: float      # metric on the big held-out set
    epsilon: float             # training epsilon (0 for np)


@dataclass
class RunTable:
    """All runs for one Table 1 config."""

    config: ModelPipelineConfig
    runs: List[TrainingRun] = field(default_factory=list)

    def select(self, mode: str, seed: Optional[int] = None) -> List[TrainingRun]:
        out = [r for r in self.runs if r.mode == mode]
        if seed is not None:
            out = [r for r in out if r.seed == seed]
        return sorted(out, key=lambda r: r.n)

    @property
    def seeds(self) -> List[int]:
        return sorted({r.seed for r in self.runs})


def _metric_value(config: ModelPipelineConfig, model, X, y) -> float:
    predictions = model.predict(X)
    if config.metric == "mse":
        return mse(y, predictions)
    labels = (np.asarray(predictions) >= 0.5).astype(float)
    return accuracy(y, labels)


def _test_stats(config: ModelPipelineConfig, model, X, y) -> np.ndarray:
    predictions = model.predict(X)
    if config.metric == "mse":
        return squared_errors(y, predictions)
    labels = (np.asarray(predictions) >= 0.5).astype(float)
    return (labels == np.asarray(y, dtype=float)).astype(float)


def collect_training_runs(
    config: ModelPipelineConfig,
    schedule: Sequence[int] = DEFAULT_SCHEDULE,
    seeds: Sequence[int] = (0, 1, 2),
    eval_size: int = 30_000,
    modes: Sequence[str] = ("np", "dp-large", "dp-small"),
    test_fraction: float = 0.1,
) -> RunTable:
    """Train ``config`` across the sample schedule in every requested mode."""
    table = RunTable(config=config)
    gen = _generator(config.dataset)
    max_n = max(schedule)
    for seed in seeds:
        rng = np.random.default_rng(seed)
        pool = gen.generate(max_n, rng)
        heldout = gen.generate(eval_size, np.random.default_rng(10_000 + seed))
        for n in schedule:
            X, y = pool.X[:n], pool.y[:n]
            n_test = max(1, int(n * test_fraction))
            X_train, y_train = X[:-n_test], y[:-n_test]
            X_test, y_test = X[-n_test:], y[-n_test:]
            for mode in modes:
                if mode == "np":
                    trainer = config.np_trainer_fn()
                    budget = PrivacyBudget(1.0, config.delta)  # unused by NP
                    epsilon = 0.0
                else:
                    trainer = config.trainer_fn()
                    epsilon = (
                        config.epsilon_large if mode == "dp-large" else config.epsilon_small
                    )
                    # Fig. 5 measures the DP *training algorithm* at the
                    # stated budget; the Fig. 2 stage split applies when a
                    # full pipeline runs (validation uses epsilon/3 below).
                    budget = PrivacyBudget(epsilon, config.delta)
                model = trainer(X_train, y_train, budget, rng)
                table.runs.append(
                    TrainingRun(
                        mode=mode,
                        n=n,
                        seed=seed,
                        test_stats=_test_stats(config, model, X_test, y_test),
                        heldout_metric=_metric_value(config, model, heldout.X, heldout.y),
                        epsilon=epsilon,
                    )
                )
    return table


# ----------------------------------------------------------------------
# Fig. 5: metric vs. sample size, per training mode
# ----------------------------------------------------------------------
def fig5_series(table: RunTable) -> Dict[str, List[Tuple[int, float]]]:
    """{mode: [(n, mean heldout metric across seeds)]}, Fig. 5's curves."""
    series: Dict[str, List[Tuple[int, float]]] = {}
    for mode in ("np", "dp-large", "dp-small"):
        runs = table.select(mode)
        if not runs:
            continue
        by_n: Dict[int, List[float]] = {}
        for run in runs:
            by_n.setdefault(run.n, []).append(run.heldout_metric)
        series[mode] = [(n, float(np.mean(v))) for n, v in sorted(by_n.items())]
    return series


# ----------------------------------------------------------------------
# Fig. 6: sample complexity of acceptance, per regime
# ----------------------------------------------------------------------
def fig6_required_samples(
    table: RunTable,
    targets: Sequence[float],
    regimes: Sequence[Regime] = tuple(Regime),
    confidence: float = 0.95,
    seed: int = 1234,
) -> Dict[Regime, Dict[float, Optional[int]]]:
    """Smallest n each regime accepts at, per target (median over seeds).

    NP_SLA judges the non-private model; the DP regimes judge the dp-large
    model, with the validator running at its Fig. 2 epsilon share.
    """
    rng = np.random.default_rng(seed)
    out: Dict[Regime, Dict[float, Optional[int]]] = {r: {} for r in regimes}
    for regime in regimes:
        mode = "np" if regime is Regime.NP_SLA else "dp-large"
        for target in targets:
            required: List[Optional[int]] = []
            for s in table.seeds:
                accepted_n = None
                for run in table.select(mode, seed=s):
                    eps_val = max(run.epsilon, 1.0) * _VALIDATION_SHARE
                    if accepts(
                        regime,
                        table.config.metric,
                        run.test_stats,
                        target,
                        eps_val,
                        confidence,
                        rng,
                        loss_bound=table.config.loss_bound,
                    ):
                        accepted_n = run.n
                        break
                required.append(accepted_n)
            reachable = [n for n in required if n is not None]
            if len(reachable) * 2 >= len(required) and reachable:
                out[regime][target] = int(np.median(reachable))
            else:
                out[regime][target] = None
    return out


# ----------------------------------------------------------------------
# Table 2: violation rates of accepted models
# ----------------------------------------------------------------------
def table2_violation_rates(
    table: RunTable,
    targets: Sequence[float],
    eta: float = 0.05,
    regimes: Sequence[Regime] = tuple(Regime),
    trials_per_cell: int = 20,
    seed: int = 99,
) -> Dict[Regime, float]:
    """Fraction of regime-accepted models violating their target on held-out.

    Mirrors §5.2's protocol: for every (target, seed) the doubling schedule
    is walked until the regime accepts (privacy-adaptive training's
    trajectory); the accepted model's held-out metric is compared against
    the target.  Validation randomness is re-drawn ``trials_per_cell`` times
    so the rates are stable despite the small model grid.
    """
    rng = np.random.default_rng(seed)
    confidence = 1.0 - eta
    rates: Dict[Regime, float] = {}
    for regime in regimes:
        mode = "np" if regime is Regime.NP_SLA else "dp-large"
        violations, accepted = 0, 0
        for target in targets:
            for s in table.seeds:
                runs = table.select(mode, seed=s)
                for _ in range(trials_per_cell):
                    model_run = None
                    for run in runs:
                        eps_val = max(run.epsilon, 1.0) * _VALIDATION_SHARE
                        if accepts(
                            regime,
                            table.config.metric,
                            run.test_stats,
                            target,
                            eps_val,
                            confidence,
                            rng,
                            loss_bound=table.config.loss_bound,
                        ):
                            model_run = run
                            break
                    if model_run is None:
                        continue
                    accepted += 1
                    if table.config.metric == "mse":
                        violated = model_run.heldout_metric > target
                    else:
                        violated = model_run.heldout_metric < target
                    violations += int(violated)
        rates[regime] = violations / accepted if accepted else float("nan")
    return rates


# ----------------------------------------------------------------------
# Fig. 7: block composition vs. per-block query composition (LR)
# ----------------------------------------------------------------------
def run_fig7_lr(
    sample_sizes: Sequence[int] = (4_000, 8_000, 16_000, 32_000, 64_000, 128_000),
    block_sizes: Sequence[int] = (4_000, 20_000),
    epsilon: float = 1.0,
    delta: float = 1e-6,
    seeds: Sequence[int] = (0, 1, 2),
    eval_size: int = 30_000,
) -> Dict[str, List[Tuple[int, float]]]:
    """Taxi LR quality: one combined AdaSSP fit vs. per-block fits averaged.

    Query-level accounting forces one independent DP training per block
    (noise re-drawn each time); the sub-models are averaged, which is the
    federated-style aggregation of §3.2's second alternative.  Block sizes
    default to 1/25 of the paper's (100K/500K) matching our stream scale.
    """
    from repro.experiments.configs import TAXI_X_BOUND

    gen = TaxiGenerator()
    curves: Dict[str, List[Tuple[int, float]]] = {"block": []}
    for b in block_sizes:
        curves[f"query-{b}"] = []
    budget = PrivacyBudget(epsilon, delta)

    by_point: Dict[str, Dict[int, List[float]]] = {k: {} for k in curves}
    for seed in seeds:
        rng = np.random.default_rng(seed)
        pool = gen.generate(max(sample_sizes), rng)
        heldout = gen.generate(eval_size, np.random.default_rng(777 + seed))
        for n in sample_sizes:
            X, y = pool.X[:n], pool.y[:n]
            combined = AdaSSPRegressor(budget, x_bound=TAXI_X_BOUND).fit(X, y, rng)
            by_point["block"].setdefault(n, []).append(
                mse(heldout.y, combined.predict(heldout.X))
            )
            for b in block_sizes:
                if n < b:
                    continue
                coefs = []
                for start in range(0, n - b + 1, b):
                    sub = AdaSSPRegressor(budget, x_bound=TAXI_X_BOUND).fit(
                        X[start: start + b], y[start: start + b], rng
                    )
                    coefs.append(sub.coef_)
                averaged = AdaSSPRegressor(budget, x_bound=TAXI_X_BOUND)
                averaged.coef_ = np.mean(coefs, axis=0)
                by_point[f"query-{b}"].setdefault(n, []).append(
                    mse(heldout.y, averaged.predict(heldout.X))
                )
    for key, pts in by_point.items():
        curves[key] = [(n, float(np.mean(v))) for n, v in sorted(pts.items())]
    return curves


def run_fig7_accept_lr(
    targets: Sequence[float] = (0.004, 0.005, 0.006, 0.007),
    sample_sizes: Sequence[int] = (4_000, 8_000, 16_000, 32_000, 64_000, 128_000, 256_000),
    block_sizes: Sequence[int] = (4_000, 20_000),
    epsilon: float = 1.0,
    delta: float = 1e-6,
    eta: float = 0.05,
    seed: int = 0,
    eval_fraction: float = 0.1,
) -> Dict[str, Dict[float, Optional[int]]]:
    """Fig. 7b: samples needed to ACCEPT each MSE target, block vs query.

    Both settings train the *same* combined AdaSSP model (training quality
    is panel 7a's story); they differ in how the SLAed validation runs: one
    noise draw over the combined test set vs. one per block.
    """
    from repro.core.validation.bounds import bernstein_upper_bound
    from repro.core.validation.loss import DPLossValidator
    from repro.core.validation.outcomes import Outcome
    from repro.experiments.configs import TAXI_X_BOUND

    gen = TaxiGenerator()
    rng = np.random.default_rng(seed)
    pool = gen.generate(max(sample_sizes), rng)
    budget = PrivacyBudget(epsilon, delta)
    eps_val = epsilon / 3.0

    labels = ["block"] + [f"query-{b}" for b in block_sizes]
    out: Dict[str, Dict[float, Optional[int]]] = {label: {} for label in labels}
    # Per-n test losses of the combined model, shared across targets.
    test_losses: Dict[int, np.ndarray] = {}
    for n in sample_sizes:
        n_test = max(1, int(n * eval_fraction))
        model = AdaSSPRegressor(budget, x_bound=TAXI_X_BOUND).fit(
            pool.X[: n - n_test], pool.y[: n - n_test], rng
        )
        residual = pool.y[n - n_test: n] - model.predict(pool.X[n - n_test: n])
        test_losses[n] = residual ** 2

    for target in targets:
        validator = DPLossValidator(target, 1.0, confidence=1 - eta)
        for label in labels:
            accepted_n = None
            for n in sample_sizes:
                losses = test_losses[n]
                if label == "block":
                    ok = (
                        validator.accept_test(losses, eps_val, eta / 2.0, rng).outcome
                        is Outcome.ACCEPT
                    )
                else:
                    block = int(label.split("-")[1])
                    nblocks = max(1, int(np.ceil(n / block)))
                    # Re-express the bound against this target.
                    ok = _split_accept_mse(
                        losses, nblocks, eps_val, eta / 2.0, 1.0, target, rng
                    )
                if ok:
                    accepted_n = n
                    break
            out[label][target] = accepted_n
    return out


def _split_accept_mse(losses, nblocks, epsilon, eta, loss_bound, target, rng) -> bool:
    """Per-block validation bound compared against an explicit target."""
    from repro.core.validation.bounds import bernstein_upper_bound
    from repro.dp.mechanisms import laplace_noise

    losses = np.clip(np.asarray(losses, dtype=float), 0.0, loss_bound)
    if losses.size < nblocks or nblocks < 1:
        return False
    per_block = np.array_split(losses, nblocks)
    tail = np.log(3.0 * nblocks / (2.0 * eta))
    sum_dp = sum(
        float(c.sum()) + laplace_noise(rng, 2.0 * loss_bound / epsilon) for c in per_block
    )
    count_dp = sum(c.size + laplace_noise(rng, 2.0 / epsilon) for c in per_block)
    sum_corr = sum_dp + nblocks * 2.0 * loss_bound * tail / epsilon
    count_corr = count_dp - nblocks * 2.0 * tail / epsilon
    if count_corr <= 1.0:
        return False
    mean = max(0.0, sum_corr / count_corr)
    return bernstein_upper_bound(mean, count_corr, eta / 3.0, loss_bound) <= target


def run_fig7_nn(
    sample_sizes: Sequence[int] = (16_000, 32_000, 64_000),
    block_size: int = 16_000,
    epsilon: float = 1.0,
    delta: float = 1e-6,
    seed: int = 0,
    eval_size: int = 25_000,
) -> Dict[str, List[Tuple[int, float]]]:
    """Fig. 7c: Taxi NN under block vs. per-block query composition.

    Query composition trains one DP-SGD model per block and averages the
    parameters (one federated round); block composition trains once on the
    combined window.  The paper's 5M-point blocks map to ``block_size`` at
    our 1/312 stream scale.
    """
    from repro.experiments.configs import TAXI_NN

    gen = TaxiGenerator()
    rng = np.random.default_rng(seed)
    pool = gen.generate(max(sample_sizes), rng)
    heldout = gen.generate(eval_size, np.random.default_rng(555))
    budget = PrivacyBudget(epsilon, delta)
    trainer = TAXI_NN.trainer_fn()

    curves: Dict[str, List[Tuple[int, float]]] = {"block": [], f"query-{block_size}": []}
    for n in sample_sizes:
        combined = trainer(pool.X[:n], pool.y[:n], budget, rng)
        curves["block"].append((n, mse(heldout.y, combined.predict(heldout.X))))
        if n >= block_size:
            sub_models = []
            for start in range(0, n - block_size + 1, block_size):
                sub = trainer(
                    pool.X[start: start + block_size],
                    pool.y[start: start + block_size],
                    budget,
                    rng,
                )
                sub_models.append(sub)
            averaged = sub_models[0]
            stacked = [
                np.mean([m.params_[i] for m in sub_models], axis=0)
                for i in range(len(sub_models[0].params_))
            ]
            averaged.params_ = stacked
            curves[f"query-{block_size}"].append(
                (n, mse(heldout.y, averaged.predict(heldout.X)))
            )
    return curves


# ----------------------------------------------------------------------
# Fig. 8: average release time under load
# ----------------------------------------------------------------------
def run_fig8(
    rates: Sequence[float] = (0.1, 0.3, 0.5, 0.7),
    strategies: Sequence[str] = ("block-conserve", "block-aggressive", "query", "streaming"),
    horizon_hours: float = 400.0,
    seed: int = 3,
) -> Dict[str, Dict[float, WorkloadReport]]:
    """{strategy: {rate: report}} -- both panels of Fig. 8 (dataset is a
    matter of points_per_hour; the default matches Taxi's 16K/hour)."""
    out: Dict[str, Dict[float, WorkloadReport]] = {}
    for strategy in strategies:
        out[strategy] = {}
        for i, rate in enumerate(rates):
            cfg = WorkloadConfig(
                strategy=strategy, arrival_rate=float(rate), horizon_hours=horizon_hours
            )
            out[strategy][float(rate)] = WorkloadSimulator(cfg, seed=seed + i).run()
    return out
