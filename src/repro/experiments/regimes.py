"""The four validation regimes compared in Table 2 and Fig. 6.

* ``NO_SLA`` -- vanilla TFX validation: compare a DP point estimate of the
  metric against the target, no statistical rigor (the paper's §5.1
  failure-rate baseline).
* ``NP_SLA`` -- statistically rigorous but non-private validation: the best
  possible confidence bound, no DP noise anywhere.
* ``UC_DP_SLA`` -- the ablation: DP SLAed validation *without* the
  worst-case noise corrections.
* ``SAGE_SLA`` -- the full Sage validator.

Each regime answers "accept this model at this target?" given the raw
per-example test statistics, so runners can evaluate all four on one
trained model.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.validation.accuracy import DPAccuracyValidator
from repro.core.validation.bounds import bernstein_upper_bound, binomial_lower_bound
from repro.core.validation.loss import DPLossValidator
from repro.core.validation.outcomes import Outcome
from repro.dp.mechanisms import laplace_noise, make_rng

__all__ = ["Regime", "accepts_loss", "accepts_accuracy", "accepts"]


class Regime(enum.Enum):
    NO_SLA = "no-sla"
    NP_SLA = "np-sla"
    UC_DP_SLA = "uc-dp-sla"
    SAGE_SLA = "sage-sla"


def accepts_loss(
    regime: Regime,
    test_losses: np.ndarray,
    target: float,
    epsilon: float,
    confidence: float,
    rng: np.random.Generator,
    loss_bound: float = 1.0,
) -> bool:
    """Would this regime accept a model with these per-example test losses?"""
    rng = make_rng(rng)
    losses = np.clip(np.asarray(test_losses, dtype=float).reshape(-1), 0.0, loss_bound)
    n = losses.size
    eta = 1.0 - confidence
    if regime is Regime.NO_SLA:
        noisy_sum = float(np.sum(losses)) + laplace_noise(rng, 2.0 * loss_bound / epsilon)
        noisy_n = max(1.0, n + laplace_noise(rng, 2.0 / epsilon))
        return noisy_sum / noisy_n <= target
    if regime is Regime.NP_SLA:
        bound = bernstein_upper_bound(float(np.mean(losses)), n, eta, loss_bound)
        return bound <= target
    validator = DPLossValidator(target, loss_bound, confidence)
    correct = regime is Regime.SAGE_SLA
    result = validator.accept_test(losses, epsilon, eta / 2.0, rng, correct_for_dp=correct)
    return result.outcome is Outcome.ACCEPT


def accepts_accuracy(
    regime: Regime,
    correct_vector: np.ndarray,
    target: float,
    epsilon: float,
    confidence: float,
    rng: np.random.Generator,
) -> bool:
    """Would this regime accept a model with this 0/1 correctness vector?"""
    rng = make_rng(rng)
    correct_vector = np.asarray(correct_vector, dtype=float).reshape(-1)
    n = correct_vector.size
    eta = 1.0 - confidence
    if regime is Regime.NO_SLA:
        noisy_k = float(np.sum(correct_vector)) + laplace_noise(rng, 2.0 / epsilon)
        noisy_n = max(1.0, n + laplace_noise(rng, 2.0 / epsilon))
        return noisy_k / noisy_n >= target
    if regime is Regime.NP_SLA:
        return binomial_lower_bound(float(np.sum(correct_vector)), n, eta) >= target
    validator = DPAccuracyValidator(target, confidence)
    dp_correct = regime is Regime.SAGE_SLA
    result = validator.accept_test(
        correct_vector, epsilon, eta / 2.0, rng, correct_for_dp=dp_correct
    )
    return result.outcome is Outcome.ACCEPT


def accepts(
    regime: Regime,
    metric: str,
    stats: np.ndarray,
    target: float,
    epsilon: float,
    confidence: float,
    rng: np.random.Generator,
    loss_bound: float = 1.0,
) -> bool:
    """Dispatch on the metric kind ("mse" -> losses, "accuracy" -> 0/1)."""
    if metric == "mse":
        return accepts_loss(regime, stats, target, epsilon, confidence, rng, loss_bound)
    return accepts_accuracy(regime, stats, target, epsilon, confidence, rng)
