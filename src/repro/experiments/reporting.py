"""ASCII rendering of the reproduced tables and figures.

The benchmarks print these so ``pytest benchmarks/ --benchmark-only`` shows
the same rows/series the paper reports, ready to paste into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.regimes import Regime
from repro.workload.simulator import WorkloadReport

__all__ = [
    "format_fig5",
    "format_fig6",
    "format_table2",
    "format_fig7",
    "format_fig8",
]

_REGIME_LABEL = {
    Regime.NO_SLA: "No SLA",
    Regime.NP_SLA: "NP SLA",
    Regime.UC_DP_SLA: "UC DP SLA",
    Regime.SAGE_SLA: "Sage SLA",
}


def _rule(width: int = 72) -> str:
    return "-" * width


def format_fig5(
    title: str, series: Dict[str, List[Tuple[int, float]]], metric: str
) -> str:
    """One Fig. 5 panel: metric vs. training samples per mode."""
    lines = [title, _rule()]
    modes = [m for m in ("np", "dp-large", "dp-small") if m in series]
    header = f"{'samples':>10} " + " ".join(f"{m:>12}" for m in modes)
    lines.append(header)
    ns = sorted({n for m in modes for n, _ in series[m]})
    lookup = {m: dict(series[m]) for m in modes}
    for n in ns:
        cells = []
        for m in modes:
            v = lookup[m].get(n)
            cells.append(f"{v:12.5f}" if v is not None else f"{'-':>12}")
        lines.append(f"{n:>10} " + " ".join(cells))
    lines.append(f"(metric: {metric}; lower is better for mse)")
    return "\n".join(lines)


def format_fig6(
    title: str, required: Dict[Regime, Dict[float, Optional[int]]]
) -> str:
    """One Fig. 6 panel: samples required to ACCEPT per target and regime."""
    lines = [title, _rule()]
    regimes = list(required)
    targets = sorted({t for r in regimes for t in required[r]})
    header = f"{'target':>10} " + " ".join(f"{_REGIME_LABEL[r]:>12}" for r in regimes)
    lines.append(header)
    for t in targets:
        cells = []
        for r in regimes:
            n = required[r].get(t)
            cells.append(f"{n:>12}" if n is not None else f"{'unreach':>12}")
        lines.append(f"{t:>10g} " + " ".join(cells))
    return "\n".join(lines)


def format_table2(
    title: str, rates_by_eta: Dict[float, Dict[Regime, float]]
) -> str:
    """Table 2: target-violation rate of accepted models."""
    lines = [title, _rule()]
    regimes = [Regime.NO_SLA, Regime.NP_SLA, Regime.UC_DP_SLA, Regime.SAGE_SLA]
    header = f"{'eta':>6} " + " ".join(f"{_REGIME_LABEL[r]:>12}" for r in regimes)
    lines.append(header)
    for eta, rates in sorted(rates_by_eta.items()):
        cells = []
        for r in regimes:
            v = rates.get(r)
            cells.append(f"{v:12.4f}" if v == v else f"{'n/a':>12}")  # NaN check
        lines.append(f"{eta:>6g} " + " ".join(cells))
    return "\n".join(lines)


def format_fig7(title: str, curves: Dict[str, List[Tuple[int, float]]]) -> str:
    """Fig. 7: block vs. query composition MSE curves."""
    lines = [title, _rule()]
    keys = sorted(curves)
    ns = sorted({n for k in keys for n, _ in curves[k]})
    lookup = {k: dict(curves[k]) for k in keys}
    lines.append(f"{'samples':>10} " + " ".join(f"{k:>14}" for k in keys))
    for n in ns:
        cells = []
        for k in keys:
            v = lookup[k].get(n)
            cells.append(f"{v:14.5f}" if v is not None else f"{'-':>14}")
        lines.append(f"{n:>10} " + " ".join(cells))
    return "\n".join(lines)


def format_fig8(
    title: str, reports: Dict[str, Dict[float, WorkloadReport]]
) -> str:
    """Fig. 8: average model release time (hours) under load."""
    lines = [title, _rule()]
    strategies = list(reports)
    rates = sorted({r for s in strategies for r in reports[s]})
    lines.append(f"{'rate':>6} " + " ".join(f"{s:>18}" for s in strategies))
    for rate in rates:
        cells = []
        for s in strategies:
            rep = reports[s].get(rate)
            if rep is None:
                cells.append(f"{'-':>18}")
            else:
                cells.append(f"{rep.avg_release_time:10.1f}h ({rep.release_fraction:4.2f})")
        lines.append(f"{rate:>6g} " + " ".join(cells))
    lines.append("(value: avg release time, censored at horizon; parens: release fraction)")
    return "\n".join(lines)
