"""Workload arrival processes (§5.4).

The end-to-end evaluation draws pipeline inter-arrival times from a Gamma
distribution and pipeline sample complexities from a power law, then picks a
Table 1 configuration matching the drawn complexity.  This module implements
those samplers plus the requirement curve that maps a granted epsilon to the
data a pipeline needs (the privacy-utility exchange rate measured in Fig. 5:
roughly inverse proportionality between epsilon and sample size).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError

__all__ = ["GammaArrivals", "PowerLawComplexity", "requirement_at_epsilon"]


@dataclass
class GammaArrivals:
    """Gamma-distributed pipeline inter-arrival times.

    ``rate`` is the mean number of pipelines per hour; ``shape`` controls
    burstiness (shape 1 = Poisson-like, larger = more regular).
    """

    rate: float
    shape: float = 2.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise SimulationError(f"rate must be > 0, got {self.rate}")
        if self.shape <= 0:
            raise SimulationError(f"shape must be > 0, got {self.shape}")

    def sample_interarrival(self, rng: np.random.Generator) -> float:
        """Hours until the next pipeline arrives (mean 1/rate)."""
        scale = 1.0 / (self.rate * self.shape)
        return float(rng.gamma(self.shape, scale))

    def arrival_times(self, horizon_hours: float, rng: np.random.Generator) -> np.ndarray:
        """All arrival times in [0, horizon)."""
        times = []
        t = self.sample_interarrival(rng)
        while t < horizon_hours:
            times.append(t)
            t += self.sample_interarrival(rng)
        return np.array(times)


@dataclass
class PowerLawComplexity:
    """Truncated Pareto sample-complexity sampler.

    Returns the number of samples a pipeline needs *at epsilon = 1* -- small
    statistics pipelines are common, heavyweight NN pipelines rare, matching
    the paper's power-law workload mix.

    Default bounds are calibrated to the stream rate (16K points/hour on
    Taxi): a release costs about ``n_req / block_points`` block-epsilons
    whatever budget it picks (less data needs more epsilon and vice versa),
    so the mean requirement ~10K points makes the workload saturate just
    above 0.7 pipelines/hour -- the knee Fig. 8 shows for Sage.
    """

    n_min: float = 2_000.0
    n_max: float = 1_000_000.0
    alpha: float = 1.1

    def __post_init__(self) -> None:
        if not 0 < self.n_min < self.n_max:
            raise SimulationError(
                f"need 0 < n_min < n_max, got {self.n_min}, {self.n_max}"
            )
        if self.alpha <= 0:
            raise SimulationError(f"alpha must be > 0, got {self.alpha}")

    def sample(self, rng: np.random.Generator) -> float:
        """Inverse-CDF draw from a Pareto(alpha) truncated to [n_min, n_max]."""
        u = rng.random()
        a = self.alpha
        lo, hi = self.n_min ** -a, self.n_max ** -a
        return float((lo - u * (lo - hi)) ** (-1.0 / a))

    def sample_batch(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """``count`` draws in one vectorized inverse-CDF pass.

        Consumes the same underlying uniforms as ``count`` successive
        :meth:`sample` calls, so seeded simulations produce the same
        workloads either way (values agree to the last ulp of ``pow``).
        """
        if count < 0:
            raise SimulationError(f"count must be >= 0, got {count}")
        u = rng.random(count)
        a = self.alpha
        lo, hi = self.n_min ** -a, self.n_max ** -a
        return (lo - u * (lo - hi)) ** (-1.0 / a)


def requirement_at_epsilon(
    n_at_eps1: float, epsilon: float, exchange_exponent: float = 1.0
) -> float:
    """Samples needed when trained with ``epsilon`` instead of 1.

    Fig. 5 shows DP models closing the gap to non-private ones as data
    grows, with small-epsilon curves shifted right by roughly 1/epsilon --
    the theoretical exchange rate of [Kasiviswanathan et al. 2011] the paper
    cites in §3.3.  ``exchange_exponent`` generalizes: requirement =
    n_at_eps1 * (1/epsilon)^exponent.
    """
    if n_at_eps1 <= 0:
        raise SimulationError(f"n_at_eps1 must be > 0, got {n_at_eps1}")
    if epsilon <= 0:
        raise SimulationError(f"epsilon must be > 0, got {epsilon}")
    if exchange_exponent < 0:
        raise SimulationError("exchange_exponent must be >= 0")
    return n_at_eps1 * (1.0 / epsilon) ** exchange_exponent
