"""Prior-work composition baselines for the Fig. 8 comparison (§3.2, §5.4).

Two ways the pre-Sage literature would run the same workload:

* :class:`QueryCompositionScheduler` -- the "restructure queries per block"
  alternative: the stream is still cut into blocks and budgets are tracked
  per block, but a training query over w blocks must run as w independent
  sub-queries whose noisy results are aggregated.  Independent noise draws
  inflate the effective noise by sqrt(w), so the samples needed to hit a
  target inflate accordingly: with block size B and per-block allocation a,
  release needs  w * B >= n_req * sqrt(w) / a,  i.e.
  w >= (n_req / (a * B))^2 blocks -- *quadratic* in what block composition
  needs (w >= n_req / (a * B)).  This is the degradation Fig. 7 measures
  directly.

* :class:`StreamingCompositionScheduler` -- online streaming DP: every
  arriving point is consumed by exactly one waiting pipeline and discarded
  (no reuse, R1 violated).  Each pipeline gets the full epsilon_g on its
  private share of the stream, but waiting pipelines must split the arrival
  rate, so queueing explodes with load.

Both schedulers share the simulator's pipeline/arrival bookkeeping via the
tiny :class:`PendingPipeline` record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SimulationError

__all__ = ["PendingPipeline", "QueryCompositionScheduler", "StreamingCompositionScheduler"]


@dataclass
class PendingPipeline:
    """One pipeline waiting inside a baseline scheduler."""

    name: str
    n_at_eps1: float
    submit_hour: float
    release_hour: Optional[float] = None
    # streaming: points exclusively consumed so far
    points_consumed: float = 0.0
    # query composition: per-block epsilon allocation actually granted
    allocations: Dict[int, float] = field(default_factory=dict)

    @property
    def released(self) -> bool:
        return self.release_hour is not None


class QueryCompositionScheduler:
    """Per-block sub-query training under query-level accounting."""

    def __init__(self, epsilon_global: float, block_points: float) -> None:
        if epsilon_global <= 0:
            raise SimulationError("epsilon_global must be > 0")
        if block_points <= 0:
            raise SimulationError("block_points must be > 0")
        self.epsilon_global = epsilon_global
        self.block_points = block_points
        self._block_remaining: Dict[int, float] = {}
        self._pending: List[PendingPipeline] = []
        self._next_block = 0

    def submit(self, pipeline: PendingPipeline) -> None:
        self._pending.append(pipeline)

    def step(self, hour: float) -> List[PendingPipeline]:
        """One hour: a new block arrives; divide its budget; try releases."""
        self._block_remaining[self._next_block] = self.epsilon_global
        new_block = self._next_block
        self._next_block += 1

        waiting = [p for p in self._pending if not p.released]
        if waiting:
            share = self.epsilon_global / len(waiting)
            for p in waiting:
                p.allocations[new_block] = share
                self._block_remaining[new_block] -= share

        released = []
        for p in waiting:
            if self._try_release(p, hour):
                released.append(p)
        return released

    def _try_release(self, p: PendingPipeline, hour: float) -> bool:
        """Release when some subset of held blocks is feasible.

        Sub-queries over w blocks add w independent noise draws, inflating
        the effective noise by sqrt(w); with per-block allocation a, the
        pipeline compensates with data, releasing when
        ``w * B >= n_req * sqrt(w) / a``, i.e. ``w >= (n_req / (a B))^2``.
        The pipeline picks its best option: sort its allocations descending
        and test every prefix (larger prefixes have more blocks but a lower
        usable per-block epsilon, since all sub-queries run at the minimum).
        """
        if not p.allocations:
            return False
        ordered = sorted(p.allocations.values(), reverse=True)
        for w, a in enumerate(ordered, start=1):
            if a <= 0:
                break
            if w >= (p.n_at_eps1 / (a * self.block_points)) ** 2:
                p.release_hour = hour
                return True
        return False

    @property
    def pipelines(self) -> List[PendingPipeline]:
        return list(self._pending)


class StreamingCompositionScheduler:
    """Online streaming DP: points partitioned among waiting pipelines.

    ``single_pass_penalty`` models the data inefficiency of never revisiting
    a point: Table 1's pipelines take 3-5 epochs with minibatch subsampling
    amplification, neither of which streaming DP permits, so reaching the
    same quality needs roughly an order of magnitude more data (this is the
    measured-profile penalty behind Fig. 8's streaming curve).
    """

    def __init__(
        self,
        epsilon_global: float,
        block_points: float,
        single_pass_penalty: float = 10.0,
    ) -> None:
        if epsilon_global <= 0:
            raise SimulationError("epsilon_global must be > 0")
        if block_points <= 0:
            raise SimulationError("block_points must be > 0")
        if single_pass_penalty < 1.0:
            raise SimulationError("single_pass_penalty must be >= 1")
        self.epsilon_global = epsilon_global
        self.block_points = block_points
        self.single_pass_penalty = single_pass_penalty
        self._pending: List[PendingPipeline] = []

    def submit(self, pipeline: PendingPipeline) -> None:
        self._pending.append(pipeline)

    def step(self, hour: float) -> List[PendingPipeline]:
        """One hour of stream split evenly among the waiting pipelines."""
        waiting = [p for p in self._pending if not p.released]
        if not waiting:
            return []
        share = self.block_points / len(waiting)
        released = []
        for p in waiting:
            p.points_consumed += share
            # Full epsilon_global applies to each pipeline's exclusive data,
            # but every point is seen exactly once.
            needed = p.n_at_eps1 * self.single_pass_penalty / self.epsilon_global
            if p.points_consumed >= needed:
                p.release_hour = hour
                released.append(p)
        return released

    @property
    def pipelines(self) -> List[PendingPipeline]:
        return list(self._pending)
