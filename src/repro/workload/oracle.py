"""Abstract (count-based) stream source and requirement-oracle pipelines.

The §5.4 workload simulation cares about *when* pipelines release, not what
they compute, so models are replaced by a requirement oracle: a pipeline
ACCEPTs once its assembled window holds at least ``requirement_at_epsilon(n1,
epsilon)`` samples.  The oracle pipeline plugs into the **real** Sage
platform -- sessions, allocator, accountant and all -- so Fig. 8's block
strategies exercise exactly the production code path, just with the ML
replaced by its sample-complexity profile.

Record counts are expressed in units of ``scale`` real points (default 1000)
so hundreds of simulated hours stay memory-light.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import PipelineRun
from repro.core.validation.outcomes import Outcome, ValidationResult
from repro.data.stream import StreamBatch
from repro.dp.budget import PrivacyBudget
from repro.errors import SimulationError
from repro.workload.arrivals import requirement_at_epsilon

__all__ = ["CountStreamSource", "OraclePipeline"]


class CountStreamSource:
    """A stream whose batches carry only (scaled) record counts.

    ``points_per_hour`` is in *real* points; each generated row stands for
    ``scale`` of them.  Features are zero-width so blocks cost almost nothing
    to store while flowing through the ordinary ingestion path.
    """

    label_range = (0.0, 1.0)
    feature_dim = 0

    def __init__(self, points_per_hour: int, scale: int = 1000) -> None:
        if points_per_hour <= 0:
            raise SimulationError(f"points_per_hour must be > 0, got {points_per_hour}")
        if scale <= 0:
            raise SimulationError(f"scale must be > 0, got {scale}")
        if points_per_hour < scale:
            raise SimulationError("points_per_hour must be >= scale")
        self.real_points_per_hour = points_per_hour
        self.scale = scale
        self.points_per_hour = max(1, points_per_hour // scale)

    def generate_interval(
        self, start_hour: float, hours: float, rng: np.random.Generator
    ) -> StreamBatch:
        n = max(1, int(round(self.points_per_hour * hours)))
        timestamps = np.sort(rng.uniform(start_hour, start_hour + hours, size=n))
        return StreamBatch(
            X=np.zeros((n, 0)),
            y=np.zeros(n),
            timestamps=timestamps,
            user_ids=np.zeros(n, dtype=np.int64),
        )


@dataclass
class OraclePipeline:
    """ACCEPTs iff the window holds ``requirement_at_epsilon(n_at_eps1, eps)``.

    ``n_at_eps1`` is in real points; ``scale`` must match the source's.
    The granted budget's *training share* is what a real pipeline would
    train with, but the requirement curve is calibrated end-to-end (Fig. 5
    measures whole-pipeline sample complexity), so the full epsilon is used.
    """

    name: str
    n_at_eps1: float
    scale: int = 1000
    exchange_exponent: float = 1.0

    def run(
        self,
        batch: StreamBatch,
        budget: PrivacyBudget,
        rng: np.random.Generator,
        correct_for_dp: bool = True,
    ) -> PipelineRun:
        real_points = len(batch) * self.scale
        needed = requirement_at_epsilon(
            self.n_at_eps1, budget.epsilon, self.exchange_exponent
        )
        outcome = Outcome.ACCEPT if real_points >= needed else Outcome.RETRY
        validation = ValidationResult(
            outcome,
            PrivacyBudget(budget.epsilon, 0.0),
            {"real_points": real_points, "needed": needed},
        )
        return PipelineRun(
            name=self.name,
            outcome=outcome,
            validation=validation,
            budget_charged=budget,
            model=None,
            train_size=real_points,
        )
