"""Multi-pipeline workload simulation (Fig. 8) and prior-work baselines."""

from repro.workload.arrivals import (
    GammaArrivals,
    PowerLawComplexity,
    requirement_at_epsilon,
)
from repro.workload.baselines import (
    PendingPipeline,
    QueryCompositionScheduler,
    StreamingCompositionScheduler,
)
from repro.workload.oracle import CountStreamSource, OraclePipeline
from repro.workload.simulator import (
    STRATEGIES,
    WorkloadConfig,
    WorkloadReport,
    WorkloadSimulator,
    sweep_arrival_rates,
)

__all__ = [
    "GammaArrivals",
    "PowerLawComplexity",
    "requirement_at_epsilon",
    "PendingPipeline",
    "QueryCompositionScheduler",
    "StreamingCompositionScheduler",
    "CountStreamSource",
    "OraclePipeline",
    "STRATEGIES",
    "WorkloadConfig",
    "WorkloadReport",
    "WorkloadSimulator",
    "sweep_arrival_rates",
]
