"""The Fig. 8 end-to-end workload simulator.

Drives one strategy over a discrete-hour clock:

* ``block-conserve`` (Sage) and ``block-aggressive`` run **the real
  platform** (`repro.core.platform.Sage`) with count-based sources and
  requirement-oracle pipelines;
* ``query`` and ``streaming`` run the prior-work schedulers of
  :mod:`repro.workload.baselines`.

Output is a :class:`WorkloadReport` with the paper's headline metric --
average model release time (hours from submission to release) -- plus
queueing diagnostics.  Pipelines still unreleased when the horizon ends are
censored at the horizon (their true release time is at least that), which
is how the "off the charts" baselines show up as large finite numbers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.adaptive import AdaptiveConfig
from repro.core.platform import Sage
from repro.errors import SimulationError
from repro.workload.arrivals import GammaArrivals, PowerLawComplexity
from repro.workload.baselines import (
    PendingPipeline,
    QueryCompositionScheduler,
    StreamingCompositionScheduler,
)
from repro.workload.oracle import CountStreamSource, OraclePipeline

__all__ = ["WorkloadConfig", "WorkloadReport", "WorkloadSimulator", "STRATEGIES"]

STRATEGIES = ("block-conserve", "block-aggressive", "query", "streaming")


@dataclass(frozen=True)
class WorkloadConfig:
    """Simulation knobs; defaults follow §5.4's Taxi setup (scaled)."""

    strategy: str = "block-conserve"
    arrival_rate: float = 0.3           # pipelines per hour
    horizon_hours: float = 500.0
    points_per_hour: int = 16_000       # one block per hour
    epsilon_global: float = 1.0
    delta_global: float = 1e-6
    complexity: PowerLawComplexity = field(default_factory=PowerLawComplexity)
    arrival_shape: float = 2.0
    epsilon_start: float = 1.0 / 16.0
    count_scale: int = 1000
    max_attempts: int = 64
    streaming_penalty: float = 10.0
    # Data <-> epsilon exchange: requirement = n1 * (1/eps)^gamma.  The
    # linear rate (gamma = 1) is the theoretical exchange of
    # [Kasiviswanathan et al. 2011] that §3.3 cites.
    exchange_exponent: float = 1.0
    # Hourly commit granularity for the block strategies: True settles each
    # simulated hour through one batched request_many (the propose/settle
    # protocol); False drives the same protocol with immediate per-proposal
    # charges.  Trajectories are identical either way (tested property).
    batched_advance: bool = True
    # Sharded block accounting for the block strategies: 0 keeps the
    # single-store accountant; N >= 1 partitions the ledger store into N
    # shards under ``shard_policy`` ("hash" or "range").  Trajectories are
    # byte-identical at any shard count (tested property).
    n_shards: int = 0
    shard_policy: str = "hash"
    # Worker threads for the parallel propose phase of each batched hour
    # (0 = sequential propose).  Identical trajectories either way.
    propose_workers: int = 0
    # Optional ``repro.obs.Telemetry`` threaded through to the platform for
    # the block strategies (baselines have no platform to instrument).
    # Excluded from config equality: two runs with the same knobs are the
    # same experiment whether or not someone was watching.
    telemetry: Optional[object] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise SimulationError(
                f"unknown strategy {self.strategy!r}; pick one of {STRATEGIES}"
            )
        if self.horizon_hours <= 0:
            raise SimulationError("horizon_hours must be > 0")
        if self.n_shards < 0:
            raise SimulationError("n_shards must be >= 0")
        if self.shard_policy not in ("hash", "range"):
            raise SimulationError(
                f"unknown shard_policy {self.shard_policy!r}; 'hash' or 'range'"
            )


@dataclass
class WorkloadReport:
    """Release statistics for one simulated run."""

    strategy: str
    arrival_rate: float
    submitted: int
    released: int
    release_times: List[float]          # per released pipeline, hours
    censored_times: List[float]         # waiting pipelines, horizon - submit

    @property
    def avg_release_time(self) -> float:
        """Mean over released + censored (censoring makes this a lower bound
        for overloaded strategies, matching the paper's off-chart rendering)."""
        times = self.release_times + self.censored_times
        return float(np.mean(times)) if times else 0.0

    @property
    def avg_release_time_released_only(self) -> float:
        return float(np.mean(self.release_times)) if self.release_times else float("inf")

    @property
    def release_fraction(self) -> float:
        return self.released / self.submitted if self.submitted else 1.0


class WorkloadSimulator:
    """Runs one (strategy, arrival_rate) cell of Fig. 8."""

    def __init__(self, config: WorkloadConfig, seed: Optional[int] = None) -> None:
        self.config = config
        self.seed = seed
        # The platform driven by the most recent block-strategy run
        # (diagnostics / equivalence testing); None for baseline strategies.
        self.last_platform: Optional[Sage] = None

    # ------------------------------------------------------------------
    def run(self) -> WorkloadReport:
        cfg = self.config
        rng = np.random.default_rng(self.seed)
        arrivals = GammaArrivals(cfg.arrival_rate, cfg.arrival_shape)
        arrival_times = arrivals.arrival_times(cfg.horizon_hours, rng)
        # One vectorized draw (same uniform stream as per-arrival sampling).
        complexities = cfg.complexity.sample_batch(len(arrival_times), rng)

        if cfg.strategy.startswith("block-"):
            return self._run_block(arrival_times, complexities, rng)
        return self._run_baseline(arrival_times, complexities)

    # ------------------------------------------------------------------
    def _run_block(self, arrival_times, complexities, rng) -> WorkloadReport:
        cfg = self.config
        source = CountStreamSource(cfg.points_per_hour, scale=cfg.count_scale)
        accountant_factory = None
        if cfg.n_shards:
            from repro.core.sharding import sharded_accountant_factory

            accountant_factory = sharded_accountant_factory(
                cfg.n_shards, policy=cfg.shard_policy
            )
        sage = Sage(
            source,
            epsilon_global=cfg.epsilon_global,
            delta_global=cfg.delta_global,
            block_hours=1.0,
            seed=self.seed,
            batched_advance=cfg.batched_advance,
            accountant_factory=accountant_factory,
            propose_workers=cfg.propose_workers,
            telemetry=cfg.telemetry,
        )
        self.last_platform = sage
        strategy = "aggressive" if cfg.strategy == "block-aggressive" else "conserve"
        adaptive = AdaptiveConfig(
            epsilon_start=cfg.epsilon_start,
            epsilon_cap=cfg.epsilon_global,
            min_window_blocks=1,
            max_attempts=cfg.max_attempts,
            strategy=strategy,
        )

        entries = []
        next_arrival = 0
        hours = int(np.ceil(cfg.horizon_hours))
        try:
            for hour in range(hours):
                while next_arrival < len(arrival_times) and arrival_times[next_arrival] <= hour:
                    pipeline = OraclePipeline(
                        name=f"p{next_arrival}",
                        n_at_eps1=float(complexities[next_arrival]),
                        scale=cfg.count_scale,
                        exchange_exponent=cfg.exchange_exponent,
                    )
                    entries.append(
                        (arrival_times[next_arrival], sage.submit(pipeline, adaptive))
                    )
                    next_arrival += 1
                sage.advance(1.0)
        finally:
            # Release worker threads even on a failed run; the platform
            # stays readable (and even drivable -- pools re-create on
            # demand) via ``last_platform``.
            sage.close()

        release_times, censored = [], []
        for submit_time, entry in entries:
            if entry.release_time_hours is not None:
                release_times.append(entry.release_time_hours - submit_time)
            else:
                censored.append(cfg.horizon_hours - submit_time)
        return WorkloadReport(
            strategy=cfg.strategy,
            arrival_rate=cfg.arrival_rate,
            submitted=len(entries),
            released=len(release_times),
            release_times=release_times,
            censored_times=censored,
        )

    # ------------------------------------------------------------------
    def _run_baseline(self, arrival_times, complexities) -> WorkloadReport:
        cfg = self.config
        if cfg.strategy == "query":
            scheduler = QueryCompositionScheduler(
                cfg.epsilon_global, float(cfg.points_per_hour)
            )
        else:
            scheduler = StreamingCompositionScheduler(
                cfg.epsilon_global,
                float(cfg.points_per_hour),
                single_pass_penalty=cfg.streaming_penalty,
            )

        pipelines: List[PendingPipeline] = []
        next_arrival = 0
        hours = int(np.ceil(cfg.horizon_hours))
        for hour in range(hours):
            while next_arrival < len(arrival_times) and arrival_times[next_arrival] <= hour:
                p = PendingPipeline(
                    name=f"p{next_arrival}",
                    n_at_eps1=float(complexities[next_arrival]),
                    submit_hour=float(arrival_times[next_arrival]),
                )
                pipelines.append(p)
                scheduler.submit(p)
                next_arrival += 1
            scheduler.step(float(hour))

        release_times, censored = [], []
        for p in pipelines:
            if p.released:
                release_times.append(p.release_hour - p.submit_hour)
            else:
                censored.append(cfg.horizon_hours - p.submit_hour)
        return WorkloadReport(
            strategy=cfg.strategy,
            arrival_rate=cfg.arrival_rate,
            submitted=len(pipelines),
            released=len(release_times),
            release_times=release_times,
            censored_times=censored,
        )


def sweep_arrival_rates(
    rates,
    base_config: WorkloadConfig,
    seed: int = 0,
) -> Dict[float, WorkloadReport]:
    """Run the same strategy across arrival rates (one Fig. 8 curve)."""
    reports = {}
    for i, rate in enumerate(rates):
        cfg = dataclasses.replace(base_config, arrival_rate=float(rate))
        reports[float(rate)] = WorkloadSimulator(cfg, seed=seed + i).run()
    return reports
