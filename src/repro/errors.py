"""Exception hierarchy for the Sage reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate on the specific failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class InvalidBudgetError(ReproError, ValueError):
    """A privacy budget was constructed or combined with invalid parameters.

    Raised for negative epsilon, delta outside [0, 1], or arithmetic that
    would produce such a budget (e.g. subtracting more than is available).
    """


class BudgetExceededError(ReproError):
    """A requested charge would push a ledger past its global (eps_g, delta_g)."""

    def __init__(self, message: str, block_id: object = None) -> None:
        super().__init__(message)
        self.block_id = block_id


class BlockRetiredError(BudgetExceededError):
    """An operation touched a block whose privacy budget is exhausted."""


class AccessDeniedError(ReproError):
    """Stream-level ACLs or the Sage access-control layer denied a request."""


class PipelineError(ReproError):
    """A training pipeline failed (mis-specified callbacks, stage errors)."""


class ValidationError(ReproError):
    """An SLAed validator was invoked with inconsistent arguments."""


class CalibrationError(ReproError):
    """Noise calibration failed (no noise multiplier satisfies the target)."""


class DataError(ReproError, ValueError):
    """Malformed dataset, stream, or block inputs."""


class SimulationError(ReproError):
    """The workload simulator reached an inconsistent state."""


class DurabilityError(ReproError):
    """Base class for WAL/snapshot/recovery failures (``repro.core.durability``)."""


class WalCorruptionError(DurabilityError):
    """A write-ahead-log record failed its integrity check.

    Raised for a bad file magic or a complete record whose CRC32 does not
    match its payload; the message names the offending file, byte offset,
    and record index.  (An *incomplete* trailing record -- a torn tail from
    a crash mid-append -- is tolerated by the reader, not an error.)
    """

    def __init__(self, path, offset: int, reason: str, record: int = -1) -> None:
        where = f"{path} @ byte {offset}"
        if record >= 0:
            where += f" (record {record})"
        super().__init__(f"corrupt WAL: {where}: {reason}")
        self.path = path
        self.offset = offset
        self.record = record


class SnapshotMismatchError(DurabilityError):
    """A snapshot file is unreadable or incompatible with this platform.

    Covers integrity failures (bad magic/CRC, naming the file and offset)
    and configuration mismatches (schema width, global budget) between the
    snapshot and the platform trying to restore it.
    """


class RecoveryError(DurabilityError):
    """Recovery could not reconstruct the recorded state.

    Raised when WAL replay diverges from the log (missing pipelines, block
    keys or schema width that do not match the record, a post-hour digest
    mismatch) or when recovery preconditions are violated (non-fresh
    platform, un-recovered WAL directory).
    """
