"""Command-line interface: regenerate any table or figure directly.

Usage::

    python -m repro fig5 taxi-lr              # one Fig. 5 panel
    python -m repro fig6 criteo-lg            # samples-to-ACCEPT panel
    python -m repro table2 taxi-lr            # violation-rate rows
    python -m repro fig7                      # block vs query composition
    python -m repro fig8 --rates 0.1 0.5      # workload sweep
    python -m repro inventory                 # Table 1 configurations
    python -m repro wal-demo --wal-dir state  # durable workload + charge log
    python -m repro recover --wal-dir state   # rebuild from WAL + snapshots
    python -m repro obs-report                # drive + privacy/throughput metrics
    python -m repro trace --out drive.json    # Chrome trace of a full drive
    python -m repro profile                   # wall-clock phase breakdown
    python -m repro perf-diff a.json b.json   # two profiles side by side
    python -m repro perf-report --check       # perf trajectory + regression gate

The CLI is a thin veneer over ``repro.experiments``; it exists so a
downstream user can reproduce a single artifact without writing a script.
Schedules default to quick versions; pass ``--full`` for longer sweeps.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]

_QUICK_SCHEDULE = (4_000, 16_000, 64_000, 128_000)
_FULL_SCHEDULE = (4_000, 8_000, 16_000, 32_000, 64_000, 128_000, 256_000)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of the Sage paper (SOSP 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("fig5", "DP impact on model quality vs sample size"),
        ("fig6", "samples required to ACCEPT per target and regime"),
        ("table2", "violation rates of accepted models"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument(
            "config",
            choices=["taxi-lr", "taxi-nn", "criteo-lg", "criteo-nn"],
            help="Table 1 pipeline configuration",
        )
        p.add_argument("--full", action="store_true", help="longer sample schedule")
        p.add_argument("--seeds", type=int, default=1, help="number of seeds")

    p7 = sub.add_parser("fig7", help="block vs query composition (Taxi LR)")
    p7.add_argument("--full", action="store_true")

    p8 = sub.add_parser("fig8", help="release time under load")
    p8.add_argument("--rates", type=float, nargs="+", default=[0.1, 0.3, 0.7])
    p8.add_argument("--horizon", type=float, default=300.0)

    sub.add_parser("inventory", help="print the Table 1 configurations")

    pw = sub.add_parser(
        "wal-demo",
        help="run a durable oracle workload, optionally dying at a crash point",
    )
    pw.add_argument("--wal-dir", required=True, help="charge log + snapshot directory")
    pw.add_argument("--hours", type=int, default=6, help="hours of stream time")
    pw.add_argument("--pipelines", type=int, default=3, help="oracle pipelines")
    pw.add_argument("--seed", type=int, default=5)
    pw.add_argument(
        "--snapshot-every", type=int, default=0, help="snapshot cadence (0 = never)"
    )
    pw.add_argument(
        "--shards", type=int, default=0, help="accountant shards (0 = single store)"
    )
    pw.add_argument(
        "--crash-at",
        default=None,
        metavar="POINT",
        help="simulate a process death at this named crash point "
        "(see repro.core.faults.CRASH_POINTS)",
    )
    pw.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="trace the drive and write Chrome trace-event JSON here",
    )
    pw.add_argument(
        "--profile-out",
        default=None,
        metavar="PATH",
        help="wall-clock profile the drive and write its Chrome trace JSON here",
    )

    pr = sub.add_parser(
        "recover", help="rebuild a wal-demo platform from its log and snapshots"
    )
    pr.add_argument("--wal-dir", required=True, help="directory wal-demo wrote")
    pr.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="trace the recovery replay and write Chrome trace-event JSON here",
    )
    pr.add_argument(
        "--profile-out",
        default=None,
        metavar="PATH",
        help="wall-clock profile the replay and write its Chrome trace JSON here",
    )

    po = sub.add_parser(
        "obs-report",
        help="drive a demo workload with telemetry and print its metrics",
    )
    po.add_argument("--hours", type=int, default=6, help="hours of stream time")
    po.add_argument("--pipelines", type=int, default=3, help="oracle pipelines")
    po.add_argument("--seed", type=int, default=5)
    po.add_argument(
        "--shards", type=int, default=0, help="accountant shards (0 = single store)"
    )
    po.add_argument(
        "--format",
        choices=["json", "prometheus"],
        default="json",
        help="metrics output format",
    )

    pt = sub.add_parser(
        "trace",
        help="drive a sharded durable demo hour-by-hour and write a Chrome "
        "trace (load the file in Perfetto / chrome://tracing)",
    )
    pt.add_argument("--out", required=True, metavar="PATH", help="trace file to write")
    pt.add_argument("--hours", type=int, default=6, help="hours of stream time")
    pt.add_argument("--pipelines", type=int, default=3, help="oracle pipelines")
    pt.add_argument("--seed", type=int, default=5)
    pt.add_argument("--shards", type=int, default=4, help="accountant shards")
    pt.add_argument(
        "--snapshot-every", type=int, default=2, help="snapshot cadence (0 = never)"
    )

    pp = sub.add_parser(
        "profile",
        help="drive a sharded durable demo under the wall profiler and "
        "print the per-phase breakdown and per-hour critical paths",
    )
    pp.add_argument("--hours", type=int, default=6, help="hours of stream time")
    pp.add_argument("--pipelines", type=int, default=3, help="oracle pipelines")
    pp.add_argument("--seed", type=int, default=5)
    pp.add_argument("--shards", type=int, default=4, help="accountant shards")
    pp.add_argument(
        "--snapshot-every", type=int, default=2, help="snapshot cadence (0 = never)"
    )
    pp.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the profile as Chrome trace-event JSON",
    )
    pp.add_argument(
        "--flame-out",
        default=None,
        metavar="PATH",
        help="also write collapsed stacks (flamegraph.pl / speedscope input)",
    )

    pd = sub.add_parser(
        "perf-diff",
        help="diff two exported traces/profiles (Chrome trace JSON) per phase",
    )
    pd.add_argument("before", help="baseline trace/profile JSON")
    pd.add_argument("after", help="comparison trace/profile JSON")

    pf = sub.add_parser(
        "perf-report",
        help="render the bench perf trajectory from results/perf_history.jsonl",
    )
    pf.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="history file (default: results/perf_history.jsonl)",
    )
    pf.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any case's latest run fell out of its tolerance band",
    )
    pf.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="fraction of the baseline median a latest speedup may drop to "
        "(default 0.35)",
    )
    return parser


def _run_table(args) -> object:
    from repro.experiments import MODEL_CONFIGS, collect_training_runs

    config = MODEL_CONFIGS[args.config]
    schedule = _FULL_SCHEDULE if args.full else _QUICK_SCHEDULE
    return collect_training_runs(
        config,
        schedule=schedule,
        seeds=tuple(range(args.seeds)),
        eval_size=25_000,
    )


def _cmd_fig5(args) -> str:
    from repro.experiments import fig5_series, format_fig5

    table = _run_table(args)
    metric = table.config.metric
    return format_fig5(f"Fig 5 ({args.config})", fig5_series(table), metric)


def _cmd_fig6(args) -> str:
    from repro.experiments import fig6_required_samples, format_fig6

    table = _run_table(args)
    targets = table.config.targets
    required = fig6_required_samples(table, targets)
    return format_fig6(f"Fig 6 ({args.config})", required)


def _cmd_table2(args) -> str:
    from repro.experiments import format_table2, table2_violation_rates

    table = _run_table(args)
    targets = table.config.targets[-3:]  # the reachable end of the range
    rates = {
        eta: table2_violation_rates(table, targets=targets, eta=eta)
        for eta in (0.01, 0.05)
    }
    return format_table2(f"Table 2 ({args.config})", rates)


def _cmd_fig7(args) -> str:
    from repro.experiments import format_fig7
    from repro.experiments.runners import run_fig7_lr

    sizes = _FULL_SCHEDULE if args.full else _QUICK_SCHEDULE
    curves = run_fig7_lr(sample_sizes=sizes, block_sizes=(4_000, 20_000), seeds=(0,))
    return format_fig7("Fig 7a (Taxi LR)", curves)


def _cmd_fig8(args) -> str:
    from repro.experiments import format_fig8, run_fig8

    reports = run_fig8(rates=tuple(args.rates), horizon_hours=args.horizon)
    return format_fig8("Fig 8 (Taxi-scale workload)", reports)


def _cmd_inventory(args) -> str:
    from repro.experiments import MODEL_CONFIGS

    lines = ["Table 1: experimental training pipelines", "-" * 64]
    for name, config in MODEL_CONFIGS.items():
        lines.append(
            f"{name:>10}: {config.algorithm}, metric={config.metric}, "
            f"eps in {{{config.epsilon_large}, {config.epsilon_small}}}, "
            f"targets {config.targets[0]}..{config.targets[-1]}"
        )
    lines.append(f"{'stats':>10}: Avg.Speed x3 (taxi), Counts x26 (criteo)")
    return "\n".join(lines)


def _write_json_atomic(path, payload) -> None:
    """Land the JSON in one ``os.replace`` so a crash mid-write leaves
    either the old manifest or the new one, never a torn file."""
    import json
    import os

    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, path)


def _demo_platform(manifest, wal_dir, telemetry=None):
    from repro.core.platform import Sage
    from repro.core.sharding import sharded_accountant_factory
    from repro.workload.oracle import CountStreamSource

    kwargs = {}
    if manifest["shards"]:
        kwargs["accountant_factory"] = sharded_accountant_factory(manifest["shards"])
    return Sage(
        CountStreamSource(4000, scale=1000),
        seed=manifest["seed"],
        wal_dir=wal_dir,
        snapshot_every=manifest["snapshot_every"],
        telemetry=telemetry,
        **kwargs,
    )


def _demo_pipelines(manifest):
    from repro.core.adaptive import AdaptiveConfig
    from repro.workload.oracle import OraclePipeline

    return [
        (
            OraclePipeline(name=f"demo-{i}", n_at_eps1=target),
            AdaptiveConfig(max_attempts=16),
        )
        for i, target in enumerate(manifest["targets"])
    ]


def _maybe_telemetry(trace_out, profile_out=None):
    """A fresh :class:`~repro.obs.Telemetry` when a trace or wall-clock
    profile was requested (the profiler rides alongside the tracer)."""
    if not trace_out and not profile_out:
        return None
    from repro.obs import Telemetry, WallProfiler

    return Telemetry(profiler=WallProfiler() if profile_out else None)


def _maybe_write_trace(telemetry, trace_out, lines) -> None:
    if telemetry is None or not trace_out:
        return
    from repro.obs import write_chrome_trace

    path = write_chrome_trace(telemetry.tracer, trace_out)
    lines.append(f"trace written to {path} (open in Perfetto / chrome://tracing)")


def _maybe_write_profile(telemetry, profile_out, lines) -> None:
    if telemetry is None or telemetry.profiler is None or not profile_out:
        return
    from repro.obs import write_chrome_trace

    path = write_chrome_trace(telemetry.profiler, profile_out)
    lines.append(f"profile written to {path} (wall-clock microseconds)")


def _cmd_wal_demo(args) -> str:
    from pathlib import Path

    from repro.core import durability, faults

    wal_dir = Path(args.wal_dir)
    wal_dir.mkdir(parents=True, exist_ok=True)
    manifest = {
        "seed": args.seed,
        "shards": args.shards,
        "snapshot_every": args.snapshot_every,
        # Spread targets so early pipelines terminate inside the demo
        # window while later ones are still mid-session at any crash.
        "targets": [3_000.0 * (2.0 ** i) for i in range(args.pipelines)],
    }
    _write_json_atomic(wal_dir / "manifest.json", manifest)
    telemetry = _maybe_telemetry(args.trace_out, args.profile_out)
    sage = _demo_platform(manifest, wal_dir, telemetry=telemetry)
    for pipeline, config in _demo_pipelines(manifest):
        sage.submit(pipeline, config)
    lines = []
    try:
        if args.crash_at:
            with faults.armed_crash(args.crash_at):
                for _ in range(args.hours):
                    sage.advance(1.0)
        else:
            for _ in range(args.hours):
                sage.advance(1.0)
    except faults.InjectedCrash as crash:
        # Simulated process death: abandon the in-memory state exactly as
        # a kill -9 would, leaving only what the WAL already holds.
        # close() releases this process's file handles without touching
        # the log -- every crash point fires on an fsynced boundary, so
        # the on-disk bytes are already what a real kill would leave.
        sage.close()
        lines.append(f"crashed at {crash.point} (in-memory state abandoned)")
        scan = durability.read_wal(durability.wal_path(wal_dir))
        durable = len(durability.pair_hour_records(scan.records))
        lines.append(f"charge log holds {durable} hour(s); run `recover` to rebuild")
        # The trace survives the simulated death: it shows every span up
        # to (and including) the armed fault.trip event.
        _maybe_write_trace(telemetry, args.trace_out, lines)
        _maybe_write_profile(telemetry, args.profile_out, lines)
        return "\n".join(lines)
    lines.append(
        f"ran {args.hours} hour(s), {sage.hours_committed} committed to "
        f"{durability.wal_path(wal_dir)}"
    )
    lines.append(f"state digest: {durability.state_digest(sage):#010x}")
    sage.close()
    _maybe_write_trace(telemetry, args.trace_out, lines)
    _maybe_write_profile(telemetry, args.profile_out, lines)
    return "\n".join(lines)


def _cmd_recover(args) -> str:
    import json
    from pathlib import Path

    from repro.core import durability
    from repro.errors import RecoveryError

    wal_dir = Path(args.wal_dir)
    manifest_path = wal_dir / "manifest.json"
    if not manifest_path.exists():
        raise RecoveryError(f"no manifest.json in {wal_dir} (not a wal-demo directory?)")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    telemetry = _maybe_telemetry(args.trace_out, args.profile_out)
    sage = _demo_platform(manifest, wal_dir, telemetry=telemetry)
    report = sage.recover(_demo_pipelines(manifest))
    lines = [
        report.describe(telemetry),
        f"state digest: {durability.state_digest(sage):#010x}",
    ]
    sage.close()
    _maybe_write_trace(telemetry, args.trace_out, lines)
    _maybe_write_profile(telemetry, args.profile_out, lines)
    return "\n".join(lines)


def _cmd_obs_report(args) -> str:
    from repro.obs import Telemetry, render_json, render_prometheus

    telemetry = Telemetry()
    manifest = {
        "seed": args.seed,
        "shards": args.shards,
        "snapshot_every": 0,
        "targets": [3_000.0 * (2.0 ** i) for i in range(args.pipelines)],
    }
    sage = _demo_platform(manifest, wal_dir=None, telemetry=telemetry)
    for pipeline, config in _demo_pipelines(manifest):
        sage.submit(pipeline, config)
    for _ in range(args.hours):
        sage.advance(1.0)
    # Fold the end-of-drive privacy state into the registry: loss bound vs
    # budget, block lifecycle, per-block dashboard, per-shard bounds.
    telemetry.metrics.observe_privacy(sage.access.accountant)
    telemetry.metrics.observe_dashboard(sage.access.accountant)
    sage.close()
    render = render_prometheus if args.format == "prometheus" else render_json
    return render(telemetry.metrics).rstrip("\n")


def _cmd_trace(args) -> str:
    import tempfile

    from repro.obs import Telemetry, write_chrome_trace

    telemetry = Telemetry()
    manifest = {
        "seed": args.seed,
        "shards": args.shards,
        "snapshot_every": args.snapshot_every,
        "targets": [3_000.0 * (2.0 ** i) for i in range(args.pipelines)],
    }
    # Durable + sharded on a throwaway WAL directory, so the trace shows
    # the full span taxonomy: per-shard validation, WAL append/fsync,
    # snapshot writes, and compaction -- not just the volatile drive.
    with tempfile.TemporaryDirectory(prefix="repro-trace-") as wal_dir:
        sage = _demo_platform(manifest, wal_dir, telemetry=telemetry)
        for pipeline, config in _demo_pipelines(manifest):
            sage.submit(pipeline, config)
        for _ in range(args.hours):
            sage.advance(1.0)
        sage.close()
    path = write_chrome_trace(telemetry.tracer, args.out)
    tracer = telemetry.tracer
    return "\n".join(
        [
            f"drove {args.hours} hour(s) over {args.shards} shard(s)",
            f"{len(tracer.spans)} span(s), {len(tracer.events)} event(s)",
            f"trace written to {path} (open in Perfetto / chrome://tracing)",
        ]
    )


def _cmd_profile(args) -> str:
    import tempfile

    from repro.obs import Telemetry, WallProfiler, write_chrome_trace
    from repro.obs.analyze import (
        render_breakdown,
        render_critical_path,
        write_collapsed,
    )

    telemetry = Telemetry(profiler=WallProfiler())
    manifest = {
        "seed": args.seed,
        "shards": args.shards,
        "snapshot_every": args.snapshot_every,
        "targets": [3_000.0 * (2.0 ** i) for i in range(args.pipelines)],
    }
    # Same durable + sharded demo the trace command drives, so the
    # profile decomposes the full taxonomy -- including per-shard
    # validation wall time and the fsync path.
    with tempfile.TemporaryDirectory(prefix="repro-profile-") as wal_dir:
        sage = _demo_platform(manifest, wal_dir, telemetry=telemetry)
        for pipeline, config in _demo_pipelines(manifest):
            sage.submit(pipeline, config)
        for _ in range(args.hours):
            sage.advance(1.0)
        sage.close()
    profiler = telemetry.profiler
    lines = [
        f"profiled {args.hours} hour(s) over {args.shards} shard(s)",
        "",
        render_breakdown(profiler),
        "",
        render_critical_path(profiler),
    ]
    if args.out:
        path = write_chrome_trace(profiler, args.out)
        lines.append(f"profile written to {path} (wall-clock microseconds)")
    if args.flame_out:
        path = write_collapsed(profiler, args.flame_out)
        lines.append(f"collapsed stacks written to {path}")
    return "\n".join(lines)


def _cmd_perf_diff(args) -> str:
    from pathlib import Path

    from repro.obs.analyze import load_chrome_trace, render_diff

    before = load_chrome_trace(Path(args.before))
    after = load_chrome_trace(Path(args.after))
    return "\n".join(
        [
            f"perf diff: {args.before} -> {args.after}",
            render_diff(before, after),
        ]
    )


def _cmd_perf_report(args):
    from pathlib import Path

    from repro.obs import perfdb

    path = Path(args.history) if args.history else perfdb.HISTORY_PATH
    history = perfdb.load_history(path)
    tolerance = (
        args.tolerance if args.tolerance is not None else perfdb.DEFAULT_TOLERANCE
    )
    report = perfdb.render_report(history, tolerance=tolerance)
    if not args.check:
        return report
    regressions = perfdb.check_regressions(history, tolerance=tolerance)
    return report, (1 if regressions else 0)


_COMMANDS = {
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "table2": _cmd_table2,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "inventory": _cmd_inventory,
    "wal-demo": _cmd_wal_demo,
    "recover": _cmd_recover,
    "obs-report": _cmd_obs_report,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "perf-diff": _cmd_perf_diff,
    "perf-report": _cmd_perf_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.core.faults import FaultConfigError
    from repro.errors import DurabilityError

    try:
        output = _COMMANDS[args.command](args)
    except (DurabilityError, FaultConfigError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    # perf-report --check returns (text, exit_code): the report always
    # prints, the code carries the regression verdict to CI.
    code = 0
    if isinstance(output, tuple):
        output, code = output
    print(output)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
