"""Reproduction of the Sage differentially private ML platform (SOSP 2019).

Subpackages
-----------
``repro.dp``
    DP primitives: budgets, mechanisms, composition theorems, RDP
    accountant, DP point queries.
``repro.ml``
    From-scratch ML substrate: ridge/AdaSSP, logistic/MLP models, SGD and
    DP-SGD trainers, metrics, feature transforms.
``repro.data``
    Synthetic equivalents of the paper's NYC-Taxi and Criteo datasets,
    data streams, and the growing database.
``repro.core``
    The paper's contribution: block composition accounting, Sage access
    control, SLAed validators, privacy-adaptive training, the platform.
``repro.workload``
    Multi-pipeline workload simulator and prior-work accounting baselines
    (Fig. 8).
``repro.experiments``
    Runners that regenerate every table and figure of the evaluation.

The most commonly used names are re-exported at the top level.
"""

from repro._version import __version__
from repro.dp.budget import PrivacyBudget, ZERO_BUDGET
from repro.errors import (
    AccessDeniedError,
    BlockRetiredError,
    BudgetExceededError,
    CalibrationError,
    DataError,
    InvalidBudgetError,
    PipelineError,
    ReproError,
    SimulationError,
    ValidationError,
)

__all__ = [
    "__version__",
    "PrivacyBudget",
    "ZERO_BUDGET",
    "ReproError",
    "InvalidBudgetError",
    "BudgetExceededError",
    "BlockRetiredError",
    "AccessDeniedError",
    "PipelineError",
    "ValidationError",
    "CalibrationError",
    "DataError",
    "SimulationError",
]
