"""Interprocedural call graph resolved through attribute types.

The PR 6 rules connected callers to callees by bare method name, which
merges every ``append`` in the tree into one node and cannot tell
``self._wal.commit_hour()`` from a test helper's ``commit_hour``.  This
module rebuilds the graph with a light type layer:

* a **class registry** over the in-scope modules: per class, its methods,
  its base-class names, and its *attribute types* -- inferred from
  ``self.X = ClassName(...)`` constructor assignments anywhere in the
  class and from ``self.X: ClassName`` annotations;

* **property projection**: a ``@property`` whose body returns ``self.X``
  types the property as ``X``'s type, so ``self.access.accountant.retire``
  resolves through ``AccessManager.accountant`` to the real
  ``BlockAccountant.retire``;

* **local aliases**: single-assignment locals bound to a ``self`` chain
  (``accountant = self.access.accountant``) resolve calls through the
  chain's type.

Calls that still defeat typing (untyped locals, call results) fall back
to by-name resolution across the registry -- strictly more precise than
PR 6, never less.  Nodes are ``(class_name, method_name)`` pairs with
``class_name == ""`` for module-level functions.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Module, Project
from repro.analysis.astutil import attr_chain, call_name, walk_calls

__all__ = ["CallGraph", "MethodRef"]

# A graph node: (defining class name or "" for module functions, name).
MethodRef = Tuple[str, str]


class _ClassInfo:
    __slots__ = (
        "name",
        "module",
        "bases",
        "methods",
        "attr_types",
        "properties",
        "prop_annotations",
    )

    def __init__(self, name: str, module: Module, node: ast.ClassDef) -> None:
        self.name = name
        self.module = module
        self.bases: List[str] = [
            base.id for base in node.bases if isinstance(base, ast.Name)
        ]
        self.methods: Dict[str, ast.FunctionDef] = {}
        self.attr_types: Dict[str, str] = {}
        # property name -> the self-attribute it returns (typed lazily).
        self.properties: Dict[str, str] = {}
        # property name -> declared return type (validated at lookup).
        self.prop_annotations: Dict[str, str] = {}
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[item.name] = item
                if any(
                    isinstance(dec, ast.Name) and dec.id == "property"
                    for dec in item.decorator_list
                ):
                    annotated = _annotation_name(item.returns)
                    if annotated is not None:
                        self.prop_annotations[item.name] = annotated
                    returned = _returned_self_attr(item)
                    if returned is not None:
                        self.properties[item.name] = returned


def _annotation_name(annotation: Optional[ast.AST]) -> Optional[str]:
    """The class name an annotation declares: ``LedgerStore`` or
    ``Optional[LedgerStore]`` -> ``"LedgerStore"``."""
    if isinstance(annotation, ast.Name):
        return annotation.id
    if (
        isinstance(annotation, ast.Subscript)
        and isinstance(annotation.value, ast.Name)
        and annotation.value.id == "Optional"
        and isinstance(annotation.slice, ast.Name)
    ):
        return annotation.slice.id
    return None


def _returned_self_attr(func: ast.FunctionDef) -> Optional[str]:
    """``def p(self): return self._x`` (possibly after other statements)
    -> ``"_x"``; None when the property computes something richer."""
    for stmt in reversed(func.body):
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            chain = attr_chain(stmt.value)
            if len(chain) == 2 and chain[0] == "self":
                return chain[1]
            return None
    return None


def _local_aliases(func: ast.AST) -> Dict[str, Tuple[str, ...]]:
    """Locals bound (exactly once, to a plain ``self`` chain) inside the
    function: ``accountant = self.access.accountant`` ->
    ``{"accountant": ("self", "access", "accountant")}``.  Reassigned
    names are dropped rather than guessed."""
    seen: Dict[str, Optional[Tuple[str, ...]]] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and isinstance(
            node.targets[0], ast.Name
        ):
            name = node.targets[0].id
            chain = tuple(attr_chain(node.value))
            value = chain if len(chain) >= 2 and chain[0] == "self" else None
            seen[name] = value if name not in seen else None
        else:
            targets: List[ast.AST] = list(getattr(node, "targets", []) or [])
            if isinstance(node, (ast.AugAssign, ast.AnnAssign, ast.For, ast.AsyncFor)):
                targets.append(node.target)
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        seen[leaf.id] = None
    return {name: chain for name, chain in seen.items() if chain is not None}


class CallGraph:
    """Typed call graph over the classes/functions of selected modules."""

    def __init__(
        self,
        project: Project,
        scope: Optional[Iterable[Module]] = None,
        fallback_excluded: Iterable[str] = (),
    ) -> None:
        self.classes: Dict[str, _ClassInfo] = {}
        self.functions: Dict[str, Tuple[Module, ast.FunctionDef]] = {}
        self.methods_by_name: Dict[str, List[Tuple[str, Module, ast.FunctionDef]]] = {}
        self._fallback_excluded = frozenset(fallback_excluded)
        self._subclass_map: Optional[Dict[str, Set[str]]] = None
        modules = list(scope) if scope is not None else list(project)
        for module in modules:
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    info = _ClassInfo(node.name, module, node)
                    self.classes[node.name] = info
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self.functions[node.name] = (module, node)
        for info in self.classes.values():
            for method_name, func in info.methods.items():
                self.methods_by_name.setdefault(method_name, []).append(
                    (info.name, info.module, func)
                )
            self._infer_attr_types(info)

    # -- registry --------------------------------------------------------
    def _infer_attr_types(self, info: _ClassInfo) -> None:
        for func in info.methods.values():
            # ``def __init__(self, access: SageAccessControl)`` +
            # ``self.access = access`` types the attribute.
            param_types: Dict[str, str] = {}
            for arg in list(func.args.posonlyargs) + list(func.args.args) + list(
                func.args.kwonlyargs
            ):
                annotated = _annotation_name(arg.annotation)
                if annotated is not None and annotated in self.classes:
                    param_types[arg.arg] = annotated
            for node in ast.walk(func):
                target: Optional[ast.AST] = None
                value: Optional[ast.AST] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target = node.target
                    # ``self.x: LedgerStore`` types the attr even unassigned.
                    if isinstance(node.annotation, ast.Name):
                        chain = attr_chain(target)
                        if (
                            len(chain) == 2
                            and chain[0] == "self"
                            and node.annotation.id in self.classes
                        ):
                            info.attr_types.setdefault(chain[1], node.annotation.id)
                    value = node.value
                if target is None or value is None:
                    continue
                chain = attr_chain(target)
                if len(chain) != 2 or chain[0] != "self":
                    continue
                if isinstance(value, ast.Call):
                    ctor = call_name(value)
                    if ctor in self.classes:
                        info.attr_types.setdefault(chain[1], ctor)
                elif isinstance(value, ast.Name) and value.id in param_types:
                    info.attr_types.setdefault(chain[1], param_types[value.id])

    def resolve_class(self, class_name: str) -> Optional[_ClassInfo]:
        return self.classes.get(class_name)

    def _mro(self, class_name: str) -> List[_ClassInfo]:
        out: List[_ClassInfo] = []
        seen: Set[str] = set()
        stack = [class_name]
        while stack:
            name = stack.pop(0)
            if name in seen:
                continue
            seen.add(name)
            info = self.classes.get(name)
            if info is None:
                continue
            out.append(info)
            stack.extend(info.bases)
        return out

    def lookup_method(self, class_name: str, method: str) -> Optional[MethodRef]:
        """The defining ``(class, method)`` pair along the base chain."""
        for info in self._mro(class_name):
            if method in info.methods:
                return (info.name, method)
        return None

    def attr_type(self, class_name: str, attr: str) -> Optional[str]:
        """Type of ``<class>.<attr>``, following bases and properties."""
        for info in self._mro(class_name):
            if attr in info.attr_types:
                return info.attr_types[attr]
            annotated = info.prop_annotations.get(attr)
            if annotated in self.classes:
                return annotated
            if attr in info.properties:
                backing = info.properties[attr]
                if backing != attr:  # guard pathological self-reference
                    resolved = self.attr_type(info.name, backing)
                    if resolved is not None:
                        return resolved
        return None

    def _subclasses(self, class_name: str) -> Set[str]:
        if self._subclass_map is None:
            forward: Dict[str, Set[str]] = {}
            for info in self.classes.values():
                for base in info.bases:
                    forward.setdefault(base, set()).add(info.name)
            self._subclass_map = forward
        out: Set[str] = set()
        stack = [class_name]
        while stack:
            for sub in self._subclass_map.get(stack.pop(), ()):
                if sub not in out:
                    out.add(sub)
                    stack.append(sub)
        return out

    def attr_types_all(self, class_name: str, attr: str) -> Set[str]:
        """Every type ``<class>.<attr>`` may hold at runtime: the MRO
        answer plus any override a *subclass* installs (``self`` inside a
        base-class method can be a subclass instance -- e.g. the sharded
        accountant replaces ``_store`` with a ``ShardedLedgerStore``)."""
        out: Set[str] = set()
        for candidate in {class_name} | self._subclasses(class_name):
            resolved = self.attr_type(candidate, attr)
            if resolved is not None:
                out.add(resolved)
        return out

    def chain_type(
        self, owner_class: str, chain: Sequence[str]
    ) -> Optional[str]:
        """Type of a ``self``-rooted attribute chain inside a method of
        ``owner_class``: ``('self', 'access', 'accountant')`` -> the
        accountant's class name, or None when any hop is untyped.
        Ignores subclass overrides; use :meth:`chain_types` for the full
        may-alias answer."""
        if not chain or chain[0] != "self":
            return None
        current: Optional[str] = owner_class
        for part in chain[1:]:
            if current is None:
                return None
            current = self.attr_type(current, part)
        return current

    def chain_types(self, owner_class: str, chain: Sequence[str]) -> Set[str]:
        """All types a ``self``-rooted chain may resolve to, subclass
        overrides included at every hop."""
        if not chain or chain[0] != "self":
            return set()
        current: Set[str] = {owner_class}
        for part in chain[1:]:
            current = {
                t
                for cls in current
                for t in self.attr_types_all(cls, part)
            }
            if not current:
                return set()
        return current

    # -- call resolution -------------------------------------------------
    def resolve_call(
        self,
        call: ast.Call,
        owner_class: str,
        aliases: Optional[Dict[str, Tuple[str, ...]]] = None,
    ) -> List[MethodRef]:
        """The possible targets of one call site inside a method of
        ``owner_class``.  Typed resolution first; by-name fallback for
        receivers the type layer cannot see (excluded names resolve to
        nothing rather than everything)."""
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.functions:
                return [("", func.id)]
            if func.id in self.classes:  # constructor call
                ref = self.lookup_method(func.id, "__init__")
                return [ref] if ref else []
            return []
        if not isinstance(func, ast.Attribute):
            return []
        callee = func.attr
        chain = tuple(attr_chain(func.value))
        if aliases and chain and chain[0] in aliases:
            chain = aliases[chain[0]] + chain[1:]
        if chain and chain[0] == "self":
            if len(chain) == 1:
                # ``self.m()``: the defining method plus any subclass
                # override (a base-class caller may run a subclass self).
                refs: List[MethodRef] = []
                for candidate in {owner_class} | self._subclasses(owner_class):
                    ref = self.lookup_method(candidate, callee)
                    if ref is not None and ref not in refs:
                        refs.append(ref)
                if refs:
                    return sorted(refs)
            else:
                receiver_types = self.chain_types(owner_class, chain)
                if receiver_types:
                    refs = []
                    for receiver_type in sorted(receiver_types):
                        ref = self.lookup_method(receiver_type, callee)
                        if ref is not None and ref not in refs:
                            refs.append(ref)
                    return refs
        # Untyped receiver: every method of that name, unless excluded.
        if callee in self._fallback_excluded:
            return []
        return [
            (class_name, callee)
            for class_name, _, _ in self.methods_by_name.get(callee, ())
        ]

    def method_def(
        self, ref: MethodRef
    ) -> Optional[Tuple[Module, ast.FunctionDef]]:
        class_name, method = ref
        if class_name == "":
            return self.functions.get(method)
        info = self.classes.get(class_name)
        if info is None or method not in info.methods:
            return None
        return (info.module, info.methods[method])

    def reachable_from(
        self, seed_names: Sequence[str]
    ) -> Tuple[Set[MethodRef], Dict[MethodRef, MethodRef]]:
        """Every method transitively callable from any method *named* one
        of ``seed_names`` (in any class).  Returns the reached set and a
        parent map for rendering seed chains."""
        frontier: List[MethodRef] = []
        reached: Set[MethodRef] = set()
        for seed in seed_names:
            for class_name, _, _ in self.methods_by_name.get(seed, ()):
                ref = (class_name, seed)
                if ref not in reached:
                    reached.add(ref)
                    frontier.append(ref)
            if seed in self.functions:
                ref = ("", seed)
                if ref not in reached:
                    reached.add(ref)
                    frontier.append(ref)
        parents: Dict[MethodRef, MethodRef] = {}
        while frontier:
            current = frontier.pop()
            defn = self.method_def(current)
            if defn is None:
                continue
            _, func = defn
            aliases = _local_aliases(func)
            for call in walk_calls(func):
                for target in self.resolve_call(call, current[0], aliases):
                    if target == current or target in reached:
                        continue
                    if self.method_def(target) is None:
                        continue
                    reached.add(target)
                    parents[target] = current
                    frontier.append(target)
        return reached, parents
