"""Command-line front end for the invariant linter.

Usage (from the repo root)::

    PYTHONPATH=src python -m repro.analysis src tests benchmarks
    PYTHONPATH=src python -m repro.analysis --format json --output results/lint_invariants.json src tests benchmarks
    PYTHONPATH=src python -m repro.analysis --rules purity,schema-width src

Exit codes: 0 clean, 1 findings, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.engine import (
    LintError,
    collect_project,
    dump_json,
    render_human,
    report_as_json,
    run_rules,
    run_rules_parallel,
)
from repro.analysis.rules import default_rules

__all__ = ["main"]

DEFAULT_PATHS = ("src", "tests", "benchmarks")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter for the platform's accounting contracts.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to lint, relative to --root (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root that relative paths and report paths are anchored to (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated subset of rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan the rules out over N forked workers; the report is "
        "bit-identical to a serial run (default: 1)",
    )
    parser.add_argument(
        "--include-fixtures",
        action="store_true",
        help="also lint directories named 'fixtures' (skipped by default: "
        "the rule fixtures exist to contain violations)",
    )
    return parser


def _select_rules(spec: Optional[str]) -> List:
    rules = default_rules()
    if spec is None:
        return rules
    wanted = [name.strip() for name in spec.split(",") if name.strip()]
    by_name = {rule.name: rule for rule in rules}
    unknown = [name for name in wanted if name not in by_name]
    if unknown:
        known = ", ".join(rule.name for rule in rules)
        raise LintError(f"unknown rule(s) {', '.join(unknown)}; known: {known}")
    return [by_name[name] for name in wanted]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    try:
        rules = _select_rules(args.rules)
        if args.list_rules:
            width = max(len(rule.name) for rule in rules)
            for rule in rules:
                print(f"{rule.name:<{width}}  {rule.description}")
            return 0
        project = collect_project(
            Path(args.root), args.paths, include_fixtures=args.include_fixtures
        )
        if args.jobs > 1:
            findings, stats = run_rules_parallel(project, rules, args.jobs)
        else:
            findings, stats = run_rules(project, rules)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        report = report_as_json(findings, stats, rules, len(project), args.paths)
        text = dump_json(report)
    else:
        text = render_human(findings, stats, len(project)) + "\n"

    if args.output:
        # Atomic publish: CI diffs the committed report against a fresh
        # run, so a half-written file must never replace a good one.
        out = Path(args.output)
        tmp = out.with_name(out.name + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, out)
    else:
        sys.stdout.write(text)
    return 1 if findings else 0
