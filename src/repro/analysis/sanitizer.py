"""Runtime write-barrier sanitizer for the declared-pure read paths.

The static purity rule proves that no *known* mutation is reachable from
the pure seeds (``propose_peek``, ``admits_keys``, ``can_charge``,
``max_epsilon``); this module enforces the same contract dynamically so
the parts the static layer cannot see -- C-level NumPy writes, monkeypatched
callables, reflection -- still fault loudly instead of silently skewing
the ledger.  While a declared-pure call is on the stack, the accounting
slabs (``LedgerStore._totals``/``_counts``, and for sharded stores the
mirror's and every shard's slabs) are flipped to ``writeable=False``; any
in-place write raises ``ValueError: assignment destination is read-only``
at the exact offending line.

Deliberately **not** frozen:

* ``LedgerStore._live`` -- deferred retirement marks exhausted blocks
  from read paths (a reviewed ``allow(purity)`` site); freezing it would
  fault on sanctioned behavior.
* the reservation table and scan memo -- Python-object state already
  covered by the static rule, and the memo cache-fill on read paths is a
  reviewed allow site.

Usage: ``install()`` wraps the pure entry points in place (idempotent;
``uninstall()`` restores them), and ``REPRO_SANITIZER=1`` makes the test
suite's conftest install it for the whole run.  ``write_barrier(store)``
is the underlying context manager, usable directly in tests.

Concurrency note: the propose pool may run several peeks at once.  Flag
flips are not atomic across threads, so a worker finishing early can
lift the barrier while a sibling still runs -- the sanitizer is a
best-effort tripwire, not a lock; a shortened window only ever *misses*
a fault, never raises a spurious one (each barrier restores exactly the
arrays it flipped itself).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from functools import wraps
from typing import Dict, Iterator, List, Tuple

__all__ = ["write_barrier", "frozen_arrays", "install", "uninstall", "installed"]

_ENV_FLAG = "REPRO_SANITIZER"

# (class, method) -> original unwrapped function, while installed.
_installed: Dict[Tuple[type, str], object] = {}


def frozen_arrays(store) -> List[object]:
    """The slabs the barrier freezes for one store (duck-typed so the
    sharded store's mirror and per-shard sub-stores all contribute)."""
    out: List[object] = []
    if store is None:
        return out
    mirror = getattr(store, "_mirror", None)
    if mirror is not None:
        out.extend(frozen_arrays(mirror))
        for shard in getattr(store, "_shards", ()):
            out.extend(frozen_arrays(shard))
        return out
    for name in ("_totals", "_counts"):
        array = getattr(store, name, None)
        if array is not None and hasattr(array, "flags"):
            out.append(array)
    return out


@contextmanager
def write_barrier(store) -> Iterator[None]:
    """Make the store's totals/counts slabs read-only for the duration.

    Only arrays this invocation itself flipped are restored, so nested
    barriers (a pure call inside a pure call) compose: the innermost
    enter sees already-frozen slabs and flips nothing.
    """
    flipped = []
    for array in frozen_arrays(store):
        if array.flags.writeable:
            array.flags.writeable = False
            flipped.append(array)
    try:
        yield
    finally:
        for array in flipped:
            array.flags.writeable = True


def _wrap(cls: type, method: str, store_of) -> None:
    key = (cls, method)
    if key in _installed:
        return
    original = cls.__dict__[method]

    @wraps(original)
    def guarded(self, *args, **kwargs):
        with write_barrier(store_of(self)):
            return original(self, *args, **kwargs)

    _installed[key] = original
    setattr(cls, method, guarded)


def install() -> None:
    """Wrap every declared-pure entry point with a write barrier.

    Idempotent; the wrapped set mirrors ``PURE_SEEDS`` in the static
    purity rule -- keep the two in sync (the purity rule's seed-list test
    pins the names).
    """
    from repro.core.accountant import BlockAccountant
    from repro.core.adaptive import AdaptiveSession

    for method in ("admits_keys", "can_charge", "max_epsilon"):
        _wrap(BlockAccountant, method, lambda acct: acct._store)
    _wrap(
        AdaptiveSession,
        "propose_peek",
        lambda session: session.access.accountant._store,
    )


def uninstall() -> None:
    """Restore every wrapped method (test isolation helper)."""
    for (cls, method), original in list(_installed.items()):
        setattr(cls, method, original)
        del _installed[(cls, method)]


def installed() -> bool:
    return bool(_installed)


def install_from_env() -> bool:
    """Install when ``REPRO_SANITIZER=1`` is set; returns whether it did."""
    if os.environ.get(_ENV_FLAG, "") in ("1", "true", "yes"):
        install()
        return True
    return False
