"""Shared AST helpers for the analysis core and the invariant rules.

Lives outside the ``rules`` package on purpose: ``cfg``/``dataflow``/
``callgraph`` depend on these helpers, and importing anything from
``repro.analysis.rules`` runs that package's ``__init__`` -- which
imports the rule modules, which import ``dataflow`` -- a cycle.  The
core must only ever depend on this module and on each other.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

__all__ = [
    "call_name",
    "attr_root",
    "attr_chain",
    "assigned_target_nodes",
    "walk_calls",
    "function_defs",
    "MUTATOR_METHODS",
    "SELF_MUTATOR_METHODS",
]

# Method names that unambiguously mutate accounting state wherever they are
# called: ledger/store writes, charge execution, staging, settlement.  Used
# by the purity and thread-shared-state rules regardless of the receiver,
# since e.g. ``led.record(...)`` mutates no matter what local name the
# ledger is bound to.
MUTATOR_METHODS = frozenset(
    {
        "record",
        "charge",
        "charge_many",
        "stage_charge",
        "stage_request",
        "begin_staging",
        "pop_staged",
        "commit_staged",
        "commit_staged_trusted",
        "abort_staged",
        "settle",
        "retire",
        "write_row",
        "write_rows",
        "request",
        "request_many",
        "complete",
        "wake",
        "_escalate",
        "_settle_charges",
        "_accumulate",
        "_attach",
        "register_block",
        "register_blocks",
        "allocate",
        "release",
        "grant_free",
        "add_block",
        "add_pipeline",
    }
)

# Container mutators that only count when the receiver chain is rooted at
# ``self`` (``self._dead.update(...)`` mutates session state; a local
# list's ``out.append(...)`` does not).
SELF_MUTATOR_METHODS = frozenset(
    {"append", "add", "update", "clear", "extend", "insert", "pop", "popitem",
     "remove", "discard", "setdefault"}
)


def call_name(node: ast.Call) -> Optional[str]:
    """The called name: ``f(...)`` -> ``f``, ``a.b.f(...)`` -> ``f``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def attr_root(node: ast.AST) -> Optional[str]:
    """The base name of an attribute/subscript chain: ``self.a.b[c].d`` -> ``self``."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        if isinstance(node, ast.Call):
            node = node.func
        else:
            node = node.value
    return node.id if isinstance(node, ast.Name) else None


def attr_chain(node: ast.AST) -> List[str]:
    """Dotted names of an attribute chain, base first (``a.b.c`` ->
    ``['a', 'b', 'c']``); empty when the base is not a plain name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def assigned_target_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """The leaf targets of an assignment statement (tuples flattened)."""
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    else:
        return
    stack = list(targets)
    while stack:
        target = stack.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            stack.extend(target.elts)
        elif isinstance(target, ast.Starred):
            stack.append(target.value)
        else:
            yield target


def walk_calls(node: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def function_defs(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    """Every (sync or async) function definition in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
