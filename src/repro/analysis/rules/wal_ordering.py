"""WAL-ordering rule: durability writes land in the provable order.

The recovery contract (PR 7) only holds if three orderings hold on every
control-flow path, not just the one the tests happen to drive:

* **sync-after-write** -- inside the WAL writer, every byte that goes
  through the log handle (``self._fh.write``/``.truncate``) is fsynced
  before the method returns.  A buffered hour record followed by an
  in-memory commit is exactly the lost-update a crash turns into silent
  budget loss.
* **append-before-commit** -- a platform path that reaches
  ``commit_hour()`` must have passed ``append_hour()`` first: the commit
  marker asserts "the write-ahead record below me is complete", so a
  marker without its record corrupts recovery rather than merely losing
  an hour.
* **digest-before-marker** -- the commit marker must carry a digest
  computed from live state *at the call* (a ``*digest*`` call in the
  argument, or a name bound from one on every path into the commit).
  Recovery compares this digest after replay; a stale or constant value
  turns the byte-parity check into a no-op.

A fourth check covers the snapshot side of the same contract:
**fsync-before-rename** -- any function that publishes with
``os.replace``/``os.rename`` must ``os.fsync`` the payload first on
every path, else the rename can land before the data and a crash
publishes a hole.

All checks are path-sensitive on the CFG (``always_precedes`` /
``always_followed_by``); dunder methods are exempt from
sync-after-write -- construction-time tail trims are re-derived by the
next open's scan, so the contract starts at the hour lifecycle.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.cfg import CFG, CFGNode, _stmt_probe, build_cfg
from repro.analysis.dataflow import always_followed_by, always_precedes
from repro.analysis.engine import Finding, Module, Project, Rule
from repro.analysis.astutil import attr_chain, call_name, walk_calls

__all__ = ["WalOrderingRule"]

_SCOPE_PREFIX = "src/repro/core/"

_SYNC_NAMES = frozenset({"_sync", "fsync"})
_HANDLE_WRITE_NAMES = frozenset({"write", "truncate"})


def _nodes_where(cfg: CFG, predicate) -> List[CFGNode]:
    """Statement nodes whose *header* contains a call matching the
    predicate (compound bodies belong to their own nodes)."""
    out = []
    for node in cfg.stmt_nodes():
        if any(predicate(c) for c in walk_calls(_stmt_probe(node.stmt))):
            out.append(node)
    return out


def _is_self_handle_write(call: ast.Call) -> bool:
    """``self.<handle>.write(...)`` / ``.truncate(...)`` -- a byte hitting
    the instance's log handle."""
    chain = attr_chain(call.func)
    return (
        len(chain) >= 3
        and chain[0] == "self"
        and chain[-1] in _HANDLE_WRITE_NAMES
    )


def _is_os_call(call: ast.Call, names) -> bool:
    chain = attr_chain(call.func)
    return len(chain) == 2 and chain[0] == "os" and chain[1] in names


def _mentions_digest_call(node: ast.AST) -> bool:
    return any("digest" in (call_name(c) or "") for c in walk_calls(node))


class WalOrderingRule(Rule):
    name = "wal-ordering"
    description = (
        "fsync-before-commit and digest-before-marker must hold on every "
        "CFG path through the durability layer"
    )

    def applies(self, module: Module) -> bool:
        return module.relpath.startswith(_SCOPE_PREFIX)

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and "wal" in node.name.lower():
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield from self._check_writer_method(module, node.name, item)
        for func in ast.walk(module.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_commit_site(module, func)
                yield from self._check_rename_site(module, func)

    # ------------------------------------------------------------------
    # sync-after-write (inside the WAL writer class)
    # ------------------------------------------------------------------
    def _check_writer_method(
        self, module: Module, class_name: str, func: ast.FunctionDef
    ) -> Iterable[Finding]:
        if func.name.startswith("__"):
            return  # construction-time trims are re-derived by the next scan
        cfg = build_cfg(func)
        writes = _nodes_where(cfg, _is_self_handle_write)
        if not writes:
            return
        syncs = _nodes_where(
            cfg, lambda c: (call_name(c) or "") in _SYNC_NAMES
        )
        if not always_followed_by(cfg, writes, syncs):
            yield self.finding(
                module,
                writes[0].stmt,
                f"{class_name}.{func.name}() writes the log handle but can "
                "return without a _sync()/fsync() -- buffered bytes are lost "
                "on crash, breaking the write-ahead guarantee",
            )

    # ------------------------------------------------------------------
    # append-before-commit + digest-before-marker (call sites)
    # ------------------------------------------------------------------
    def _check_commit_site(
        self, module: Module, func: ast.FunctionDef
    ) -> Iterable[Finding]:
        if func.name in ("commit_hour", "append_hour"):
            return  # the definitions and thin wrappers
        called = {name for name in (call_name(c) for c in walk_calls(func)) if name}
        if "commit_hour" not in called:
            return
        cfg = build_cfg(func)
        commit_nodes = _nodes_where(
            cfg, lambda c: call_name(c) == "commit_hour"
        )
        if not commit_nodes:
            return  # only inside a nested def; that def is checked itself
        append_nodes = _nodes_where(
            cfg, lambda c: call_name(c) == "append_hour"
        )
        if not append_nodes:
            yield self.finding(
                module,
                commit_nodes[0].stmt,
                f"{func.name}() calls commit_hour() but never append_hour() "
                "-- a commit marker without its write-ahead record corrupts "
                "recovery",
            )
        elif not always_precedes(cfg, append_nodes, commit_nodes):
            yield self.finding(
                module,
                commit_nodes[0].stmt,
                f"{func.name}() has a path that reaches commit_hour() without "
                "append_hour() -- the marker must never land before the "
                "write-ahead record",
            )
        yield from self._check_digest(module, func, cfg, commit_nodes)

    def _check_digest(
        self,
        module: Module,
        func: ast.FunctionDef,
        cfg: CFG,
        commit_nodes: List[CFGNode],
    ) -> Iterable[Finding]:
        for node in commit_nodes:
            for call in walk_calls(_stmt_probe(node.stmt)):
                if call_name(call) != "commit_hour":
                    continue
                if any(_mentions_digest_call(arg) for arg in call.args):
                    continue
                digest_name = self._digest_arg_name(call)
                if digest_name is not None:
                    binds = [
                        n
                        for n in cfg.stmt_nodes()
                        if self._binds_digest(n.stmt, digest_name)
                    ]
                    if binds and always_precedes(cfg, binds, [node]):
                        continue
                yield self.finding(
                    module,
                    node.stmt,
                    f"{func.name}() commits an hour without a digest computed "
                    "at the marker -- recovery's byte-parity check needs the "
                    "post-commit state digest in the commit record",
                )

    @staticmethod
    def _digest_arg_name(call: ast.Call) -> Optional[str]:
        """A plain-name argument that could carry a precomputed digest."""
        for arg in call.args:
            if isinstance(arg, ast.Name):
                return arg.id
        for kw in call.keywords:
            if kw.arg and "digest" in kw.arg and isinstance(kw.value, ast.Name):
                return kw.value.id
        return None

    @staticmethod
    def _binds_digest(stmt: ast.stmt, name: str) -> bool:
        if not isinstance(stmt, ast.Assign):
            return False
        return any(
            isinstance(t, ast.Name) and t.id == name for t in stmt.targets
        ) and _mentions_digest_call(stmt.value)

    # ------------------------------------------------------------------
    # fsync-before-rename (snapshot publication)
    # ------------------------------------------------------------------
    def _check_rename_site(
        self, module: Module, func: ast.FunctionDef
    ) -> Iterable[Finding]:
        has_rename = any(
            _is_os_call(c, ("replace", "rename")) for c in walk_calls(func)
        )
        if not has_rename:
            return
        cfg = build_cfg(func)
        renames = _nodes_where(
            cfg, lambda c: _is_os_call(c, ("replace", "rename"))
        )
        if not renames:
            return
        fsyncs = _nodes_where(cfg, lambda c: (call_name(c) or "") == "fsync")
        if not always_precedes(cfg, fsyncs, renames):
            yield self.finding(
                module,
                renames[0].stmt,
                f"{func.name}() publishes with os.replace/os.rename on a path "
                "with no preceding os.fsync -- the rename can land before the "
                "payload and a crash publishes a torn file",
            )
