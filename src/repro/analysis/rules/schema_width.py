"""Schema-width rule: totals columns are written through the declared schema.

PR 4 made the ledger's totals row *pluggable*: a filter declares
``totals_width`` and ``contribution(budget)``, and every accumulation path
applies exactly that vector.  The contract only holds if nobody outside
the accounting modules reaches into the row layout directly -- a
hard-coded ``totals[:, 0]`` silently reads the wrong column the moment a
filter reorders or extends its schema, and a direct ``_totals[...]``
write bypasses the ledger-mirror sync entirely (the vectorized scans
would diverge from the per-ledger histories without any error).

Flags, everywhere except ``accountant.py`` / ``sharding.py`` /
``filters.py`` (the schema's owners):

* any access to a ``_totals`` attribute (the private store/ledger array);
* hard-coded integer *column* indices into totals rows: tuple subscripts
  with a constant column (``store.totals[:, 0]``,
  ``totals[rows, 2]``) and plain integer subscripts on per-block totals
  tuples (``ledger(key).totals[0]``, a bare ``totals[1]``).  Row indexing
  (``store.totals[3]``) is layout-independent and stays legal.

The fix is almost always importing the named base-column constants
(``TOT_EPS`` ... ``TOT_LINEAR`` from ``repro.core.accountant``) or going
through the filter's declared ``contribution``/``loss_bound`` surface.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import Finding, Module, Project, Rule

__all__ = ["SchemaWidthRule"]

# The modules that own the totals schema and may touch raw columns.
_ALLOWED = frozenset(
    {
        "src/repro/core/accountant.py",
        "src/repro/core/sharding.py",
        "src/repro/core/filters.py",
    }
)


def _is_int_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, int) and not isinstance(node.value, bool)


class SchemaWidthRule(Rule):
    name = "schema-width"
    description = (
        "no hard-coded totals column indices or _totals[...] access outside "
        "accountant.py/sharding.py/filters.py"
    )

    def applies(self, module: Module) -> bool:
        return module.relpath not in _ALLOWED

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and node.attr == "_totals":
                yield self.finding(
                    module,
                    node,
                    "direct LedgerStore/BlockLedger `_totals` access outside "
                    "the accounting modules bypasses the filter-declared schema",
                )
            elif isinstance(node, ast.Subscript):
                yield from self._check_subscript(module, node)

    def _check_subscript(self, module: Module, node: ast.Subscript):
        base = node.value
        is_totals_attr = isinstance(base, ast.Attribute) and base.attr == "totals"
        is_totals_name = isinstance(base, ast.Name) and base.id == "totals"
        if not (is_totals_attr or is_totals_name):
            return
        slice_node = node.slice
        if isinstance(slice_node, ast.Tuple):
            # (row, col) indexing: any constant past the row position is a
            # hard-coded column.
            if any(_is_int_constant(elt) for elt in slice_node.elts[1:]):
                yield self.finding(
                    module,
                    node,
                    "hard-coded totals column index; use the named TOT_* "
                    "constants / the filter's declared schema",
                )
        elif _is_int_constant(slice_node):
            # A single integer subscript is a *column* only on 1-D per-block
            # rows: a bare `totals` name or a `.totals` on a call result
            # (`ledger(key).totals[0]`).  `store.totals[3]` is row indexing.
            if is_totals_name or (
                is_totals_attr and isinstance(base.value, ast.Call)
            ):
                yield self.finding(
                    module,
                    node,
                    "hard-coded totals column index on a per-block totals row; "
                    "use the named TOT_* constants",
                )
