"""Thread-shared-state rule: pool callables close over nothing mutable.

The platform's parallel propose phase and the sharded accountant's
phase-one validation both fan work out over ``ThreadPoolExecutor``s with
an explicit contract (PR 5): submitted callables may only close over
their arguments and documented-immutable state.  A closure that captures
a mutable accountant attribute -- the staged overlay, the scan memo, the
charge log -- turns "deterministic regardless of scheduling" into a data
race that no single-threaded test can catch.

For every ``pool.map(f, ...)`` / ``pool.submit(f, ...)`` call in
``src/repro/`` (receivers whose name contains ``pool`` or ``executor``),
this rule resolves ``f`` when it is a lambda or a local ``def`` in the
same enclosing function and flags, inside its body:

* reads of known-mutable accountant/platform attributes
  (``self._staged``, ``self._scan_memo``, ``self._charges``,
  ``self._dead``, ``self._row_cache``, ``self._ledgers``,
  ``self._pipelines``, ``self._table``, ``self.last_hour_*``);
* assignments through captured names (attribute/subscript writes whose
  root is not bound inside the callable) and ``nonlocal``/``global``
  declarations;
* calls to the known accounting mutators (``record``, ``stage_charge``,
  ``settle``, ...) -- pool work validates and reads; commits stay on the
  serial path.

The rule inspects one level (the callable body itself, not its whole
transitive call tree); deeper purity is the purity rule's and the
byte-parity property tests' job.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.engine import Finding, Module, Project, Rule
from repro.analysis.astutil import (
    MUTATOR_METHODS,
    attr_root,
    call_name,
)

__all__ = ["ThreadSharedStateRule"]

_SCOPE_PREFIX = "src/repro/"

# Accountant/platform attributes documented as mutable across an hour --
# the overlay, memo, logs, diagnostics, reservation state.  Reading these
# from a pool thread races with the serial drive.
MUTABLE_ATTRS = frozenset(
    {
        "_staged",
        "_scan_memo",
        "_charges",
        "_dead",
        "_row_cache",
        "_ledgers",
        "_pipelines",
        "_table",
        # Registry-backed drive counters (PR 9): the properties read the
        # metrics registry's plain dicts, which the serial drive updates
        # mid-hour -- as racy from a pool thread as the old attributes.
        "last_hour_charges",
        "last_hour_speculations",
        # Telemetry state itself: the tracer's span stack / clock and the
        # registry's dicts are serial-drive-only (the determinism contract
        # in repro.obs forbids emission from worker threads).
        "_telemetry",
        "_tracer",
        "_metrics",
        "_hour_mark",
    }
)


class ThreadSharedStateRule(Rule):
    name = "thread-shared-state"
    description = (
        "callables submitted to thread pools may only close over arguments "
        "and documented-immutable state"
    )

    def applies(self, module: Module) -> bool:
        return module.relpath.startswith(_SCOPE_PREFIX)

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local_defs = self._local_defs(func)
            for call in ast.walk(func):
                if not isinstance(call, ast.Call) or not self._is_pool_dispatch(call):
                    continue
                target = self._resolve_callable(call, local_defs)
                if target is None:
                    continue
                yield from self._check_callable(module, func.name, target)

    # ------------------------------------------------------------------
    @staticmethod
    def _is_pool_dispatch(call: ast.Call) -> bool:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr in ("map", "submit")):
            return False
        root = attr_root(func.value)
        chain = root.lower() if root else ""
        if isinstance(func.value, ast.Attribute):
            chain += "." + func.value.attr.lower()
        return "pool" in chain or "executor" in chain

    @staticmethod
    def _local_defs(func: ast.AST) -> Dict[str, ast.FunctionDef]:
        defs: Dict[str, ast.FunctionDef] = {}
        for node in ast.walk(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
                defs[node.name] = node
        return defs

    @staticmethod
    def _resolve_callable(
        call: ast.Call, local_defs: Dict[str, ast.FunctionDef]
    ) -> Optional[ast.AST]:
        if not call.args:
            return None
        arg = call.args[0]
        if isinstance(arg, ast.Lambda):
            return arg
        if isinstance(arg, ast.Name):
            return local_defs.get(arg.id)
        return None

    # ------------------------------------------------------------------
    def _check_callable(
        self, module: Module, dispatcher: str, target: ast.AST
    ) -> Iterable[Finding]:
        bound = self._bound_names(target)
        body = target.body if isinstance(target, ast.Lambda) else target
        kind = "lambda" if isinstance(target, ast.Lambda) else f"{target.name}()"
        for node in ast.walk(body if isinstance(body, ast.AST) else target):
            if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                # The attribute name itself is the signal: these names are
                # only ever mutable accountant/platform state, whatever
                # local name the owner is bound to.
                if node.attr in MUTABLE_ATTRS:
                    yield self.finding(
                        module,
                        node,
                        f"pool callable {kind} in {dispatcher}() reads mutable "
                        f"shared attribute `.{node.attr}`",
                    )
            elif isinstance(node, (ast.Nonlocal, ast.Global)):
                names = ", ".join(node.names)
                yield self.finding(
                    module,
                    node,
                    f"pool callable {kind} in {dispatcher}() rebinds enclosing "
                    f"names ({names}) from a worker thread",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                yield from self._check_assignment(module, dispatcher, kind, node, bound)
            elif isinstance(node, ast.Call):
                callee = call_name(node)
                if callee in MUTATOR_METHODS:
                    yield self.finding(
                        module,
                        node,
                        f"pool callable {kind} in {dispatcher}() calls mutator "
                        f"`{callee}()` -- commits must stay on the serial path",
                    )

    def _check_assignment(
        self, module: Module, dispatcher: str, kind: str, node: ast.AST, bound: Set[str]
    ) -> Iterable[Finding]:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                root = attr_root(target)
                if root is not None and root not in bound:
                    yield self.finding(
                        module,
                        target,
                        f"pool callable {kind} in {dispatcher}() mutates captured "
                        f"`{root}` from a worker thread",
                    )

    @staticmethod
    def _bound_names(target: ast.AST) -> Set[str]:
        """Names bound inside the callable: parameters, assignments,
        loop/with/comprehension targets -- everything that is *not* a
        closure capture."""
        bound: Set[str] = set()
        if isinstance(target, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            args = target.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                bound.add(arg.arg)
        for node in ast.walk(target):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                bound.add(node.id)
            elif isinstance(node, ast.comprehension):
                for name in ast.walk(node.target):
                    if isinstance(name, ast.Name):
                        bound.add(name.id)
        return bound
