"""Purity rule: pure accountant read paths must not mutate anything.

The propose/decide/settle protocol (PR 3) and the parallel propose drive
(PR 5) both rest on one contract: ``AdaptiveSession.propose_peek`` and the
accountant's read surface (``admits_keys`` / ``can_charge`` /
``max_epsilon``) are *pure reads*.  The platform peeks sessions from
worker threads against a frozen snapshot precisely because nothing along
those paths writes -- a single mutation silently breaks byte-parity (or
worse, thread safety) without failing any direct unit test.

This rule builds a name-based call graph over every class method defined
in ``src/repro/core/``: an edge ``f -> g`` exists when ``f``'s body calls
any method named ``g`` (ubiquitous builtin-container method names are
excluded from edges so ``out.append(...)`` does not drag
``LedgerStore.append`` into the graph).  Every method reachable from the
seed set is then scanned for:

* assignments to ``self.*`` (including augmented and annotated targets);
* subscript writes through ``self`` (``self._cache[k] = v``,
  ``self._eps[rows] += x``);
* calls to known accounting mutators (``record``, ``stage_charge``,
  ``settle``, ``retire``, ``write_row``/``write_rows``, ...) on any
  receiver, and container mutators (``.add``/``.update``/``.clear``...)
  on receivers rooted at ``self``.

Known limitations (by design -- this is a linter, not an interpreter):
calls routed through stored callables (``self._row_budget_fn(...)``)
escape the name-based graph, and methods are merged across classes by
name.  The dynamic twin of this rule -- the full-state snapshot test in
``tests/analysis/test_propose_peek_purity.py`` -- covers the hook paths.

Benign-by-design writes on read paths (memo caches with value-identical
reads, deferred retirement persistence) must carry an explicit
``# repro: allow(purity) -- reason`` so every such exception is a
reviewed, documented decision.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.engine import Finding, Module, Project, Rule
from repro.analysis.rules.common import (
    MUTATOR_METHODS,
    SELF_MUTATOR_METHODS,
    assigned_target_nodes,
    attr_chain,
    attr_root,
    call_name,
    walk_calls,
)

__all__ = ["PurityRule"]

# Entry points of the pure-read contract.  ``propose_peek`` is the
# parallel propose drive's whole foundation; the accountant reads are what
# every window scan and admissibility decision flows through.
PURE_SEEDS = (
    "propose_peek",
    "admits_keys",
    "can_charge",
    "max_epsilon",
)

# Builtin-container method names excluded from call-graph *edges* (they
# would alias e.g. ``list.append`` onto ``LedgerStore.append``).  They are
# still checked as mutations when invoked on a ``self``-rooted receiver.
_EDGE_EXCLUDED = SELF_MUTATOR_METHODS | frozenset(
    {"get", "items", "keys", "values", "copy", "tolist", "join", "split",
     "min", "max", "sum", "all", "any", "astype", "reshape", "setflags"}
)

_SCOPE_PREFIX = "src/repro/core/"


class PurityRule(Rule):
    name = "purity"
    description = (
        "methods reachable from propose_peek/admits_keys/can_charge/"
        "max_epsilon must not mutate session, accountant, or store state"
    )

    def applies(self, module: Module) -> bool:
        return module.relpath.startswith(_SCOPE_PREFIX)

    # The call graph spans every in-scope module, so it is built once per
    # project and findings are emitted while visiting the defining module.
    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        graph = self._project_graph(project)
        reachable = graph["reachable"]
        parents = graph["parents"]
        for method_name, defs in graph["methods"].items():
            if method_name not in reachable:
                continue
            for owner_module, class_name, func in defs:
                if owner_module is not module:
                    continue
                chain = self._seed_chain(method_name, parents)
                for node, what in self._violations(func):
                    yield self.finding(
                        module,
                        node,
                        f"{class_name}.{method_name} {what}, but it is "
                        f"reachable from pure read path {chain}",
                    )

    # ------------------------------------------------------------------
    def _project_graph(self, project: Project) -> dict:
        cache = getattr(project, "_purity_graph", None)
        if cache is not None:
            return cache
        methods: Dict[str, List[Tuple[Module, str, ast.FunctionDef]]] = {}
        for module in project:
            if not self.applies(module):
                continue
            for node in module.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        methods.setdefault(item.name, []).append(
                            (module, node.name, item)
                        )
        edges: Dict[str, Set[str]] = {}
        for method_name, defs in methods.items():
            out: Set[str] = set()
            for _, _, func in defs:
                for call in walk_calls(func):
                    callee = call_name(call)
                    if (
                        callee
                        and callee != method_name
                        and callee in methods
                        and callee not in _EDGE_EXCLUDED
                    ):
                        out.add(callee)
            edges[method_name] = out
        reachable: Set[str] = set()
        parents: Dict[str, str] = {}
        frontier = [seed for seed in PURE_SEEDS if seed in methods]
        reachable.update(frontier)
        while frontier:
            current = frontier.pop()
            for callee in sorted(edges.get(current, ())):
                if callee not in reachable:
                    reachable.add(callee)
                    parents[callee] = current
                    frontier.append(callee)
        graph = {"methods": methods, "reachable": reachable, "parents": parents}
        project._purity_graph = graph  # type: ignore[attr-defined]
        return graph

    @staticmethod
    def _seed_chain(method_name: str, parents: Dict[str, str]) -> str:
        chain = [method_name]
        seen = {method_name}
        while chain[-1] in parents and parents[chain[-1]] not in seen:
            chain.append(parents[chain[-1]])
            seen.add(chain[-1])
        return " <- ".join(chain)

    # ------------------------------------------------------------------
    @staticmethod
    def _violations(func: ast.FunctionDef) -> Iterable[Tuple[ast.AST, str]]:
        for node in ast.walk(func):
            for target in assigned_target_nodes(node):
                if isinstance(target, ast.Attribute) and attr_root(target) == "self":
                    yield node, f"assigns self.{target.attr}"
                elif isinstance(target, ast.Subscript) and attr_root(target) == "self":
                    chain = ".".join(attr_chain(target.value)) or "self[...]"
                    yield node, f"writes {chain}[...]"
            if isinstance(node, ast.Call):
                callee = call_name(node)
                if callee is None or not isinstance(node.func, ast.Attribute):
                    continue
                root = attr_root(node.func.value)
                if callee in MUTATOR_METHODS:
                    receiver = ".".join(attr_chain(node.func.value)) or "<expr>"
                    yield node, f"calls mutator {receiver}.{callee}()"
                elif callee in SELF_MUTATOR_METHODS and root == "self":
                    receiver = ".".join(attr_chain(node.func.value))
                    yield node, f"calls mutator {receiver}.{callee}()"
