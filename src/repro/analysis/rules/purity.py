"""Purity rule: pure accountant read paths must not mutate anything.

The propose/decide/settle protocol (PR 3) and the parallel propose drive
(PR 5) both rest on one contract: ``AdaptiveSession.propose_peek`` and the
accountant's read surface (``admits_keys`` / ``can_charge`` /
``max_epsilon``) are *pure reads*.  The platform peeks sessions from
worker threads against a frozen snapshot precisely because nothing along
those paths writes -- a single mutation silently breaks byte-parity (or
worse, thread safety) without failing any direct unit test.

Since PR 8 the rule runs on the typed interprocedural call graph
(:mod:`repro.analysis.callgraph`): ``self.access.accountant.can_charge``
resolves through attribute and property types to the *defining* class, so
reachability is per ``(class, method)`` pair instead of merging every
method of one name across the tree.  Each reachable method is scanned
with the alias-aware mutation extractor
(:func:`repro.analysis.dataflow.mutations_in_stmt`):

* assignments to ``self.*`` (including augmented and annotated targets);
* subscript writes through ``self`` (``self._cache[k] = v``), including
  writes through a local that aliases ``self`` storage
  (``store = self._store; store[k] = v``);
* calls to known accounting mutators (``record``, ``stage_charge``,
  ``settle``, ``retire``, ``write_row``/``write_rows``, ...) on any
  receiver, and container mutators (``.add``/``.update``/``.clear``...)
  on receivers rooted at ``self`` -- again through aliases.

Findings name the exact mutated attribute path and the resolved call
chain back to the seed.  Known limitations (by design -- this is a
linter, not an interpreter): calls routed through stored callables
(``self._row_budget_fn(...)``) still escape the graph; the runtime
sanitizer (:mod:`repro.analysis.sanitizer`) and the full-state snapshot
test in ``tests/analysis/test_propose_peek_purity.py`` cover those.

Benign-by-design writes on read paths (memo caches with value-identical
reads, deferred retirement persistence) must carry an explicit
``# repro: allow(purity) -- reason`` so every such exception is a
reviewed, documented decision.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Tuple

from repro.analysis.callgraph import CallGraph, MethodRef
from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import MayAlias, Mutation, mutations_in_stmt
from repro.analysis.engine import Finding, Module, Project, Rule
from repro.analysis.astutil import SELF_MUTATOR_METHODS

__all__ = ["PurityRule", "PURE_SEEDS"]

# Entry points of the pure-read contract.  ``propose_peek`` is the
# parallel propose drive's whole foundation; the accountant reads are what
# every window scan and admissibility decision flows through.
PURE_SEEDS = (
    "propose_peek",
    "admits_keys",
    "can_charge",
    "max_epsilon",
)

# Builtin-container method names whose untyped call sites must not create
# graph edges (they would alias e.g. ``list.append`` onto
# ``LedgerStore.append``).  Typed resolution is unaffected; these only
# gate the by-name fallback.  They are still checked as mutations when
# invoked on a ``self``-rooted receiver.
_EDGE_EXCLUDED = SELF_MUTATOR_METHODS | frozenset(
    {"get", "items", "keys", "values", "copy", "tolist", "join", "split",
     "min", "max", "sum", "all", "any", "astype", "reshape", "setflags"}
)

_SCOPE_PREFIX = "src/repro/core/"


class PurityRule(Rule):
    name = "purity"
    description = (
        "methods reachable from propose_peek/admits_keys/can_charge/"
        "max_epsilon must not mutate session, accountant, or store state"
    )

    def applies(self, module: Module) -> bool:
        return module.relpath.startswith(_SCOPE_PREFIX)

    # The call graph spans every in-scope module, so it is built once per
    # project and findings are emitted while visiting the defining module.
    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        graph = self._project_graph(project)
        callgraph: CallGraph = graph["callgraph"]
        parents: Dict[MethodRef, MethodRef] = graph["parents"]
        for ref in sorted(graph["reached"]):
            defn = callgraph.method_def(ref)
            if defn is None:
                continue
            owner_module, func = defn
            if owner_module is not module:
                continue
            chain = self._seed_chain(ref, parents)
            qualname = f"{ref[0]}.{ref[1]}" if ref[0] else ref[1]
            for mutation in self._violations(func):
                yield Finding(
                    path=module.relpath,
                    line=mutation.lineno,
                    col=mutation.col_offset + 1,
                    rule=self.name,
                    message=(
                        f"{qualname} {mutation.what}, but it is reachable "
                        f"from pure read path {chain}"
                    ),
                )

    # ------------------------------------------------------------------
    def _project_graph(self, project: Project) -> dict:
        cache = getattr(project, "_purity_graph", None)
        if cache is not None:
            return cache
        scope = [m for m in project if self.applies(m)]
        callgraph = CallGraph(project, scope=scope, fallback_excluded=_EDGE_EXCLUDED)
        reached, parents = callgraph.reachable_from(PURE_SEEDS)
        graph = {"callgraph": callgraph, "reached": reached, "parents": parents}
        project._purity_graph = graph  # type: ignore[attr-defined]
        return graph

    @staticmethod
    def _seed_chain(ref: MethodRef, parents: Dict[MethodRef, MethodRef]) -> str:
        chain = [ref]
        seen = {ref}
        while chain[-1] in parents and parents[chain[-1]] not in seen:
            chain.append(parents[chain[-1]])
            seen.add(chain[-1])
        return " <- ".join(
            f"{cls}.{name}" if cls else name for cls, name in chain
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _violations(func: ast.FunctionDef) -> List[Mutation]:
        cfg = build_cfg(func)
        aliases = MayAlias(cfg).alias_map()
        out: List[Mutation] = []
        for node in cfg.stmt_nodes():
            out.extend(mutations_in_stmt(node.stmt, aliases))
        return out
