"""Paired-calls rule: staged batches and scan memos must always close.

The hourly drive's central contract is that ``begin_staging`` reaches a
commit or abort on *every* path -- an hour that raises mid-drive must
still land its completed attempts' charges (``Sage.advance`` commits from
a ``finally``), and an overlay left open poisons every later read (all
admissibility checks see stale staged spend) while blocking every later
``charge``/``charge_many``.  The snapshot-scoped scan memo has the same
shape: ``begin_scan_memo`` freezes the overlay and must be ended by
``end_scan_memo`` even when a peek raises.  The WAL hour lifecycle joins
them: a ``begin_hour`` left open would make the *next* hour's
``begin_hour`` fail and -- worse -- leave a partial hour record as the
log's tail, so every ``begin_hour`` must reach ``commit_hour`` or
``abort_hour``, with one of them in a ``finally``.

Since PR 8 the check is *path-sensitive* on the function's CFG instead of
the old "one closer somewhere inside a finally" heuristic: the rule asks
whether any feasible path runs from a completed opener call to a function
exit (normal or raising) without passing a closer.  Branch correlation
prunes the ``if staged: begin_staging()`` ... ``finally: if staged:
commit_staged()`` pseudo-leak, and a closer guarded by a state test
(``if wal.hour_open: abort_hour()``) counts as closing at the guard --
the guard is trusted to detect openness, which is exactly what such
guards are for.  Functions *named* like the opener or a closer (the
definitions and thin wrappers) are exempt; tests and benchmarks are out
of scope on purpose -- they open batches mid-assertion to exercise
exactly the error paths this rule forbids in production code.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.cfg import CFG, CFGNode, build_cfg
from repro.analysis.dataflow import feasible_path_exists
from repro.analysis.engine import Finding, Module, Project, Rule
from repro.analysis.astutil import call_name, walk_calls

__all__ = ["PairedCallsRule"]

PAIRS = (
    (
        "begin_staging",
        ("commit_staged", "abort_staged", "pop_staged", "commit_staged_trusted"),
    ),
    ("begin_scan_memo", ("end_scan_memo",)),
    ("begin_hour", ("commit_hour", "abort_hour")),
)

_SCOPE_PREFIX = "src/repro/"


def _closer_nodes(cfg: CFG, closers) -> List[CFGNode]:
    """Nodes that count as "the pair closes here": closer call statements,
    plus branch headers whose taken body top-level contains a closer call
    (``if wal.hour_open: wal.abort_hour()`` closes at the guard -- the
    guard exists to detect openness)."""
    nodes = list(cfg.nodes_calling(closers))
    wanted = set(closers)
    for node in cfg.stmt_nodes():
        if not isinstance(node.stmt, ast.If):
            continue
        for stmt in node.stmt.body:
            if any(call_name(c) in wanted for c in walk_calls(stmt)):
                nodes.append(node)
                break
    return nodes


class PairedCallsRule(Rule):
    name = "paired-calls"
    description = (
        "begin_staging/begin_scan_memo/begin_hour must reach their closing "
        "call on every feasible CFG path"
    )

    def applies(self, module: Module) -> bool:
        return module.relpath.startswith(_SCOPE_PREFIX)

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            called = {
                name for name in (call_name(c) for c in walk_calls(node)) if name
            }
            cfg = None
            for opener, closers in PAIRS:
                if node.name == opener or node.name in closers:
                    continue  # definitions and their thin wrappers
                if opener not in called:
                    continue
                if cfg is None:
                    cfg = build_cfg(node)
                opener_nodes = cfg.nodes_calling({opener})
                if not opener_nodes:
                    continue  # opener only inside a nested def
                if not (called & set(closers)):
                    yield self.finding(
                        module,
                        opener_nodes[0].stmt,
                        f"{node.name}() calls {opener}() but never calls any of "
                        f"{'/'.join(closers)} -- the batch cannot close on any path",
                    )
                    continue
                if feasible_path_exists(
                    cfg,
                    [cfg.entry],
                    [cfg.exit, cfg.raise_exit],
                    avoid=_closer_nodes(cfg, closers),
                    via=opener_nodes,
                ):
                    yield self.finding(
                        module,
                        opener_nodes[0].stmt,
                        f"{node.name}() has a path from {opener}() to an exit "
                        f"that skips {'/'.join(closers)} -- a raising path "
                        "leaves the batch open",
                    )
