"""Paired-calls rule: staged batches and scan memos must always close.

The hourly drive's central contract is that ``begin_staging`` reaches a
commit or abort on *every* path -- an hour that raises mid-drive must
still land its completed attempts' charges (``Sage.advance`` commits from
a ``finally``), and an overlay left open poisons every later read (all
admissibility checks see stale staged spend) while blocking every later
``charge``/``charge_many``.  The snapshot-scoped scan memo has the same
shape: ``begin_scan_memo`` freezes the overlay and must be ended by
``end_scan_memo`` even when a peek raises.  The WAL hour lifecycle joins
them: a ``begin_hour`` left open would make the *next* hour's
``begin_hour`` fail and -- worse -- leave a partial hour record as the
log's tail, so every ``begin_hour`` must reach ``commit_hour`` or
``abort_hour``, with one of them in a ``finally``.

For every function in ``src/repro/`` that calls an opener, this rule
requires (a) a matching closer call somewhere in the same function and
(b) at least one closer call placed inside a ``try/finally`` handler's
``finally`` block, so no raising path can skip it.  Functions *named*
like the opener or a closer (the definitions and thin wrappers) are
exempt; tests and benchmarks are out of scope on purpose -- they open
batches mid-assertion to exercise exactly the error paths this rule
forbids in production code.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.analysis.engine import Finding, Module, Project, Rule
from repro.analysis.rules.common import call_name, walk_calls

__all__ = ["PairedCallsRule"]

PAIRS = (
    (
        "begin_staging",
        ("commit_staged", "abort_staged", "pop_staged", "commit_staged_trusted"),
    ),
    ("begin_scan_memo", ("end_scan_memo",)),
    ("begin_hour", ("commit_hour", "abort_hour")),
)

_SCOPE_PREFIX = "src/repro/"


class PairedCallsRule(Rule):
    name = "paired-calls"
    description = (
        "begin_staging/begin_scan_memo/begin_hour must reach their closing "
        "call on every path (closer inside a try/finally)"
    )

    def applies(self, module: Module) -> bool:
        return module.relpath.startswith(_SCOPE_PREFIX)

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            called = {
                name for name in (call_name(c) for c in walk_calls(node)) if name
            }
            finally_called = self._finally_calls(node)
            for opener, closers in PAIRS:
                if node.name == opener or node.name in closers:
                    continue  # definitions and their thin wrappers
                opener_calls = [
                    c for c in walk_calls(node) if call_name(c) == opener
                ]
                if not opener_calls:
                    continue
                if not (called & set(closers)):
                    yield self.finding(
                        module,
                        opener_calls[0],
                        f"{node.name}() calls {opener}() but never calls any of "
                        f"{'/'.join(closers)} -- the batch cannot close on any path",
                    )
                elif not (finally_called & set(closers)):
                    yield self.finding(
                        module,
                        opener_calls[0],
                        f"{node.name}() calls {opener}() but no "
                        f"{'/'.join(closers)} call sits in a try/finally -- a "
                        "raising path leaves the batch open",
                    )

    @staticmethod
    def _finally_calls(func: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    for call in walk_calls(stmt):
                        name = call_name(call)
                        if name:
                            names.add(name)
        return names
