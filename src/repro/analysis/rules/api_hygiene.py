"""API-hygiene rule: the small-but-deadly Python footguns.

Three patterns with an outsized blast radius in this codebase:

* **Mutable default arguments** (``def f(x, acc=[])``): the default is
  created once at ``def`` time, so state leaks across calls -- in a
  platform whose whole point is exact accounting, a shared-by-accident
  list of charges is a correctness bug, not a style nit.
* **Bare ``except:``** catches ``KeyboardInterrupt``/``SystemExit`` and
  swallows the staged-batch invariant errors the accountant raises on
  purpose.  Catch ``Exception`` (and re-raise) when a cleanup really must
  observe everything.
* **Mutation inside ``assert``** (``assert session.step() == "ok"``):
  under ``python -O`` asserts are stripped *with their side effects*, so
  the protocol silently stops advancing.  Applies to tests too -- that is
  where the pattern breeds.

Flags, everywhere in scope: defaults that are list/dict/set displays or
comprehensions or bare ``list()``/``dict()``/``set()``/``bytearray()``
calls; ``except:`` handlers with no exception type; and ``assert``
statements whose test calls a known state-advancing method (``step``,
``resume``, ``advance``, ``charge``, ...) or contains a walrus
assignment.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import Finding, Module, Project, Rule
from repro.analysis.astutil import MUTATOR_METHODS, call_name, walk_calls

__all__ = ["ApiHygieneRule"]

# Methods that advance platform state when called; their appearance inside
# an `assert` test means `python -O` changes behaviour.
_ASSERT_MUTATORS = MUTATOR_METHODS | frozenset(
    {
        "step",
        "resume",
        "advance",
        "run_hour",
        "observe",
        "propose",
        "decide",
        "append",
        "add",
        "update",
        "pop",
        "remove",
        "discard",
        "clear",
    }
)

_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_FACTORIES
    )


class ApiHygieneRule(Rule):
    name = "api-hygiene"
    description = (
        "no mutable default args, bare except, or state mutation inside "
        "assert statements"
    )

    def applies(self, module: Module) -> bool:
        return True

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                yield from self._check_defaults(module, node)
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare `except:` catches KeyboardInterrupt/SystemExit and "
                    "accounting invariant errors; catch `Exception` at most",
                )
            elif isinstance(node, ast.Assert):
                yield from self._check_assert(module, node)

    def _check_defaults(self, module: Module, func: ast.AST) -> Iterable[Finding]:
        args = func.args
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
        for default in defaults:
            if _is_mutable_default(default):
                name = getattr(func, "name", "<lambda>")
                yield self.finding(
                    module,
                    default,
                    f"mutable default argument in {name}(): the default is "
                    "shared across calls; use None and create inside",
                )

    def _check_assert(self, module: Module, node: ast.Assert) -> Iterable[Finding]:
        for sub in ast.walk(node.test):
            if isinstance(sub, ast.NamedExpr):
                yield self.finding(
                    module,
                    node,
                    "assignment inside `assert` disappears under python -O; "
                    "bind before asserting",
                )
                return
        for call in walk_calls(node.test):
            callee = call_name(call)
            if callee in _ASSERT_MUTATORS:
                yield self.finding(
                    module,
                    node,
                    f"state-mutating call `{callee}()` inside `assert` is "
                    "stripped under python -O; bind the result first, then "
                    "assert on it",
                )
                return
