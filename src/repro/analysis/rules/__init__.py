"""Rule registry for the invariant linter.

``ALL_RULES`` is the canonical ordering: it fixes both the ``--list-rules``
output and the rule order inside the JSON report, so keep it stable and
append new rules at the end (see the package docstring in
``repro.analysis`` for the full recipe for adding one).
"""

from __future__ import annotations

from typing import List

from repro.analysis.engine import Rule
from repro.analysis.rules.api_hygiene import ApiHygieneRule
from repro.analysis.rules.float_determinism import FloatDeterminismRule
from repro.analysis.rules.lock_discipline import LockDisciplineRule
from repro.analysis.rules.paired_calls import PairedCallsRule
from repro.analysis.rules.purity import PurityRule
from repro.analysis.rules.rollback import RollbackCompletenessRule
from repro.analysis.rules.schema_width import SchemaWidthRule
from repro.analysis.rules.telemetry import TelemetryIsolationRule
from repro.analysis.rules.thread_shared import ThreadSharedStateRule
from repro.analysis.rules.wal_ordering import WalOrderingRule

__all__ = ["ALL_RULES", "default_rules"]

ALL_RULES = (
    PurityRule,
    PairedCallsRule,
    SchemaWidthRule,
    ThreadSharedStateRule,
    FloatDeterminismRule,
    ApiHygieneRule,
    RollbackCompletenessRule,
    WalOrderingRule,
    LockDisciplineRule,
    TelemetryIsolationRule,
)


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in canonical order."""
    return [cls() for cls in ALL_RULES]
