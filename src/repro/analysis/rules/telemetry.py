"""Telemetry-isolation rule: observation never crosses into accounting.

PR 9's determinism contract (see :mod:`repro.obs`) has two structural
halves, and this rule enforces both statically:

* **Pure read paths stay telemetry-free.**  Spans and metrics are emitted
  only from driver/mutating coordination points; anything reachable from
  the pure-read seeds (``propose_peek`` / ``admits_keys`` / ``can_charge``
  / ``max_epsilon``) must contain no telemetry emission.  The hazard is
  concrete: ``can_charge_many`` and ``charge_many`` share
  ``_validate_many_vectorized``, so a span emitted there would fire from
  worker-thread peeks too -- nondeterministic emission order, a logical
  clock that depends on pool scheduling, and a byte-different trace per
  run.  Reachability reuses the purity rule's typed call graph (one build
  per project, cached on it).
* **Telemetry never mutates accounting.**  Modules under ``src/repro/obs/``
  observe through documented pure reads; a call to any known accounting
  mutator (``charge_many``, ``write_rows``, ``settle``, ...) from an
  exporter or registry helper would let "turn on metrics" change the
  accounting trajectory -- exactly what the telemetry-on/off byte-parity
  property forbids.

A telemetry *emission* is a ``span`` / ``event`` / ``inc`` / ``set_gauge``
/ ``observe`` / ``record_span`` call whose receiver chain is rooted in
telemetry state (a name containing ``tracer`` / ``telemetry`` /
``metrics`` / ``profiler`` / ``probe`` -- the platform deliberately names
its handles that way, and the thread-shared-state rule keeps those
handles off pool threads).  PR 10's :class:`~repro.obs.WallProfiler`
rides the same emission surface plus ``record_span``, and the same
isolation applies: a wall-clock span on a pure read path would fire from
worker threads with a pool-scheduled emission order.  Deliberate
exceptions carry the standard ``# repro: allow(telemetry-isolation) --
reason`` marker.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable

from repro.analysis.callgraph import MethodRef
from repro.analysis.engine import Finding, Module, Project, Rule
from repro.analysis.astutil import MUTATOR_METHODS, attr_chain, call_name
from repro.analysis.rules.purity import PurityRule

__all__ = ["TelemetryIsolationRule", "TELEMETRY_METHODS"]

_CORE_PREFIX = "src/repro/core/"
_OBS_PREFIX = "src/repro/obs/"

#: Emission surface of the tracer, the metrics registry, and the
#: wall-clock profiler (``record_span`` synthesizes an already-closed
#: span from a pool-measured duration -- still an emission).
TELEMETRY_METHODS = frozenset(
    {"span", "event", "inc", "set_gauge", "observe", "record_span"}
)

# Receiver-chain roots that mark a call as telemetry emission.
_TELEMETRY_ROOTS = ("tracer", "telemetry", "metrics", "profiler", "probe")


def _is_telemetry_emission(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in TELEMETRY_METHODS:
        return False
    chain = attr_chain(func.value)
    return any(
        root in part.lower() for part in chain for root in _TELEMETRY_ROOTS
    )


class TelemetryIsolationRule(Rule):
    name = "telemetry-isolation"
    description = (
        "pure read paths must emit no telemetry, and telemetry modules "
        "must never call accounting mutators"
    )

    def applies(self, module: Module) -> bool:
        return module.relpath.startswith((_CORE_PREFIX, _OBS_PREFIX))

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        if module.relpath.startswith(_OBS_PREFIX):
            yield from self._check_obs(module)
        else:
            yield from self._check_pure_paths(module, project)

    # ------------------------------------------------------------------
    # Direction 1: nothing pure-reachable emits telemetry
    # ------------------------------------------------------------------
    def _check_pure_paths(
        self, module: Module, project: Project
    ) -> Iterable[Finding]:
        graph = PurityRule()._project_graph(project)
        callgraph = graph["callgraph"]
        parents: Dict[MethodRef, MethodRef] = graph["parents"]
        for ref in sorted(graph["reached"]):
            defn = callgraph.method_def(ref)
            if defn is None:
                continue
            owner_module, func = defn
            if owner_module is not module:
                continue
            qualname = f"{ref[0]}.{ref[1]}" if ref[0] else ref[1]
            chain = PurityRule._seed_chain(ref, parents)
            for node in ast.walk(func):
                if isinstance(node, ast.Call) and _is_telemetry_emission(node):
                    yield self.finding(
                        module,
                        node,
                        f"{qualname} emits telemetry via "
                        f"`.{node.func.attr}()`, but it is reachable from "
                        f"pure read path {chain} -- emission belongs on the "
                        "serial mutating drive only",
                    )

    # ------------------------------------------------------------------
    # Direction 2: obs modules never call accounting mutators
    # ------------------------------------------------------------------
    def _check_obs(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node)
            if callee in MUTATOR_METHODS:
                yield self.finding(
                    module,
                    node,
                    f"telemetry module calls accounting mutator "
                    f"`{callee}()` -- observers read platform state, they "
                    "never change it",
                )
