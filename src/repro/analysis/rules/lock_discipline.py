"""Lock-discipline rule: pool work never writes shard-shared state bare.

The thread-shared-state rule (PR 5) inspects a pool callable's *body*:
captured mutable attributes, closure rebinding, direct mutator calls.
What it deliberately does not see is a write hidden one call away --
``pool.map(lambda s: self._validate_shard(...), shards)`` is clean at
the dispatch site even if ``_validate_shard`` quietly updates a shared
slab.  This rule closes that hole with the typed call graph: starting
from every pool-dispatched callable it follows ``self``-rooted calls
(resolved through attribute types, subclass overrides included) and
flags any **write** to shard-shared accounting state reached that way:

* assignments/subscript writes through a ``self`` chain that contains a
  shared slab or overlay attribute (``_totals``, ``_live``, ``_mirror``,
  ``_shards``, ``_scan_memo``, ...);
* known accounting mutators (``write_rows``, ``retire``, ``settle``,
  ...) called on a ``self``-rooted receiver.

A write is permitted when it is lexically inside ``with <lock>`` (any
context manager whose dotted name mentions ``lock``/``mutex``) or when
the dispatching method's name marks it as the serial commit phase
(``commit`` in the name): the sharded commit fan-out writes disjoint
per-shard slabs by construction and is ordered by the caller.

Receivers the type layer cannot ground in ``self`` (per-entry sessions
handed around as arguments) stay the purity rule's and the byte-parity
tests' business -- this rule is about the accountant's own state racing
its own pool.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.engine import Finding, Module, Project, Rule
from repro.analysis.astutil import MUTATOR_METHODS, attr_chain, call_name
from repro.analysis.rules.thread_shared import (
    MUTABLE_ATTRS,
    ThreadSharedStateRule,
)

__all__ = ["LockDisciplineRule"]

_SCOPE_PREFIX = "src/repro/core/"

# The shared slabs and overlays a worker thread must never write bare:
# the mutable overlay set from the thread-shared rule plus the packed
# ledger columns and the sharded mirror/shard stores themselves.
SHARED_WRITE_ATTRS = MUTABLE_ATTRS | frozenset(
    {"_totals", "_counts", "_live", "_size", "_mirror", "_shards", "_free"}
)

_MAX_DEPTH = 3


def _chain_mentions_shared(chain: Tuple[str, ...]) -> bool:
    return chain[:1] == ("self",) and any(
        part in SHARED_WRITE_ATTRS for part in chain[1:]
    )


def _is_lock_guard(item: ast.withitem) -> bool:
    chain = attr_chain(item.context_expr)
    if not chain and isinstance(item.context_expr, ast.Call):
        chain = attr_chain(item.context_expr.func)
    return any("lock" in part.lower() or "mutex" in part.lower() for part in chain)


def _guarded_lines(func: ast.AST) -> Set[int]:
    """Line numbers lexically under a ``with <lock>`` block."""
    lines: Set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)) and any(
            _is_lock_guard(item) for item in node.items
        ):
            end = getattr(node, "end_lineno", node.lineno)
            lines.update(range(node.lineno, end + 1))
    return lines


class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "writes to shard-shared accounting state reached from pool "
        "callables must hold a lock or stay on the serial commit phase"
    )

    def applies(self, module: Module) -> bool:
        return module.relpath.startswith(_SCOPE_PREFIX)

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        callgraph = self._callgraph(project)
        for class_node in module.tree.body:
            if not isinstance(class_node, ast.ClassDef):
                continue
            for item in class_node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_dispatcher(
                        module, class_node.name, item, callgraph
                    )

    @staticmethod
    def _callgraph(project: Project) -> CallGraph:
        cache = getattr(project, "_lock_callgraph", None)
        if cache is None:
            scope = [m for m in project if m.relpath.startswith(_SCOPE_PREFIX)]
            cache = CallGraph(project, scope=scope)
            project._lock_callgraph = cache  # type: ignore[attr-defined]
        return cache

    # ------------------------------------------------------------------
    def _check_dispatcher(
        self,
        module: Module,
        class_name: str,
        func: ast.FunctionDef,
        callgraph: CallGraph,
    ) -> Iterable[Finding]:
        local_defs = ThreadSharedStateRule._local_defs(func)
        commit_phase = "commit" in func.name.lower()
        for call in ast.walk(func):
            if not isinstance(call, ast.Call):
                continue
            if not ThreadSharedStateRule._is_pool_dispatch(call):
                continue
            target = ThreadSharedStateRule._resolve_callable(call, local_defs)
            if target is None:
                continue
            kind = (
                "lambda"
                if isinstance(target, ast.Lambda)
                else f"{target.name}()"
            )
            writes: Dict[Tuple[int, int], Tuple[str, str, ast.AST]] = {}
            body = [target.body] if isinstance(target, ast.Lambda) else list(target.body)
            self._scan(
                body,
                class_name,
                callgraph,
                _MAX_DEPTH,
                writes,
                set(),
                module,
                anchor=target,
                origin=None,
            )
            for (_, _), (what, origin, anchor) in sorted(
                writes.items(), key=lambda kv: kv[0]
            ):
                if commit_phase:
                    continue
                via = f" (via {origin})" if origin else ""
                yield self.finding(
                    module,
                    anchor,
                    f"pool callable {kind} dispatched from {class_name}."
                    f"{func.name}() {what}{via} without holding a lock -- "
                    "wrap the write in `with <lock>` or keep it on the "
                    "serial commit phase",
                )

    # ------------------------------------------------------------------
    def _scan(
        self,
        body: List[ast.AST],
        owner_class: str,
        callgraph: CallGraph,
        depth: int,
        writes: Dict[Tuple[int, int], Tuple[str, str, ast.AST]],
        visited: Set[Tuple[str, str]],
        module: Module,
        anchor: ast.AST,
        origin: Optional[str],
    ) -> None:
        guarded: Set[int] = set()
        for top in body:
            guarded |= _guarded_lines(top)
        for top in body:
            for node in ast.walk(top):
                self._scan_node(
                    node, owner_class, callgraph, depth, writes, visited,
                    module, anchor, origin, guarded,
                )

    def _scan_node(
        self,
        node: ast.AST,
        owner_class: str,
        callgraph: CallGraph,
        depth: int,
        writes,
        visited,
        module: Module,
        anchor: ast.AST,
        origin: Optional[str],
        guarded: Set[int],
    ) -> None:
        lineno = getattr(node, "lineno", None)
        if lineno is not None and lineno in guarded:
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                probe = target
                suffix = ""
                if isinstance(probe, ast.Subscript):
                    probe = probe.value
                    suffix = "[...]"
                chain = tuple(attr_chain(probe))
                if _chain_mentions_shared(chain):
                    site = anchor if origin else node
                    writes.setdefault(
                        (getattr(site, "lineno", 1), getattr(site, "col_offset", 0)),
                        (
                            f"writes shared self.{'.'.join(chain[1:])}{suffix}",
                            origin or "",
                            site,
                        ),
                    )
        elif isinstance(node, ast.Call):
            callee = call_name(node)
            chain = tuple(attr_chain(node.func))
            if (
                callee in MUTATOR_METHODS
                and chain[:1] == ("self",)
            ):
                site = anchor if origin else node
                writes.setdefault(
                    (getattr(site, "lineno", 1), getattr(site, "col_offset", 0)),
                    (
                        f"calls mutator self.{'.'.join(chain[1:])}()",
                        origin or "",
                        site,
                    ),
                )
            elif chain[:1] == ("self",) and len(chain) == 2 and depth > 0:
                for ref in callgraph.resolve_call(node, owner_class):
                    if ref in visited:
                        continue
                    visited.add(ref)
                    defn = callgraph.method_def(ref)
                    if defn is None:
                        continue
                    _, callee_fn = defn
                    label = f"{ref[0]}.{ref[1]}" if ref[0] else ref[1]
                    self._scan(
                        list(callee_fn.body),
                        ref[0] or owner_class,
                        callgraph,
                        depth - 1,
                        writes,
                        visited,
                        module,
                        anchor=anchor if origin else node,
                        origin=origin or label,
                    )
