"""Rollback-completeness rule: the durable hour must restore what it touched.

``Sage._advance_durable`` brackets one hour between ``wal.begin_hour()``
and the commit point; its exception handler promises to return the
platform to the captured pre-hour state (``txn = self._capture_hour()``
... ``self._rollback_hour(txn)``).  PR 7's crash matrix spot-checks this
dynamically at registered fault points, but a *new* mutation added to the
drive path -- a log, a cache, a counter -- silently widens the gap
between what the hour touches and what the rollback restores, and no
fault point fails until a crash lands exactly there.

This rule proves the containment statically.  For every function that
calls ``begin_hour`` after binding ``<txn> = self._capture*()``:

* the exception path out of the protected region must call a rollback
  helper -- a ``self`` method taking ``<txn>`` as its sole argument;
* every ``self``-attribute the protected region may mutate -- direct
  assignments, subscript writes, and known-mutator calls, collected
  transitively through ``self.*()`` calls on the typed call graph and
  resolved through local aliases -- must have its root attribute either
  **restored** (the rollback helper assigns through it or calls a method
  on it) or **exempt** (diagnostics the contract documents as
  non-rolled-back);
* every key the capture helper stores (``return {"clock": ..., ...}``)
  must be consumed by the rollback helper (``txn["clock"]``) -- a
  captured-but-never-restored key is half a rollback.

Known limitation (documented, deliberate): mutations reached through
receivers the type layer cannot ground in ``self`` (e.g. session objects
handed around as parameters) are out of scope here; the per-entry session
state is covered by the capture/restore *key* check and the dynamic crash
matrix.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import MayAlias, mutations_in_stmt
from repro.analysis.engine import Finding, Module, Project, Rule
from repro.analysis.astutil import attr_chain, call_name, walk_calls

__all__ = ["RollbackCompletenessRule"]

_SCOPE_PREFIX = "src/repro/core/"

# Hour-scoped diagnostics and mechanisms the rollback contract documents
# as not-rolled-back: the per-hour counters are reset at the top of every
# advance, and the WAL/pool handles are the durability machinery itself.
EXEMPT_ROOTS = frozenset(
    {
        "last_hour_charges",
        "last_hour_speculations",
        "_wal",
        "_propose_pool",
        "_snapshots",
        "_hours_committed",
        # Telemetry (PR 9) is observational by contract: counters are
        # monotonic, the hour mark is reset at the top of every advance,
        # and a rolled-back hour deliberately keeps its trace -- the spans
        # record what happened, including the failure.
        "_telemetry",
        "_tracer",
        "_metrics",
        "_hour_mark",
    }
)

_MAX_DEPTH = 4  # transitive self-call collection depth


class RollbackCompletenessRule(Rule):
    name = "rollback-completeness"
    description = (
        "every self-attribute mutated between begin_hour and the commit "
        "point must be restored by the rollback helper (or exempt)"
    )

    def applies(self, module: Module) -> bool:
        return module.relpath.startswith(_SCOPE_PREFIX)

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        callgraph = self._callgraph(project)
        for class_node in module.tree.body:
            if not isinstance(class_node, ast.ClassDef):
                continue
            methods = {
                item.name: item
                for item in class_node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for func in methods.values():
                yield from self._check_function(
                    module, class_node.name, func, methods, callgraph
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _callgraph(project: Project) -> CallGraph:
        cache = getattr(project, "_rollback_callgraph", None)
        if cache is None:
            scope = [
                m for m in project if m.relpath.startswith(_SCOPE_PREFIX)
            ]
            cache = CallGraph(project, scope=scope)
            project._rollback_callgraph = cache  # type: ignore[attr-defined]
        return cache

    def _check_function(
        self,
        module: Module,
        class_name: str,
        func: ast.FunctionDef,
        methods: Dict[str, ast.FunctionDef],
        callgraph: CallGraph,
    ) -> Iterable[Finding]:
        txn_info = self._find_capture(func)
        if txn_info is None:
            return
        txn_name, capture_name = txn_info
        if not any(call_name(c) == "begin_hour" for c in walk_calls(func)):
            return
        rollback_name = self._find_rollback(func, txn_name)
        capture_fn = methods.get(capture_name)
        rollback_fn = methods.get(rollback_name) if rollback_name else None

        cfg = build_cfg(func)
        openers = cfg.nodes_calling({"begin_hour"})
        if not openers:
            return
        region = self._protected_region(cfg, openers, rollback_name)
        mutated = self._mutated_roots(
            cfg, region, class_name, callgraph, depth=_MAX_DEPTH
        )

        if mutated and rollback_fn is None:
            anchor = openers[0].stmt
            yield self.finding(
                module,
                anchor,
                f"{class_name}.{func.name} mutates state after begin_hour() "
                "but its exception path never calls a rollback helper "
                f"taking {txn_name!r}",
            )
            return

        restored = self._restored_roots(rollback_fn) if rollback_fn else set()
        for root, (lineno, col, what) in sorted(mutated.items()):
            if root in restored or root in EXEMPT_ROOTS:
                continue
            yield Finding(
                path=module.relpath,
                line=lineno,
                col=col + 1,
                rule=self.name,
                message=(
                    f"{class_name}.{func.name} protected region {what}, but "
                    f"{rollback_name} never restores self.{root} "
                    "(add a restore, or document the exemption)"
                ),
            )

        if capture_fn is not None and rollback_fn is not None:
            captured = self._captured_keys(capture_fn)
            consumed = self._consumed_keys(rollback_fn, rollback_fn.args)
            for key in sorted(captured - consumed):
                yield self.finding(
                    module,
                    capture_fn,
                    f"{class_name}.{capture_name} captures {key!r} but "
                    f"{rollback_name} never reads it -- captured state is "
                    "not restored",
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _find_capture(func: ast.FunctionDef) -> Optional[Tuple[str, str]]:
        """``txn = self._capture_hour()`` -> ``("txn", "_capture_hour")``."""
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                callee = call_name(node.value)
                chain = attr_chain(node.value.func)
                if (
                    callee
                    and "capture" in callee
                    and chain[:1] == ["self"]
                ):
                    return node.targets[0].id, callee
        return None

    @staticmethod
    def _find_rollback(func: ast.FunctionDef, txn_name: str) -> Optional[str]:
        """The ``self`` method called with the txn as its sole argument."""
        for call in walk_calls(func):
            chain = attr_chain(call.func)
            if (
                len(chain) == 2
                and chain[0] == "self"
                and len(call.args) == 1
                and isinstance(call.args[0], ast.Name)
                and call.args[0].id == txn_name
                and not call.keywords
            ):
                return chain[1]
        return None

    @staticmethod
    def _protected_region(cfg, openers, rollback_name: Optional[str]) -> List:
        """Statement nodes whose mutations the rollback must cover: after
        an opener, and able to reach the rollback call (i.e. inside the
        protected try).  Without a rollback call, everything reachable
        from the opener counts."""
        reach_from_open: Set[int] = set()
        stack = [n for opener in openers for n, _ in cfg.succs(opener)]
        while stack:
            node = stack.pop()
            if node.index in reach_from_open:
                continue
            reach_from_open.add(node.index)
            stack.extend(s for s, _ in cfg.succs(node))
        if rollback_name:
            rollback_nodes = cfg.nodes_calling({rollback_name})
            can_reach: Set[int] = {n.index for n in rollback_nodes}
            stack = list(rollback_nodes)
            while stack:
                node = stack.pop()
                for pred, _ in cfg.preds(node):
                    if pred.index not in can_reach:
                        can_reach.add(pred.index)
                        stack.append(pred)
            reach_from_open &= can_reach
            reach_from_open -= {n.index for n in rollback_nodes}
        return [
            n for n in cfg.stmt_nodes() if n.index in reach_from_open
        ]

    def _mutated_roots(
        self,
        cfg,
        region,
        class_name: str,
        callgraph: CallGraph,
        depth: int,
    ) -> Dict[str, Tuple[int, int, str]]:
        """Root attribute -> (line, col, rendering) for every ``self``
        mutation the region may perform, following ``self.*()`` calls."""
        out: Dict[str, Tuple[int, int, str]] = {}
        stmts = [n.stmt for n in region]
        self._collect(
            stmts,
            class_name,
            callgraph,
            depth,
            out,
            set(),
            aliases=MayAlias(cfg).alias_map(),
            via="",
        )
        return out

    def _collect(
        self,
        stmts,
        class_name: str,
        callgraph: CallGraph,
        depth: int,
        out: Dict[str, Tuple[int, int, str]],
        visited: Set[Tuple[str, str]],
        aliases,
        via: str,
    ) -> None:
        for stmt in stmts:
            for mutation in mutations_in_stmt(stmt, aliases):
                if mutation.root != "self" or len(mutation.path) < 2:
                    continue
                root = mutation.path[1]
                out.setdefault(
                    root,
                    (mutation.lineno, mutation.col_offset, mutation.what + via),
                )
            if depth <= 0:
                continue
            for call in walk_calls(stmt):
                chain = attr_chain(call.func)
                if len(chain) != 2 or chain[0] != "self":
                    continue
                for ref in callgraph.resolve_call(call, class_name):
                    if ref in visited:
                        continue
                    visited.add(ref)
                    defn = callgraph.method_def(ref)
                    if defn is None:
                        continue
                    _, callee_fn = defn
                    self._collect(
                        list(callee_fn.body),
                        ref[0],
                        callgraph,
                        depth - 1,
                        out,
                        visited,
                        aliases=MayAlias(build_cfg(callee_fn)).alias_map(),
                        via=f" (via {ref[0]}.{ref[1]})" if ref[0] else f" (via {ref[1]})",
                    )

    # ------------------------------------------------------------------
    @staticmethod
    def _restored_roots(rollback_fn: ast.FunctionDef) -> Set[str]:
        """Root ``self`` attributes the rollback helper touches: targets
        of assignments through them, receivers of calls on them, and
        containers it iterates to restore elements."""
        roots: Set[str] = set()
        aliases = MayAlias(build_cfg(rollback_fn)).alias_map()
        for node in ast.walk(rollback_fn):
            chains: List[Tuple[str, ...]] = []
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        target = target.value
                    chains.append(tuple(attr_chain(target)))
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                chains.append(tuple(attr_chain(node.func.value)))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                chains.append(tuple(attr_chain(node.iter)))
                for deeper in ast.walk(node.iter):
                    if isinstance(deeper, ast.Call):
                        for arg in deeper.args:
                            chains.append(tuple(attr_chain(arg)))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        chains.append(tuple(attr_chain(target.value)))
            for chain in chains:
                if chain and chain[0] in aliases:
                    chain = aliases[chain[0]] + chain[1:]
                if len(chain) >= 2 and chain[0] == "self":
                    roots.add(chain[1])
        return roots

    @staticmethod
    def _captured_keys(capture_fn: ast.FunctionDef) -> Set[str]:
        keys: Set[str] = set()
        for node in ast.walk(capture_fn):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
                for key in node.value.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.add(key.value)
        return keys

    @staticmethod
    def _consumed_keys(rollback_fn: ast.FunctionDef, args: ast.arguments) -> Set[str]:
        params = [a.arg for a in args.args if a.arg != "self"]
        txn_param = params[0] if params else None
        keys: Set[str] = set()
        if txn_param is None:
            return keys
        for node in ast.walk(rollback_fn):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == txn_param
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                keys.add(node.slice.value)
        return keys
