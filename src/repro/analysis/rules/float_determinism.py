"""Float-determinism rule: no unordered iteration in parity-critical core.

Every fast path in the platform is property-tested *byte-identical* to
the sequential drive -- which is only a meaningful guarantee if the
sequential drive itself is deterministic.  Iterating a ``set`` (whose
order depends on hash seeding and insertion history) anywhere that feeds
float accumulation, request ordering, or store writes makes two runs of
the same workload legitimately different, and the parity net can no
longer distinguish "fast path diverged" from "baseline wobbled".

Flags, in ``src/repro/core/`` only: ``for`` loops and comprehension
generators whose iterable is a set literal, a set comprehension, a
``set(...)``/``frozenset(...)`` call, or a local name assigned one of
those earlier in the same function.  Membership tests and ``.add``/
``.update`` on sets stay legal -- only *iteration order* leaks
nondeterminism.

The standard fix is an insertion-ordered dedup:
``dict.fromkeys(items)`` preserves first-touch order with the same
uniqueness semantics.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.analysis.engine import Finding, Module, Project, Rule

__all__ = ["FloatDeterminismRule"]

_SCOPE_PREFIX = "src/repro/core/"


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    return isinstance(node, ast.Name) and node.id in set_names


class FloatDeterminismRule(Rule):
    name = "float-determinism"
    description = (
        "no set iteration feeding parity-critical accumulation in core/ "
        "(use dict.fromkeys for ordered dedup)"
    )

    def applies(self, module: Module) -> bool:
        return module.relpath.startswith(_SCOPE_PREFIX)

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            set_names = self._set_locals(func)
            for node in ast.walk(func):
                if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(
                    node.iter, set_names
                ):
                    yield self.finding(
                        module,
                        node,
                        "for-loop iterates a set: unordered iteration breaks "
                        "run-to-run determinism (use dict.fromkeys)",
                    )
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    for gen in node.generators:
                        if _is_set_expr(gen.iter, set_names):
                            yield self.finding(
                                module,
                                node,
                                "comprehension iterates a set: unordered "
                                "iteration breaks run-to-run determinism "
                                "(use dict.fromkeys)",
                            )

    @staticmethod
    def _set_locals(func: ast.AST) -> Set[str]:
        """Local names assigned a set-valued expression anywhere in the
        function (flow-insensitive on purpose: a rebind to a list later
        should rename the variable, not launder the set)."""
        names: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names
