"""Rule engine: module collection, suppressions, reporting, exit codes.

The engine is deliberately dumb: it walks ``*.py`` files into
:class:`Module` objects (source + AST + parsed allow-comments), hands each
to every registered :class:`Rule`, filters findings through the
suppression map, and renders the survivors.  All project knowledge lives
in the rules (see the package docstring for how to add one).
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "LintError",
    "Module",
    "Project",
    "Rule",
    "collect_project",
    "run_rules",
    "run_rules_parallel",
    "render_human",
    "report_as_json",
]

# Matches the allow-comment form: "repro:" then "allow(rule-a, rule-b)"
# after a "#", optionally followed by "-- reason".  The reason is for
# reviewers; the engine only parses the rule list.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")

# Directory names never scanned: caches, VCS internals, and the
# known-bad rule fixtures (which exist to *contain* violations).
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "fixtures"}


class LintError(Exception):
    """Unusable input (missing path, unparsable file, unknown rule).

    The CLI maps this to exit code 2 -- distinct from exit 1 (findings),
    so CI can tell "contract violated" from "linter could not run".
    """


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # repo-relative posix path
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


class Module:
    """One parsed source file: AST, raw lines, and its suppression map.

    ``allow`` maps a 1-based line number to the frozenset of rule names an
    allow comment suppresses there.  A comment on a code line covers that
    line; a standalone comment line covers itself and the next *code* line
    (skipping blank and further comment lines), so a suppression can open a
    multi-line explanation above a long statement -- e.g. a comment line
    reading ``repro: allow(schema-width) -- replaying the reference
    layout`` placed directly above ``totals[:, 0] += charge.epsilon``
    suppresses the schema-width finding on that statement.

    When the next code line opens a function definition -- its ``def``
    header, or the first of its decorators -- the standalone allow binds
    to the *entire* definition: decorators, a signature that spans
    several lines, and the whole body.  Findings anchor to the line of
    the offending statement, which for a function-level contract is
    rarely the header line; binding the allow to the body is what makes
    "this whole function is a reviewed exception" expressible as one
    comment above the ``def``.
    """

    def __init__(self, relpath: str, source: str, tree: ast.Module) -> None:
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        # First line of each function definition (counting decorators)
        # -> last line of its body, for whole-function allow binding.
        spans: Dict[int, int] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                start = min(
                    [node.lineno] + [d.lineno for d in node.decorator_list]
                )
                spans[start] = max(getattr(node, "end_lineno", None) or 0, node.lineno)
        self.allow: Dict[int, frozenset] = {}
        for lineno, col, comment in self._comments(source):
            match = _ALLOW_RE.search(comment)
            if not match:
                continue
            rules = frozenset(
                name.strip() for name in match.group(1).split(",") if name.strip()
            )
            if not rules:
                continue
            self._allow_line(lineno, rules)
            if not self.lines[lineno - 1][:col].strip():
                # Standalone comment: covers the next *code* line, so an
                # allow may open a multi-line explanation block.
                cursor = lineno + 1
                while cursor <= len(self.lines) and (
                    not self.lines[cursor - 1].strip()
                    or self.lines[cursor - 1].lstrip().startswith("#")
                ):
                    cursor += 1
                for line in range(cursor, spans.get(cursor, cursor) + 1):
                    self._allow_line(line, rules)

    def _allow_line(self, lineno: int, rules: frozenset) -> None:
        self.allow[lineno] = self.allow.get(lineno, frozenset()) | rules

    @staticmethod
    def _comments(source: str):
        """Yield ``(lineno, col, text)`` for real comment tokens only --
        allow-shaped text inside string literals and docstrings is inert."""
        try:
            for tok in tokenize.generate_tokens(io.StringIO(source).readline):
                if tok.type == tokenize.COMMENT:
                    yield tok.start[0], tok.start[1], tok.string
        except (tokenize.TokenError, IndentationError):
            return  # ast.parse already vets syntax; never die on tokenizing

    @classmethod
    def from_source(cls, source: str, relpath: str) -> "Module":
        """Build a module from raw text (tests feed fixture snippets here,
        faking ``relpath`` to land inside a rule's scope)."""
        try:
            tree = ast.parse(source, filename=relpath)
        except SyntaxError as exc:
            raise LintError(f"{relpath}: cannot parse: {exc.msg} (line {exc.lineno})")
        return cls(relpath, source, tree)

    @classmethod
    def from_path(cls, path: Path, root: Path) -> "Module":
        relpath = path.relative_to(root).as_posix()
        return cls.from_source(path.read_text(encoding="utf-8"), relpath)

    def suppressed(self, rule: str, line: int) -> bool:
        allowed = self.allow.get(line)
        return allowed is not None and (rule in allowed or "*" in allowed)


class Project:
    """Every module of one lint run, addressable by relative path."""

    def __init__(self, root: Path, modules: Sequence[Module]) -> None:
        self.root = root
        self.modules = list(modules)
        self._by_path = {module.relpath: module for module in self.modules}

    def module(self, relpath: str) -> Optional[Module]:
        return self._by_path.get(relpath)

    def __iter__(self):
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)


class Rule:
    """Base class for one invariant checker (see package docstring)."""

    name: str = ""
    description: str = ""

    def applies(self, module: Module) -> bool:
        """Whether this rule's contract binds the given file at all."""
        return True

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        """Yield findings for one module (called once per applicable file)."""
        return ()

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.name,
            message=message,
        )


def collect_project(
    root: Path, paths: Sequence[str], include_fixtures: bool = False
) -> Project:
    """Parse every ``*.py`` under the given paths (relative to ``root``).

    Directories named in ``_SKIP_DIRS`` are pruned -- in particular the
    rule fixtures under ``tests/analysis/fixtures/``, whose whole point is
    to contain violations (``include_fixtures`` re-admits them for the
    engine's own tests).
    """
    root = root.resolve()
    skip = _SKIP_DIRS - ({"fixtures"} if include_fixtures else set())
    files: List[Path] = []
    seen = set()
    for raw in paths:
        path = (root / raw).resolve()
        if not path.exists():
            raise LintError(f"path {raw!r} does not exist under {root}")
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not (set(p.relative_to(root).parts[:-1]) & skip)
            )
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                files.append(candidate)
    return Project(root, [Module.from_path(path, root) for path in files])


def run_rules(
    project: Project, rules: Sequence[Rule]
) -> Tuple[List[Finding], Dict[str, Dict[str, int]]]:
    """Run every rule over every applicable module.

    Returns ``(findings, stats)`` where findings are the *surviving*
    (unsuppressed) violations in (path, line) order and ``stats`` maps each
    rule name to ``{"findings": n, "suppressed": m, "files": k}`` --
    suppressed counts are kept so the JSON artifact tracks how much of the
    tree lives under explicit allows.
    """
    kept: List[Finding] = []
    stats: Dict[str, Dict[str, int]] = {
        rule.name: {"findings": 0, "suppressed": 0, "files": 0} for rule in rules
    }
    for module in project:
        for rule in rules:
            if not rule.applies(module):
                continue
            stats[rule.name]["files"] += 1
            for finding in rule.check(module, project):
                if module.suppressed(rule.name, finding.line):
                    stats[rule.name]["suppressed"] += 1
                else:
                    stats[rule.name]["findings"] += 1
                    kept.append(finding)
    kept.sort()
    return kept, stats


# Worker-side state for run_rules_parallel: set in the parent before the
# fork so children inherit the parsed project instead of repickling it.
_PARALLEL_STATE: Optional[Tuple["Project", Sequence["Rule"]]] = None


def _check_module_chunk(indices: Sequence[int]):
    """Run every rule over one chunk of module indices (worker body)."""
    project, rules = _PARALLEL_STATE
    findings: List[Finding] = []
    stats = {
        rule.name: {"findings": 0, "suppressed": 0, "files": 0} for rule in rules
    }
    for index in indices:
        module = project.modules[index]
        for rule in rules:
            if not rule.applies(module):
                continue
            stats[rule.name]["files"] += 1
            for finding in rule.check(module, project):
                if module.suppressed(rule.name, finding.line):
                    stats[rule.name]["suppressed"] += 1
                else:
                    stats[rule.name]["findings"] += 1
                    findings.append(finding)
    return findings, stats


def run_rules_parallel(
    project: Project, rules: Sequence[Rule], jobs: int
) -> Tuple[List[Finding], Dict[str, Dict[str, int]]]:
    """``run_rules`` fanned out over ``jobs`` forked workers.

    Modules are dealt round-robin across workers; each worker runs every
    rule over its share with the full project in scope (inherited through
    the fork, so cross-module context -- call graphs, class indexes -- is
    available without pickling the ASTs).  Findings are merged and sorted
    and per-rule stats summed, so the result is bit-identical to the
    serial ``run_rules`` regardless of worker count or scheduling.

    Falls back to the serial path when ``jobs <= 1`` or the platform has
    no ``fork`` start method.
    """
    import multiprocessing

    jobs = min(int(jobs), len(project.modules)) if project.modules else 1
    if jobs <= 1 or "fork" not in multiprocessing.get_all_start_methods():
        return run_rules(project, rules)
    chunks = [list(range(start, len(project.modules), jobs)) for start in range(jobs)]
    global _PARALLEL_STATE
    _PARALLEL_STATE = (project, rules)
    try:
        with multiprocessing.get_context("fork").Pool(jobs) as pool:
            results = pool.map(_check_module_chunk, chunks)
    finally:
        _PARALLEL_STATE = None
    kept: List[Finding] = []
    stats: Dict[str, Dict[str, int]] = {
        rule.name: {"findings": 0, "suppressed": 0, "files": 0} for rule in rules
    }
    for findings, chunk_stats in results:
        kept.extend(findings)
        for name, counters in chunk_stats.items():
            for key, value in counters.items():
                stats[name][key] += value
    kept.sort()
    return kept, stats


def render_human(
    findings: Sequence[Finding],
    stats: Dict[str, Dict[str, int]],
    n_files: int,
) -> str:
    """The terminal report: one line per finding plus a per-rule summary."""
    out = [finding.render() for finding in findings]
    total_suppressed = sum(s["suppressed"] for s in stats.values())
    summary = (
        f"{len(findings)} finding(s) in {n_files} file(s) "
        f"({total_suppressed} suppressed)"
    )
    fired = {name: s for name, s in stats.items() if s["findings"] or s["suppressed"]}
    if fired:
        per_rule = ", ".join(
            f"{name}: {s['findings']}+{s['suppressed']}s" for name, s in sorted(fired.items())
        )
        summary += f" [{per_rule}]"
    out.append(summary)
    return "\n".join(out)


def report_as_json(
    findings: Sequence[Finding],
    stats: Dict[str, Dict[str, int]],
    rules: Sequence[Rule],
    n_files: int,
    paths: Sequence[str],
) -> dict:
    """The machine-readable report (``results/lint_invariants.json``).

    Deterministic for a given tree -- no timestamps, no absolute paths --
    so the committed artifact only changes when findings or rule coverage
    do.
    """
    return {
        "version": 1,
        "paths": list(paths),
        "checked_files": n_files,
        "clean": not findings,
        "rules": {
            rule.name: {
                "description": rule.description,
                "findings": stats[rule.name]["findings"],
                "suppressed": stats[rule.name]["suppressed"],
                "files_checked": stats[rule.name]["files"],
            }
            for rule in rules
        },
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "message": f.message,
            }
            for f in findings
        ],
    }


def dump_json(report: dict) -> str:
    return json.dumps(report, indent=2, sort_keys=False) + "\n"
