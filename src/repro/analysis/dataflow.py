"""Forward dataflow over the CFG: solver, mutation facts, path queries.

Three layers, each usable on its own:

* :func:`solve_forward` -- a generic worklist fixpoint solver.  An
  analysis provides ``initial()``, ``transfer(node, fact)`` and
  ``join(facts)`` over hashable facts; the solver iterates to a fixed
  point (facts must grow monotonically under ``join`` for termination,
  which every frozenset-powerset analysis here satisfies).

* Concrete analyses: :class:`ReachingMutations` (which mutation events
  may have executed by the time control reaches each node -- the purity
  and rollback rules' backbone) and :class:`MayAlias` (which locals may
  alias ``self``-rooted storage -- ``tmp = self._cache`` followed by
  ``tmp[k] = v`` is a ``self._cache`` write, and a ``for entry in
  self._pipelines:`` target aliases the pipelines list's elements).

* Path queries: :func:`feasible_path_exists` is the path-sensitive core
  of the pairing/ordering rules.  It searches for a CFG path with simple
  *branch correlation*: along one path a branch test (by source text) may
  not be taken both ways unless a name it reads was reassigned in
  between, so ``if staged: open()`` ... ``finally: if staged: close()``
  correlates and the open-but-skip-close pseudo-path is pruned.
  :func:`always_precedes` / :func:`always_followed_by` phrase the
  ordering contracts on top of it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import CFG, CFGNode
from repro.analysis.astutil import (
    MUTATOR_METHODS,
    SELF_MUTATOR_METHODS,
    assigned_target_nodes,
    attr_chain,
    attr_root,
    call_name,
)

__all__ = [
    "solve_forward",
    "Mutation",
    "ReachingMutations",
    "MayAlias",
    "mutations_in_stmt",
    "feasible_path_exists",
    "always_precedes",
    "always_followed_by",
]


# ----------------------------------------------------------------------
# Generic forward solver
# ----------------------------------------------------------------------
def solve_forward(cfg: CFG, analysis) -> Tuple[Dict[int, object], Dict[int, object]]:
    """Run a forward analysis to fixpoint; returns ``(in_facts, out_facts)``
    keyed by node index.  ``analysis`` provides ``initial()`` (the entry
    fact), ``transfer(node, fact)`` and ``join(iterable_of_facts)``."""
    in_facts: Dict[int, object] = {}
    out_facts: Dict[int, object] = {}
    entry_fact = analysis.initial()
    in_facts[cfg.entry.index] = entry_fact
    out_facts[cfg.entry.index] = analysis.transfer(cfg.entry, entry_fact)
    worklist = [succ for succ, _ in cfg.succs(cfg.entry)]
    seen_on_list = {node.index for node in worklist}
    while worklist:
        node = worklist.pop(0)
        seen_on_list.discard(node.index)
        pred_facts = [
            out_facts[p.index] for p, _ in cfg.preds(node) if p.index in out_facts
        ]
        if not pred_facts:
            continue
        new_in = analysis.join(pred_facts)
        if node.index in in_facts and in_facts[node.index] == new_in:
            continue
        in_facts[node.index] = new_in
        new_out = analysis.transfer(node, new_in)
        if out_facts.get(node.index) == new_out:
            continue
        out_facts[node.index] = new_out
        for succ, _ in cfg.succs(node):
            if succ.index not in seen_on_list:
                worklist.append(succ)
                seen_on_list.add(succ.index)
    return in_facts, out_facts


# ----------------------------------------------------------------------
# Mutation extraction (shared by purity / rollback / lock rules)
# ----------------------------------------------------------------------
@dataclass(frozen=True, order=True)
class Mutation:
    """One state-mutating event inside a statement.

    ``root`` is the base name of the mutated storage (``"self"`` for
    attribute state), ``path`` the dotted attribute path (aliases already
    resolved when an alias map is supplied), ``what`` a human rendering
    for findings, ``lineno``/``col_offset`` the source anchor (the pair a
    :meth:`Rule.finding` call expects on its node).
    """

    root: str
    path: Tuple[str, ...]
    what: str
    lineno: int
    col_offset: int = 0


def _resolve(chain: Tuple[str, ...], aliases: Optional[Dict[str, Tuple[str, ...]]]):
    """Rewrite a chain through the alias map: ``tmp._x`` with ``tmp ->
    ('self', '_cache')`` becomes ``('self', '_cache', '_x')``."""
    if aliases and chain and chain[0] in aliases:
        return aliases[chain[0]] + chain[1:]
    return chain


def mutations_in_stmt(
    stmt: ast.stmt,
    aliases: Optional[Dict[str, Tuple[str, ...]]] = None,
    roots: Tuple[str, ...] = ("self",),
) -> List[Mutation]:
    """Every mutation event in one statement (assignments to tracked
    roots, subscript writes through them, mutator-method calls).

    ``aliases`` maps local names to the ``self``-rooted path they may
    alias (see :class:`MayAlias`); a write through an alias is reported
    against the resolved path.  Compound statements contribute only their
    header (their bodies are separate CFG nodes).
    """
    probe: ast.AST = stmt
    if isinstance(stmt, (ast.If, ast.While)):
        probe = stmt.test
    elif isinstance(stmt, ast.For):
        probe = stmt.iter
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    out: List[Mutation] = []
    for node in ast.walk(probe):
        for target in assigned_target_nodes(node):
            if isinstance(target, ast.Attribute):
                chain = tuple(attr_chain(target))
                chain = _resolve(chain, aliases)
                if chain and chain[0] in roots:
                    out.append(
                        Mutation(
                            chain[0],
                            chain,
                            f"assigns {'.'.join(chain)}",
                            getattr(node, "lineno", 0),
                            getattr(node, "col_offset", 0),
                        )
                    )
            elif isinstance(target, ast.Subscript):
                chain = tuple(attr_chain(target.value))
                chain = _resolve(chain, aliases)
                if chain and chain[0] in roots:
                    out.append(
                        Mutation(
                            chain[0],
                            chain,
                            f"writes {'.'.join(chain)}[...]",
                            getattr(node, "lineno", 0),
                            getattr(node, "col_offset", 0),
                        )
                    )
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            callee = node.func.attr
            chain = tuple(attr_chain(node.func.value))
            chain = _resolve(chain, aliases)
            if callee in MUTATOR_METHODS:
                receiver = ".".join(chain) if chain else "<expr>"
                root = chain[0] if chain else ""
                out.append(
                    Mutation(
                        root,
                        chain,
                        f"calls mutator {receiver}.{callee}()",
                        node.lineno,
                        node.col_offset,
                    )
                )
            elif callee in SELF_MUTATOR_METHODS and chain and chain[0] in roots:
                out.append(
                    Mutation(
                        chain[0],
                        chain,
                        f"calls mutator {'.'.join(chain)}.{callee}()",
                        node.lineno,
                        node.col_offset,
                    )
                )
    return out


class ReachingMutations:
    """Forward analysis: the set of mutation event indices that *may*
    have executed on some path reaching each node.

    Events are interned so facts are small frozensets of ints;
    ``events`` maps index -> (node_index, Mutation).
    """

    def __init__(self, cfg: CFG, aliases=None, roots: Tuple[str, ...] = ("self",)):
        self.events: List[Tuple[int, Mutation]] = []
        self._by_node: Dict[int, FrozenSet[int]] = {}
        for node in cfg.stmt_nodes():
            ids = []
            for mutation in mutations_in_stmt(node.stmt, aliases, roots):
                ids.append(len(self.events))
                self.events.append((node.index, mutation))
            self._by_node[node.index] = frozenset(ids)

    def initial(self) -> FrozenSet[int]:
        return frozenset()

    def join(self, facts: Iterable[FrozenSet[int]]) -> FrozenSet[int]:
        out: FrozenSet[int] = frozenset()
        for fact in facts:
            out |= fact
        return out

    def transfer(self, node: CFGNode, fact: FrozenSet[int]) -> FrozenSet[int]:
        return fact | self._by_node.get(node.index, frozenset())


class MayAlias:
    """Forward analysis: which ``self``-rooted storage each local may alias.

    Facts are frozensets of ``(name, path)`` pairs.  Generated by plain
    assignments ``x = self.a.b`` (``x`` may alias ``('self','a','b')``),
    ``for x in self.a:`` (``x`` aliases an *element* of ``self.a`` --
    tracked as the container path itself, which is what the mutation
    rules need), and ``with self.a as x:``.  An assignment of anything
    else kills the name's aliases.
    """

    def __init__(self, cfg: CFG) -> None:
        self._cfg = cfg

    def initial(self) -> FrozenSet[Tuple[str, Tuple[str, ...]]]:
        return frozenset()

    def join(self, facts) -> FrozenSet[Tuple[str, Tuple[str, ...]]]:
        out: FrozenSet = frozenset()
        for fact in facts:
            out |= fact
        return out

    @staticmethod
    def _aliasable(value: ast.AST) -> Optional[Tuple[str, ...]]:
        chain = tuple(attr_chain(value))
        if len(chain) >= 2 and chain[0] == "self":
            return chain
        return None

    def transfer(self, node: CFGNode, fact: FrozenSet) -> FrozenSet:
        stmt = node.stmt
        if stmt is None:
            return fact
        gen: Set[Tuple[str, Tuple[str, ...]]] = set()
        kill: Set[str] = set()
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
            stmt.targets[0], ast.Name
        ):
            name = stmt.targets[0].id
            kill.add(name)
            path = self._aliasable(stmt.value)
            if path is not None:
                gen.add((name, path))
        elif isinstance(stmt, ast.For) and isinstance(stmt.target, ast.Name):
            path = self._aliasable(stmt.iter)
            kill.add(stmt.target.id)
            if path is not None:
                gen.add((stmt.target.id, path))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name):
                    kill.add(item.optional_vars.id)
                    path = self._aliasable(item.context_expr)
                    if path is not None:
                        gen.add((item.optional_vars.id, path))
        if not gen and not kill:
            return fact
        return frozenset(p for p in fact if p[0] not in kill) | frozenset(gen)

    def alias_map(self) -> Dict[str, Tuple[str, ...]]:
        """Flow-insensitive summary: name -> aliased path, only for names
        with exactly one may-alias over the whole function (ambiguous
        names are dropped rather than guessed)."""
        _, out_facts = solve_forward(self._cfg, self)
        candidates: Dict[str, Set[Tuple[str, ...]]] = {}
        for fact in out_facts.values():
            for name, path in fact:
                candidates.setdefault(name, set()).add(path)
        return {
            name: next(iter(paths))
            for name, paths in candidates.items()
            if len(paths) == 1
        }


# ----------------------------------------------------------------------
# Path queries with branch correlation
# ----------------------------------------------------------------------
def _test_source(node: CFGNode) -> Optional[str]:
    stmt = node.stmt
    if isinstance(stmt, (ast.If, ast.While)):
        try:
            return ast.unparse(stmt.test)
        except Exception:  # pragma: no cover - unparse is total on parsed ASTs
            return None
    return None


def _names_in_test(src: str, node: CFGNode) -> FrozenSet[str]:
    stmt = node.stmt
    names: Set[str] = set()
    if isinstance(stmt, (ast.If, ast.While)):
        for child in ast.walk(stmt.test):
            if isinstance(child, ast.Name):
                names.add(child.id)
    return frozenset(names)


def _assigned_names(stmt: Optional[ast.stmt]) -> Set[str]:
    if stmt is None:
        return set()
    out: Set[str] = set()
    probe: ast.AST = stmt
    if isinstance(stmt, (ast.If, ast.While)):
        return out
    if isinstance(stmt, ast.For):
        for target in ast.walk(stmt.target):
            if isinstance(target, ast.Name):
                out.add(target.id)
        return out
    for node in ast.walk(probe):
        for target in assigned_target_nodes(node):
            if isinstance(target, ast.Name):
                out.add(target.id)
    return out


def feasible_path_exists(
    cfg: CFG,
    starts: Sequence[CFGNode],
    targets: Sequence[CFGNode],
    avoid: Sequence[CFGNode] = (),
    via: Optional[Sequence[CFGNode]] = None,
    correlate: bool = True,
) -> bool:
    """Whether some CFG path runs from a start to a target while avoiding
    every node in ``avoid``.

    With ``via`` the path must additionally pass through one of the
    ``via`` nodes first, and ``avoid``/``targets`` only bind *after* that
    point -- the shape of a pairing query ("entry reaches an exit through
    the opener without hitting a closer") phrased so branch decisions
    taken before the opener still prune the suffix.

    With ``correlate=True`` (the default) paths that take the *same*
    branch test both TRUE and FALSE are pruned, unless a statement in
    between assigned one of the test's names -- cheap path sensitivity
    that understands the ``if flag: open()`` ... ``if flag: close()``
    idiom without a real condition solver.
    """
    avoid_ids = {node.index for node in avoid}
    target_ids = {node.index for node in targets}
    via_ids = {node.index for node in via} if via is not None else None
    # State: (node, passed_via, frozenset of (test_src, branch_bool)) --
    # the branch decisions still binding on this path.
    Decisions = FrozenSet[Tuple[str, bool]]
    stack: List[Tuple[CFGNode, bool, Decisions]] = []
    seen: Set[Tuple[int, bool, Decisions]] = set()

    def admit(node: CFGNode, passed: bool, decisions: Decisions) -> Optional[bool]:
        """Returns True if the node is a (post-via) target, None if the
        path dies here, False if the search should continue from it."""
        if via_ids is not None and node.index in via_ids:
            passed = True
        if passed and node.index in avoid_ids:
            return None
        if passed and node.index in target_ids:
            return True
        key = (node.index, passed, decisions)
        if key in seen:
            return None
        seen.add(key)
        stack.append((node, passed, decisions))
        return False

    for start in starts:
        verdict = admit(start, via_ids is None, frozenset())
        if verdict:
            return True
    while stack:
        node, passed, decisions = stack.pop()
        # A statement assigning a name read by a recorded test unbinds
        # that decision (the flag may have changed).
        assigned = _assigned_names(node.stmt)
        if assigned:
            decisions = frozenset(
                (src, val)
                for src, val in decisions
                if not (_names_for_src.get(src, frozenset()) & assigned)
            )
        test_src = _test_source(node) if correlate else None
        if test_src is not None:
            _names_for_src.setdefault(test_src, _names_in_test(test_src, node))
        # A ``via`` node models an event that *completed*: its own
        # exception edge means the event never happened, so that edge
        # does not extend a post-via path.
        is_via = via_ids is not None and node.index in via_ids
        for succ, kind in cfg.succs(node):
            if is_via and kind == "exc":
                continue
            new_decisions = decisions
            if test_src is not None and kind in ("true", "false"):
                taken = kind == "true"
                if (test_src, not taken) in decisions:
                    continue  # contradicts an earlier decision on this path
                new_decisions = decisions | {(test_src, taken)}
            if admit(succ, passed, new_decisions):
                return True
    return False


# Memo of test source -> names read (shared across queries; source text is
# a stable key and the name set depends only on the text's AST).
_names_for_src: Dict[str, FrozenSet[str]] = {}


def always_precedes(
    cfg: CFG, first: Sequence[CFGNode], second: Sequence[CFGNode]
) -> bool:
    """True iff every path from entry to a ``second`` node passes through
    some ``first`` node (``first`` dominates every ``second`` event)."""
    if not second:
        return True
    if not first:
        return False
    return not feasible_path_exists(cfg, [cfg.entry], second, avoid=first)


def always_followed_by(
    cfg: CFG,
    first: Sequence[CFGNode],
    second: Sequence[CFGNode],
    exits: Optional[Sequence[CFGNode]] = None,
) -> bool:
    """True iff every path that executes a ``first`` node reaches an exit
    only through some ``second`` node.  ``exits`` defaults to the normal
    exit only -- ordering contracts bind successful completion; the
    exception path is the pairing rules' business.
    """
    if not first:
        return True
    exits = list(exits) if exits is not None else [cfg.exit]
    return not feasible_path_exists(
        cfg, [cfg.entry], exits, avoid=second, via=first
    )
