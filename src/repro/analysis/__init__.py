"""Invariant linter: AST-based static enforcement of the accounting contracts.

Sage's correctness story rests on invariants the code can only *state* --
``propose_peek()`` is a pure accountant read, every staged hour closes its
overlay on every path, totals columns are only written through the
filter-declared schema, thread-pool callables share nothing mutable, and
parity-critical accumulation never iterates unordered containers.  The
property-test suite checks these dynamically; this package is the cheap,
always-on static complement that catches a contract violation at lint time,
before a fast path silently diverges.

Usage
-----
::

    PYTHONPATH=src python -m repro.analysis src tests benchmarks
    PYTHONPATH=src python -m repro.analysis --jobs 4 src tests benchmarks
    PYTHONPATH=src python -m repro.analysis --format json --output results/lint_invariants.json

Exit codes: 0 = clean, 1 = findings, 2 = usage/parse error (the CI
``lint-invariants`` job gates on a clean exit).  ``--jobs N`` fans the
rules out over forked workers; the report is bit-identical to a serial
run (``benchmarks/bench_lint.py`` asserts it and gates the wall clock).

The flow-sensitive core
-----------------------
Rules that reason about *paths* rather than single nodes build on three
core modules (stdlib-only, importable without the ``rules`` package):

* :mod:`repro.analysis.cfg` -- ``build_cfg(func)`` turns one function
  into a :class:`~repro.analysis.cfg.CFG`: per-statement nodes, kinds on
  every edge (``normal``/``true``/``false``/``loop``/``exc``), synthetic
  ``entry``/``exit``/``raise_exit`` anchors, ``finally`` bodies cloned
  per exit kind and ``with`` desugared to a synthetic ``__exit__`` node.
  Statements raise iff they contain a call/raise/assert/subscript,
  except declared no-fail closers (``NON_RAISING``).
* :mod:`repro.analysis.dataflow` -- ``solve_forward(cfg, analysis)``
  runs any forward analysis (``initial``/``transfer``/``join``) to
  fixpoint; ``ReachingMutations`` and ``MayAlias`` are the stock
  analyses; ``feasible_path_exists`` / ``always_precedes`` /
  ``always_followed_by`` are the path queries the ordering and pairing
  rules are phrased in (with cheap branch correlation: a path may not
  take the same test both ways unless the tested names were reassigned).
* :mod:`repro.analysis.callgraph` -- ``CallGraph(project)`` resolves
  ``self.x.y(...)`` calls through attribute *types* (constructor
  assignments, annotations, property return types), subclass-aware, so
  interprocedural rules follow real receivers instead of name matches.

The static rules' blind spots (C-level NumPy writes, monkeypatching,
reflection) are covered dynamically by :mod:`repro.analysis.sanitizer`:
``REPRO_SANITIZER=1`` makes the test suite flip the accounting slabs
read-only while any declared-pure call is on the stack, so a smuggled
write faults at its exact line (CI runs tier-1 once in that mode).

A finding is suppressed by an explicit allow comment naming the rule --
the comment text is ``repro: allow(<rule>) -- reason`` after a ``#`` --
placed either on the flagged line or on a standalone comment line
directly above it (a standalone allow covers the next code line, so the
reason may span several comment lines).  When the next code line opens a
function definition -- its ``def`` or the first of its decorators -- the
allow binds through the decorators and the whole (possibly multi-line)
signature to the entire body: one comment above the ``def`` marks the
whole function as a reviewed exception.

Suppressions are deliberate, reviewable artifacts: every one in the tree
should carry a reason after ``--``, and the repo-clean test pins the full
set of files allowed to carry them.

How to add a rule
-----------------
1. Create ``rules/<name>.py`` defining a subclass of
   :class:`repro.analysis.engine.Rule`:

   * set ``name`` (the kebab-case id used in allow comments and reports)
     and ``description`` (one line, shown in ``--list-rules`` and JSON);
   * override ``applies(module)`` if the contract only binds part of the
     tree (compare against ``module.relpath`` -- e.g. purity only scans
     ``src/repro/core/``, paired-calls only ``src/repro/`` so tests may
     exercise error paths freely);
   * implement ``check(module, project)`` yielding
     :class:`~repro.analysis.engine.Finding` via ``self.finding(module,
     node, message)``.  ``project`` carries every scanned module, so
     cross-module analyses (the purity call graph) can see the whole tree.

2. Register the class in ``rules/__init__.py``'s ``ALL_RULES``.
3. Add a known-bad and a known-good fixture under
   ``tests/analysis/fixtures/`` and a firing/silent pair of assertions in
   ``tests/analysis/test_rules.py`` -- a rule without a fixture proving it
   fires is assumed broken.
4. If the rule encodes a dynamic invariant, link it from ROADMAP.md's
   "Architecture invariants" pointer table next to the property test that
   enforces the same contract at runtime.

The engine is stdlib-only (``ast`` + ``re``); rules must not import the
code under analysis, so the linter runs even when the tree is broken.
"""

from repro.analysis.engine import Finding, LintError, Module, Project, Rule

__all__ = ["Finding", "LintError", "Module", "Project", "Rule"]
