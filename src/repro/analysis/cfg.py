"""Per-function control-flow graphs for the flow-sensitive rules.

Every statement of a function becomes one :class:`CFGNode`; edges carry a
kind (``"normal"``, ``"true"``/``"false"`` off branch tests, ``"loop"``
back edges, ``"exc"`` for exception propagation) and connect the nodes to
three synthetic anchors: ``entry``, ``exit`` (normal return) and
``raise_exit`` (the function unwinding with an exception).

The builder understands the control constructs the accounting code
actually uses:

* ``if``/``elif``/``else`` with join nodes;
* ``while``/``for`` loops with back edges, ``break``/``continue`` and
  ``else`` clauses;
* ``try``/``except``/``else``/``finally`` -- every statement that *can
  raise* gets an ``"exc"`` edge to the innermost handler dispatch (or
  through the active ``finally`` chain to ``raise_exit``), and ``finally``
  bodies are **cloned per exit kind** (fall-through, exception, return,
  break, continue) so a path query sees the cleanup code on exactly the
  paths that execute it;
* ``with`` blocks, desugared like ``try/finally`` whose cleanup is a
  synthetic ``__exit__`` node (the context manager runs on both the
  normal and the exception exit);
* ``return``/``raise``/``break``/``continue``, each routed through the
  enclosing ``finally`` chain.

Exception modeling is deliberately coarse but tuned for the pairing and
ordering rules: a statement raises iff it contains a call, a ``raise``,
an ``assert``, or a subscript -- *except* calls whose callee is a declared
cleanup/closer name (``NON_RAISING``), which the contracts define as
no-fail cleanup (``abort_staged``, ``abort_hour``, ``end_scan_memo``,
``_rollback_hour``...).  Without that carve-out every ``finally`` that
closes two resources would flag the second closer as skippable.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["CFG", "CFGNode", "build_cfg", "NON_RAISING", "stmt_can_raise"]

# Cleanup/closer callees modeled as non-raising: the pairing contracts
# define these as no-fail cleanup, and modeling them as raising would mark
# every multi-closer ``finally`` as leaky at its first closer.
NON_RAISING = frozenset(
    {
        "abort_staged",
        "abort_hour",
        "end_scan_memo",
        "pop_staged",
        "_rollback_hour",
        "close",
        "shutdown",
    }
)


class CFGNode:
    """One statement (or synthetic anchor) in a function's flow graph."""

    __slots__ = ("index", "stmt", "label")

    def __init__(self, index: int, stmt: Optional[ast.stmt], label: str) -> None:
        self.index = index
        self.stmt = stmt
        self.label = label

    @property
    def lineno(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CFGNode {self.index} {self.label}>"


class CFG:
    """A function's control-flow graph (see the module docstring)."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.nodes: List[CFGNode] = []
        self._succs: Dict[int, List[Tuple[int, str]]] = {}
        self._preds: Dict[int, List[Tuple[int, str]]] = {}
        self.entry = self._new_node(None, "<entry>")
        self.exit = self._new_node(None, "<exit>")
        self.raise_exit = self._new_node(None, "<raise>")

    # ------------------------------------------------------------------
    def _new_node(self, stmt: Optional[ast.stmt], label: str) -> CFGNode:
        node = CFGNode(len(self.nodes), stmt, label)
        self.nodes.append(node)
        self._succs[node.index] = []
        self._preds[node.index] = []
        return node

    def _add_edge(self, src: CFGNode, dst: CFGNode, kind: str) -> None:
        if (dst.index, kind) not in self._succs[src.index]:
            self._succs[src.index].append((dst.index, kind))
            self._preds[dst.index].append((src.index, kind))

    def succs(self, node: CFGNode) -> List[Tuple[CFGNode, str]]:
        return [(self.nodes[i], kind) for i, kind in self._succs[node.index]]

    def preds(self, node: CFGNode) -> List[Tuple[CFGNode, str]]:
        return [(self.nodes[i], kind) for i, kind in self._preds[node.index]]

    def stmt_nodes(self) -> List[CFGNode]:
        """Every non-synthetic node, in creation (≈ source) order."""
        return [n for n in self.nodes if n.stmt is not None]

    def nodes_matching(self, predicate) -> List[CFGNode]:
        """Statement nodes whose AST satisfies ``predicate(stmt)``."""
        return [n for n in self.stmt_nodes() if predicate(n.stmt)]

    def nodes_calling(self, names: Iterable[str]) -> List[CFGNode]:
        """Statement nodes whose *own* code calls any of the given names.

        Compound statements are probed on their header only (test/iter
        expression) -- their bodies are separate CFG nodes and match on
        their own.
        """
        wanted = set(names)

        def has_call(stmt: ast.stmt) -> bool:
            for child in ast.walk(_stmt_probe(stmt)):
                if isinstance(child, ast.Call):
                    func = child.func
                    callee = (
                        func.id
                        if isinstance(func, ast.Name)
                        else func.attr if isinstance(func, ast.Attribute) else None
                    )
                    if callee in wanted:
                        return True
            return False

        return self.nodes_matching(has_call)


def _stmt_probe(stmt: ast.stmt) -> ast.AST:
    """The part of a statement that executes *at* its CFG node: the header
    expression for compound statements, the whole statement otherwise."""
    if isinstance(stmt, (ast.If, ast.While)):
        return stmt.test
    if isinstance(stmt, ast.For):
        return stmt.iter
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return ast.Module(
            body=[ast.Expr(value=item.context_expr) for item in stmt.items],
            type_ignores=[],
        )
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        # Nested definitions execute nothing from their bodies here.
        return ast.Module(body=[], type_ignores=[])
    return stmt


def stmt_can_raise(stmt: ast.stmt) -> bool:
    """Whether the exception model gives this statement an ``"exc"`` edge.

    Compound statements are judged on their *header only* (test or
    iterator expression) -- their bodies are separate CFG nodes.
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return False
    for child in ast.walk(_stmt_probe(stmt)):
        if isinstance(child, ast.Call):
            func = child.func
            callee = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if callee not in NON_RAISING:
                return True
        elif isinstance(child, ast.Subscript):
            return True
    return False


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    return handler.type is None or (
        isinstance(handler.type, ast.Name)
        and handler.type.id in ("Exception", "BaseException")
    )


class _FinallyFrame:
    """One active ``finally`` (or ``with`` cleanup) the builder must clone
    onto every path that leaves its protected region."""

    __slots__ = ("finalbody", "with_node")

    def __init__(
        self,
        finalbody: Optional[Sequence[ast.stmt]],
        with_node: Optional[ast.stmt] = None,
    ) -> None:
        self.finalbody = list(finalbody) if finalbody else None
        self.with_node = with_node  # synthetic __exit__ for with blocks


class _Builder:
    """Recursive-descent CFG construction (one instance per function)."""

    def __init__(self, func: ast.AST) -> None:
        self.cfg = CFG(func)
        # Stack of (continue_target_resolver, break_sinks, depth) per loop,
        # and the active finally frames (innermost last).
        self._finally_stack: List[_FinallyFrame] = []
        self._loop_stack: List[dict] = []

    # -- frame-aware routing -------------------------------------------
    def _clone_finally(
        self,
        frame: _FinallyFrame,
        preds: List[CFGNode],
        exc_depth: int,
        entry_kind: str = "normal",
    ) -> List[CFGNode]:
        """Materialize one finally frame's body for one exit path.

        ``exc_depth`` is the frame's own position in the stack: exceptions
        raised *inside* the cloned cleanup propagate from there outward.
        ``entry_kind`` labels the edges into the clone (``"exc"`` when the
        cleanup runs because the protected region raised).
        """
        if frame.with_node is not None:
            node = self.cfg._new_node(frame.with_node, "<__exit__>")
            for p in preds:
                self.cfg._add_edge(p, node, entry_kind)
            return [node]
        entry = self.cfg._new_node(None, "<finally>")
        for p in preds:
            self.cfg._add_edge(p, entry, entry_kind)
        # Build the clone with the frame stack truncated to the frame's own
        # position: an exception inside this cleanup must run only the
        # *outer* frames, never re-enter the one being cloned.
        saved = self._finally_stack
        self._finally_stack = saved[:exc_depth]
        try:
            current: List[CFGNode] = [entry]
            for stmt in frame.finalbody or ():
                current = self._stmt(stmt, current)
        finally:
            self._finally_stack = saved
        return current

    def _route(
        self, preds: List[CFGNode], dest: CFGNode, kind: str, dest_depth: int
    ) -> None:
        """Send control from ``preds`` to ``dest``, running every finally
        frame between the current depth and ``dest_depth`` on the way."""
        if not preds:
            return
        current = preds
        for depth in range(len(self._finally_stack) - 1, dest_depth - 1, -1):
            current = self._clone_finally(
                self._finally_stack[depth], current, depth
            )
            if not current:
                return
        for node in current:
            self.cfg._add_edge(node, dest, kind)

    # Overridden exception targets: a stack of (dispatch_node, depth)
    # installed while building a try body with handlers.
    _exc_override: List[Tuple[CFGNode, int]]  # set in build()

    def _raise_to(self, node: CFGNode, from_depth: int) -> None:
        """Wire one statement's exception edge: run finallys inward-out
        from ``from_depth`` until an overriding handler (or the raise
        exit) is reached."""
        for dispatch, depth in reversed(self._exc_override):
            if depth <= from_depth:
                current = [node]
                first = True
                for d in range(from_depth - 1, depth - 1, -1):
                    current = self._clone_finally(
                        self._finally_stack[d],
                        current,
                        d,
                        "exc" if first else "normal",
                    )
                    first = False
                for n in current:
                    self.cfg._add_edge(n, dispatch, "exc" if first else "normal")
                return
        current = [node]
        first = True
        for d in range(from_depth - 1, -1, -1):
            current = self._clone_finally(
                self._finally_stack[d], current, d, "exc" if first else "normal"
            )
            first = False
        for n in current:
            self.cfg._add_edge(n, self.cfg.raise_exit, "exc" if first else "normal")

    # -- construction ---------------------------------------------------
    def build(self) -> CFG:
        self._exc_override = []
        body = self.cfg.func.body
        exits = self._body(body, [self.cfg.entry])
        for node in exits:
            self.cfg._add_edge(node, self.cfg.exit, "normal")
        return self.cfg

    def _body(self, stmts: Sequence[ast.stmt], preds: List[CFGNode]) -> List[CFGNode]:
        current = preds
        for stmt in stmts:
            if not current:
                # Unreachable code after return/raise/break: still build
                # nodes (rules may anchor findings there) but leave them
                # disconnected from entry.
                current = []
            current = self._stmt(stmt, current)
        return current

    def _stmt(self, stmt: ast.stmt, preds: List[CFGNode]) -> List[CFGNode]:
        depth = len(self._finally_stack)
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds, depth)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, preds, depth)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds, depth)
        node = self.cfg._new_node(stmt, type(stmt).__name__)
        for p in preds:
            self.cfg._add_edge(p, node, "normal")
        if isinstance(stmt, ast.Raise):
            self._raise_to(node, depth)
            return []
        if stmt_can_raise(stmt):
            self._raise_to(node, depth)
        if isinstance(stmt, ast.Return):
            self._route([node], self.cfg.exit, "normal", 0)
            return []
        if isinstance(stmt, ast.Break):
            loop = self._loop_stack[-1]
            self._route([node], loop["after"], "normal", loop["depth"])
            return []
        if isinstance(stmt, ast.Continue):
            loop = self._loop_stack[-1]
            self._route([node], loop["header"], "loop", loop["depth"])
            return []
        return [node]

    def _if(self, stmt: ast.If, preds: List[CFGNode], depth: int) -> List[CFGNode]:
        test = self.cfg._new_node(stmt, "If")
        for p in preds:
            self.cfg._add_edge(p, test, "normal")
        if stmt_can_raise(stmt):
            self._raise_to(test, depth)
        then_entry = self.cfg._new_node(None, "<then>")
        self.cfg._add_edge(test, then_entry, "true")
        then_exits = self._body(stmt.body, [then_entry])
        if stmt.orelse:
            else_entry = self.cfg._new_node(None, "<else>")
            self.cfg._add_edge(test, else_entry, "false")
            else_exits = self._body(stmt.orelse, [else_entry])
        else:
            skip = self.cfg._new_node(None, "<skip>")
            self.cfg._add_edge(test, skip, "false")
            else_exits = [skip]
        return then_exits + else_exits

    def _loop(self, stmt, preds: List[CFGNode], depth: int) -> List[CFGNode]:
        header = self.cfg._new_node(stmt, type(stmt).__name__)
        for p in preds:
            self.cfg._add_edge(p, header, "normal")
        if stmt_can_raise(stmt):
            self._raise_to(header, depth)
        after = self.cfg._new_node(None, "<loop-exit>")
        self._loop_stack.append({"header": header, "after": after, "depth": depth})
        body_entry = self.cfg._new_node(None, "<loop-body>")
        self.cfg._add_edge(header, body_entry, "true")
        body_exits = self._body(stmt.body, [body_entry])
        for node in body_exits:
            self.cfg._add_edge(node, header, "loop")
        self._loop_stack.pop()
        # ``while True:`` never falls through the test; every other loop
        # exits when the test fails / the iterator exhausts.
        infinite = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )
        exits: List[CFGNode] = []
        if not infinite:
            if stmt.orelse:
                else_entry = self.cfg._new_node(None, "<loop-else>")
                self.cfg._add_edge(header, else_entry, "false")
                exits.extend(self._body(stmt.orelse, [else_entry]))
            else:
                self.cfg._add_edge(header, after, "false")
        for node in exits:
            self.cfg._add_edge(node, after, "normal")
        return [after] if (self.cfg._preds[after.index]) else []

    def _with(self, stmt, preds: List[CFGNode], depth: int) -> List[CFGNode]:
        enter = self.cfg._new_node(stmt, "With")
        for p in preds:
            self.cfg._add_edge(p, enter, "normal")
        # Entering the context (evaluating the manager, __enter__) can raise
        # *before* the cleanup is active.
        self._raise_to(enter, depth)
        frame = _FinallyFrame(None, with_node=stmt)
        self._finally_stack.append(frame)
        body_exits = self._body(stmt.body, [enter])
        self._finally_stack.pop()
        # Normal exit runs __exit__ once.
        exits = self._clone_finally(frame, body_exits, depth)
        return exits

    def _try(self, stmt: ast.Try, preds: List[CFGNode]) -> List[CFGNode]:
        after_exits: List[CFGNode] = []
        frame = _FinallyFrame(stmt.finalbody) if stmt.finalbody else None
        if frame is not None:
            self._finally_stack.append(frame)
        depth = len(self._finally_stack)
        dispatch: Optional[CFGNode] = None
        if stmt.handlers:
            dispatch = self.cfg._new_node(None, "<except-dispatch>")
            self._exc_override.append((dispatch, depth))
        body_exits = self._body(stmt.body, preds)
        if stmt.orelse:
            body_exits = self._body(stmt.orelse, body_exits)
        if dispatch is not None:
            self._exc_override.pop()
            # Handler bodies: exceptions inside them propagate outward.
            for handler in stmt.handlers:
                h_entry = self.cfg._new_node(handler, "ExceptHandler")
                self.cfg._add_edge(dispatch, h_entry, "normal")
                after_exits.extend(self._body(handler.body, [h_entry]))
            # An exception no handler matches propagates outward too.
            # ``except Exception``/``except BaseException`` count as
            # catch-alls: what escapes them (deliberate crash injection,
            # KeyboardInterrupt) is outside the contracts' exception model.
            if not any(_is_catch_all(h) for h in stmt.handlers):
                self._raise_to(dispatch, depth)
        after_exits.extend(body_exits)
        if frame is not None:
            self._finally_stack.pop()
            after_exits = self._clone_finally(
                frame, after_exits, len(self._finally_stack)
            )
        return after_exits


def build_cfg(func: ast.AST) -> CFG:
    """Build the control-flow graph of one (sync or async) function."""
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise TypeError(f"build_cfg expects a function definition, got {func!r}")
    return _Builder(func).build()
