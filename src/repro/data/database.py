"""The Growing Database (Fig. 1).

An append-only store of :class:`~repro.data.stream.RawBlock` slabs.  The
database itself knows nothing about privacy -- ledgers and access control
live in ``repro.core`` and reference blocks by key -- but it provides the
windowed retrieval pipelines use to assemble training sets from multiple
blocks (requirement R1 of §3.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.stream import (
    PackedColumns,
    RawBlock,
    StreamBatch,
    StreamSource,
    TimePartitioner,
)
from repro.errors import DataError

__all__ = ["GrowingDatabase", "StreamIngestor"]


class GrowingDatabase:
    """Append-only block store keyed by public block attributes.

    Blocks whose batches share one schema are packed into a
    :class:`~repro.data.stream.PackedColumns` store at append time
    (preallocated columns, each row written exactly once) and the packed
    store becomes their *only* storage -- no duplicate per-block slab is
    kept -- so :meth:`assemble`, the hourly drive's window-assembly hot
    path, reads a window back as one slice or gather per column instead of
    re-concatenating thousands of per-block arrays, at no extra resident
    memory.  A block that breaks the schema (different feature width,
    dtypes, or extras) is kept as its own slab and permanently stops
    *new* blocks from packing; already-packed blocks stay backed by the
    packed store, and mixed windows assemble through the
    :meth:`StreamBatch.concatenate` fallback.  Either path returns
    value-identical fresh batches.
    """

    def __init__(self) -> None:
        # Blocks not in the packed store (schema-drifted or post-drift).
        self._blocks: Dict[object, RawBlock] = {}
        self._order: List[object] = []
        self._lengths: Dict[object, int] = {}
        # Packed-column storage: per-key (start, length) extents into the
        # packed store (extents are appended in registration order, so
        # adjacent extents <=> chronologically adjacent blocks).
        self._packed: Optional[PackedColumns] = None
        self._extents: Dict[object, tuple] = {}
        self._packing = True

    # ------------------------------------------------------------------
    def append(self, block: RawBlock) -> None:
        if block.key in self._lengths:
            raise DataError(f"block {block.key!r} already exists (blocks are immutable)")
        self._order.append(block.key)
        self._lengths[block.key] = len(block)
        if self._packing:
            batch = block.batch
            if self._packed is None:
                self._packed = PackedColumns(batch)
            if self._packed.matches(batch):
                # Empty blocks pack as zero-length extents -- they break
                # nothing (assembly filters them out before gathering).
                self._extents[block.key] = self._packed.append(batch)
                return
            # Schema drift: stop packing new blocks for good.  Blocks
            # already packed keep the packed store as their backing.
            self._packing = False
        self._blocks[block.key] = block

    def extend(self, blocks: Sequence[RawBlock]) -> None:
        for block in blocks:
            self.append(block)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: object) -> bool:
        return key in self._lengths

    @property
    def keys(self) -> List[object]:
        """Block keys in insertion order."""
        return list(self._order)

    def get(self, key: object) -> RawBlock:
        """The named block.  Packed blocks are materialized on demand as a
        fresh slab (value-identical to what was appended)."""
        slab = self._blocks.get(key)
        if slab is not None:
            return slab
        extent = self._extents.get(key)
        if extent is None:
            raise DataError(f"no block with key {key!r}")
        start, length = extent
        return RawBlock(key=key, batch=self._packed.slice_batch(start, start + length))

    def block_sizes(self) -> Dict[object, int]:
        return dict(self._lengths)

    def total_rows(self) -> int:
        return sum(self._lengths.values())

    # ------------------------------------------------------------------
    def latest_keys(self, count: int) -> List[object]:
        """The ``count`` most recently appended block keys (oldest first)."""
        if count <= 0:
            return []
        return self._order[-count:]

    def assemble(self, keys: Sequence[object]) -> StreamBatch:
        """Concatenate the named blocks into one training batch.

        Windows of packed blocks are one slice copy per column when
        contiguous (the common chronological case) or one vectorized
        gather otherwise; windows touching unpacked blocks use the
        per-block concatenation fallback.  Both return the same rows in
        the same order as fresh arrays.
        """
        keys = list(keys)  # the fast path iterates more than once
        if not keys:
            raise DataError("cannot assemble an empty block set")
        if self._packed is not None:
            extents = self._extents
            if all(k in extents for k in keys):
                # Zero-length extents contribute no rows: drop them before
                # gathering (the gather index build needs extents >= 1 row).
                spans = [extents[k] for k in keys if extents[k][1] > 0]
                if not spans:
                    return self._packed.slice_batch(0, 0)
                start, length = spans[0]
                if len(spans) == 1:
                    return self._packed.slice_batch(start, start + length)
                starts = np.fromiter(
                    (s for s, _ in spans), dtype=np.intp, count=len(spans)
                )
                lengths = np.fromiter(
                    (n for _, n in spans), dtype=np.intp, count=len(spans)
                )
                stops = starts + lengths
                if bool((starts[1:] == stops[:-1]).all()):
                    return self._packed.slice_batch(int(starts[0]), int(stops[-1]))
                return self._packed.gather(starts, lengths)
        # Mixed/unpacked fallback: packed blocks contribute zero-copy views
        # (concatenate copies into the fresh output anyway).
        return StreamBatch.concatenate([self._batch_view(k) for k in keys])

    def _batch_view(self, key: object) -> StreamBatch:
        """A block's rows without copying: the stored slab, or a view of
        the packed store (assembly-internal; do not mutate or retain)."""
        slab = self._blocks.get(key)
        if slab is not None:
            return slab.batch
        extent = self._extents.get(key)
        if extent is None:
            raise DataError(f"no block with key {key!r}")
        start, length = extent
        return self._packed.view_batch(start, start + length)

    def rows_in(self, keys: Sequence[object]) -> int:
        try:
            return sum(self._lengths[k] for k in keys)
        except KeyError as exc:
            raise DataError(f"no block with key {exc.args[0]!r}") from None

    # ------------------------------------------------------------------
    def mark(self) -> tuple:
        """Opaque pre-hour position for :meth:`truncate_to_mark` (the
        durability layer's data-plane rollback)."""
        return (
            len(self._order),
            self._packed._n if self._packed is not None else 0,
            self._packing,
            self._packed is not None,
        )

    def truncate_to_mark(self, mark: tuple) -> None:
        """Remove every block appended since ``mark`` was captured.

        Blocks are otherwise immutable/append-only; this exists solely so
        a rolled-back platform hour can unwind its ingest, leaving the
        database byte-identical to the pre-hour state (including the
        packed store's write cursor and the schema-drift latch).
        """
        n_blocks, packed_rows, packing, had_packed = mark
        if n_blocks > len(self._order):
            raise DataError(
                f"cannot truncate {len(self._order)} blocks to mark of {n_blocks}"
            )
        for key in self._order[n_blocks:]:
            del self._lengths[key]
            self._blocks.pop(key, None)
            self._extents.pop(key, None)
        del self._order[n_blocks:]
        self._packing = packing
        if self._packed is not None:
            if had_packed:
                self._packed.truncate_to(packed_rows)
            else:
                self._packed = None

    def adopt_state(self, other: "GrowingDatabase") -> None:
        """Take over another database's contents in place (crash recovery).

        The durability layer snapshots the whole database object; on
        restore the platform's existing instance -- which ingestor and
        pipelines already hold references to -- adopts the snapshot's
        state rather than being swapped out from under them.
        """
        self._blocks = other._blocks
        self._order = other._order
        self._lengths = other._lengths
        self._packed = other._packed
        self._extents = other._extents
        self._packing = other._packing


class StreamIngestor:
    """Pulls a stream forward in time and lands its blocks in the database.

    One instance per sensitive stream; ``advance(hours)`` materializes the
    next chunk of stream time, cuts it with the partitioner, and appends the
    resulting blocks.  Returns the newly created blocks so the platform can
    initialize their privacy ledgers.
    """

    def __init__(
        self,
        source: StreamSource,
        database: GrowingDatabase,
        partitioner: Optional[TimePartitioner] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.source = source
        self.database = database
        self.partitioner = partitioner or TimePartitioner(window_hours=1.0)
        self.rng = rng or np.random.default_rng()
        self.clock_hours = 0.0

    def advance(self, hours: float) -> List[RawBlock]:
        """Ingest the next ``hours`` of stream time; returns new blocks."""
        if hours <= 0:
            raise DataError(f"hours must be > 0, got {hours}")
        batch = self.source.generate_interval(self.clock_hours, hours, self.rng)
        self.clock_hours += hours
        blocks = self.partitioner.partition(batch)
        new_blocks = [b for b in blocks if b.key not in self.database]
        # A partial window at the boundary would collide with an existing
        # key; advancing in whole multiples of the window avoids that.
        for block in blocks:
            if block.key in self.database:
                raise DataError(
                    f"block {block.key!r} already ingested; advance in whole "
                    f"window multiples ({self.partitioner.window_hours}h)"
                )
        self.database.extend(new_blocks)
        return new_blocks
