"""The Growing Database (Fig. 1).

An append-only store of :class:`~repro.data.stream.RawBlock` slabs.  The
database itself knows nothing about privacy -- ledgers and access control
live in ``repro.core`` and reference blocks by key -- but it provides the
windowed retrieval pipelines use to assemble training sets from multiple
blocks (requirement R1 of §3.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.stream import RawBlock, StreamBatch, StreamSource, TimePartitioner
from repro.errors import DataError

__all__ = ["GrowingDatabase", "StreamIngestor"]


class GrowingDatabase:
    """Append-only block store keyed by public block attributes."""

    def __init__(self) -> None:
        self._blocks: Dict[object, RawBlock] = {}
        self._order: List[object] = []

    # ------------------------------------------------------------------
    def append(self, block: RawBlock) -> None:
        if block.key in self._blocks:
            raise DataError(f"block {block.key!r} already exists (blocks are immutable)")
        self._blocks[block.key] = block
        self._order.append(block.key)

    def extend(self, blocks: Sequence[RawBlock]) -> None:
        for block in blocks:
            self.append(block)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: object) -> bool:
        return key in self._blocks

    @property
    def keys(self) -> List[object]:
        """Block keys in insertion order."""
        return list(self._order)

    def get(self, key: object) -> RawBlock:
        if key not in self._blocks:
            raise DataError(f"no block with key {key!r}")
        return self._blocks[key]

    def block_sizes(self) -> Dict[object, int]:
        return {key: len(self._blocks[key]) for key in self._order}

    def total_rows(self) -> int:
        return sum(len(b) for b in self._blocks.values())

    # ------------------------------------------------------------------
    def latest_keys(self, count: int) -> List[object]:
        """The ``count`` most recently appended block keys (oldest first)."""
        if count <= 0:
            return []
        return self._order[-count:]

    def assemble(self, keys: Sequence[object]) -> StreamBatch:
        """Concatenate the named blocks into one training batch."""
        if not keys:
            raise DataError("cannot assemble an empty block set")
        return StreamBatch.concatenate([self.get(k).batch for k in keys])

    def rows_in(self, keys: Sequence[object]) -> int:
        return sum(len(self.get(k)) for k in keys)


class StreamIngestor:
    """Pulls a stream forward in time and lands its blocks in the database.

    One instance per sensitive stream; ``advance(hours)`` materializes the
    next chunk of stream time, cuts it with the partitioner, and appends the
    resulting blocks.  Returns the newly created blocks so the platform can
    initialize their privacy ledgers.
    """

    def __init__(
        self,
        source: StreamSource,
        database: GrowingDatabase,
        partitioner: Optional[TimePartitioner] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.source = source
        self.database = database
        self.partitioner = partitioner or TimePartitioner(window_hours=1.0)
        self.rng = rng or np.random.default_rng()
        self.clock_hours = 0.0

    def advance(self, hours: float) -> List[RawBlock]:
        """Ingest the next ``hours`` of stream time; returns new blocks."""
        if hours <= 0:
            raise DataError(f"hours must be > 0, got {hours}")
        batch = self.source.generate_interval(self.clock_hours, hours, self.rng)
        self.clock_hours += hours
        blocks = self.partitioner.partition(batch)
        new_blocks = [b for b in blocks if b.key not in self.database]
        # A partial window at the boundary would collide with an existing
        # key; advancing in whole multiples of the window avoids that.
        for block in blocks:
            if block.key in self.database:
                raise DataError(
                    f"block {block.key!r} already ingested; advance in whole "
                    f"window multiples ({self.partitioner.window_hours}h)"
                )
        self.database.extend(new_blocks)
        return new_blocks
