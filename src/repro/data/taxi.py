"""Synthetic NYC-taxi ride stream.

The paper's Taxi experiments (§5) use 37M NYC Yellow Cab rides [42] with a
regression task -- predict ride duration from "61 binary features derived
from 10 contextual features" -- plus three average-speed statistics
pipelines.  The real trace is not redistributable, so this module generates
a *calibrated synthetic equivalent*:

* 10 contextual features per ride (hour of day, day of week, week of month,
  distance, passenger count, vendor, payment type, rate code, and the
  derived speed/duration);
* a ground-truth physics: per-ride speed is an hour-of-day x day-of-week
  profile (rush hours slow) with multiplicative log-normal ride noise, and
  duration = distance / speed, clipped to the paper's [0, 2.5] hour filter
  (Appendix C);
* featurization into exactly 61 binary columns
  (24 hour + 7 dow + 5 wom + 10 distance buckets + 6 passengers + 2 vendors
  + 4 payment types + 3 rate codes);
* labels scaled to [0, 1] so that, as in Fig. 5a/5b, the naive
  predict-the-mean MSE is ~= 0.0069 and the best achievable model MSE is
  ~= 0.002-0.0024 (linear slightly above the NN, which can exploit the
  multiplicative hour x distance interaction).

Generated timestamps arrive at a constant configurable rate so the stream
can be cut into Sage blocks by time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.data.stream import StreamBatch
from repro.errors import DataError

__all__ = ["TaxiGenerator", "TAXI_FEATURE_DIM", "TAXI_NAIVE_MSE_TARGET"]

TAXI_FEATURE_DIM = 61
TAXI_NAIVE_MSE_TARGET = 0.0069  # the paper's predict-the-mean MSE

# Public bucket edges for ride distance (km) -> 10 one-hot buckets.
_DISTANCE_EDGES = np.array([0.8, 1.3, 1.9, 2.6, 3.5, 4.8, 6.5, 9.0, 13.0])

# Hour-of-day speed multipliers: overnight fast, AM/PM rush slow.
_HOUR_SPEED = np.array(
    [
        1.45, 1.50, 1.52, 1.50, 1.42, 1.25,  # 0-5
        1.05, 0.82, 0.70, 0.74, 0.88, 0.95,  # 6-11
        0.92, 0.90, 0.88, 0.82, 0.76, 0.68,  # 12-17
        0.72, 0.85, 1.00, 1.12, 1.25, 1.38,  # 18-23
    ]
)

# Day-of-week multipliers (0 = Monday); weekends flow faster.
_DOW_SPEED = np.array([0.97, 0.95, 0.94, 0.95, 0.92, 1.10, 1.18])

_BASE_SPEED_KMH = 17.0
_RIDE_NOISE_SIGMA = 0.40   # log-normal per-ride speed noise
_DISTANCE_LOG_MEDIAN = np.log(2.52)
_DISTANCE_LOG_SIGMA = 0.68
_MAX_DURATION_HOURS = 2.5  # Appendix C filter


@dataclass
class TaxiRides:
    """Raw contextual columns for a batch of synthetic rides."""

    hour: np.ndarray          # int in [0, 24)
    day_of_week: np.ndarray   # int in [0, 7)
    week_of_month: np.ndarray  # int in [0, 5)
    distance_km: np.ndarray   # float > 0
    passengers: np.ndarray    # int in [1, 6]
    vendor: np.ndarray        # int in [0, 2)
    payment: np.ndarray       # int in [0, 4)
    rate_code: np.ndarray     # int in [0, 3)
    speed_kmh: np.ndarray     # float (ground truth, used by stats pipelines)
    duration_hours: np.ndarray  # float in [0, 2.5]

    def __len__(self) -> int:
        return int(self.hour.shape[0])


class TaxiGenerator:
    """Deterministic-under-seed synthetic taxi stream.

    Parameters
    ----------
    points_per_hour:
        Stream arrival rate; the paper's trace runs ~17K rides/hour, scaled
        down by default so experiments fit a laptop.
    """

    feature_dim = TAXI_FEATURE_DIM
    label_range = (0.0, 1.0)

    def __init__(self, points_per_hour: int = 2000) -> None:
        if points_per_hour <= 0:
            raise DataError(f"points_per_hour must be > 0, got {points_per_hour}")
        self.points_per_hour = points_per_hour

    # ------------------------------------------------------------------
    # Ground-truth ride model
    # ------------------------------------------------------------------
    def sample_rides(self, n: int, rng: np.random.Generator) -> TaxiRides:
        """Draw ``n`` rides with hour-of-day rush structure."""
        if n <= 0:
            raise DataError(f"n must be > 0, got {n}")
        # Riders concentrate in rush hours: mixture of uniform + peaks.
        hour_weights = 0.55 + 0.45 * (1.0 / _HOUR_SPEED)
        hour_weights = hour_weights / hour_weights.sum()
        hour = rng.choice(24, size=n, p=hour_weights)
        day_of_week = rng.integers(0, 7, size=n)
        week_of_month = rng.integers(0, 5, size=n)
        distance = np.exp(rng.normal(_DISTANCE_LOG_MEDIAN, _DISTANCE_LOG_SIGMA, size=n))
        distance = np.clip(distance, 0.2, 40.0)
        passengers = 1 + rng.binomial(5, 0.18, size=n)
        vendor = rng.integers(0, 2, size=n)
        payment = rng.choice(4, size=n, p=[0.55, 0.35, 0.06, 0.04])
        rate_code = rng.choice(3, size=n, p=[0.9, 0.07, 0.03])

        speed = (
            _BASE_SPEED_KMH
            * _HOUR_SPEED[hour]
            * _DOW_SPEED[day_of_week]
            * np.exp(rng.normal(0.0, _RIDE_NOISE_SIGMA, size=n))
        )
        duration = np.clip(distance / speed, 0.0, _MAX_DURATION_HOURS)
        return TaxiRides(
            hour=hour,
            day_of_week=day_of_week,
            week_of_month=week_of_month,
            distance_km=distance,
            passengers=passengers,
            vendor=vendor,
            payment=payment,
            rate_code=rate_code,
            speed_kmh=speed,
            duration_hours=duration,
        )

    # ------------------------------------------------------------------
    # Featurization (the pipeline's preprocessing_fn output)
    # ------------------------------------------------------------------
    @staticmethod
    def featurize(rides: TaxiRides) -> np.ndarray:
        """61 binary features: 24+7+5 calendar, 10 distance, 6+2+4+3 misc."""
        n = len(rides)
        blocks = []
        for values, card in (
            (rides.hour, 24),
            (rides.day_of_week, 7),
            (rides.week_of_month, 5),
            (np.searchsorted(_DISTANCE_EDGES, rides.distance_km), 10),
            (rides.passengers - 1, 6),
            (rides.vendor, 2),
            (rides.payment, 4),
            (rides.rate_code, 3),
        ):
            onehot = np.zeros((n, card))
            onehot[np.arange(n), np.asarray(values, dtype=np.int64)] = 1.0
            blocks.append(onehot)
        X = np.hstack(blocks)
        assert X.shape[1] == TAXI_FEATURE_DIM
        return X

    @staticmethod
    def labels(rides: TaxiRides) -> np.ndarray:
        """Duration scaled into [0, 1] (duration_hours / 2.5)."""
        return rides.duration_hours / _MAX_DURATION_HOURS

    # ------------------------------------------------------------------
    # Stream interface
    # ------------------------------------------------------------------
    def generate_interval(
        self, start_hour: float, hours: float, rng: np.random.Generator
    ) -> StreamBatch:
        """All rides in [start_hour, start_hour + hours) of stream time."""
        if hours <= 0:
            raise DataError(f"hours must be > 0, got {hours}")
        n = max(1, int(round(self.points_per_hour * hours)))
        rides = self.sample_rides(n, rng)
        timestamps = np.sort(rng.uniform(start_hour, start_hour + hours, size=n))
        user_ids = rng.integers(0, max(10, n // 5), size=n)
        return StreamBatch(
            X=self.featurize(rides),
            y=self.labels(rides),
            timestamps=timestamps,
            user_ids=user_ids,
            extras=self.statistic_columns(rides),
        )

    def generate(self, n: int, rng: np.random.Generator) -> StreamBatch:
        """``n`` rides at this generator's stream rate (static-dataset style)."""
        return self.generate_interval(0.0, n / self.points_per_hour, rng)

    # ------------------------------------------------------------------
    # Columns for the Avg.Speed statistics pipelines (Table 1, x3)
    # ------------------------------------------------------------------
    @staticmethod
    def statistic_columns(rides: TaxiRides) -> Dict[str, np.ndarray]:
        """Keys and values for the three time-granularity speed statistics."""
        return {
            "speed_kmh": rides.speed_kmh,
            "hour_of_day": rides.hour.astype(np.int64),
            "day_of_week": rides.day_of_week.astype(np.int64),
            "week_of_month": rides.week_of_month.astype(np.int64),
        }

    @staticmethod
    def true_mean_speed_by(key: str, rides: TaxiRides) -> np.ndarray:
        """Ground-truth per-key mean speeds (for absolute-error evaluation)."""
        cols = TaxiGenerator.statistic_columns(rides)
        if key not in ("hour_of_day", "day_of_week", "week_of_month"):
            raise DataError(f"unknown statistic key {key!r}")
        keys = cols[key]
        nkeys = {"hour_of_day": 24, "day_of_week": 7, "week_of_month": 5}[key]
        sums = np.bincount(keys, weights=cols["speed_kmh"], minlength=nkeys)
        counts = np.maximum(np.bincount(keys, minlength=nkeys), 1)
        return sums / counts
