"""Data streams and block partitioners.

Sage splits each sensitive stream into *blocks* -- by time for event-level
privacy, by user id (or any public attribute) for user-level privacy (§3.2,
§4.4).  This module provides the stream-side machinery: a batch container
with timestamps and user ids, and partitioners that cut batches into raw
blocks.  Privacy ledgers live in ``repro.core``; here blocks are just data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Protocol

import numpy as np

from repro.errors import DataError

__all__ = ["StreamBatch", "StreamSource", "TimePartitioner", "UserPartitioner", "RawBlock"]


@dataclass
class StreamBatch:
    """A contiguous chunk of stream records.

    ``extras`` carries named per-record columns beyond the featurized matrix
    (e.g. the raw speed column the statistics pipelines aggregate).
    """

    X: np.ndarray
    y: np.ndarray
    timestamps: np.ndarray
    user_ids: np.ndarray
    extras: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = self.X.shape[0]
        for name, arr in (
            ("y", self.y),
            ("timestamps", self.timestamps),
            ("user_ids", self.user_ids),
        ):
            if arr.shape[0] != n:
                raise DataError(f"{name} has {arr.shape[0]} rows, expected {n}")
        for key, arr in self.extras.items():
            if arr.shape[0] != n:
                raise DataError(f"extras[{key!r}] has {arr.shape[0]} rows, expected {n}")

    def __len__(self) -> int:
        return int(self.X.shape[0])

    def select(self, idx: np.ndarray) -> "StreamBatch":
        """Row-subset view (copies) preserving all columns."""
        return StreamBatch(
            X=self.X[idx],
            y=self.y[idx],
            timestamps=self.timestamps[idx],
            user_ids=self.user_ids[idx],
            extras={k: v[idx] for k, v in self.extras.items()},
        )

    @staticmethod
    def concatenate(batches: List["StreamBatch"]) -> "StreamBatch":
        if not batches:
            raise DataError("cannot concatenate zero batches")
        keys = set(batches[0].extras)
        if any(set(b.extras) != keys for b in batches):
            raise DataError("batches disagree on extras columns")
        return StreamBatch(
            X=np.concatenate([b.X for b in batches]),
            y=np.concatenate([b.y for b in batches]),
            timestamps=np.concatenate([b.timestamps for b in batches]),
            user_ids=np.concatenate([b.user_ids for b in batches]),
            extras={k: np.concatenate([b.extras[k] for b in batches]) for k in keys},
        )


class StreamSource(Protocol):
    """A data stream that can materialize any time interval.

    Both synthetic generators (:class:`~repro.data.taxi.TaxiGenerator`,
    :class:`~repro.data.criteo.CriteoGenerator`) satisfy this protocol.
    """

    points_per_hour: int
    feature_dim: int
    label_range: tuple

    def generate_interval(
        self, start_hour: float, hours: float, rng: np.random.Generator
    ) -> StreamBatch:
        ...


@dataclass(frozen=True)
class RawBlock:
    """An immutable slab of stream data destined to become a Sage block.

    ``key`` is the public block attribute: the time-window index for
    event-level privacy or the user bucket for user-level privacy.
    """

    key: object
    batch: StreamBatch

    def __len__(self) -> int:
        return len(self.batch)


class TimePartitioner:
    """Cut a batch into blocks of ``window_hours`` of stream time.

    Window boundaries are absolute (window k covers
    [k * window_hours, (k+1) * window_hours)), so repeated calls with
    adjacent batches produce consistent keys.
    """

    def __init__(self, window_hours: float = 1.0) -> None:
        if window_hours <= 0:
            raise DataError(f"window_hours must be > 0, got {window_hours}")
        self.window_hours = window_hours

    def partition(self, batch: StreamBatch) -> List[RawBlock]:
        windows = np.floor(batch.timestamps / self.window_hours).astype(np.int64)
        blocks = []
        for key in np.unique(windows):
            idx = np.flatnonzero(windows == key)
            blocks.append(RawBlock(key=int(key), batch=batch.select(idx)))
        return blocks


class UserPartitioner:
    """Cut a batch into per-user-bucket blocks (user-level privacy, §4.4).

    Bucketing by ``user_id % num_buckets`` keeps the set of possible block
    keys public (the paper's requirement that block attributes be
    non-sensitive) while letting every user's records land in one block.
    """

    def __init__(self, num_buckets: int = 64) -> None:
        if num_buckets <= 0:
            raise DataError(f"num_buckets must be > 0, got {num_buckets}")
        self.num_buckets = num_buckets

    def partition(self, batch: StreamBatch) -> List[RawBlock]:
        buckets = np.asarray(batch.user_ids, dtype=np.int64) % self.num_buckets
        blocks = []
        for key in np.unique(buckets):
            idx = np.flatnonzero(buckets == key)
            blocks.append(RawBlock(key=("user", int(key)), batch=batch.select(idx)))
        return blocks
