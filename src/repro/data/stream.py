"""Data streams and block partitioners.

Sage splits each sensitive stream into *blocks* -- by time for event-level
privacy, by user id (or any public attribute) for user-level privacy (§3.2,
§4.4).  This module provides the stream-side machinery: a batch container
with timestamps and user ids, and partitioners that cut batches into raw
blocks.  Privacy ledgers live in ``repro.core``; here blocks are just data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Protocol

import numpy as np

from repro.errors import DataError

__all__ = [
    "StreamBatch",
    "StreamSource",
    "TimePartitioner",
    "UserPartitioner",
    "RawBlock",
    "PackedColumns",
]


@dataclass
class StreamBatch:
    """A contiguous chunk of stream records.

    ``extras`` carries named per-record columns beyond the featurized matrix
    (e.g. the raw speed column the statistics pipelines aggregate).
    """

    X: np.ndarray
    y: np.ndarray
    timestamps: np.ndarray
    user_ids: np.ndarray
    extras: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = self.X.shape[0]
        for name, arr in (
            ("y", self.y),
            ("timestamps", self.timestamps),
            ("user_ids", self.user_ids),
        ):
            if arr.shape[0] != n:
                raise DataError(f"{name} has {arr.shape[0]} rows, expected {n}")
        for key, arr in self.extras.items():
            if arr.shape[0] != n:
                raise DataError(f"extras[{key!r}] has {arr.shape[0]} rows, expected {n}")

    def __len__(self) -> int:
        return int(self.X.shape[0])

    def select(self, idx: np.ndarray) -> "StreamBatch":
        """Row-subset view (copies) preserving all columns."""
        return StreamBatch(
            X=self.X[idx],
            y=self.y[idx],
            timestamps=self.timestamps[idx],
            user_ids=self.user_ids[idx],
            extras={k: v[idx] for k, v in self.extras.items()},
        )

    @staticmethod
    def concatenate(batches: List["StreamBatch"]) -> "StreamBatch":
        """Concatenate batches row-wise into one fresh batch.

        One C-level ``np.concatenate`` per column -- near numpy's floor for
        a one-shot join.  The platform's hourly drive, which used to call
        this over thousands of one-row blocks per assembled window, now
        assembles through :class:`PackedColumns` instead (preallocated
        columns filled once at ingest, windows read back as one slice or
        gather); this method remains the general-purpose fallback for
        heterogeneous batches.
        """
        if not batches:
            raise DataError("cannot concatenate zero batches")
        if len(batches) == 1:
            return batches[0].select(np.arange(len(batches[0])))
        keys = set(batches[0].extras)
        if any(set(b.extras) != keys for b in batches):
            raise DataError("batches disagree on extras columns")
        return StreamBatch(
            X=np.concatenate([b.X for b in batches]),
            y=np.concatenate([b.y for b in batches]),
            timestamps=np.concatenate([b.timestamps for b in batches]),
            user_ids=np.concatenate([b.user_ids for b in batches]),
            extras={k: np.concatenate([b.extras[k] for b in batches]) for k in keys},
        )


class PackedColumns:
    """Preallocated columnar store for append-only streams of batches.

    The hourly drive's hottest remaining path was window *assembly*:
    ``StreamBatch.concatenate`` re-walked thousands of one-row blocks --
    five comprehensions plus five per-block concatenations -- for every
    granted attempt.  This store replaces the repeated per-block
    concatenation with preallocated output arrays filled in one pass:
    every column lives in one contiguous array (amortized O(1) doubling
    growth, rows appended exactly once at ingest), each appended batch
    occupies a ``(start, length)`` extent, and assembling a window is a
    single slice copy (contiguous extents -- the common chronological
    window) or one vectorized gather (arbitrary extents), per column.

    The schema (feature width, column dtypes, extras keys) is fixed by the
    first batch; :meth:`matches` lets the owner detect drift and fall back
    to per-block concatenation.
    """

    def __init__(self, template: StreamBatch, capacity: int = 1024) -> None:
        capacity = max(1, int(capacity))
        self._feature_shape = template.X.shape[1:]
        self._extras_keys = tuple(sorted(template.extras))
        self._n = 0
        self._X = np.empty((capacity,) + self._feature_shape, dtype=template.X.dtype)
        self._y = np.empty(capacity, dtype=template.y.dtype)
        self._timestamps = np.empty(capacity, dtype=template.timestamps.dtype)
        self._user_ids = np.empty(capacity, dtype=template.user_ids.dtype)
        self._extras = {
            k: np.empty(capacity, dtype=template.extras[k].dtype)
            for k in self._extras_keys
        }

    def __len__(self) -> int:
        return self._n

    def matches(self, batch: StreamBatch) -> bool:
        """Whether the batch fits this store's fixed schema."""
        if batch.X.shape[1:] != self._feature_shape:
            return False
        if tuple(sorted(batch.extras)) != self._extras_keys:
            return False
        if (
            batch.X.dtype != self._X.dtype
            or batch.y.dtype != self._y.dtype
            or batch.timestamps.dtype != self._timestamps.dtype
            or batch.user_ids.dtype != self._user_ids.dtype
        ):
            return False
        return all(
            batch.extras[k].dtype == self._extras[k].dtype
            for k in self._extras_keys
        )

    def _grow_to(self, needed: int) -> None:
        capacity = self._y.shape[0]
        while capacity < needed:
            capacity *= 2

        def grown(arr: np.ndarray) -> np.ndarray:
            out = np.empty((capacity,) + arr.shape[1:], dtype=arr.dtype)
            out[: self._n] = arr[: self._n]
            return out

        self._X = grown(self._X)
        self._y = grown(self._y)
        self._timestamps = grown(self._timestamps)
        self._user_ids = grown(self._user_ids)
        self._extras = {k: grown(v) for k, v in self._extras.items()}

    def append(self, batch: StreamBatch) -> tuple:
        """Pack one batch's rows; returns its ``(start, length)`` extent."""
        n = len(batch)
        start = self._n
        if start + n > self._y.shape[0]:
            self._grow_to(start + n)
        stop = start + n
        self._X[start:stop] = batch.X
        self._y[start:stop] = batch.y
        self._timestamps[start:stop] = batch.timestamps
        self._user_ids[start:stop] = batch.user_ids
        for k in self._extras_keys:
            self._extras[k][start:stop] = batch.extras[k]
        self._n = stop
        return start, n

    def truncate_to(self, n_rows: int) -> None:
        """Drop every row past ``n_rows`` (the owner's tail rollback).
        Bytes past the cursor are dead capacity, overwritten by the next
        append -- exactly the state a shorter history would have left."""
        if not 0 <= n_rows <= self._n:
            raise DataError(
                f"cannot truncate packed store of {self._n} rows to {n_rows}"
            )
        self._n = n_rows

    def slice_batch(self, start: int, stop: int) -> StreamBatch:
        """Fresh batch of the contiguous row range (one memcpy per column)."""
        return StreamBatch(
            X=self._X[start:stop].copy(),
            y=self._y[start:stop].copy(),
            timestamps=self._timestamps[start:stop].copy(),
            user_ids=self._user_ids[start:stop].copy(),
            extras={k: v[start:stop].copy() for k, v in self._extras.items()},
        )

    def view_batch(self, start: int, stop: int) -> StreamBatch:
        """Zero-copy *view* of the contiguous row range.

        For read-only consumers that copy anyway (e.g. feeding
        ``StreamBatch.concatenate``); callers must not mutate it, and must
        not hold it across further appends (growth reallocates the backing
        buffers, detaching views).
        """
        return StreamBatch(
            X=self._X[start:stop],
            y=self._y[start:stop],
            timestamps=self._timestamps[start:stop],
            user_ids=self._user_ids[start:stop],
            extras={k: v[start:stop] for k, v in self._extras.items()},
        )

    def gather(self, starts: np.ndarray, lengths: np.ndarray) -> StreamBatch:
        """Fresh batch of the named extents, in order (one gather per column).

        The row-index vector is built without a per-extent Python loop:
        ones everywhere, each extent's first position overwritten with the
        jump from the previous extent's last row, then a cumulative sum.
        Requires every extent non-empty (blocks always hold >= 1 row).
        """
        starts = np.asarray(starts, dtype=np.intp)
        lengths = np.asarray(lengths, dtype=np.intp)
        if lengths.size == 0 or not bool((lengths > 0).all()):
            raise DataError(
                "gather requires non-empty extents (filter zero-length "
                "extents out first, as GrowingDatabase.assemble does)"
            )
        total = int(lengths.sum())
        rows = np.ones(total, dtype=np.intp)
        ends = np.cumsum(lengths)
        rows[0] = starts[0]
        rows[ends[:-1]] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
        rows = np.cumsum(rows)
        return StreamBatch(
            X=self._X[rows],
            y=self._y[rows],
            timestamps=self._timestamps[rows],
            user_ids=self._user_ids[rows],
            extras={k: v[rows] for k, v in self._extras.items()},
        )


class StreamSource(Protocol):
    """A data stream that can materialize any time interval.

    Both synthetic generators (:class:`~repro.data.taxi.TaxiGenerator`,
    :class:`~repro.data.criteo.CriteoGenerator`) satisfy this protocol.
    """

    points_per_hour: int
    feature_dim: int
    label_range: tuple

    def generate_interval(
        self, start_hour: float, hours: float, rng: np.random.Generator
    ) -> StreamBatch:
        ...


@dataclass(frozen=True)
class RawBlock:
    """An immutable slab of stream data destined to become a Sage block.

    ``key`` is the public block attribute: the time-window index for
    event-level privacy or the user bucket for user-level privacy.
    """

    key: object
    batch: StreamBatch

    def __len__(self) -> int:
        return len(self.batch)


class TimePartitioner:
    """Cut a batch into blocks of ``window_hours`` of stream time.

    Window boundaries are absolute (window k covers
    [k * window_hours, (k+1) * window_hours)), so repeated calls with
    adjacent batches produce consistent keys.
    """

    def __init__(self, window_hours: float = 1.0) -> None:
        if window_hours <= 0:
            raise DataError(f"window_hours must be > 0, got {window_hours}")
        self.window_hours = window_hours

    def partition(self, batch: StreamBatch) -> List[RawBlock]:
        windows = np.floor(batch.timestamps / self.window_hours).astype(np.int64)
        blocks = []
        for key in np.unique(windows):
            idx = np.flatnonzero(windows == key)
            blocks.append(RawBlock(key=int(key), batch=batch.select(idx)))
        return blocks


class UserPartitioner:
    """Cut a batch into per-user-bucket blocks (user-level privacy, §4.4).

    Bucketing by ``user_id % num_buckets`` keeps the set of possible block
    keys public (the paper's requirement that block attributes be
    non-sensitive) while letting every user's records land in one block.
    """

    def __init__(self, num_buckets: int = 64) -> None:
        if num_buckets <= 0:
            raise DataError(f"num_buckets must be > 0, got {num_buckets}")
        self.num_buckets = num_buckets

    def partition(self, batch: StreamBatch) -> List[RawBlock]:
        buckets = np.asarray(batch.user_ids, dtype=np.int64) % self.num_buckets
        blocks = []
        for key in np.unique(buckets):
            idx = np.flatnonzero(buckets == key)
            blocks.append(RawBlock(key=("user", int(key)), batch=batch.select(idx)))
        return blocks
