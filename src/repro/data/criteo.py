"""Synthetic Criteo click-prediction stream.

The paper's classification task (§5) uses 45M Criteo ad impressions [1]:
13 numeric + 26 categorical features, binary click labels, majority-class
accuracy 74.3% and best DP/non-DP model accuracy ~= 0.778 (Fig. 5c/5d).

This module generates a calibrated synthetic equivalent.  Clicks follow a
ground-truth logistic model over the featurized inputs (so a logistic
regression can approach the Bayes optimum) plus a small interaction term
only nonlinear models can capture (the NN's edge in Fig. 5d):

    logit = bias + w_num . z + sum_j embed_j[cat_j] + kappa * (z_0 * z_1)

The bias and the logit scale are calibrated by Gaussian quadrature at
construction time so that P(click) ~= 0.257 and the Bayes accuracy
E[max(p, 1-p)] ~= 0.785.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.data.stream import StreamBatch
from repro.errors import DataError

__all__ = ["CriteoGenerator", "CRITEO_CARDINALITIES", "CRITEO_NAIVE_ACCURACY"]

CRITEO_NAIVE_ACCURACY = 0.743  # majority class (no click)

# Cardinalities of the 26 categorical features.  The real Criteo vocabularies
# are hashed down in production; these are the post-hash sizes we model.
CRITEO_CARDINALITIES: List[int] = [
    8, 12, 6, 10, 24, 5, 9, 16, 4, 7,
    11, 6, 14, 5, 8, 10, 6, 12, 4, 9,
    7, 5, 15, 6, 8, 10,
]

_NUM_FEATURES = 13
_TARGET_CLICK_RATE = 1.0 - CRITEO_NAIVE_ACCURACY  # 0.257
_TARGET_BAYES_ACCURACY = 0.786
_INTERACTION_KAPPA = 0.55


@dataclass
class CriteoImpressions:
    """Raw columns for a batch of synthetic impressions."""

    numeric: np.ndarray      # (n, 13) floats in [0, 1]
    categorical: np.ndarray  # (n, 26) ints, column j in [0, CARD[j])
    clicked: np.ndarray      # (n,) {0.0, 1.0}

    def __len__(self) -> int:
        return int(self.numeric.shape[0])


def _gauss_hermite_stats(bias: float, scale: float):
    """(click_rate, bayes_accuracy) when logit = bias + scale * N(0, 1)."""
    nodes, weights = np.polynomial.hermite_e.hermegauss(64)
    probs = 1.0 / (1.0 + np.exp(-(bias + scale * nodes)))
    w = weights / weights.sum()
    rate = float(np.sum(w * probs))
    bayes = float(np.sum(w * np.maximum(probs, 1.0 - probs)))
    return rate, bayes


def _calibrate_logit(target_rate: float, target_bayes: float):
    """Find (bias, scale) hitting the click rate and Bayes accuracy targets."""
    scale_lo, scale_hi = 0.05, 8.0
    for _ in range(60):
        scale = 0.5 * (scale_lo + scale_hi)
        # inner: bias for the click rate at this scale
        b_lo, b_hi = -12.0, 6.0
        for _ in range(60):
            bias = 0.5 * (b_lo + b_hi)
            rate, _ = _gauss_hermite_stats(bias, scale)
            if rate < target_rate:
                b_lo = bias
            else:
                b_hi = bias
        _, bayes = _gauss_hermite_stats(bias, scale)
        if bayes < target_bayes:
            scale_lo = scale
        else:
            scale_hi = scale
    return bias, scale


class CriteoGenerator:
    """Deterministic-under-seed synthetic Criteo stream."""

    label_range = (0.0, 1.0)

    def __init__(self, points_per_hour: int = 4000, seed: int = 7) -> None:
        if points_per_hour <= 0:
            raise DataError(f"points_per_hour must be > 0, got {points_per_hour}")
        self.points_per_hour = points_per_hour
        # Fixed ground-truth weights (independent of the per-batch rng so two
        # batches come from the same population).
        wrng = np.random.default_rng(seed)
        self._w_num = wrng.normal(0.0, 1.0, size=_NUM_FEATURES)
        self._embeds = [
            wrng.normal(0.0, 1.0, size=card) for card in CRITEO_CARDINALITIES
        ]
        # Zipf-ish category popularity per feature.
        self._cat_probs = []
        for card in CRITEO_CARDINALITIES:
            p = 1.0 / np.arange(1, card + 1) ** 1.1
            self._cat_probs.append(p / p.sum())
        # Center each embedding under its *popularity* distribution so the
        # raw logit is zero-mean and the bias calibration below is exact.
        for e, p in zip(self._embeds, self._cat_probs):
            e -= p @ e
        # Raw (uncalibrated) logit variance, computed analytically:
        # numeric part: z_j ~ U[0,1] i.i.d.; cat part: embeds under popularity.
        var_num = float(np.sum(self._w_num ** 2)) / 12.0
        var_cat = 0.0
        for e, p in zip(self._embeds, self._cat_probs):
            mean = float(p @ e)
            var_cat += float(p @ (e - mean) ** 2)
        var_inter = _INTERACTION_KAPPA ** 2 * (7.0 / 144.0)  # Var(z0*z1), z~U[0,1]
        self._raw_std = float(np.sqrt(var_num + var_cat + var_inter))
        bias, scale = _calibrate_logit(_TARGET_CLICK_RATE, _TARGET_BAYES_ACCURACY)
        self._bias = bias
        self._logit_gain = scale / self._raw_std

    # ------------------------------------------------------------------
    @property
    def feature_dim(self) -> int:
        return _NUM_FEATURES + sum(CRITEO_CARDINALITIES)

    def sample_impressions(self, n: int, rng: np.random.Generator) -> CriteoImpressions:
        if n <= 0:
            raise DataError(f"n must be > 0, got {n}")
        numeric = rng.random(size=(n, _NUM_FEATURES))
        categorical = np.empty((n, len(CRITEO_CARDINALITIES)), dtype=np.int64)
        for j, p in enumerate(self._cat_probs):
            categorical[:, j] = rng.choice(len(p), size=n, p=p)
        logits = self._true_logits(numeric, categorical)
        clicked = (rng.random(n) < 1.0 / (1.0 + np.exp(-logits))).astype(float)
        return CriteoImpressions(numeric=numeric, categorical=categorical, clicked=clicked)

    def _true_logits(self, numeric: np.ndarray, categorical: np.ndarray) -> np.ndarray:
        raw = numeric @ self._w_num - 0.5 * self._w_num.sum()
        for j, e in enumerate(self._embeds):
            raw = raw + e[categorical[:, j]]
        centered_inter = numeric[:, 0] * numeric[:, 1] - 0.25
        raw = raw + _INTERACTION_KAPPA * centered_inter
        return self._bias + self._logit_gain * raw

    def bayes_probabilities(self, impressions: CriteoImpressions) -> np.ndarray:
        """Ground-truth click probabilities (for calibration tests)."""
        logits = self._true_logits(impressions.numeric, impressions.categorical)
        return 1.0 / (1.0 + np.exp(-logits))

    # ------------------------------------------------------------------
    @staticmethod
    def featurize(impressions: CriteoImpressions) -> np.ndarray:
        """13 numeric columns + one-hot of each categorical feature."""
        n = len(impressions)
        blocks = [impressions.numeric]
        for j, card in enumerate(CRITEO_CARDINALITIES):
            onehot = np.zeros((n, card))
            onehot[np.arange(n), impressions.categorical[:, j]] = 1.0
            blocks.append(onehot)
        return np.hstack(blocks)

    @staticmethod
    def labels(impressions: CriteoImpressions) -> np.ndarray:
        return impressions.clicked

    # ------------------------------------------------------------------
    def generate_interval(
        self, start_hour: float, hours: float, rng: np.random.Generator
    ) -> StreamBatch:
        if hours <= 0:
            raise DataError(f"hours must be > 0, got {hours}")
        n = max(1, int(round(self.points_per_hour * hours)))
        impressions = self.sample_impressions(n, rng)
        timestamps = np.sort(rng.uniform(start_hour, start_hour + hours, size=n))
        user_ids = rng.integers(0, max(10, n // 3), size=n)
        extras = {
            f"cat_{j}": impressions.categorical[:, j]
            for j in range(len(CRITEO_CARDINALITIES))
        }
        return StreamBatch(
            X=self.featurize(impressions),
            y=self.labels(impressions),
            timestamps=timestamps,
            user_ids=user_ids,
            extras=extras,
        )

    def generate(self, n: int, rng: np.random.Generator) -> StreamBatch:
        return self.generate_interval(0.0, n / self.points_per_hour, rng)
