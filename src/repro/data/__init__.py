"""Data substrate: synthetic datasets, streams, and the growing database."""

from repro.data.criteo import CRITEO_CARDINALITIES, CRITEO_NAIVE_ACCURACY, CriteoGenerator
from repro.data.database import GrowingDatabase, StreamIngestor
from repro.data.stream import (
    RawBlock,
    StreamBatch,
    StreamSource,
    TimePartitioner,
    UserPartitioner,
)
from repro.data.taxi import TAXI_FEATURE_DIM, TAXI_NAIVE_MSE_TARGET, TaxiGenerator

__all__ = [
    "TaxiGenerator",
    "TAXI_FEATURE_DIM",
    "TAXI_NAIVE_MSE_TARGET",
    "CriteoGenerator",
    "CRITEO_CARDINALITIES",
    "CRITEO_NAIVE_ACCURACY",
    "StreamBatch",
    "StreamSource",
    "RawBlock",
    "TimePartitioner",
    "UserPartitioner",
    "GrowingDatabase",
    "StreamIngestor",
]
