"""ML substrate: numpy models, trainers (SGD / DP-SGD), metrics, transforms.

Everything the Sage pipelines of Table 1 train with, implemented from
scratch: closed-form ridge and AdaSSP linear regression, logistic
regression and MLPs via one shared backprop (``MLPModel``), non-private SGD
and DP-SGD with per-example clipping + RDP accounting.
"""

from repro.ml.base import DifferentiableModel, Estimator, per_example_sq_norms
from repro.ml.dpsgd import (
    DPSGDConfig,
    DPSGDResult,
    clipped_noisy_mean_gradients,
    dpsgd_train,
)
from repro.ml.estimators import (
    DPSGDClassifierEstimator,
    DPSGDRegressorEstimator,
    MLPClassifierEstimator,
    MLPRegressorEstimator,
)
from repro.ml.linear import AdaSSPRegressor, RidgeRegression
from repro.ml.metrics import (
    absolute_errors,
    accuracy,
    log_loss,
    log_losses,
    mae,
    mse,
    squared_errors,
    zero_one_losses,
)
from repro.ml.neural import MLPModel, relu, sigmoid
from repro.ml.objective import ObjectivePerturbationLogistic
from repro.ml.preprocessing import (
    MinMaxScaler,
    OneHotEncoder,
    StandardScaler,
    add_bias_column,
    hash_buckets,
    scale_to_0_1,
    train_test_split,
)
from repro.ml.sgd import MomentumState, SGDConfig, minibatch_indices, sgd_train

__all__ = [
    "Estimator",
    "DifferentiableModel",
    "per_example_sq_norms",
    "MLPModel",
    "relu",
    "sigmoid",
    "RidgeRegression",
    "AdaSSPRegressor",
    "ObjectivePerturbationLogistic",
    "SGDConfig",
    "sgd_train",
    "minibatch_indices",
    "MomentumState",
    "DPSGDConfig",
    "DPSGDResult",
    "dpsgd_train",
    "clipped_noisy_mean_gradients",
    "MLPRegressorEstimator",
    "MLPClassifierEstimator",
    "DPSGDRegressorEstimator",
    "DPSGDClassifierEstimator",
    "mse",
    "mae",
    "accuracy",
    "log_loss",
    "log_losses",
    "squared_errors",
    "absolute_errors",
    "zero_one_losses",
    "scale_to_0_1",
    "MinMaxScaler",
    "StandardScaler",
    "OneHotEncoder",
    "hash_buckets",
    "train_test_split",
    "add_bias_column",
]
