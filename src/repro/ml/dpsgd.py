"""DP-SGD: differentially private stochastic gradient descent.

The training algorithm of [Abadi et al., CCS 2016] as used by every
SGD-trained pipeline in Table 1: per-example gradients are L2-clipped to a
norm bound C, summed, perturbed with Gaussian noise N(0, sigma^2 C^2 I), and
averaged.  Privacy is accounted with the RDP accountant
(:mod:`repro.dp.rdp`); given a target (epsilon, delta) the trainer
calibrates the noise multiplier by binary search, which is how Sage's
privacy-adaptive training turns a granted budget into a concrete run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.dp.budget import PrivacyBudget
from repro.dp.rdp import calibrate_sigma, compute_epsilon
from repro.errors import DataError
from repro.ml.base import DifferentiableModel, Params, per_example_sq_norms
from repro.ml.sgd import MomentumState, SGDConfig, minibatch_indices

__all__ = ["DPSGDConfig", "DPSGDResult", "dpsgd_train", "clipped_noisy_mean_gradients"]


@dataclass(frozen=True)
class DPSGDConfig:
    """DP-SGD hyperparameters: the SGD ones plus clipping and noise."""

    sgd: SGDConfig
    clip_norm: float = 1.0
    noise_multiplier: Optional[float] = None  # set explicitly, or calibrated

    def __post_init__(self) -> None:
        if self.clip_norm <= 0:
            raise DataError(f"clip_norm must be > 0, got {self.clip_norm}")
        if self.noise_multiplier is not None and self.noise_multiplier < 0:
            raise DataError(
                f"noise_multiplier must be >= 0, got {self.noise_multiplier}"
            )


@dataclass
class DPSGDResult:
    """Trained parameters plus the privacy accounting of the run."""

    params: Params
    epoch_losses: List[float]
    noise_multiplier: float
    steps: int
    sampling_rate: float
    spent: PrivacyBudget  # (epsilon, delta) actually guaranteed by the run


def clipped_noisy_mean_gradients(
    model: DifferentiableModel,
    params: Params,
    X: np.ndarray,
    y: np.ndarray,
    clip_norm: float,
    noise_sigma: float,
    rng: np.random.Generator,
) -> Tuple[float, Params]:
    """One DP-SGD gradient estimate on a batch.

    Each example's gradient is scaled by min(1, C/||g||_2) (global norm across
    all parameter groups), the clipped gradients are summed, independent
    N(0, noise_sigma^2 C^2) noise is added to every coordinate, and the total
    is divided by the batch size.

    Models exposing ``clipped_gradient_sums`` (ghost clipping -- the MLP
    does) take a matmul-only fast path; anything else falls back to
    materialized per-example gradients.
    """
    fast = getattr(model, "clipped_gradient_sums", None)
    if fast is not None:
        losses, sums = fast(params, X, y, clip_norm)
        n = losses.shape[0]
    else:
        losses, grads = model.per_example_gradients(params, X, y)
        n = losses.shape[0]
        norms = np.sqrt(np.maximum(per_example_sq_norms(grads), 1e-64))
        factors = np.minimum(1.0, clip_norm / norms)
        sums = []
        for g in grads:
            shape = (n,) + (1,) * (g.ndim - 1)
            sums.append((g * factors.reshape(shape)).sum(axis=0))
    noisy: Params = []
    for summed in sums:
        if noise_sigma > 0:
            summed = summed + rng.normal(
                0.0, noise_sigma * clip_norm, size=summed.shape
            )
        noisy.append(summed / n)
    return float(np.mean(losses)), noisy


def dpsgd_train(
    model: DifferentiableModel,
    X: np.ndarray,
    y: np.ndarray,
    config: DPSGDConfig,
    rng: np.random.Generator,
    budget: Optional[PrivacyBudget] = None,
    params: Optional[Params] = None,
) -> DPSGDResult:
    """Train with DP-SGD under an explicit noise multiplier or a target budget.

    Exactly one of ``config.noise_multiplier`` and ``budget`` must be given:

    * with a noise multiplier, the run's achieved (epsilon, delta) is computed
      afterwards (delta defaults to 1e-6 for reporting in that case);
    * with a budget, the smallest noise multiplier meeting it is calibrated
      via the RDP accountant before training.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).reshape(-1)
    if X.shape[0] != y.shape[0]:
        raise DataError("X and y must agree on the first dimension")
    n = X.shape[0]
    batch_size = min(config.sgd.batch_size, n)
    q = batch_size / n
    steps = config.sgd.steps_for(n)

    if (config.noise_multiplier is None) == (budget is None):
        raise DataError("provide exactly one of noise_multiplier or budget")
    if budget is not None:
        if budget.delta <= 0:
            raise DataError("DP-SGD needs delta > 0 in its budget")
        sigma = calibrate_sigma(q, steps, budget.epsilon, budget.delta)
        delta = budget.delta
    else:
        sigma = float(config.noise_multiplier)
        delta = 1e-6

    if params is None:
        params = model.init_params(X.shape[1], rng)
    state = MomentumState(config.sgd.momentum)
    epoch_losses: List[float] = []
    for _ in range(config.sgd.epochs):
        losses = []
        for batch in minibatch_indices(n, batch_size, 1, rng):
            loss, grads = clipped_noisy_mean_gradients(
                model, params, X[batch], y[batch], config.clip_norm, sigma, rng
            )
            state.step(params, grads, config.sgd.learning_rate)
            losses.append(loss)
        epoch_losses.append(float(np.mean(losses)))

    if sigma > 0:
        eps_spent = compute_epsilon(q, sigma, steps, delta)
        spent = PrivacyBudget(eps_spent, delta)
    else:
        # noise_multiplier == 0 is the non-private escape hatch used by
        # baselines; report a budget that no real ledger would admit.
        spent = PrivacyBudget(1e9, delta)
    return DPSGDResult(
        params=params,
        epoch_losses=epoch_losses,
        noise_multiplier=sigma,
        steps=steps,
        sampling_rate=q,
        spent=spent,
    )
