"""Model-quality metrics.

The three metric families Sage's SLAed validators cover (§3.3): loss metrics
(MSE / log-loss, lower is better), accuracy (higher is better), and absolute
error of sum-based statistics.  Validators need *per-example* losses so they
can clip each one into [0, B] before summing (Listing 2), so each loss metric
comes in a per-example and an aggregate form.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError

__all__ = [
    "squared_errors",
    "mse",
    "mae",
    "absolute_errors",
    "log_losses",
    "log_loss",
    "accuracy",
    "zero_one_losses",
]

_LOG_EPS = 1e-12


def _as_1d(a: np.ndarray, name: str) -> np.ndarray:
    a = np.asarray(a, dtype=float).reshape(-1)
    if a.size == 0:
        raise DataError(f"{name} must be non-empty")
    return a


def squared_errors(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """Per-example squared errors (the regression loss of Fig. 5a/5b)."""
    y_true = _as_1d(y_true, "y_true")
    y_pred = _as_1d(y_pred, "y_pred")
    if y_true.shape != y_pred.shape:
        raise DataError("y_true and y_pred must have the same shape")
    return (y_true - y_pred) ** 2


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(np.mean(squared_errors(y_true, y_pred)))


def absolute_errors(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    y_true = _as_1d(y_true, "y_true")
    y_pred = _as_1d(y_pred, "y_pred")
    if y_true.shape != y_pred.shape:
        raise DataError("y_true and y_pred must have the same shape")
    return np.abs(y_true - y_pred)


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(np.mean(absolute_errors(y_true, y_pred)))


def log_losses(y_true: np.ndarray, prob_pred: np.ndarray) -> np.ndarray:
    """Per-example binary cross-entropy; probabilities clipped away from {0,1}."""
    y_true = _as_1d(y_true, "y_true")
    prob = np.clip(_as_1d(prob_pred, "prob_pred"), _LOG_EPS, 1.0 - _LOG_EPS)
    if y_true.shape != prob.shape:
        raise DataError("y_true and prob_pred must have the same shape")
    return -(y_true * np.log(prob) + (1.0 - y_true) * np.log(1.0 - prob))


def log_loss(y_true: np.ndarray, prob_pred: np.ndarray) -> float:
    return float(np.mean(log_losses(y_true, prob_pred)))


def zero_one_losses(y_true: np.ndarray, label_pred: np.ndarray) -> np.ndarray:
    """Per-example 0/1 losses (1 on a miss)."""
    y_true = _as_1d(y_true, "y_true")
    label_pred = _as_1d(label_pred, "label_pred")
    if y_true.shape != label_pred.shape:
        raise DataError("y_true and label_pred must have the same shape")
    return (y_true != label_pred).astype(float)


def accuracy(y_true: np.ndarray, label_pred: np.ndarray) -> float:
    """Fraction of correct predictions (the Criteo metric of Fig. 5c/5d)."""
    return float(1.0 - np.mean(zero_one_losses(y_true, label_pred)))
