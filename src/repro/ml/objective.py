"""Objective-perturbation DP logistic regression [Chaudhuri & Monteleoni].

The paper's related-work list (citation [10]) includes privacy-preserving
logistic regression by *objective perturbation*: instead of noising
gradients (DP-SGD) or sufficient statistics (AdaSSP), a random linear term
is added to the regularized empirical risk and the perturbed objective is
minimized exactly.  For strongly convex objectives this often beats DP-SGD
at small dimensions, which makes it a useful second DP classifier for the
platform -- pipelines can pick whichever algorithm suits their regime.

This implements the (epsilon, 0)-DP output/objective-perturbation variant:

    minimize  (1/n) sum_i log(1 + exp(-y_i w.x_i))
              + lambda/2 ||w||^2 + (b.w)/n,   b ~ Laplace-ball noise

with rows clipped to ||x|| <= x_bound and labels in {-1, +1}.  Following
Chaudhuri & Monteleoni, the noise vector's norm is drawn Gamma(d, 2/eps')
with direction uniform, and the regularizer must satisfy
lambda >= x_bound^2 / (4 n (exp(eps/4) - 1)) for the target epsilon (we
solve for the effective eps' accordingly and enforce the constraint).
Optimization is plain full-batch Newton/gradient descent -- the objective
is smooth and strongly convex, so a few tens of iterations suffice.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.dp.budget import PrivacyBudget
from repro.dp.sensitivity import clip_rows_l2
from repro.errors import DataError
from repro.ml.base import Estimator
from repro.ml.neural import sigmoid

__all__ = ["ObjectivePerturbationLogistic"]


class ObjectivePerturbationLogistic(Estimator):
    """(epsilon, 0)-DP binary logistic regression via objective perturbation.

    Parameters
    ----------
    epsilon:
        Pure-DP budget for the whole fit.
    regularization:
        L2 coefficient lambda; raised automatically when the Chaudhuri-
        Monteleoni constraint demands a larger value for this epsilon/n.
    x_bound:
        Public row-norm bound (rows are clipped to it).
    iterations / learning_rate:
        Deterministic full-batch optimizer settings (post-processing; they
        do not affect privacy).
    """

    def __init__(
        self,
        epsilon: float,
        regularization: float = 1e-3,
        x_bound: float = 1.0,
        iterations: int = 200,
        learning_rate: float = 1.0,
        fit_intercept: bool = True,
    ) -> None:
        if epsilon <= 0:
            raise DataError(f"epsilon must be > 0, got {epsilon}")
        if regularization <= 0:
            raise DataError(f"regularization must be > 0, got {regularization}")
        if x_bound <= 0:
            raise DataError(f"x_bound must be > 0, got {x_bound}")
        if iterations <= 0:
            raise DataError(f"iterations must be > 0, got {iterations}")
        self.epsilon = epsilon
        self.regularization = regularization
        self.x_bound = x_bound
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.fit_intercept = fit_intercept
        self.coef_: Optional[np.ndarray] = None
        self.effective_regularization_: Optional[float] = None

    def _augment(self, X: np.ndarray) -> np.ndarray:
        """Clip rows to x_bound, then append the intercept column.

        The augmented row norm is at most sqrt(x_bound^2 + 1); the privacy
        analysis below uses that effective bound.
        """
        X = clip_rows_l2(np.asarray(X, dtype=float), self.x_bound)
        if self.fit_intercept:
            X = np.hstack([X, np.ones((X.shape[0], 1))])
        return X

    @property
    def _effective_x_bound(self) -> float:
        if self.fit_intercept:
            return math.sqrt(self.x_bound ** 2 + 1.0)
        return self.x_bound

    @property
    def budget(self) -> PrivacyBudget:
        return PrivacyBudget(self.epsilon, 0.0)

    # ------------------------------------------------------------------
    def _required_regularization(self, n: int) -> float:
        """Chaudhuri-Monteleoni: lambda >= c / (n (e^{eps/4} - 1)), with the
        loss's smoothness constant c = x_bound^2 / 4 for logistic loss."""
        c = self._effective_x_bound ** 2 / 4.0
        return c / (n * math.expm1(self.epsilon / 4.0))

    def fit(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> "ObjectivePerturbationLogistic":
        X = self._augment(X)
        y01 = np.asarray(y, dtype=float).reshape(-1)
        if X.shape[0] != y01.shape[0]:
            raise DataError("X and y must agree on the first dimension")
        if not set(np.unique(y01)) <= {0.0, 1.0}:
            raise DataError("labels must be binary {0, 1}")
        n, d = X.shape
        signs = 2.0 * y01 - 1.0  # {-1, +1}

        lam = max(self.regularization, self._required_regularization(n))
        self.effective_regularization_ = lam
        # Half the budget pays for the (possibly raised) regularizer's
        # sensitivity argument; half scales the noise, per the algorithm's
        # eps' = eps - log(1 + c/(n lam) ...) simplification.  We use the
        # conservative split eps' = eps / 2.
        eps_noise = self.epsilon / 2.0

        # Noise: direction uniform on the sphere, norm ~ Gamma(d, 2 x_bound/eps').
        direction = rng.normal(size=d)
        direction /= max(np.linalg.norm(direction), 1e-12)
        norm = rng.gamma(shape=d, scale=2.0 * self._effective_x_bound / eps_noise)
        b = norm * direction

        # Minimize f(w) = mean log(1+exp(-s w.x)) + lam/2 ||w||^2 + (b.w)/n
        w = np.zeros(d)
        lr = self.learning_rate
        prev = math.inf
        for _ in range(self.iterations):
            margins = signs * (X @ w)
            p = sigmoid(-margins)  # d/dm log(1+e^{-m}) = -sigmoid(-m)
            grad = -(X * (signs * p)[:, None]).mean(axis=0) + lam * w + b / n
            w_new = w - lr * grad
            value = (
                float(np.mean(np.logaddexp(0.0, -signs * (X @ w_new))))
                + 0.5 * lam * float(w_new @ w_new)
                + float(b @ w_new) / n
            )
            if value > prev + 1e-12:
                lr *= 0.5  # backtrack: smooth convex objective, halve step
                continue
            prev = value
            w = w_new
            if np.linalg.norm(grad) < 1e-8:
                break
        self.coef_ = w
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Click probabilities (threshold at 0.5 for labels)."""
        if self.coef_ is None:
            raise DataError("ObjectivePerturbationLogistic used before fit")
        return sigmoid(self._augment(X) @ self.coef_)

    def predict_labels(self, X: np.ndarray) -> np.ndarray:
        return (self.predict(X) >= 0.5).astype(float)
