"""Minibatch SGD with momentum for :class:`~repro.ml.base.DifferentiableModel`.

The non-private trainer behind the paper's "NP" curves.  The DP variant
(``repro.ml.dpsgd``) reuses the same batching/momentum machinery and differs
only in how the per-batch gradient estimate is formed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import DataError
from repro.ml.base import DifferentiableModel, Params

__all__ = ["SGDConfig", "minibatch_indices", "sgd_train", "MomentumState"]


@dataclass(frozen=True)
class SGDConfig:
    """Hyperparameters shared by SGD and DP-SGD (Table 1's Config rows)."""

    learning_rate: float = 0.01
    epochs: int = 3
    batch_size: int = 1024
    momentum: float = 0.0

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise DataError(f"learning_rate must be > 0, got {self.learning_rate}")
        if self.epochs <= 0:
            raise DataError(f"epochs must be > 0, got {self.epochs}")
        if self.batch_size <= 0:
            raise DataError(f"batch_size must be > 0, got {self.batch_size}")
        if not 0.0 <= self.momentum < 1.0:
            raise DataError(f"momentum must be in [0, 1), got {self.momentum}")

    def steps_for(self, n: int) -> int:
        """Total optimizer steps for an n-example training set."""
        batches = max(1, int(np.ceil(n / min(self.batch_size, n))))
        return self.epochs * batches


def minibatch_indices(
    n: int, batch_size: int, epochs: int, rng: np.random.Generator
) -> Iterator[np.ndarray]:
    """Shuffled epoch-wise minibatches (standard DP-SGD practice; the RDP
    analysis assumes Poisson sampling -- shuffling is the common, slightly
    optimistic stand-in used by TF-Privacy and the paper's pipelines)."""
    if n <= 0:
        raise DataError("cannot iterate over an empty dataset")
    batch_size = min(batch_size, n)
    for _ in range(epochs):
        perm = rng.permutation(n)
        for start in range(0, n, batch_size):
            batch = perm[start: start + batch_size]
            if batch.size:
                yield batch


class MomentumState:
    """Classic momentum: v <- mu * v + g; params <- params - lr * v."""

    def __init__(self, momentum: float) -> None:
        self.momentum = momentum
        self._velocity: Optional[List[np.ndarray]] = None

    def step(self, params: Params, grads: Params, lr: float) -> None:
        if self._velocity is None:
            self._velocity = [np.zeros_like(g) for g in grads]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v += g
            p -= lr * v


def sgd_train(
    model: DifferentiableModel,
    X: np.ndarray,
    y: np.ndarray,
    config: SGDConfig,
    rng: np.random.Generator,
    params: Optional[Params] = None,
) -> Tuple[Params, List[float]]:
    """Train (non-privately) and return (params, per-epoch mean losses)."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).reshape(-1)
    if X.shape[0] != y.shape[0]:
        raise DataError("X and y must agree on the first dimension")
    if params is None:
        params = model.init_params(X.shape[1], rng)
    state = MomentumState(config.momentum)
    epoch_losses: List[float] = []
    batch_size = min(config.batch_size, X.shape[0])
    for _ in range(config.epochs):
        losses = []
        for batch in minibatch_indices(X.shape[0], batch_size, 1, rng):
            loss, grads = model.mean_gradients(params, X[batch], y[batch])
            state.step(params, grads, config.learning_rate)
            losses.append(loss)
        epoch_losses.append(float(np.mean(losses)))
    return params, epoch_losses
