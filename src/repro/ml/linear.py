"""Linear regression: non-private ridge and the DP AdaSSP algorithm.

Table 1's Taxi "LR" pipeline uses **AdaSSP** [Wang 2018, "Revisiting
differentially private linear regression"]: a sufficient-statistics
perturbation method that (1) privately estimates the minimum eigenvalue of
X^T X to choose an *adaptive* ridge parameter, then (2) releases noisy
versions of X^T X and X^T y and solves the regularized normal equations.
The total budget is split in three (eps/3, delta/3 per stage), matching the
paper's configuration (regularization parameter rho = 0.1).

Rows must satisfy ||x||_2 <= x_bound and |y| <= y_bound; both are enforced
here by clipping so the stated sensitivities hold unconditionally.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.dp.budget import PrivacyBudget
from repro.dp.sensitivity import clip_rows_l2, clip_values
from repro.errors import DataError
from repro.ml.base import Estimator

__all__ = ["RidgeRegression", "AdaSSPRegressor"]


class RidgeRegression(Estimator):
    """Closed-form ridge regression (the non-private "LR NP" baseline)."""

    def __init__(self, regularization: float = 1e-6, fit_intercept: bool = True) -> None:
        if regularization < 0:
            raise DataError(f"regularization must be >= 0, got {regularization}")
        self.regularization = regularization
        self.fit_intercept = fit_intercept
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator = None) -> "RidgeRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).reshape(-1)
        if X.shape[0] != y.shape[0]:
            raise DataError("X and y must agree on the first dimension")
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = y.mean()
            Xc, yc = X - x_mean, y - y_mean
        else:
            x_mean, y_mean = np.zeros(X.shape[1]), 0.0
            Xc, yc = X, y
        d = X.shape[1]
        gram = Xc.T @ Xc + self.regularization * np.eye(d)
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise DataError("RidgeRegression used before fit")
        return np.asarray(X, dtype=float) @ self.coef_ + self.intercept_


class AdaSSPRegressor(Estimator):
    """Adaptive sufficient-statistics perturbation DP linear regression.

    Parameters
    ----------
    budget:
        Total (epsilon, delta) for the three stages (lambda_min estimate,
        noisy X^T X, noisy X^T y); each gets an even third.
    rho:
        Failure probability of the adaptive-ridge bound (paper uses 0.1).
    x_bound / y_bound:
        Public row-norm and label bounds; inputs are clipped to them.
    """

    def __init__(
        self,
        budget: PrivacyBudget,
        rho: float = 0.1,
        x_bound: float = 1.0,
        y_bound: float = 1.0,
    ) -> None:
        if budget.epsilon <= 0 or budget.delta <= 0:
            raise DataError("AdaSSP needs epsilon > 0 and delta > 0")
        if not 0 < rho < 1:
            raise DataError(f"rho must be in (0, 1), got {rho}")
        if x_bound <= 0 or y_bound <= 0:
            raise DataError("x_bound and y_bound must be > 0")
        self.budget = budget
        self.rho = rho
        self.x_bound = x_bound
        self.y_bound = y_bound
        self.coef_: Optional[np.ndarray] = None
        self.ridge_: Optional[float] = None

    def fit(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> "AdaSSPRegressor":
        X = clip_rows_l2(np.asarray(X, dtype=float), self.x_bound)
        y = clip_values(np.asarray(y, dtype=float).reshape(-1), -self.y_bound, self.y_bound)
        if X.shape[0] != y.shape[0]:
            raise DataError("X and y must agree on the first dimension")
        d = X.shape[1]
        eps3 = self.budget.epsilon / 3.0
        # The Gaussian-mechanism scale sqrt(ln(6/delta))/(eps/3) from Wang
        # (2018); 6/delta = 2/(delta/3) accounts for the two-sided tail of
        # each third of the delta budget.
        log_term = math.log(6.0 / self.budget.delta)
        sigma_scale = math.sqrt(log_term) / eps3

        gram = X.T @ X
        xty = X.T @ y

        # Stage 1: DP lower estimate of lambda_min(X^T X).
        lam_min = float(np.linalg.eigvalsh(gram)[0])
        lam_noisy = (
            lam_min
            + sigma_scale * self.x_bound ** 2 * rng.normal()
            - log_term / eps3 * self.x_bound ** 2
        )
        lam_tilde = max(0.0, lam_noisy)

        # Stage 2: adaptive ridge parameter.
        ridge = max(
            0.0,
            math.sqrt(d * log_term * math.log(2.0 * d ** 2 / self.rho))
            * self.x_bound ** 2
            / eps3
            - lam_tilde,
        )
        self.ridge_ = ridge

        # Stage 3: noisy sufficient statistics (symmetric noise on the Gram).
        upper = np.triu(rng.normal(size=(d, d)))
        sym_noise = upper + np.triu(upper, 1).T
        gram_noisy = gram + sigma_scale * self.x_bound ** 2 * sym_noise
        xty_noisy = xty + sigma_scale * self.x_bound * self.y_bound * rng.normal(size=d)

        self.coef_ = np.linalg.solve(gram_noisy + ridge * np.eye(d), xty_noisy)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise DataError("AdaSSPRegressor used before fit")
        X = clip_rows_l2(np.asarray(X, dtype=float), self.x_bound)
        return X @ self.coef_
