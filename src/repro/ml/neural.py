"""Multilayer perceptron with exact per-example gradients.

A from-scratch numpy MLP covering the paper's "NN" pipelines (ReLU hidden
layers; regression head for Taxi, sigmoid/binary head for Criteo).  The
degenerate case of *no* hidden layers gives the linear and logistic models
of Table 1, so one backprop implementation serves every SGD-trained model in
the reproduction.

Per-example gradients (needed by DP-SGD's clipping) are computed with
batched outer products (``einsum``), not a Python loop, so DP training runs
at practical speed on 10^5-10^6 example datasets.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import DataError
from repro.ml.base import DifferentiableModel, Params, PerExampleGrads

__all__ = ["MLPModel", "relu", "sigmoid"]


def relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def _softplus(z: np.ndarray) -> np.ndarray:
    return np.logaddexp(0.0, z)


class MLPModel(DifferentiableModel):
    """ReLU MLP with a regression or binary-classification head.

    Parameters
    ----------
    hidden_sizes:
        Hidden-layer widths; ``()`` gives a plain linear/logistic model.
    task:
        ``"regression"`` (squared loss, identity head) or ``"binary"``
        (cross-entropy loss, sigmoid head; :meth:`predict_from` returns
        probabilities).
    """

    def __init__(self, hidden_sizes: Sequence[int] = (), task: str = "regression") -> None:
        if task not in ("regression", "binary"):
            raise DataError(f"task must be 'regression' or 'binary', got {task!r}")
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        if any(h <= 0 for h in self.hidden_sizes):
            raise DataError("hidden sizes must be positive")
        self.task = task

    # ------------------------------------------------------------------
    def init_params(self, input_dim: int, rng: np.random.Generator) -> Params:
        if input_dim <= 0:
            raise DataError(f"input_dim must be > 0, got {input_dim}")
        sizes = (input_dim,) + self.hidden_sizes + (1,)
        params: Params = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)  # He init for ReLU stacks
            params.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            params.append(np.zeros(fan_out))
        return params

    # ------------------------------------------------------------------
    def _forward(self, params: Params, X: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Returns final logits/outputs (n,) and the post-activation list
        [a_0 = X, a_1, ..., a_{L-1}] needed by backprop."""
        activations = [np.asarray(X, dtype=float)]
        a = activations[0]
        n_layers = len(params) // 2
        for layer in range(n_layers):
            W, b = params[2 * layer], params[2 * layer + 1]
            z = a @ W + b
            if layer < n_layers - 1:
                a = relu(z)
                activations.append(a)
            else:
                out = z[:, 0]
        return out, activations

    def predict_from(self, params: Params, X: np.ndarray) -> np.ndarray:
        out, _ = self._forward(params, X)
        return sigmoid(out) if self.task == "binary" else out

    # ------------------------------------------------------------------
    def _head_losses_delta(
        self, out: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        y = np.asarray(y, dtype=float).reshape(-1)
        if y.shape != out.shape:
            raise DataError("y must match the number of rows of X")
        if self.task == "regression":
            residual = out - y
            return 0.5 * residual ** 2, residual
        # binary: cross-entropy with logits
        losses = _softplus(out) - y * out
        return losses, sigmoid(out) - y

    def per_example_gradients(
        self, params: Params, X: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, PerExampleGrads]:
        out, acts = self._forward(params, X)
        losses, delta_out = self._head_losses_delta(out, y)
        n_layers = len(params) // 2
        grads: PerExampleGrads = [None] * len(params)  # type: ignore[list-item]
        delta = delta_out[:, None]  # (n, width_of_layer_output)
        for layer in range(n_layers - 1, -1, -1):
            a_prev = acts[layer]
            # dL/dW[layer] per example: outer(a_prev, delta)
            grads[2 * layer] = np.einsum("ni,nj->nij", a_prev, delta)
            grads[2 * layer + 1] = delta.copy()
            if layer > 0:
                W = params[2 * layer]
                delta = (delta @ W.T) * (acts[layer] > 0)
        return losses, grads

    def clipped_gradient_sums(
        self, params: Params, X: np.ndarray, y: np.ndarray, clip_norm: float
    ) -> Tuple[np.ndarray, Params]:
        """Ghost clipping: sum of per-example L2-clipped gradients, matmul-only.

        A layer's per-example weight gradient is ``outer(a_prev, delta)``
        whose Frobenius norm factorizes as ``||a_prev|| * ||delta||``, so the
        global per-example norm -- and therefore the clip factor -- can be
        computed without materializing any per-example gradient.  The clipped
        sum is then one matmul per layer with the clip factors folded into
        ``delta``.  This is what makes DP-SGD run at practical speed on the
        wider Criteo models.

        Returns (per-example losses, list of *summed* clipped gradients).
        """
        out, acts = self._forward(params, X)
        losses, delta_out = self._head_losses_delta(out, y)
        n = out.shape[0]
        n_layers = len(params) // 2

        # Backward pass, storing each layer's delta.
        deltas: List[np.ndarray] = [None] * n_layers  # type: ignore[list-item]
        delta = delta_out[:, None]
        for layer in range(n_layers - 1, -1, -1):
            deltas[layer] = delta
            if layer > 0:
                W = params[2 * layer]
                delta = (delta @ W.T) * (acts[layer] > 0)

        # Per-example squared global norms from the factorization.
        sq_norms = np.zeros(n)
        act_sq = [np.square(a).sum(axis=1) for a in acts]
        for layer in range(n_layers):
            delta_sq = np.square(deltas[layer]).sum(axis=1)
            sq_norms += act_sq[layer] * delta_sq  # weight gradient
            sq_norms += delta_sq                  # bias gradient
        factors = np.minimum(1.0, clip_norm / np.sqrt(np.maximum(sq_norms, 1e-64)))

        sums: Params = [None] * len(params)  # type: ignore[list-item]
        for layer in range(n_layers):
            scaled_delta = deltas[layer] * factors[:, None]
            sums[2 * layer] = acts[layer].T @ scaled_delta
            sums[2 * layer + 1] = scaled_delta.sum(axis=0)
        return losses, sums

    def mean_gradients(
        self, params: Params, X: np.ndarray, y: np.ndarray
    ) -> Tuple[float, Params]:
        """Matmul-only fast path: aggregates with ``a_prev.T @ delta``."""
        out, acts = self._forward(params, X)
        losses, delta_out = self._head_losses_delta(out, y)
        n = out.shape[0]
        n_layers = len(params) // 2
        grads: Params = [None] * len(params)  # type: ignore[list-item]
        delta = delta_out[:, None]
        for layer in range(n_layers - 1, -1, -1):
            a_prev = acts[layer]
            grads[2 * layer] = a_prev.T @ delta / n
            grads[2 * layer + 1] = delta.mean(axis=0)
            if layer > 0:
                W = params[2 * layer]
                delta = (delta @ W.T) * (acts[layer] > 0)
        return float(np.mean(losses)), grads
