"""Estimator wrappers: the trained-model objects pipelines produce.

These adapt the functional trainers (:func:`~repro.ml.sgd.sgd_train`,
:func:`~repro.ml.dpsgd.dpsgd_train`) and the MLP gradient model into the
``fit``/``predict`` surface validators consume.  Table 1's SGD-trained
pipelines map onto these as:

* Taxi NN      -> ``MLPRegressorEstimator`` (DP or not)
* Criteo LG    -> ``MLPClassifierEstimator(hidden_sizes=())``
* Criteo NN    -> ``MLPClassifierEstimator(hidden_sizes=(...))``

``DPSGDEstimator*`` variants take a :class:`~repro.dp.budget.PrivacyBudget`
and record the budget actually spent (``spent_``) so the platform can charge
the right amount to the blocks that supplied the data.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.dp.budget import PrivacyBudget
from repro.errors import DataError
from repro.ml.base import Estimator
from repro.ml.dpsgd import DPSGDConfig, dpsgd_train
from repro.ml.neural import MLPModel
from repro.ml.sgd import SGDConfig, sgd_train

__all__ = [
    "MLPRegressorEstimator",
    "MLPClassifierEstimator",
    "DPSGDRegressorEstimator",
    "DPSGDClassifierEstimator",
]


class _SGDBase(Estimator):
    task = "regression"

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (),
        config: Optional[SGDConfig] = None,
        output_clip: Optional[tuple] = None,
    ) -> None:
        self.model = MLPModel(hidden_sizes, task=self.task)
        self.config = config or SGDConfig()
        # Publicly known label range; clipping predictions into it is free
        # post-processing and bounds the damage of a noise-destabilized run.
        self.output_clip = output_clip
        self.params_ = None
        self.epoch_losses_ = None

    def fit(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> "_SGDBase":
        self.params_, self.epoch_losses_ = sgd_train(self.model, X, y, self.config, rng)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.params_ is None:
            raise DataError(f"{type(self).__name__} used before fit")
        out = self.model.predict_from(self.params_, X)
        if self.output_clip is not None:
            out = np.clip(out, self.output_clip[0], self.output_clip[1])
        return out


class MLPRegressorEstimator(_SGDBase):
    """Non-private SGD-trained MLP regressor (NP curves of Fig. 5a/5b)."""

    task = "regression"


class MLPClassifierEstimator(_SGDBase):
    """Non-private SGD-trained binary classifier; ``predict`` returns
    probabilities, ``predict_labels`` thresholds at 0.5."""

    task = "binary"

    def predict_labels(self, X: np.ndarray) -> np.ndarray:
        return (self.predict(X) >= 0.5).astype(float)


class _DPSGDBase(Estimator):
    task = "regression"

    def __init__(
        self,
        budget: PrivacyBudget,
        hidden_sizes: Sequence[int] = (),
        config: Optional[SGDConfig] = None,
        clip_norm: float = 1.0,
        output_clip: Optional[tuple] = None,
    ) -> None:
        if budget.delta <= 0:
            raise DataError("DP-SGD estimators need delta > 0")
        self.model = MLPModel(hidden_sizes, task=self.task)
        self.budget = budget
        self.dp_config = DPSGDConfig(sgd=config or SGDConfig(), clip_norm=clip_norm)
        self.output_clip = output_clip
        self.params_ = None
        self.spent_: Optional[PrivacyBudget] = None
        self.noise_multiplier_: Optional[float] = None

    def fit(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> "_DPSGDBase":
        result = dpsgd_train(self.model, X, y, self.dp_config, rng, budget=self.budget)
        self.params_ = result.params
        self.spent_ = result.spent
        self.noise_multiplier_ = result.noise_multiplier
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.params_ is None:
            raise DataError(f"{type(self).__name__} used before fit")
        out = self.model.predict_from(self.params_, X)
        if self.output_clip is not None:
            out = np.clip(out, self.output_clip[0], self.output_clip[1])
        return out


class DPSGDRegressorEstimator(_DPSGDBase):
    """DP-SGD MLP regressor (Taxi NN pipeline; hidden_sizes=() gives DP LR-by-SGD)."""

    task = "regression"


class DPSGDClassifierEstimator(_DPSGDBase):
    """DP-SGD binary classifier (Criteo LG with hidden_sizes=(), NN otherwise)."""

    task = "binary"

    def predict_labels(self, X: np.ndarray) -> np.ndarray:
        return (self.predict(X) >= 0.5).astype(float)
