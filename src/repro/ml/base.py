"""Model interfaces for the ML substrate.

Two tiers:

* :class:`Estimator` -- the minimal ``fit`` / ``predict`` surface the
  platform layer (pipelines, validators) sees; and
* :class:`DifferentiableModel` -- the gradient surface SGD and DP-SGD
  trainers drive: parameter init, prediction from explicit parameters, and
  *per-example* gradients (DP-SGD must clip each example's gradient before
  aggregation, so mean gradients are not enough).

Parameters are a list of numpy arrays ("param groups", e.g. ``[W1, b1, W2,
b2, ...]``) rather than a single flat vector so layer structure is preserved;
``flatten_norms`` computes per-example global L2 norms across groups without
materializing a flat copy.
"""

from __future__ import annotations

import abc
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Estimator", "DifferentiableModel", "per_example_sq_norms"]

Params = List[np.ndarray]
PerExampleGrads = List[np.ndarray]  # each with a leading batch dimension


class Estimator(abc.ABC):
    """Minimal trained-model surface used by pipelines and validators."""

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> "Estimator":
        """Train in place and return self."""

    @abc.abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Point predictions: values for regression, probabilities for binary
        classification (callers threshold at 0.5 for labels)."""


class DifferentiableModel(abc.ABC):
    """A parametric model exposing per-example gradients of its training loss."""

    @abc.abstractmethod
    def init_params(self, input_dim: int, rng: np.random.Generator) -> Params:
        """Fresh parameter groups for ``input_dim`` features."""

    @abc.abstractmethod
    def predict_from(self, params: Params, X: np.ndarray) -> np.ndarray:
        """Predictions under explicit parameters."""

    @abc.abstractmethod
    def per_example_gradients(
        self, params: Params, X: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, PerExampleGrads]:
        """Per-example losses (n,) and gradients (one array per param group,
        each with leading dimension n)."""

    def mean_gradients(
        self, params: Params, X: np.ndarray, y: np.ndarray
    ) -> Tuple[float, Params]:
        """Mean loss and mean gradients; default averages the per-example path.

        Subclasses override with a matmul-only fast path when it matters.
        """
        losses, grads = self.per_example_gradients(params, X, y)
        return float(np.mean(losses)), [g.mean(axis=0) for g in grads]


def per_example_sq_norms(grads: Sequence[np.ndarray]) -> np.ndarray:
    """Per-example squared global L2 norm across all parameter groups."""
    n = grads[0].shape[0]
    total = np.zeros(n)
    for g in grads:
        total += np.square(g.reshape(n, -1)).sum(axis=1)
    return total
