"""Feature transformation operators.

The non-private analogues of TFX-Transform operators that Listing 1 uses
(``tft.scale_to_0_1``), plus the encoders the synthetic datasets need.  DP
*aggregate* features (e.g. the hour-of-day mean speed) are built from
``repro.dp.queries``; the operators here are record-local and therefore do
not consume privacy budget -- they are shipped with the model as its
"features" bundle.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import DataError

__all__ = [
    "scale_to_0_1",
    "MinMaxScaler",
    "StandardScaler",
    "OneHotEncoder",
    "hash_buckets",
    "train_test_split",
    "add_bias_column",
]


def scale_to_0_1(values: np.ndarray, lower: float, upper: float) -> np.ndarray:
    """Clip to [lower, upper] then rescale into [0, 1] (tft.scale_to_0_1)."""
    if lower >= upper:
        raise DataError(f"need lower < upper, got [{lower}, {upper}]")
    values = np.asarray(values, dtype=float)
    return (np.clip(values, lower, upper) - lower) / (upper - lower)


class MinMaxScaler:
    """Per-column min-max scaling with *fixed, public* bounds.

    Bounds must be supplied by the caller (public knowledge such as "distance
    in [0, 100] km"); learning them from data would itself leak, which is why
    Listing 1 passes explicit ranges.
    """

    def __init__(self, lower: np.ndarray, upper: np.ndarray) -> None:
        self.lower = np.asarray(lower, dtype=float)
        self.upper = np.asarray(upper, dtype=float)
        if np.any(self.lower >= self.upper):
            raise DataError("every column needs lower < upper")

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return (np.clip(X, self.lower, self.upper) - self.lower) / (
            self.upper - self.lower
        )


class StandardScaler:
    """Mean/std standardization fit on (public or already-DP) statistics."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        self.std_ = np.maximum(X.std(axis=0), 1e-12)
        return self

    def set_statistics(self, mean: np.ndarray, std: np.ndarray) -> "StandardScaler":
        """Install externally computed (e.g. DP) statistics instead of fitting."""
        self.mean_ = np.asarray(mean, dtype=float)
        self.std_ = np.maximum(np.asarray(std, dtype=float), 1e-12)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise DataError("StandardScaler used before fit/set_statistics")
        return (np.asarray(X, dtype=float) - self.mean_) / self.std_


class OneHotEncoder:
    """One-hot encoding of integer categorical columns with known cardinality."""

    def __init__(self, cardinalities) -> None:
        self.cardinalities = [int(c) for c in cardinalities]
        if any(c <= 0 for c in self.cardinalities):
            raise DataError("cardinalities must be positive")

    @property
    def output_dim(self) -> int:
        return sum(self.cardinalities)

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X)
        if X.ndim != 2 or X.shape[1] != len(self.cardinalities):
            raise DataError(
                f"expected shape (n, {len(self.cardinalities)}), got {X.shape}"
            )
        n = X.shape[0]
        out = np.zeros((n, self.output_dim))
        offset = 0
        for j, card in enumerate(self.cardinalities):
            col = X[:, j].astype(np.int64)
            if col.size and (col.min() < 0 or col.max() >= card):
                raise DataError(f"column {j} has values outside [0, {card})")
            out[np.arange(n), offset + col] = 1.0
            offset += card
        return out


def hash_buckets(values: np.ndarray, num_buckets: int, salt: int = 0) -> np.ndarray:
    """Deterministic feature hashing of integer ids into ``num_buckets``.

    Used for the Criteo categorical features the way production pipelines
    hash high-cardinality vocabularies.
    """
    if num_buckets <= 0:
        raise DataError(f"num_buckets must be > 0, got {num_buckets}")
    values = np.asarray(values).astype(np.uint64)
    # Fibonacci hashing with a salt; stable across runs and platforms.
    mixed = (values + np.uint64(salt)) * np.uint64(11400714819323198485)
    mixed ^= mixed >> np.uint64(29)
    return (mixed % np.uint64(num_buckets)).astype(np.int64)


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into train/test (the paper's default is 90::10)."""
    if not 0.0 < test_fraction < 1.0:
        raise DataError(f"test_fraction must be in (0, 1), got {test_fraction}")
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise DataError("X and y must agree on the first dimension")
    n = X.shape[0]
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise DataError(f"split leaves no training data (n={n})")
    perm = rng.permutation(n)
    test_idx, train_idx = perm[:n_test], perm[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


def add_bias_column(X: np.ndarray) -> np.ndarray:
    """Append a constant-1 column (bias absorbed into the weight vector)."""
    X = np.asarray(X, dtype=float)
    return np.hstack([X, np.ones((X.shape[0], 1))])
