"""Sage access control: the DP layer above stream-level ACLs (§3.2).

:class:`SageAccessControl` mediates every pipeline's data access for one
sensitive stream.  It wraps a :class:`~repro.core.accountant.BlockAccountant`
(the global (eps_g, delta_g) policy) and optionally *per-context* accountants
-- the paper's example of enforcing a separate guarantee per developer or
geography, under the assumption that contexts do not collude.

The request protocol mirrors §3.2's description of the Sage Iterator's
interaction:

1. ``offer_blocks()`` -- blocks that still have budget (what the Iterator may
   assemble a training window from);
2. ``request(keys, budget)`` -- deduct the chosen (epsilon, delta) from the
   chosen blocks, atomically; raises if any block cannot absorb it.

Two-phase platform path (propose/settle)
----------------------------------------
The platform validates each session proposal as it arrives but commits the
whole hour in one batch: ``begin_staging()`` opens the stream accountant's
staged-batch overlay, ``stage_request(keys, budget, label)`` validates and
stages one proposal (raising exactly what ``request`` would, staging
nothing on refusal), and ``commit_staged()`` settles everything staged
through a single :meth:`request_many` call.  Staging is stream-wide only:
``supports_staged_requests`` is False when per-context accountants exist
(their charges must validate per-request) or when the filter class forces
the scalar accounting path.

``trusted_staged_commit=True`` opts the hourly commit into the
accountant's trusted bulk-write path: staging already performed the exact
float accumulation ``charge_many``'s validation would replay, so the
commit provably cannot be refused and the re-validation pass is pure
overhead (about half the hourly accounting cost).  The resulting state is
byte-identical either way; the flag only exists so deployments that want
the redundant end-to-end check keep it by default.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.accountant import BlockAccountant, ChargeRecord
from repro.core.filters import PrivacyFilter
from repro.dp.budget import PrivacyBudget
from repro.errors import AccessDeniedError

__all__ = ["SageAccessControl"]


class SageAccessControl:
    """Per-stream DP access control with optional per-context policies."""

    def __init__(
        self,
        epsilon_global: float,
        delta_global: float,
        filter_factory: Optional[Callable[[float, float], PrivacyFilter]] = None,
        authorized_principals: Optional[Sequence[str]] = None,
        trusted_staged_commit: bool = False,
        accountant_factory: Optional[Callable[..., BlockAccountant]] = None,
    ) -> None:
        # ``accountant_factory`` swaps the stream accountant implementation
        # (e.g. :func:`repro.core.sharding.sharded_accountant_factory`); it
        # must accept the same ``(epsilon, delta, filter_factory=...)``
        # signature and honor the full BlockAccountant surface.  Contexts
        # keep plain accountants: their charges validate per request, so
        # sharded batching buys them nothing.
        make_accountant = accountant_factory or BlockAccountant
        self._accountant = make_accountant(
            epsilon_global, delta_global, filter_factory=filter_factory
        )
        self._filter_factory = filter_factory
        self._contexts: Dict[str, BlockAccountant] = {}
        # Stream-level ACLs (the pre-existing, non-DP layer of Fig. 1): when
        # set, only these principals may request data at all.
        self._principals = set(authorized_principals) if authorized_principals else None
        self.trusted_staged_commit = trusted_staged_commit

    # ------------------------------------------------------------------
    @property
    def accountant(self) -> BlockAccountant:
        return self._accountant

    def add_context(self, name: str, epsilon: float, delta: float) -> None:
        """Add a per-context guarantee (e.g. one per developer or geography)."""
        if name in self._contexts:
            raise AccessDeniedError(f"context {name!r} already exists")
        accountant = BlockAccountant(epsilon, delta, filter_factory=self._filter_factory)
        for key in self._accountant.block_keys:
            accountant.register_block(key)
        self._contexts[name] = accountant

    def register_block(self, key: object) -> None:
        """Register a freshly ingested block in every ledger set."""
        self._accountant.register_block(key)
        for ctx in self._contexts.values():
            ctx.register_block(key)

    def register_blocks(self, keys: Sequence[object]) -> None:
        """Register a batch of freshly ingested blocks in every ledger set.

        Registered key by key across all ledger sets, so a mid-batch
        failure (e.g. a duplicate key) leaves the stream and context
        accountants consistent with each other.
        """
        for key in keys:
            self.register_block(key)

    # ------------------------------------------------------------------
    def _check_principal(self, principal: Optional[str]) -> None:
        if self._principals is not None and principal not in self._principals:
            raise AccessDeniedError(
                f"principal {principal!r} is not authorized by stream-level ACLs"
            )

    def offer_blocks(
        self,
        min_budget: Optional[PrivacyBudget] = None,
        principal: Optional[str] = None,
        context: Optional[str] = None,
    ) -> List[object]:
        """Blocks with available budget, oldest first (Alg. 4(c) data offer)."""
        self._check_principal(principal)
        keys = self._accountant.usable_blocks(min_budget)
        if context is not None:
            ctx = self._require_context(context)  # validate even when empty
            if keys:
                floor = min_budget or ctx.retirement_budget
                admitted = ctx.admits_keys(keys, floor)  # one batched pass
                keys = [k for k, ok in zip(keys, admitted) if ok]
        return keys

    def offer_recent_blocks(
        self,
        min_budget: Optional[PrivacyBudget],
        count: int,
        key_filter=None,
        principal: Optional[str] = None,
        row_filter=None,
    ) -> List[object]:
        """The newest ``count`` blocks that can absorb ``min_budget`` and pass
        the caller's filter (chronological order).  ``row_filter`` is the
        vectorized form (store-row array -> boolean mask, one pass);
        ``key_filter`` the scalar per-key form (early-stopping tail walk)."""
        self._check_principal(principal)
        return self._accountant.usable_blocks_tail(
            min_budget, count, key_filter, row_filter=row_filter
        )

    def can_request(
        self,
        keys: Sequence[object],
        budget: PrivacyBudget,
        context: Optional[str] = None,
    ) -> bool:
        ok = self._accountant.can_charge(keys, budget)
        if ok and context is not None:
            ok = self._require_context(context).can_charge(keys, budget)
        return ok

    def request(
        self,
        keys: Sequence[object],
        budget: PrivacyBudget,
        label: str = "",
        principal: Optional[str] = None,
        context: Optional[str] = None,
    ) -> ChargeRecord:
        """Atomically charge ``budget`` against the named blocks.

        The charge lands on the stream-wide ledgers and, if a context is
        named, on that context's ledgers too; failure anywhere leaves all
        ledgers untouched.
        """
        self._check_principal(principal)
        if context is not None:
            ctx = self._require_context(context)
            if not ctx.can_charge(keys, budget):
                raise AccessDeniedError(
                    f"context {context!r} has insufficient budget for {budget}"
                )
        record = self._accountant.charge(keys, budget, label=label)
        if context is not None:
            self._contexts[context].charge(keys, budget, label=label)
        return record

    def can_request_many(
        self, requests, context: Optional[str] = None
    ) -> bool:
        """True iff :meth:`request_many` would commit the whole batch."""
        requests = list(requests)  # consumed per ledger set
        ok = self._accountant.can_charge_many(requests)
        if ok and context is not None:
            ok = self._require_context(context).can_charge_many(requests)
        return ok

    def request_many(
        self,
        requests,
        principal: Optional[str] = None,
        context: Optional[str] = None,
    ) -> List[ChargeRecord]:
        """Atomically settle a batch of ``(keys, budget[, label])`` charges.

        One vectorized validation-and-commit pass per ledger set (see the
        accountant's batch contract): requests are checked with intra-batch
        accumulation and either the whole batch commits or nothing does.
        As with :meth:`request`, a context charge follows the stream-wide
        one after a ``can_charge_many`` pre-check.
        """
        self._check_principal(principal)
        requests = list(requests)  # consumed per ledger set
        if context is not None:
            ctx = self._require_context(context)
            if not ctx.can_charge_many(requests):
                raise AccessDeniedError(
                    f"context {context!r} has insufficient budget for the batch"
                )
        records = self._accountant.charge_many(requests)
        if context is not None:
            self._contexts[context].charge_many(requests)
        return records

    # ------------------------------------------------------------------
    # Two-phase (propose/settle) staging for the platform's hourly batch
    # ------------------------------------------------------------------
    @property
    def supports_staged_requests(self) -> bool:
        """Whether the two-phase stage/commit path is exact here: it needs
        the accountant's vectorized filter path and no per-context
        accountants (context charges validate per-request, not per-hour)."""
        return self._accountant.staging_supported and not self._contexts

    @property
    def staging_active(self) -> bool:
        return self._accountant.staging_active

    def begin_staging(self) -> None:
        """Open an hourly staged batch on the stream accountant."""
        if not self.supports_staged_requests:
            raise AccessDeniedError(
                "staged requests are unsupported here (custom scalar-only "
                "filter or per-context accountants); use request() instead"
            )
        self._accountant.begin_staging()

    def stage_request(
        self,
        keys: Sequence[object],
        budget: PrivacyBudget,
        label: str = "",
        principal: Optional[str] = None,
    ) -> None:
        """Validate and stage one charge against the open batch.

        Refusals raise exactly what :meth:`request` would have raised and
        leave the batch untouched -- the caller turns them into a denied
        :class:`~repro.core.adaptive.ChargeDecision`.
        """
        self._check_principal(principal)
        self._accountant.stage_charge(keys, budget, label)

    def commit_staged(self, principal: Optional[str] = None) -> List[ChargeRecord]:
        """Commit everything staged through one :meth:`request_many` call.

        ``principal`` is the committer (the platform); each staged request
        already passed its own principal check at stage time.  The check
        runs *before* the batch closes, so a refused principal leaves the
        overlay open instead of silently dropping the staged charges.

        With ``trusted_staged_commit`` set, the commit skips
        ``charge_many``'s redundant re-validation and bulk-writes the
        staged effective rows instead (byte-identical state, about half
        the accounting cost).  Staging is stream-wide only, so there is
        never a context charge for the trusted path to skip.
        """
        self._check_principal(principal)
        if self.trusted_staged_commit:
            return self._accountant.commit_staged_trusted()
        requests = self._accountant.pop_staged()
        if not requests:
            return []
        return self.request_many(requests, principal=principal)

    def abort_staged(self) -> List[tuple]:
        """Drop the open batch without committing; returns what was staged."""
        return self._accountant.pop_staged()

    def max_epsilon(
        self, keys: Sequence[object], delta: float = 0.0, context: Optional[str] = None
    ) -> float:
        eps = self._accountant.max_epsilon(keys, delta)
        if context is not None:
            eps = min(eps, self._require_context(context).max_epsilon(keys, delta))
        return eps

    # ------------------------------------------------------------------
    def _require_context(self, name: str) -> BlockAccountant:
        if name not in self._contexts:
            raise AccessDeniedError(f"unknown context {name!r}")
        return self._contexts[name]

    def stream_loss_bound(self) -> PrivacyBudget:
        return self._accountant.stream_loss_bound()

    def retired_blocks(self) -> List[object]:
        return self._accountant.retired_blocks()
