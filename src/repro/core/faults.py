"""Named crash points for fault-injection testing of the durable drive.

The durability layer's central claim -- killing the platform at *any*
moment and recovering from snapshot + WAL yields a state byte-identical
to the uninterrupted run -- is only testable if tests can actually kill
the drive at every interesting moment.  This module threads a registry of
named **crash points** through the hourly drive and the WAL/snapshot
machinery; production code calls :func:`trip` (a dictionary probe, no-op
unless a test armed something), and tests arm a point to raise either

* :class:`InjectedFault` -- an ordinary ``Exception``.  ``Sage.advance``
  catches it like any mid-hour pipeline failure: the hour rolls back and
  the process lives.  This is how the rollback property ("an exception
  anywhere in ``advance`` leaves accountant, staged batch, and
  reservation table byte-identical to pre-hour state") is exercised.
* :class:`InjectedCrash` -- a ``BaseException``.  Nothing in the library
  catches it, *by design*: it propagates out of ``advance`` with **no**
  rollback, simulating the process dying at that instant.  Whatever the
  WAL/snapshot files held at that moment is exactly what a restarted
  platform recovers from.

Registered points (see :data:`CRASH_POINTS`):

======================================= =====================================
point                                   fires
======================================= =====================================
``hour.opened``                         after ingest/register/allocate,
                                        before any session is driven
``settle.mid_session``                  after each driven session settles
                                        its reservation deductions
``wal.before_append``                   in ``WalWriter.append_hour``, before
                                        the hour record reaches the file
``wal.after_append``                    after the hour record is fsynced,
                                        before the in-memory commit
``charge.between_validate_and_commit``  inside ``charge_many``, between
                                        phase-one validation and the
                                        phase-two commit (single-store and
                                        sharded 2PC alike)
``snapshot.mid_write``                  mid-way through writing a snapshot
                                        temp file, before ``os.replace``
``hour.after_commit``                   after the hour committed in memory
                                        and the WAL commit marker landed
======================================= =====================================
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List

from repro.errors import ReproError

__all__ = [
    "CRASH_POINTS",
    "FaultConfigError",
    "InjectedCrash",
    "InjectedFault",
    "add_observer",
    "arm",
    "arm_crash",
    "arm_error",
    "armed_crash",
    "armed_error",
    "clear",
    "disarm",
    "is_armed",
    "remove_observer",
    "trip",
]

CRASH_POINTS = (
    "hour.opened",
    "settle.mid_session",
    "wal.before_append",
    "wal.after_append",
    "charge.between_validate_and_commit",
    "snapshot.mid_write",
    "hour.after_commit",
)


class FaultConfigError(ReproError, ValueError):
    """The fault registry was configured with an unknown crash point."""


class InjectedFault(Exception):
    """An injected *recoverable* failure (ordinary ``Exception`` path)."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at crash point {point!r}")
        self.point = point


class InjectedCrash(BaseException):
    """An injected process death.

    Deliberately a ``BaseException`` so no ``except Exception`` handler in
    the library can observe it: state at the moment of the crash is frozen
    as-is, exactly like a SIGKILL would leave it.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at crash point {point!r}")
        self.point = point


# Armed handlers by point name; empty in production, so the hot-path cost
# of an un-armed trip() is one truthiness check on an empty dict.
_HANDLERS: Dict[str, "_Armed"] = {}

# Observers notified when an armed handler is about to fire (telemetry:
# a traced platform records ``fault.trip`` events).  Notification happens
# only on the armed slow path, so the production no-op cost of trip() is
# unchanged, and observers run *before* the handler raises -- the trip is
# recorded even when the handler simulates process death.
_OBSERVERS: List[Callable[[str], None]] = []


class _Armed:
    __slots__ = ("handler", "skip")

    def __init__(self, handler: Callable[[str], None], skip: int) -> None:
        self.handler = handler
        self.skip = skip


def _check_point(point: str) -> str:
    if point not in CRASH_POINTS:
        raise FaultConfigError(
            f"unknown crash point {point!r}; registered points: "
            f"{', '.join(CRASH_POINTS)}"
        )
    return point


def trip(point: str) -> None:
    """Fire the crash point: no-op unless a test armed a handler for it."""
    if not _HANDLERS:
        return
    armed = _HANDLERS.get(point)
    if armed is None:
        return
    if armed.skip > 0:
        armed.skip -= 1
        return
    for observer in tuple(_OBSERVERS):
        observer(point)
    armed.handler(point)


def arm(point: str, handler: Callable[[str], None], skip: int = 0) -> None:
    """Arm ``handler`` at ``point``; the first ``skip`` trips are ignored."""
    _HANDLERS[_check_point(point)] = _Armed(handler, max(0, int(skip)))


def arm_error(point: str, skip: int = 0) -> None:
    """Arm an :class:`InjectedFault` (recoverable ``Exception``) at ``point``."""

    def raise_fault(p: str) -> None:
        raise InjectedFault(p)

    arm(point, raise_fault, skip=skip)


def arm_crash(point: str, skip: int = 0) -> None:
    """Arm an :class:`InjectedCrash` (simulated process death) at ``point``."""

    def raise_crash(p: str) -> None:
        raise InjectedCrash(p)

    arm(point, raise_crash, skip=skip)


def disarm(point: str) -> None:
    """Remove the handler at ``point`` (no-op if none is armed)."""
    _HANDLERS.pop(_check_point(point), None)


def is_armed(point: str) -> bool:
    return _check_point(point) in _HANDLERS


def add_observer(observer: Callable[[str], None]) -> None:
    """Register a callable notified with the point name whenever an armed
    handler is about to fire (never on un-armed trips)."""
    _OBSERVERS.append(observer)


def remove_observer(observer: Callable[[str], None]) -> None:
    """Unregister an observer (no-op if it is not registered)."""
    try:
        _OBSERVERS.remove(observer)
    except ValueError:
        pass


def clear() -> None:
    """Disarm every crash point (test teardown)."""
    _HANDLERS.clear()


@contextmanager
def armed_error(point: str, skip: int = 0):
    """``with``-scoped :func:`arm_error`; disarms on exit either way."""
    arm_error(point, skip=skip)
    try:
        yield
    finally:
        disarm(point)


@contextmanager
def armed_crash(point: str, skip: int = 0):
    """``with``-scoped :func:`arm_crash`; disarms on exit either way."""
    arm_crash(point, skip=skip)
    try:
        yield
    finally:
        disarm(point)
