"""Sage core: block composition accounting, SLAed validation,
privacy-adaptive training, and the platform itself."""

from repro.core.access_control import SageAccessControl
from repro.core.accountant import BlockAccountant, BlockLedger, ChargeRecord, LedgerStore
from repro.core.adaptive import (
    AdaptiveConfig,
    AdaptiveSession,
    AttemptRecord,
    ChargeDecision,
    ChargeProposal,
    PrivacyAdaptiveTrainer,
    SessionStatus,
)
from repro.core.filters import (
    BasicCompositionFilter,
    PrivacyFilter,
    RenyiCompositionFilter,
    StrongCompositionFilter,
)
from repro.core.model_store import ModelFeatureStore, ReleasedBundle
from repro.core.odometer import BasicOdometer, StrongOdometer, loss_dashboard
from repro.core.serving import ContinuousEvaluator, EvaluationTick, PredictionServer
from repro.core.pipeline import (
    HistogramPipeline,
    PipelineRun,
    StatisticPipeline,
    TrainingPipeline,
)
from repro.core.platform import ReservationTable, Sage, SubmittedPipeline
from repro.core.sharding import (
    HashPartitioner,
    RangePartitioner,
    ShardedBlockAccountant,
    ShardedLedgerStore,
    sharded_accountant_factory,
)
from repro.core.validation import (
    DPAccuracyValidator,
    DPLossValidator,
    DPStatisticValidator,
    Outcome,
    ValidationResult,
)

__all__ = [
    "BlockAccountant",
    "BlockLedger",
    "ChargeRecord",
    "LedgerStore",
    "SageAccessControl",
    "PrivacyFilter",
    "BasicCompositionFilter",
    "StrongCompositionFilter",
    "RenyiCompositionFilter",
    "Outcome",
    "ValidationResult",
    "DPLossValidator",
    "DPAccuracyValidator",
    "DPStatisticValidator",
    "TrainingPipeline",
    "StatisticPipeline",
    "HistogramPipeline",
    "PipelineRun",
    "AdaptiveConfig",
    "AdaptiveSession",
    "AttemptRecord",
    "ChargeDecision",
    "ChargeProposal",
    "PrivacyAdaptiveTrainer",
    "SessionStatus",
    "ModelFeatureStore",
    "ReleasedBundle",
    "BasicOdometer",
    "StrongOdometer",
    "loss_dashboard",
    "PredictionServer",
    "ContinuousEvaluator",
    "EvaluationTick",
    "Sage",
    "SubmittedPipeline",
    "ReservationTable",
    "HashPartitioner",
    "RangePartitioner",
    "ShardedBlockAccountant",
    "ShardedLedgerStore",
    "sharded_accountant_factory",
]
