"""The Sage platform: streams in, validated DP models out (Fig. 2).

Ties every core piece together for one sensitive stream:

* a :class:`~repro.data.database.StreamIngestor` lands new blocks in the
  Growing Database;
* :class:`~repro.core.access_control.SageAccessControl` tracks per-block
  privacy loss under the global (eps_g, delta_g) policy;
* submitted pipelines run inside stateful
  :class:`~repro.core.adaptive.AdaptiveSession` escalation loops;
* newly arrived blocks' budget is divided evenly among waiting pipelines
  (the conserve allocation of §3.3), and an accepted pipeline's unused
  reservations are returned to the pool for the others;
* accepted bundles are pushed to the wide-access
  :class:`~repro.core.model_store.ModelFeatureStore`.

``advance(hours)`` is the simulation clock: ingest, allocate, drive
sessions, release.  Real deployments would drive the same calls from wall
time.

Propose/settle hourly batch
---------------------------
Sessions never execute their own privacy charges.  Each hour the platform
drives every waiting session through the two-phase protocol of
:mod:`repro.core.adaptive`: ``session.propose()`` yields a
:class:`~repro.core.adaptive.ChargeProposal` (window, budget, deferred
escalation state), the platform validates it against the hour's running
staged batch (``SageAccessControl.stage_request`` -- committed charges plus
everything staged earlier this hour), assembles the window, and feeds the
session a :class:`~repro.core.adaptive.ChargeDecision`; a granted decision
runs the pipeline and possibly escalates into another proposal, a denial
(later proposals contending with earlier staged charges) blocks the session
on NEED_DATA with its escalation state untouched.  When every session has
finished or blocked, the entire hour commits through **one**
``SageAccessControl.request_many`` call -- ``charge_many``'s intra-batch
accumulation makes the batch observationally identical to the per-session
sequential charges, and staged validation replays the exact same float
accumulation, so the commit can never be refused.  Sessions' reservation
deductions settle in one fused vectorized pass per session.

Streams whose accountant cannot vectorize (custom scalar-only filters, or
``batched_advance=False``) fall back to the same propose/complete drive
with immediate per-proposal ``request`` execution -- trajectories are
float-identical either way; only the commit granularity changes.

Parallel propose drive (sharding-ready)
---------------------------------------
With ``propose_workers > 0`` the staged hour opens with a *parallel
propose phase*: every waiting session's first proposal is peeked
concurrently in a thread pool (:meth:`AdaptiveSession.propose_peek` is a
pure read -- PR 3's contract) against the freshly opened, empty overlay,
and whole-stream admit scans are shared across the sessions for the
duration of the phase (the accountant's snapshot-scoped scan memo).  The
serial settle loop then adopts each speculation only while its snapshot
token provably still holds -- zero charges staged so far and an unchanged
waiting-pipeline count (allocation shares, redistribution, and the
escalation rate all key off it); otherwise the session proposes for real.
Either way the trajectory is byte-identical to the sequential drive.
Pipeline execution itself stays serial in submission order (sessions
share one RNG stream).

The accountant side composes: ``accountant_factory`` (e.g.
:func:`repro.core.sharding.sharded_accountant_factory`) swaps in a
:class:`~repro.core.sharding.ShardedBlockAccountant`, whose per-shard
contiguous stores validate the hour's one ``request_many`` batch shard by
shard and commit all-or-nothing -- the hourly batch is the shard-commit
unit.  The reservation table needs no changes: sharded accountants keep
``rows_for_keys`` in the same global row space.

Reservation table
-----------------
Per-pipeline epsilon reservations live in one contiguous
:class:`ReservationTable`: a pipelines x blocks float64 matrix whose rows
are pipelines (in submission order) and whose columns are aligned to the
stream accountant's :class:`~repro.core.accountant.LedgerStore` rows (i.e.
block registration order -- ``BlockAccountant.rows_for_keys`` is the shared
index space).  Hourly allocation, free-pool grants, redistribution of a
finished pipeline's leftovers, and settlement of a session's charges are
each a single NumPy row/column operation instead of O(pipelines x blocks)
dict loops, and the allocation check during window selection reaches the
accountant's tail scan as a vectorized ``row_filter``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import durability, faults
from repro.core.access_control import SageAccessControl
from repro.core.adaptive import (
    AdaptiveConfig,
    AdaptiveSession,
    AttemptRecord,
    ChargeDecision,
    ChargeProposal,
    SessionStatus,
)
from repro.core.model_store import ModelFeatureStore, ReleasedBundle
from repro.data.database import GrowingDatabase, StreamIngestor
from repro.data.stream import StreamSource, TimePartitioner
from repro.errors import (
    BlockRetiredError,
    BudgetExceededError,
    DurabilityError,
    PipelineError,
    RecoveryError,
)
from repro.obs.metrics import MetricsRegistry

__all__ = ["Sage", "SubmittedPipeline", "ReservationTable", "SpeculativeProposal"]


@dataclass(frozen=True)
class SpeculativeProposal:
    """A session's first proposal of the hour, computed ahead of its turn.

    Produced by the parallel propose phase (``propose_workers > 0``):
    every waiting session is peeked concurrently against the hour's empty
    staged overlay -- a pure read by the propose/settle contract.  The
    serial settle loop adopts the result only while the snapshot it was
    computed against provably still holds; the *token* is

    * ``n_waiting`` -- the waiting-pipeline count at peek time (allocation
      shares, redistribution targets, and the escalation rate all key off
      it), and
    * zero charges staged so far this hour (staged spend changes the
      effective totals every proposal reads).

    If either moved, the speculation is discarded and the session proposes
    for real -- so trajectories are byte-identical to the sequential drive
    whether or not any speculation survives.
    """

    proposal: Optional[ChargeProposal]
    status_after: str
    n_waiting: int
    n_attempts: int


class ReservationTable:
    """Contiguous pipelines x blocks epsilon reservations.

    Row = pipeline (submission order), column = ledger-store row of the
    block (registration order).  Rows and columns grow by doubling and are
    never reclaimed; a parallel free-pool vector holds per-block epsilon
    not reserved by anybody.  All mutating operations are NumPy row/column
    arithmetic; amounts match the seed's dict-based allocator float-for-
    float (same divisions, same accumulation order).
    """

    def __init__(self, pipeline_capacity: int = 8, block_capacity: int = 64) -> None:
        self._eps = np.zeros(
            (max(1, int(pipeline_capacity)), max(1, int(block_capacity)))
        )
        self._free = np.zeros(self._eps.shape[1])
        self._n_pipelines = 0
        self._n_blocks = 0

    @property
    def n_pipelines(self) -> int:
        return self._n_pipelines

    @property
    def n_blocks(self) -> int:
        return self._n_blocks

    @property
    def matrix(self) -> np.ndarray:
        """The (n_pipelines, n_blocks) reservation view (do not cache:
        growth reallocates the backing buffer)."""
        return self._eps[: self._n_pipelines, : self._n_blocks]

    @property
    def free_epsilon(self) -> np.ndarray:
        """Per-block epsilon not reserved by any pipeline (view caveat as
        :attr:`matrix`)."""
        return self._free[: self._n_blocks]

    def add_pipeline(self) -> int:
        """Add a zeroed reservation row; returns the pipeline's row index."""
        if self._n_pipelines == self._eps.shape[0]:
            grown = np.zeros((2 * self._eps.shape[0], self._eps.shape[1]))
            grown[: self._n_pipelines] = self._eps
            self._eps = grown
        row = self._n_pipelines
        self._n_pipelines += 1
        return row

    def add_block(self) -> int:
        """Add a zeroed block column; returns its index (== store row)."""
        if self._n_blocks == self._eps.shape[1]:
            grown = np.zeros((self._eps.shape[0], 2 * self._eps.shape[1]))
            grown[:, : self._n_blocks] = self._eps
            self._eps = grown
            free_grown = np.zeros(2 * self._free.shape[0])
            free_grown[: self._n_blocks] = self._free
            self._free = free_grown
        col = self._n_blocks
        self._n_blocks += 1
        return col

    def allocate(self, col: int, amount: float, waiting_rows: np.ndarray) -> None:
        """Divide a new block's budget evenly among the waiting pipelines
        (into the free pool when nobody waits)."""
        if len(waiting_rows) == 0:
            self._free[col] += amount
        else:
            self._eps[waiting_rows, col] += amount / len(waiting_rows)

    def grant_free(self, waiting_rows: np.ndarray) -> None:
        """Hand the whole free pool to the waiting pipelines, evenly."""
        if len(waiting_rows) == 0 or self._n_blocks == 0:
            return
        free = self._free[: self._n_blocks]
        cols = np.nonzero(free)[0]
        if cols.size == 0:
            return
        self._eps[np.ix_(waiting_rows, cols)] += free[cols] / len(waiting_rows)
        free[cols] = 0.0

    def release(self, row: int, waiting_rows: np.ndarray) -> None:
        """Return one pipeline's whole holding to the others (or the free
        pool), clearing its row.  ``row`` must not be in ``waiting_rows``."""
        held = self._eps[row, : self._n_blocks]
        cols = np.nonzero(held > 0.0)[0]
        if cols.size:
            if len(waiting_rows):
                self._eps[np.ix_(waiting_rows, cols)] += held[cols] / len(
                    waiting_rows
                )
            else:
                self._free[cols] += held[cols]
            held[cols] = 0.0

    def settle(self, row: int, cols: np.ndarray, epsilon) -> None:
        """Deduct committed charges from one pipeline's reservations.

        ``epsilon`` may be a scalar (one charge across all columns) or a
        per-column array (several attempts' charges fused into one pass --
        clamped sequential deduction equals clamped deduction of the sum,
        since reservations and charges are nonnegative).
        """
        self._eps[row, cols] = np.maximum(0.0, self._eps[row, cols] - epsilon)

    def values(self, row: int, cols: np.ndarray) -> np.ndarray:
        """One pipeline's reservations on the named block columns.

        Columns the table has never seen (blocks registered with the
        accountant outside the platform's ingest path) read as zero.
        """
        cols = np.asarray(cols, dtype=np.intp)
        if cols.size and int(cols.max()) >= self._n_blocks:
            out = np.zeros(cols.size)
            known = cols < self._n_blocks
            out[known] = self._eps[row, cols[known]]
            return out
        return self._eps[row, cols]

    def limit(self, row: int, cols: np.ndarray) -> float:
        """The smallest reservation the pipeline holds across the columns."""
        if len(cols) == 0:
            return 0.0
        return float(self.values(row, cols).min())

    def row_values(self, row: int) -> np.ndarray:
        """Copy of one pipeline's full reservation row (diagnostics)."""
        return self._eps[row, : self._n_blocks].copy()

    def restore(self, matrix: np.ndarray, free: np.ndarray) -> None:
        """Overwrite the table with a captured ``(matrix, free)`` state --
        the durability layer's hour rollback and snapshot recovery.

        Every buffer cell outside the restored region is re-zeroed:
        :meth:`add_block` / :meth:`add_pipeline` hand out buffer regions
        without zeroing them, so vacated cells must stay indistinguishable
        from never-used capacity.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        free = np.asarray(free, dtype=np.float64)
        if matrix.ndim != 2 or free.ndim != 1 or free.shape[0] != matrix.shape[1]:
            raise RecoveryError(
                f"reservation restore shape mismatch: matrix "
                f"{matrix.shape}, free pool {free.shape}"
            )
        n_pipelines, n_blocks = matrix.shape
        if n_pipelines > self._eps.shape[0] or n_blocks > self._eps.shape[1]:
            row_cap = max(1, self._eps.shape[0])
            while row_cap < n_pipelines:
                row_cap *= 2
            col_cap = max(1, self._eps.shape[1])
            while col_cap < n_blocks:
                col_cap *= 2
            self._eps = np.zeros((row_cap, col_cap))
            self._free = np.zeros(col_cap)
        else:
            self._eps[:] = 0.0
            self._free[:] = 0.0
        self._eps[:n_pipelines, :n_blocks] = matrix
        self._free[:n_blocks] = free
        self._n_pipelines = n_pipelines
        self._n_blocks = n_blocks


@dataclass
class SubmittedPipeline:
    """Bookkeeping for one pipeline queued on the platform."""

    pipeline: object
    session: AdaptiveSession
    submit_time_hours: float
    release_time_hours: Optional[float] = None
    bundle: Optional[ReleasedBundle] = None
    # Row of the platform's ReservationTable holding this pipeline's
    # per-block epsilon reservations.
    table_row: int = -1
    # Number of session attempts already deducted from reservations.
    settled_attempts: int = 0
    platform: Optional["Sage"] = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return self.pipeline.name

    @property
    def status(self) -> str:
        return self.session.status

    @property
    def waiting(self) -> bool:
        return not self.session.is_terminal

    @property
    def reservations(self) -> Dict[object, float]:
        """Nonzero per-block epsilon reservations (diagnostic snapshot of
        this pipeline's ReservationTable row, keyed by block key)."""
        if self.platform is None:
            return {}
        return self.platform.reservations_of(self)


class Sage:
    """A Sage deployment over one sensitive stream.

    ``batched_advance`` selects the hourly commit granularity: True (the
    default) stages every session proposal and settles the hour through one
    ``request_many`` batch; False executes each proposal immediately (the
    sequential reference path -- same trajectories, per-proposal commits).
    Streams whose accountant cannot vectorize fall back to sequential
    regardless.  ``trusted_staged_commit`` additionally opts the batched
    hour into the accountant's no-revalidation bulk commit (byte-identical
    state, roughly half the hourly accounting cost).

    ``accountant_factory`` swaps the stream accountant implementation
    (e.g. :func:`repro.core.sharding.sharded_accountant_factory` for a
    partitioned ledger store); ``propose_workers`` enables the parallel
    propose phase of each staged hour (see the module docstring) -- both
    preserve trajectories byte for byte.

    ``wal_dir`` turns on the durable drive (see
    :mod:`repro.core.durability`): each hour is recorded in a write-ahead
    charge log *before* it commits in memory, every ``snapshot_every``
    committed hours a full-state snapshot lands next to it (the newest
    ``snapshot_keep`` are retained), and any mid-hour exception rolls the
    in-memory platform back to its exact pre-hour accounting state.  A
    platform constructed over a WAL directory holding prior state must
    call :meth:`recover` before advancing.  Durable mode requires the
    staged hourly drive (``batched_advance`` with a staging-capable
    accountant and no per-context policies): the WAL records each hour as
    one request batch, which only the staged path produces.

    ``telemetry`` attaches a :class:`repro.obs.Telemetry` (tracer +
    metrics registry) to the whole deployment: every phase of the hourly
    drive emits spans/events and the drive counters land in the registry
    (see the :mod:`repro.obs` taxonomy).  Telemetry never feeds back into
    any decision, so trajectories stay byte-identical with it on or off;
    ``None`` (the default) reduces every instrumentation site to one
    ``is not None`` check.  The platform always owns a metrics registry
    -- the ``last_hour_*`` diagnostics read from it -- and ``telemetry``
    merely supplies a shared one plus the tracer.
    """

    def __init__(
        self,
        source: StreamSource,
        epsilon_global: float = 1.0,
        delta_global: float = 1e-6,
        block_hours: float = 1.0,
        filter_factory=None,
        seed: Optional[int] = None,
        batched_advance: bool = True,
        trusted_staged_commit: bool = False,
        accountant_factory=None,
        propose_workers: int = 0,
        wal_dir=None,
        snapshot_every: int = 0,
        snapshot_keep: int = 3,
        telemetry=None,
    ) -> None:
        # Telemetry first: the accountant, WAL writer, and snapshot store
        # constructed below all thread it through.  Disabled mode keeps
        # the tracer None (faults.trip-style no-op probes); the metrics
        # registry always exists -- the last_hour_* compatibility
        # properties read the drive counters from it.  The handle is the
        # telemetry probe: the tracer itself normally, or the tracer +
        # wall-profiler tee when profiling is on -- same span/event/hour
        # surface either way.
        self._telemetry = telemetry
        self._tracer = telemetry.probe if telemetry is not None else None
        self._metrics = (
            telemetry.metrics if telemetry is not None else MetricsRegistry()
        )
        # Counter readings at the top of the current advance(); the
        # last-hour diagnostics are deltas against this mark.
        self._hour_mark: Tuple[float, float, float] = (0, 0, 0)
        self.database = GrowingDatabase()
        self.rng = np.random.default_rng(seed)
        self.ingestor = StreamIngestor(
            source,
            self.database,
            TimePartitioner(window_hours=block_hours),
            rng=self.rng,
        )
        self.access = SageAccessControl(
            epsilon_global,
            delta_global,
            filter_factory=filter_factory,
            trusted_staged_commit=trusted_staged_commit,
            accountant_factory=accountant_factory,
        )
        self.store = ModelFeatureStore()
        self.epsilon_global = epsilon_global
        self.delta_global = delta_global
        self._pipelines: List[SubmittedPipeline] = []
        # All pipelines' epsilon reservations plus the unreserved free pool,
        # columns aligned to the stream accountant's ledger-store rows.
        self._table = ReservationTable()
        self.batched_advance = batched_advance
        # Parallel propose drive: peek every waiting session's first
        # proposal of the hour in this many worker threads (0 = off).
        # Requires the staged path (speculation is validated against the
        # staged overlay's emptiness); trajectories are byte-identical to
        # the sequential drive either way.
        self.propose_workers = max(0, int(propose_workers))
        self._propose_pool: Optional[ThreadPoolExecutor] = None
        # The drive emits its spans from the accountant's serial commit
        # points (charge batches, per-shard validation footprints).
        if self._tracer is not None:
            self.access.accountant.attach_tracer(self._tracer)
            # Armed crash points report their firings as trace events
            # (the registry is process-global; close() detaches).
            faults.add_observer(self._observe_fault)
        # Durability (write-ahead charge log + snapshots; see
        # repro.core.durability).  The WAL writer is created lazily on the
        # first durable hour so merely constructing a platform never
        # touches disk.
        self._wal_dir: Optional[Path] = Path(wal_dir) if wal_dir else None
        self._wal: Optional[durability.WalWriter] = None
        self._snapshot_every = max(0, int(snapshot_every))
        self._snapshots: Optional[durability.SnapshotStore] = None
        self._hours_committed = 0
        self._needs_recovery = False
        if self._wal_dir is not None:
            if not (batched_advance and self.access.supports_staged_requests):
                raise DurabilityError(
                    "durable mode (wal_dir) requires the staged hourly drive: "
                    "batched_advance with a staging-capable accountant and no "
                    "per-context policies"
                )
            self._snapshots = durability.SnapshotStore(
                self._wal_dir, keep=snapshot_keep, telemetry=telemetry
            )
            # Prior state on disk (WAL content past the magic, or any
            # snapshot) means this platform must recover() before advancing.
            path = durability.wal_path(self._wal_dir)
            try:
                has_wal = path.stat().st_size > len(durability.WAL_MAGIC)
            except OSError:
                has_wal = False
            if has_wal or self._snapshots.snapshot_paths():
                self._needs_recovery = True

    # ------------------------------------------------------------------
    @property
    def clock_hours(self) -> float:
        return self.ingestor.clock_hours

    @property
    def hours_committed(self) -> int:
        """Completed ``advance`` calls (durable mode: WAL hour indices)."""
        return self._hours_committed

    @property
    def telemetry(self):
        """The attached :class:`repro.obs.Telemetry`, or ``None``."""
        return self._telemetry

    @property
    def metrics(self) -> MetricsRegistry:
        """The platform's metrics registry (always present; shared with
        the attached telemetry when one was supplied)."""
        return self._metrics

    @property
    def last_hour_charges(self) -> int:
        """Charges granted by the most recent ``advance()`` -- a
        compatibility view over ``sage_charges_granted_total`` since the
        drive counters folded into the metrics registry (PR 9)."""
        granted, _, _ = self._hour_mark
        return int(
            self._metrics.counter_value("sage_charges_granted_total") - granted
        )

    @property
    def last_hour_speculations(self) -> Tuple[int, int]:
        """Speculations (adopted, invalidated) in the most recent
        ``advance()``: each speculation is counted exactly once, under the
        outcome its snapshot token earned it (ordinary proposes appear in
        neither counter).  Compatibility view over the registry's
        ``sage_speculations_*_total`` counters."""
        _, adopted, invalidated = self._hour_mark
        metrics = self._metrics
        return (
            int(
                metrics.counter_value("sage_speculations_adopted_total")
                - adopted
            ),
            int(
                metrics.counter_value("sage_speculations_invalidated_total")
                - invalidated
            ),
        )

    def _mark_hour_metrics(self) -> None:
        """Open an hour for the last-hour deltas: remember the drive
        counters' current readings."""
        metrics = self._metrics
        self._hour_mark = (
            metrics.counter_value("sage_charges_granted_total"),
            metrics.counter_value("sage_speculations_adopted_total"),
            metrics.counter_value("sage_speculations_invalidated_total"),
        )

    def _finish_hour_metrics(self) -> None:
        """Close the hour in the registry: per-hour gauges from the
        counter deltas plus the advanced-hours counter."""
        metrics = self._metrics
        adopted, invalidated = self.last_hour_speculations
        metrics.set_gauge("sage_hour_charges", self.last_hour_charges)
        metrics.set_gauge("sage_hour_speculations_adopted", adopted)
        metrics.set_gauge("sage_hour_speculations_invalidated", invalidated)
        metrics.inc("sage_hours_advanced_total")

    def _observe_fault(self, point: str) -> None:
        """Fault-registry observer: an *armed* crash point fired."""
        tracer = self._tracer
        if tracer is not None:
            tracer.event("fault.trip", point=point)
        self._metrics.inc("sage_fault_trips_total", point=point)

    @property
    def reservation_table(self) -> ReservationTable:
        return self._table

    def reservations_of(self, entry: "SubmittedPipeline") -> Dict[object, float]:
        """A pipeline's nonzero reservations as a {block key: epsilon} dict."""
        values = self._table.row_values(entry.table_row)
        keys = self.access.accountant.block_keys
        return {
            key: float(held) for key, held in zip(keys, values) if held != 0.0
        }

    def submit(
        self, pipeline, config: Optional[AdaptiveConfig] = None
    ) -> SubmittedPipeline:
        """Queue a DP pipeline for privacy-adaptive training."""
        config = config or AdaptiveConfig()
        entry = SubmittedPipeline(
            pipeline=pipeline,
            session=None,  # type: ignore[arg-type]
            submit_time_hours=self.clock_hours,
            table_row=self._table.add_pipeline(),
            platform=self,
        )
        session = AdaptiveSession(
            pipeline,
            self.access,
            self.database,
            config,
            self.rng,
            row_budget_fn=lambda rows, e=entry: self._reservation_values(e, rows),
            new_block_epsilon_fn=self._new_block_share,
        )
        entry.session = session
        self._pipelines.append(entry)
        return entry

    # ------------------------------------------------------------------
    # Allocation (conserve strategy of §3.3, one table op per step)
    # ------------------------------------------------------------------
    def _waiting_pipelines(self) -> List[SubmittedPipeline]:
        return [p for p in self._pipelines if p.waiting]

    def _waiting_rows(self) -> np.ndarray:
        return np.fromiter(
            (p.table_row for p in self._pipelines if p.waiting), dtype=np.intp
        )

    def _new_block_share(self) -> float:
        """Per-pipeline epsilon a freshly created block would grant now."""
        waiting = max(1, len(self._waiting_pipelines()))
        return self.epsilon_global / waiting

    def _reservation_values(
        self, entry: SubmittedPipeline, rows: np.ndarray
    ) -> np.ndarray:
        """Per-store-row epsilon this pipeline may still spend.  Charges made
        earlier in the same session step are settled first so mid-step
        attempts cannot overdraw the reservation."""
        self._settle_charges(entry)
        return self._table.values(entry.table_row, rows)

    def _reservation_limit(self, entry: SubmittedPipeline, window) -> float:
        """The epsilon this pipeline may spend on that window: the smallest
        reservation it holds across the window's blocks."""
        self._settle_charges(entry)
        if not window:
            return 0.0
        rows = self.access.accountant.rows_for_keys(window)
        return self._table.limit(entry.table_row, rows)

    def _allocate_block(self, key: object) -> None:
        """Divide a new block's budget evenly among waiting pipelines."""
        col = self._table.add_block()
        # Columns mirror the accountant's registration order by
        # construction; a drifted column (e.g. a block registered with the
        # accountant outside the platform's ingest path) would silently
        # misdirect budget, so it must be a hard error.
        store_row = int(self.access.accountant.rows_for_keys([key])[0])
        if col != store_row:
            raise PipelineError(
                f"reservation column {col} drifted from store row "
                f"{store_row} for block {key!r}"
            )
        self._table.allocate(col, self.epsilon_global, self._waiting_rows())

    def _redistribute(self, finished: SubmittedPipeline) -> None:
        """Return a finished pipeline's unused reservations to the others."""
        self._table.release(finished.table_row, self._waiting_rows())

    def _grant_free_pool(self) -> None:
        """Hand any unreserved budget to newly waiting pipelines."""
        self._table.grant_free(self._waiting_rows())

    def _settle_charges(self, entry: SubmittedPipeline) -> None:
        """Decrement reservations by what the session actually charged.

        All unsettled attempts settle in one pass: one ``rows_for_keys``
        call over every window, a ``bincount`` fusing per-block deductions,
        and a single clamped ``ReservationTable.settle`` update.  Clamped
        sequential deduction equals the clamped deduction of the sum in
        exact arithmetic; with more than one pending attempt the fused sum
        can differ from the sequential loop by float rounding (~1 ulp).
        The platform drive never produces that case -- window selection
        settles after every attempt via ``row_budget_fn``, so at most one
        attempt is pending here -- and the single-attempt path below is
        bit-identical to the seed loop.
        """
        attempts = entry.session.attempts
        pending = attempts[entry.settled_attempts:]
        if not pending:
            return
        accountant = self.access.accountant
        rows = accountant.rows_for_keys(
            [key for record in pending for key in record.window]
        )
        if len(pending) == 1:
            self._table.settle(entry.table_row, rows, pending[0].budget.epsilon)
        else:
            epsilons = np.repeat(
                np.array([record.budget.epsilon for record in pending]),
                [len(record.window) for record in pending],
            )
            fused = np.bincount(rows, weights=epsilons)
            cols = np.nonzero(fused)[0]
            self._table.settle(entry.table_row, cols, fused[cols])
        entry.settled_attempts = len(attempts)

    # ------------------------------------------------------------------
    # Parallel propose phase (speculative first proposals)
    # ------------------------------------------------------------------
    def _ensure_propose_pool(self) -> ThreadPoolExecutor:
        if self._propose_pool is None:
            self._propose_pool = ThreadPoolExecutor(
                max_workers=self.propose_workers,
                thread_name_prefix="sage-propose",
            )
        return self._propose_pool

    def close(self) -> None:
        """Release worker threads (the propose pool and, for sharded
        accountants, the shard-validation pool).  Idempotent; the platform
        keeps working afterwards -- pools are re-created on demand."""
        if self._propose_pool is not None:
            self._propose_pool.shutdown(wait=False)
            self._propose_pool = None
        accountant_close = getattr(self.access.accountant, "close", None)
        if accountant_close is not None:
            accountant_close()
        if self._wal is not None:
            self._wal.close()
            self._wal = None
        if self._tracer is not None:
            # Detach from the process-global fault registry (idempotent);
            # a platform advanced after close() simply stops reporting
            # armed-fault firings.
            faults.remove_observer(self._observe_fault)

    def __enter__(self) -> "Sage":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _speculate_proposals(self) -> Dict[int, SpeculativeProposal]:
        """Peek every waiting session's first proposal in the worker pool.

        Runs right after ``begin_staging()`` opened the hour's (empty)
        overlay, so each peek reads exactly the state the sequential drive
        would show the *first* session -- committed totals, this hour's
        allocations, no staged spend.  Peeks are pure reads
        (``propose_peek`` mutates nothing; window scans against an open
        overlay defer retirement persistence), so any interleaving yields
        the same per-session results.  Sessions are dealt round-robin into
        one task per worker to amortize dispatch overhead.  Hours with
        fewer than two waiting sessions skip speculation entirely (there
        is nothing to share; both counters stay zero).
        """
        waiting = [e for e in self._pipelines if e.waiting]
        if len(waiting) < 2:
            return {}
        n_waiting = len(waiting)
        workers = min(self.propose_workers, n_waiting)

        def peek_chunk(chunk):
            out = []
            for entry in chunk:
                proposal, status_after = entry.session.propose_peek()
                out.append(
                    (
                        id(entry),
                        SpeculativeProposal(
                            proposal=proposal,
                            status_after=status_after,
                            n_waiting=n_waiting,
                            n_attempts=len(entry.session.attempts),
                        ),
                    )
                )
            return out

        pool = self._ensure_propose_pool()
        chunks = [waiting[w::workers] for w in range(workers)]
        speculations: Dict[int, SpeculativeProposal] = {}
        # All peeks read the same frozen snapshot (the empty overlay), so
        # whole-stream admit scans are shared across sessions for the
        # duration of the phase -- the second leg of the parallel win.
        accountant = self.access.accountant
        accountant.begin_scan_memo()
        try:
            for result in pool.map(peek_chunk, chunks):
                speculations.update(result)
        finally:
            accountant.end_scan_memo()
        return speculations

    def _speculation_valid(
        self,
        entry: SubmittedPipeline,
        spec: SpeculativeProposal,
        waiting_count: int,
    ) -> bool:
        """Whether the peeked snapshot provably still holds (see
        :class:`SpeculativeProposal`).  ``waiting_count`` is the current
        waiting-pipeline count, maintained O(1) by the hour loop (sessions
        only leave the waiting set by terminating during their own drive)."""
        return (
            spec.n_attempts == len(entry.session.attempts)
            and self.access.accountant.staged_request_count == 0
            and spec.n_waiting == waiting_count
        )

    # ------------------------------------------------------------------
    def _drive_session(
        self,
        entry: SubmittedPipeline,
        staged: bool,
        spec: Optional[SpeculativeProposal],
        waiting_count: int,
    ) -> None:
        """Run one session's propose/decide/complete loop for this hour.

        Every proposal is validated against the hour's staged batch (or
        executed immediately on the sequential path), its window assembled,
        and the decision fed back; a refusal becomes a denied decision, so
        the session blocks on NEED_DATA with escalation state untouched
        instead of the refusal propagating.

        ``spec`` is the session's speculative first proposal from the
        parallel propose phase: adopted for the first iteration when its
        snapshot token still holds (skipping the propose scan entirely),
        discarded otherwise.  Only the first attempt can be speculative --
        later attempts depend on this hour's own staged charges.
        """
        session = entry.session
        session.wake()
        metrics = self._metrics
        tracer = self._tracer
        if spec is not None and not self._speculation_valid(
            entry, spec, waiting_count
        ):
            spec = None
            metrics.inc("sage_speculations_invalidated_total")
            if tracer is not None:
                tracer.event("speculation.invalidated", session=entry.name)
        while session.status == SessionStatus.RUNNING:
            if spec is not None:
                proposal, status_after = spec.proposal, spec.status_after
                spec = None
                metrics.inc("sage_speculations_adopted_total")
                if tracer is not None:
                    tracer.event("speculation.adopted", session=entry.name)
                if proposal is None:
                    # Exactly the transition propose() would have made.
                    session.status = status_after
                    break
            else:
                proposal = session.propose()
                if proposal is None:
                    break
            window = list(proposal.window)
            granted = True
            try:
                if staged:
                    self.access.stage_request(
                        window, proposal.budget, label=entry.name
                    )
                else:
                    self.access.request(window, proposal.budget, label=entry.name)
            except (BlockRetiredError, BudgetExceededError):
                granted = False
            metrics.inc(
                "sage_charges_granted_total"
                if granted
                else "sage_charges_denied_total"
            )
            if tracer is not None:
                tracer.event(
                    "charge.granted" if granted else "charge.denied",
                    session=entry.name,
                    epsilon=proposal.budget.epsilon,
                    blocks=len(window),
                )
            session.complete(
                ChargeDecision(
                    proposal=proposal,
                    granted=granted,
                    batch=self.database.assemble(window) if granted else None,
                )
            )

    def advance(self, hours: float = 1.0) -> List[ReleasedBundle]:
        """Move the clock: ingest, allocate, drive sessions, settle, release.

        Returns the bundles released during this step.  On the batched path
        the whole hour's charges commit through exactly one
        ``SageAccessControl.request_many`` call after every session has
        finished or blocked (see the module docstring).  With ``wal_dir``
        set the hour additionally lands in the write-ahead charge log
        before it commits, and any mid-hour exception rolls the in-memory
        state back to the last committed hour (see
        :mod:`repro.core.durability`).
        """
        if self._needs_recovery:
            raise RecoveryError(
                f"WAL directory {self._wal_dir} holds prior platform state; "
                "call recover() before advancing"
            )
        staged = self.batched_advance and self.access.supports_staged_requests
        if self._wal_dir is not None:
            return self._advance_durable(hours)
        return self._advance_volatile(hours, staged)

    def _open_hour(self, hours: float) -> List:
        """Ingest the hour's stream slice and fund its blocks: register in
        every ledger set, allocate evenly to waiting pipelines, grant the
        free pool.  Returns the new blocks (also the WAL replay re-entry
        point -- identical given identical clock/RNG state)."""
        tracer = self._tracer
        with (
            tracer.span("advance.open")
            if tracer is not None
            else nullcontext()
        ) as opening:
            new_blocks = self.ingestor.advance(hours)
            # Register the hour's blocks in every ledger set (stream-wide
            # and per-context); the access layer interleaves sets per key
            # so a failure cannot leave them inconsistent.
            self.access.register_blocks([block.key for block in new_blocks])
            for block in new_blocks:
                self._allocate_block(block.key)
            self._grant_free_pool()
            if opening is not None:
                opening.set(new_blocks=len(new_blocks))
        return new_blocks

    def _drive_hour(self, staged: bool) -> List[ReleasedBundle]:
        """Drive every waiting session through the hour's propose/settle
        loop (after :meth:`_open_hour`; inside the staging window on the
        batched path).  Returns the hour's released bundles."""
        # Parallel propose phase: peek every waiting session's first
        # proposal against the freshly opened (empty) overlay.  Needs
        # the staged path -- speculation tokens are defined against it.
        speculations: Dict[int, SpeculativeProposal] = {}
        tracer = self._tracer
        if staged and self.propose_workers > 0:
            if tracer is not None:
                with tracer.span(
                    "advance.propose_fanout", workers=self.propose_workers
                ) as fanout:
                    speculations = self._speculate_proposals()
                    fanout.set(peeked=len(speculations))
            else:
                speculations = self._speculate_proposals()
        released: List[ReleasedBundle] = []
        # Maintained O(1) through the loop: sessions only leave the
        # waiting set by terminating during their own drive below.
        waiting_count = sum(1 for p in self._pipelines if p.waiting)
        driven = 0
        for entry in self._pipelines:
            if not entry.waiting:
                continue
            # The span covers the session's whole hour -- drive, settle,
            # release, redistribute -- so the profiler attributes the
            # settlement tail (a whole-table ReservationTable op per
            # terminating session) to the session that caused it.  The
            # settle/release helpers emit no telemetry, so the widened
            # body leaves the deterministic tick sequence untouched.
            with (
                tracer.span("session.drive", session=entry.name)
                if tracer is not None
                else nullcontext()
            ):
                self._drive_session(
                    entry, staged, speculations.get(id(entry)), waiting_count
                )
                self._metrics.inc("sage_sessions_driven_total")
                driven += 1
                if entry.session.is_terminal:
                    waiting_count -= 1
                self._settle_charges(entry)
                faults.trip("settle.mid_session")
                if entry.session.status == SessionStatus.ACCEPTED:
                    run = entry.session.final_run
                    bundle = self.store.release(
                        name=entry.name,
                        model=run.model,
                        features=run.features,
                        validation=run.validation,
                        budget=entry.session.total_spent,
                        block_keys=entry.session.attempts[-1].window,
                        release_time_hours=self.clock_hours,
                    )
                    entry.bundle = bundle
                    entry.release_time_hours = self.clock_hours
                    released.append(bundle)
                    self._redistribute(entry)
                elif entry.session.is_terminal:
                    self._redistribute(entry)
        # One settle marker per hour (not per session: settle instants
        # ride the per-session hot path, and the session.drive spans
        # already carry the per-session timeline).
        if tracer is not None and driven:
            tracer.event("reservations.settle", sessions=driven)
        return released

    def _advance_volatile(
        self, hours: float, staged: bool
    ) -> List[ReleasedBundle]:
        """The in-memory-only hourly drive (no ``wal_dir``) -- the seed
        semantics: a mid-hour exception still commits whatever was staged,
        exactly as the sequential path would already have charged it."""
        tracer = self._tracer
        if tracer is not None:
            tracer.hour = self._hours_committed
        self._mark_hour_metrics()
        with (
            tracer.span("advance.hour", mode="volatile")
            if tracer is not None
            else nullcontext()
        ):
            self._open_hour(hours)
            if staged:
                self.access.begin_staging()
            try:
                # Inside the try so a failed peek/drive still closes the
                # overlay.
                released = self._drive_hour(staged)
            finally:
                # Commit whatever was staged even if a pipeline raised
                # mid-hour: completed attempts' charges must land, exactly
                # as they already would have on the sequential path.
                if staged:
                    self._metrics.observe(
                        "sage_staged_batch_requests",
                        self.access.accountant.staged_request_count,
                    )
                    with (
                        tracer.span("staging.commit")
                        if tracer is not None
                        else nullcontext()
                    ):
                        self.access.commit_staged()
        self._hours_committed += 1
        self._finish_hour_metrics()
        return released

    def _advance_durable(self, hours: float) -> List[ReleasedBundle]:
        """One write-ahead-logged hour (see :mod:`repro.core.durability`).

        Ordering is the whole durability argument: the hour record (the
        exact request batch plus session deltas) is appended and fsynced
        *before* the in-memory commit, so a crash on either side of the
        commit point leaves the WAL describing a state recovery can rebuild
        exactly.  Any exception during the open/drive/append window rolls
        the platform back to its pre-hour accounting state and truncates
        the partial WAL hour -- the volatile path's commit-what-was-staged
        semantics would leave charges the log never recorded.
        """
        if not (self.batched_advance and self.access.supports_staged_requests):
            raise DurabilityError(
                "durable advance requires the staged hourly drive (no "
                "per-context policies, staging-capable accountant)"
            )
        wal = self._ensure_wal()
        txn = self._capture_hour()
        tracer = self._tracer
        if tracer is not None:
            tracer.hour = self._hours_committed
        self._mark_hour_metrics()
        with (
            tracer.span("advance.hour", mode="durable")
            if tracer is not None
            else nullcontext()
        ):
            wal.begin_hour()
            try:
                new_blocks = self._open_hour(hours)
                faults.trip("hour.opened")
                self.access.begin_staging()
                released = self._drive_hour(staged=True)
                # Build the record while the staged batch is still open (it
                # carries the batch verbatim), write ahead, then commit.
                record = self._build_hour_record(txn, hours, new_blocks)
                self._metrics.observe(
                    "sage_staged_batch_requests",
                    self.access.accountant.staged_request_count,
                )
                wal.append_hour(record)
                with (
                    tracer.span("staging.commit")
                    if tracer is not None
                    else nullcontext()
                ):
                    self.access.commit_staged()
            except Exception:
                # InjectedCrash (BaseException) deliberately bypasses this:
                # a crash gets no rollback -- recovery must rebuild from
                # disk.
                try:
                    self._rollback_hour(txn)
                finally:
                    if self.access.staging_active:
                        self.access.abort_staged()
                    wal.abort_hour()
                raise
            self._hours_committed += 1
            wal.commit_hour(
                self._hours_committed - 1, durability.state_digest(self)
            )
            faults.trip("hour.after_commit")
            if self._snapshot_every > 0 and (
                self._hours_committed % self._snapshot_every == 0
            ):
                self._write_snapshot()
        self._finish_hour_metrics()
        return released

    # ------------------------------------------------------------------
    # Durability: pre-hour capture, rollback, WAL records, recovery
    # ------------------------------------------------------------------
    def _ensure_wal(self) -> durability.WalWriter:
        if self._wal_dir is None:
            raise DurabilityError("platform was constructed without a wal_dir")
        if self._wal is None:
            self._wal = durability.WalWriter(
                durability.wal_path(self._wal_dir), telemetry=self._telemetry
            )
        return self._wal

    def _capture_hour(self) -> dict:
        """Everything :meth:`_rollback_hour` needs to undo one hour:
        the accounting plane (ledger registrations, reservations, session
        state, released bundles) and the data plane (database tail, stream
        clock, RNG state) -- a rolled-back hour leaves no trace at all, so
        the retried hour re-ingests the very same stream slice."""
        entries = []
        for entry in self._pipelines:
            session = entry.session
            entries.append(
                {
                    "was_terminal": session.is_terminal,
                    "status": session.status,
                    "epsilon": session.epsilon,
                    "epsilon_floor": session.epsilon_floor,
                    "delta": session.delta,
                    "window_blocks": session.window_blocks,
                    "n_attempts": len(session.attempts),
                    "total_spent": session.total_spent,
                    "final_run": session.final_run,
                    "settled_attempts": entry.settled_attempts,
                    "release_time_hours": entry.release_time_hours,
                    "bundle": entry.bundle,
                }
            )
        return {
            "n_blocks": len(self.access.accountant.store),
            "clock": self.clock_hours,
            "rng_state": self.rng.bit_generator.state,
            "db_mark": self.database.mark(),
            "matrix": self._table.matrix.copy(),
            "free": self._table.free_epsilon.copy(),
            "store_marks": self.store.version_marks(),
            "entries": entries,
        }

    def _rollback_hour(self, txn: dict) -> None:
        """Restore the platform to the :meth:`_capture_hour` state:
        deregister the hour's blocks (truncating the ledger store),
        restore reservations, rewind every session, withdraw the hour's
        released bundles, unwind the ingest, rewind clock and RNG."""
        self.access.accountant.rollback_registrations(txn["n_blocks"])
        self.database.truncate_to_mark(txn["db_mark"])
        self.ingestor.clock_hours = txn["clock"]
        self.rng.bit_generator.state = txn["rng_state"]
        self._table.restore(txn["matrix"], txn["free"])
        for entry, pre in zip(self._pipelines, txn["entries"]):
            session = entry.session
            session.status = pre["status"]
            session.epsilon = pre["epsilon"]
            session.epsilon_floor = pre["epsilon_floor"]
            session.delta = pre["delta"]
            session.window_blocks = pre["window_blocks"]
            session.total_spent = pre["total_spent"]
            session.final_run = pre["final_run"]
            del session.attempts[pre["n_attempts"]:]
            entry.settled_attempts = pre["settled_attempts"]
            entry.release_time_hours = pre["release_time_hours"]
            entry.bundle = pre["bundle"]
        self.store.rollback_to_marks(txn["store_marks"])

    def _build_hour_record(self, txn: dict, hours: float, new_blocks) -> dict:
        """The hour's WAL record: the staged request batch verbatim plus
        per-session deltas, bracketed by the pre/post clock and RNG states
        (replay restores the *pre* pair before re-ingesting and the *post*
        pair after, so it never depends on the recovering process's own
        clock or RNG position)."""
        deltas = []
        for index, (entry, pre) in enumerate(zip(self._pipelines, txn["entries"])):
            if pre["was_terminal"]:
                continue
            session = entry.session
            deltas.append(
                {
                    "index": index,
                    "status": session.status,
                    "epsilon": session.epsilon,
                    "epsilon_floor": session.epsilon_floor,
                    "delta": session.delta,
                    "window_blocks": session.window_blocks,
                    "total_spent": session.total_spent,
                    "settled_attempts": entry.settled_attempts,
                    "release_time_hours": entry.release_time_hours,
                    "attempts": durability._attempt_tuples(
                        session.attempts[pre["n_attempts"]:]
                    ),
                }
            )
        return {
            "hour_index": self._hours_committed,
            "hours": hours,
            "clock_start": txn["clock"],
            "clock_hours": self.clock_hours,
            "schema_width": self.access.accountant.store.width,
            "n_entries": len(self._pipelines),
            "entry_names": [entry.name for entry in self._pipelines],
            "new_block_keys": [block.key for block in new_blocks],
            "requests": self.access.accountant.staged_requests,
            "rng_state_before": txn["rng_state"],
            "rng_state": self.rng.bit_generator.state,
            "deltas": deltas,
        }

    def _write_snapshot(self) -> None:
        self._snapshots.write(
            self._hours_committed,
            durability.build_snapshot_payload(self, self._hours_committed),
        )
        # Compact the charge log up to the *oldest* snapshot still on
        # disk: recovery can fall back that far (corrupt-newest), but
        # never further, so everything older is dead weight in the WAL.
        oldest = self._snapshots.oldest_retained_hour()
        if oldest is not None and self._wal is not None:
            self._wal.compact(oldest)

    def recover(self, pipelines: Sequence = ()) -> "durability.RecoveryReport":
        """Rebuild this platform's state from its WAL directory.

        Call on a *freshly constructed* platform (same configuration as
        the crashed one) whose ``wal_dir`` points at the prior state.
        ``pipelines`` supplies the pipelines to re-submit, in original
        submission order, as pipeline objects or ``(pipeline, config)``
        pairs -- they are submitted lazily as the log first mentions them,
        so supplying the full original set always works; any the log never
        mentions (submitted in the crashed run, durable in no committed
        hour) are re-submitted fresh at the end.

        Loads the newest valid snapshot (if any), then replays every
        subsequent WAL hour through the live ``charge_many`` path --
        byte-identical by construction, verified against each commit
        marker's state digest.  A torn trailing record (mid-append crash)
        is discarded and repaired; a complete record with a bad CRC raises
        :class:`~repro.errors.WalCorruptionError` and is never replayed.
        """
        if self._wal_dir is None:
            raise RecoveryError("recover() requires a platform with a wal_dir")
        if self._hours_committed or self._pipelines or len(
            self.access.accountant.store
        ):
            raise RecoveryError(
                "recover() must run on a freshly constructed platform"
            )
        supplied = list(pipelines)
        submitted = 0

        def submit_next() -> None:
            nonlocal submitted
            if submitted >= len(supplied):
                raise RecoveryError(
                    f"log records pipeline #{submitted} but only "
                    f"{len(supplied)} were supplied to recover()"
                )
            item = supplied[submitted]
            if isinstance(item, tuple):
                self.submit(item[0], item[1])
            else:
                self.submit(item)
            submitted += 1

        tracer = self._tracer
        with (
            tracer.span("recover.run")
            if tracer is not None
            else nullcontext()
        ):
            scan = durability.read_wal(durability.wal_path(self._wal_dir))
            hour_pairs = durability.pair_hour_records(scan.records)
            latest = self._snapshots.latest()
            snapshot_hour: Optional[int] = None
            snapshots_skipped = 0
            if latest is not None:
                snapshot_hour, payload, skipped = latest
                snapshots_skipped = len(skipped)
                while submitted < len(payload["entries"]):
                    submit_next()
                durability.restore_snapshot_payload(self, payload)
                self._hours_committed = snapshot_hour
                if tracer is not None:
                    tracer.event(
                        "recover.snapshot",
                        hour=snapshot_hour,
                        skipped=snapshots_skipped,
                    )
            replayed = 0
            digests_verified = 0
            for record, digest in hour_pairs:
                hour_index = record["hour_index"]
                if hour_index < self._hours_committed:
                    continue  # already folded into the snapshot
                if hour_index != self._hours_committed:
                    raise RecoveryError(
                        f"WAL hour {hour_index} does not follow committed hour "
                        f"count {self._hours_committed} (missing log records?)"
                    )
                while submitted < record["n_entries"]:
                    submit_next()
                if tracer is not None:
                    tracer.hour = hour_index
                with (
                    tracer.span(
                        "recover.hour",
                        hour_index=hour_index,
                        digest_checked=digest is not None,
                    )
                    if tracer is not None
                    else nullcontext()
                ):
                    self._replay_hour(record, digest)
                self._hours_committed += 1
                replayed += 1
                if digest is not None:
                    digests_verified += 1
            # Pipelines the log never mentioned were submitted in the
            # crashed run but are durable in no committed hour: re-submit
            # them fresh (their sessions start over -- submissions become
            # durable only once a later hour commits).
            fresh = len(supplied) - submitted
            while submitted < len(supplied):
                submit_next()
            self._needs_recovery = False
            # Re-open the log for appending; a torn tail is truncated here.
            self._ensure_wal()
        report = durability.RecoveryReport(
            snapshot_hour=snapshot_hour,
            snapshots_skipped=snapshots_skipped,
            replayed_hours=replayed,
            hours_committed=self._hours_committed,
            clock_hours=self.clock_hours,
            wal_records=len(scan.records),
            truncated_tail=scan.truncated_tail,
            fresh_pipelines=fresh,
            digests_verified=digests_verified,
        )
        self._metrics.observe_recovery(report)
        return report

    def _replay_hour(self, record: dict, digest: Optional[int]) -> None:
        """Re-apply one WAL hour through the live platform paths.

        Re-ingests the hour's stream slice under the recorded pre-hour
        clock/RNG (regenerating the same blocks), re-applies each
        session's recorded attempts with a settle after every one (the
        drive's own cadence -- single-pending settles are bit-identical),
        redistributes exactly where the drive would have, and lands the
        hour's charges through the **same** ``request_many`` call the
        live hour committed through.  No parallel apply path exists.
        """
        accountant = self.access.accountant
        if record["schema_width"] != accountant.store.width:
            raise RecoveryError(
                f"WAL hour {record['hour_index']}: schema width "
                f"{record['schema_width']} does not match platform "
                f"{accountant.store.width} (different filter_factory?)"
            )
        names = [entry.name for entry in self._pipelines]
        if record["entry_names"] != names:
            raise RecoveryError(
                f"WAL hour {record['hour_index']}: pipeline names "
                f"{record['entry_names']} do not match submitted {names}"
            )
        self.rng.bit_generator.state = record["rng_state_before"]
        self.ingestor.clock_hours = record["clock_start"]
        new_blocks = self._open_hour(record["hours"])
        if [block.key for block in new_blocks] != record["new_block_keys"]:
            raise RecoveryError(
                f"WAL hour {record['hour_index']}: re-ingested block keys "
                "do not match the recorded hour (different stream source?)"
            )
        for delta in record["deltas"]:
            entry = self._pipelines[delta["index"]]
            session = entry.session
            for attempt, window, budget, outcome, train_size in delta["attempts"]:
                session.attempts.append(
                    AttemptRecord(
                        attempt=attempt,
                        window=window,
                        budget=budget,
                        outcome=outcome,
                        train_size=train_size,
                    )
                )
                # Settle after every attempt -- the drive's own cadence
                # (row_budget_fn settles mid-step), so each settle sees at
                # most one pending attempt and stays bit-identical.
                self._settle_charges(entry)
            session.status = delta["status"]
            session.epsilon = delta["epsilon"]
            session.epsilon_floor = delta["epsilon_floor"]
            session.delta = delta["delta"]
            session.window_blocks = delta["window_blocks"]
            session.total_spent = delta["total_spent"]
            entry.settled_attempts = delta["settled_attempts"]
            entry.release_time_hours = delta["release_time_hours"]
            if session.status == SessionStatus.ACCEPTED:
                self._redistribute(entry)
            elif session.is_terminal:
                self._redistribute(entry)
        if record["requests"]:
            self.access.request_many(record["requests"])
        self.rng.bit_generator.state = record["rng_state"]
        if digest is not None and durability.state_digest(self) != digest:
            raise RecoveryError(
                f"WAL hour {record['hour_index']}: replayed state digest "
                "does not match the commit marker"
            )

    # ------------------------------------------------------------------
    def run_until_quiet(self, max_hours: int = 200) -> List[ReleasedBundle]:
        """Advance hour by hour until no pipeline is waiting (or the cap)."""
        released: List[ReleasedBundle] = []
        for _ in range(max_hours):
            released.extend(self.advance(1.0))
            if not self._waiting_pipelines():
                break
        return released

    @property
    def pipelines(self) -> List[SubmittedPipeline]:
        return list(self._pipelines)

    def pipeline_named(self, name: str) -> SubmittedPipeline:
        for entry in self._pipelines:
            if entry.name == name:
                return entry
        raise PipelineError(f"no pipeline named {name!r}")
