"""The Sage platform: streams in, validated DP models out (Fig. 2).

Ties every core piece together for one sensitive stream:

* a :class:`~repro.data.database.StreamIngestor` lands new blocks in the
  Growing Database;
* :class:`~repro.core.access_control.SageAccessControl` tracks per-block
  privacy loss under the global (eps_g, delta_g) policy;
* submitted pipelines run inside stateful
  :class:`~repro.core.adaptive.AdaptiveSession` escalation loops;
* newly arrived blocks' budget is divided evenly among waiting pipelines
  (the conserve allocation of §3.3), and an accepted pipeline's unused
  reservations are returned to the pool for the others;
* accepted bundles are pushed to the wide-access
  :class:`~repro.core.model_store.ModelFeatureStore`.

``advance(hours)`` is the simulation clock: ingest, allocate, resume
sessions, release.  Real deployments would drive the same calls from wall
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.access_control import SageAccessControl
from repro.core.adaptive import AdaptiveConfig, AdaptiveSession, SessionStatus
from repro.core.model_store import ModelFeatureStore, ReleasedBundle
from repro.data.database import GrowingDatabase, StreamIngestor
from repro.data.stream import StreamSource, TimePartitioner
from repro.errors import PipelineError

__all__ = ["Sage", "SubmittedPipeline"]


@dataclass
class SubmittedPipeline:
    """Bookkeeping for one pipeline queued on the platform."""

    pipeline: object
    session: AdaptiveSession
    submit_time_hours: float
    release_time_hours: Optional[float] = None
    bundle: Optional[ReleasedBundle] = None
    # Per-block epsilon reservations granted by the allocator.
    reservations: Dict[object, float] = field(default_factory=dict)
    # Number of session attempts already deducted from reservations.
    settled_attempts: int = 0

    @property
    def name(self) -> str:
        return self.pipeline.name

    @property
    def status(self) -> str:
        return self.session.status

    @property
    def waiting(self) -> bool:
        return not self.session.is_terminal


class Sage:
    """A Sage deployment over one sensitive stream."""

    def __init__(
        self,
        source: StreamSource,
        epsilon_global: float = 1.0,
        delta_global: float = 1e-6,
        block_hours: float = 1.0,
        filter_factory=None,
        seed: Optional[int] = None,
    ) -> None:
        self.database = GrowingDatabase()
        self.rng = np.random.default_rng(seed)
        self.ingestor = StreamIngestor(
            source,
            self.database,
            TimePartitioner(window_hours=block_hours),
            rng=self.rng,
        )
        self.access = SageAccessControl(
            epsilon_global, delta_global, filter_factory=filter_factory
        )
        self.store = ModelFeatureStore()
        self.epsilon_global = epsilon_global
        self.delta_global = delta_global
        self._pipelines: List[SubmittedPipeline] = []
        # Unreserved epsilon still distributable, per block.
        self._free_epsilon: Dict[object, float] = {}

    # ------------------------------------------------------------------
    @property
    def clock_hours(self) -> float:
        return self.ingestor.clock_hours

    def submit(
        self, pipeline, config: Optional[AdaptiveConfig] = None
    ) -> SubmittedPipeline:
        """Queue a DP pipeline for privacy-adaptive training."""
        config = config or AdaptiveConfig()
        entry = SubmittedPipeline(
            pipeline=pipeline,
            session=None,  # type: ignore[arg-type]
            submit_time_hours=self.clock_hours,
        )
        session = AdaptiveSession(
            pipeline,
            self.access,
            self.database,
            config,
            self.rng,
            epsilon_limit_fn=lambda window, e=entry: self._reservation_limit(e, window),
            new_block_epsilon_fn=self._new_block_share,
        )
        entry.session = session
        self._pipelines.append(entry)
        return entry

    # ------------------------------------------------------------------
    # Allocation (conserve strategy of §3.3)
    # ------------------------------------------------------------------
    def _waiting_pipelines(self) -> List[SubmittedPipeline]:
        return [p for p in self._pipelines if p.waiting]

    def _new_block_share(self) -> float:
        """Per-pipeline epsilon a freshly created block would grant now."""
        waiting = max(1, len(self._waiting_pipelines()))
        return self.epsilon_global / waiting

    def _reservation_limit(self, entry: SubmittedPipeline, window) -> float:
        """The epsilon this pipeline may spend on that window: the smallest
        reservation it holds across the window's blocks.  Charges made
        earlier in the same session step are settled first so mid-step
        attempts cannot overdraw the reservation."""
        self._settle_charges(entry)
        if not window:
            return 0.0
        return min(entry.reservations.get(key, 0.0) for key in window)

    def _allocate_block(self, key: object) -> None:
        """Divide a new block's budget evenly among waiting pipelines."""
        waiting = self._waiting_pipelines()
        if not waiting:
            self._free_epsilon[key] = self._free_epsilon.get(key, 0.0) + self.epsilon_global
            return
        share = self.epsilon_global / len(waiting)
        for entry in waiting:
            entry.reservations[key] = entry.reservations.get(key, 0.0) + share

    def _redistribute(self, finished: SubmittedPipeline) -> None:
        """Return a finished pipeline's unused reservations to the others."""
        leftovers = {k: v for k, v in finished.reservations.items() if v > 0}
        finished.reservations = {}
        waiting = self._waiting_pipelines()
        for key, amount in leftovers.items():
            if waiting:
                share = amount / len(waiting)
                for entry in waiting:
                    entry.reservations[key] = entry.reservations.get(key, 0.0) + share
            else:
                self._free_epsilon[key] = self._free_epsilon.get(key, 0.0) + amount

    def _grant_free_pool(self) -> None:
        """Hand any unreserved budget to newly waiting pipelines."""
        waiting = self._waiting_pipelines()
        if not waiting or not self._free_epsilon:
            return
        for key, amount in list(self._free_epsilon.items()):
            share = amount / len(waiting)
            for entry in waiting:
                entry.reservations[key] = entry.reservations.get(key, 0.0) + share
            del self._free_epsilon[key]

    def _settle_charges(self, entry: SubmittedPipeline) -> None:
        """Decrement reservations by what the session actually charged."""
        for record in entry.session.attempts[entry.settled_attempts:]:
            for key in record.window:
                held = entry.reservations.get(key, 0.0)
                entry.reservations[key] = max(0.0, held - record.budget.epsilon)
        entry.settled_attempts = len(entry.session.attempts)

    # ------------------------------------------------------------------
    def advance(self, hours: float = 1.0) -> List[ReleasedBundle]:
        """Move the clock: ingest, allocate, resume sessions, release.

        Returns the bundles released during this step.
        """
        new_blocks = self.ingestor.advance(hours)
        # Register the hour's blocks in every ledger set (stream-wide and
        # per-context); the access layer interleaves sets per key so a
        # failure cannot leave them inconsistent.
        self.access.register_blocks([block.key for block in new_blocks])
        for block in new_blocks:
            self._allocate_block(block.key)
        self._grant_free_pool()

        released: List[ReleasedBundle] = []
        for entry in self._pipelines:
            if not entry.waiting:
                continue
            entry.session.resume()
            self._settle_charges(entry)
            if entry.session.status == SessionStatus.ACCEPTED:
                run = entry.session.final_run
                bundle = self.store.release(
                    name=entry.name,
                    model=run.model,
                    features=run.features,
                    validation=run.validation,
                    budget=entry.session.total_spent,
                    block_keys=entry.session.attempts[-1].window,
                    release_time_hours=self.clock_hours,
                )
                entry.bundle = bundle
                entry.release_time_hours = self.clock_hours
                released.append(bundle)
                self._redistribute(entry)
            elif entry.session.is_terminal:
                self._redistribute(entry)
        return released

    # ------------------------------------------------------------------
    def run_until_quiet(self, max_hours: int = 200) -> List[ReleasedBundle]:
        """Advance hour by hour until no pipeline is waiting (or the cap)."""
        released: List[ReleasedBundle] = []
        for _ in range(max_hours):
            released.extend(self.advance(1.0))
            if not self._waiting_pipelines():
                break
        return released

    @property
    def pipelines(self) -> List[SubmittedPipeline]:
        return list(self._pipelines)

    def pipeline_named(self, name: str) -> SubmittedPipeline:
        for entry in self._pipelines:
            if entry.name == name:
                return entry
        raise PipelineError(f"no pipeline named {name!r}")
