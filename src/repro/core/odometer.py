"""Privacy odometers: pay-as-you-go loss tracking (Rogers et al. 2016).

Sage's access control uses privacy *filters* -- admit/deny against a fixed
global budget.  The same paper the filter comes from also defines
*odometers*: running upper bounds on the privacy loss consumed so far, valid
at every point in time without a pre-declared stop.  An odometer is what a
platform operator reads on a dashboard ("how exposed is this block right
now?"), while the filter is what gates the next query.

Two variants, mirroring the filter pair:

* :class:`BasicOdometer` -- the running (sum eps, sum delta); exact.
* :class:`StrongOdometer` -- Rogers et al.'s doubling construction: the
  strong-composition bound evaluated at the smallest power-of-two budget
  envelope that contains the spend so far.  Pays a doubling penalty over
  the fixed-budget filter but needs no budget declared in advance.

Both attach to live :class:`~repro.core.accountant.BlockLedger` histories,
so ``repro.core.platform`` deployments can expose loss dashboards without
touching the enforcement path.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from repro.core.accountant import TOT_DELTA, TOT_EPS, BlockAccountant
from repro.core.filters import TOTALS_BASE
from repro.dp.budget import PrivacyBudget
from repro.dp.composition import rogers_filter_epsilon_from_sums
from repro.errors import InvalidBudgetError

__all__ = ["BasicOdometer", "StrongOdometer", "loss_dashboard"]


class BasicOdometer:
    """Running basic-composition loss: exact, always valid."""

    def __init__(self) -> None:
        self._epsilon = 0.0
        self._delta = 0.0

    def record(self, budget: PrivacyBudget) -> None:
        self._epsilon += budget.epsilon
        self._delta = min(1.0, self._delta + budget.delta)

    def record_all(self, budgets: Sequence[PrivacyBudget]) -> None:
        for budget in budgets:
            self.record(budget)

    @property
    def loss(self) -> PrivacyBudget:
        return PrivacyBudget(self._epsilon, self._delta)


class StrongOdometer:
    """Doubling-envelope strong-composition odometer.

    ``delta_slack_per_level`` is the slack spent by each doubling level's
    high-probability bound; level k covers envelopes up to
    ``epsilon_unit * 2^k``.  The reported loss is the Theorem A.2 bound of
    the smallest level whose envelope contains the realized spend, plus the
    slack of every level up to it -- the standard pay-as-you-go argument.
    """

    def __init__(
        self,
        epsilon_unit: float = 1.0 / 16.0,
        delta_slack_per_level: float = 1e-9,
        max_levels: int = 40,
    ) -> None:
        if epsilon_unit <= 0:
            raise InvalidBudgetError(f"epsilon_unit must be > 0, got {epsilon_unit}")
        if not 0 < delta_slack_per_level < 1:
            raise InvalidBudgetError("delta_slack_per_level must be in (0, 1)")
        if max_levels <= 0:
            raise InvalidBudgetError("max_levels must be > 0")
        self.epsilon_unit = epsilon_unit
        self.delta_slack_per_level = delta_slack_per_level
        self.max_levels = max_levels
        self._sum_eps = 0.0
        self._sum_delta = 0.0
        self._sum_sq = 0.0
        self._linear = 0.0

    def record(self, budget: PrivacyBudget) -> None:
        eps = budget.epsilon
        self._sum_eps += eps
        self._sum_delta = min(1.0, self._sum_delta + budget.delta)
        self._sum_sq += eps * eps
        self._linear += math.expm1(eps) * eps / 2.0

    def record_all(self, budgets: Sequence[PrivacyBudget]) -> None:
        for budget in budgets:
            self.record(budget)

    def load_totals(
        self, sum_eps: float, sum_delta: float, sum_sq: float, linear: float
    ) -> "StrongOdometer":
        """Absorb a ledger's precomputed running sums in O(1) (equivalent to
        replaying its whole history through :meth:`record`)."""
        self._sum_eps += sum_eps
        self._sum_delta = min(1.0, self._sum_delta + sum_delta)
        self._sum_sq += sum_sq
        self._linear += linear
        return self

    def _level_for(self, epsilon: float) -> int:
        """Smallest doubling level whose envelope covers ``epsilon``."""
        level = 0
        envelope = self.epsilon_unit
        while envelope < epsilon and level < self.max_levels:
            envelope *= 2.0
            level += 1
        return level

    @property
    def saturated(self) -> bool:
        """True once the realized spend exceeds the top doubling envelope.

        Past that point no level's Theorem A.2 bound covers the spend, so
        :attr:`loss` falls back to exact basic composition.
        """
        return self._sum_eps > self.epsilon_unit * (2.0 ** self.max_levels)

    @property
    def loss(self) -> PrivacyBudget:
        """Current high-probability loss bound (valid at any stopping time)."""
        if self._sum_eps == 0.0:
            return PrivacyBudget(0.0, 0.0)
        level = self._level_for(self._sum_eps)
        # Each level up to the active one spends its slack once.
        delta_bound = min(
            1.0, self._sum_delta + (level + 1) * self.delta_slack_per_level
        )
        if self.saturated:
            # The realized spend escaped every envelope (_level_for
            # saturates): Theorem A.2 evaluated at the top envelope would be
            # an *invalid* bound (it can claim less loss than was provably
            # spent).  Fall back to exact basic composition, which needs no
            # envelope.
            return PrivacyBudget(self._sum_eps, delta_bound)
        envelope = self.epsilon_unit * (2.0 ** level)
        eps_bound = rogers_filter_epsilon_from_sums(
            self._sum_sq, self._linear, envelope, self.delta_slack_per_level
        )
        # The odometer is a bound: never report less than basic composition
        # would (tiny histories make the strong bound's constant dominate,
        # where basic is simply better).
        return PrivacyBudget(min(eps_bound, self._sum_eps), delta_bound)

    @property
    def basic_loss(self) -> PrivacyBudget:
        """The basic-composition running total for comparison."""
        return PrivacyBudget(self._sum_eps, self._sum_delta)


def loss_dashboard(
    accountant: BlockAccountant, strong: bool = False
) -> Dict[object, PrivacyBudget]:
    """Per-block current loss bounds for an operator dashboard.

    Reads the ledgers' precomputed running totals (O(1) per block rather
    than replaying every charge); does not interfere with enforcement.  The
    basic variant is a single vectorized pass over the accountant's
    struct-of-arrays store.

    Sharded accountants are covered transparently: their ``store.totals``
    is the global-row-space view spanning every shard and ``block_keys``
    stays in global registration order, so the dashboard aggregates all
    shards, in stream order (regression-tested sharded-vs-single in
    ``tests/core/test_sharding.py``).

    To export these bounds as metrics (``sage_block_epsilon{block=...}``
    gauges for a Prometheus scrape or the JSON report), use
    :meth:`repro.obs.MetricsRegistry.observe_dashboard`, which reads the
    same totals in one pass without building this dict.
    """
    keys = accountant.block_keys
    if not strong:
        totals = accountant.store.totals
        eps = totals[:, TOT_EPS]
        delta = np.minimum(1.0, totals[:, TOT_DELTA])
        return {
            key: PrivacyBudget(float(e), float(d))
            for key, e, d in zip(keys, eps, delta)
        }
    dashboard: Dict[object, PrivacyBudget] = {}
    for key in keys:
        # Only the shared base columns feed the odometer; order-extended
        # schemas (the Renyi filter's per-order RDP columns) ride behind them.
        odometer = StrongOdometer().load_totals(
            *accountant.ledger(key).totals[:TOTALS_BASE]
        )
        dashboard[key] = odometer.loss
    return dashboard
