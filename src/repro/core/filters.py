"""Per-block privacy filters.

A *filter* decides whether one more DP query may be charged to a block given
everything already charged to it, while guaranteeing the block's cumulative
privacy loss stays within the global (eps_g, delta_g) policy.  Two variants,
matching the paper's two composition analyses:

* :class:`BasicCompositionFilter` -- Theorem 4.3: admit while
  ``sum eps_i <= eps_g`` and ``sum delta_i <= delta_g``.  Budgets add up, so
  the notion of "remaining budget" is exact.
* :class:`StrongCompositionFilter` -- Theorem A.2 (Rogers et al.'s adaptive
  filter): admits *more* small queries than basic composition by paying a
  ``delta_slack`` once.  There is no exact remaining budget; the filter
  answers admissibility queries and can binary-search the largest admissible
  next epsilon.

Filters are pure decision logic over a charge history; the ledger/accountant
layer owns the history itself.

Batched evaluation
------------------
Both decision rules reduce to arithmetic on a block's running
``(sum eps, sum delta, sum eps^2, sum (e^eps - 1) eps / 2)`` totals, so the
accountant's struct-of-arrays ledger store can evaluate a whole stream's
blocks in one NumPy pass.  :meth:`PrivacyFilter.admits_batch` takes an
``(n, 4)`` float64 array of such totals rows and returns a boolean admit
vector; the contract is that ``admits_batch(totals, c)[i]`` equals
``admits((), c, totals=tuple(totals[i]))`` decision-for-decision (the
vectorized arithmetic mirrors the scalar operation order exactly).
:meth:`PrivacyFilter.max_epsilon_batch` is the batched analogue of
``max_epsilon`` restricted to the conjunction over rows: the largest epsilon
every row still admits at the given delta.

The batch contract only holds for filters whose decisions are a pure
function of the totals row; the accountant detects filters that keep the
base-class ``admits_batch`` and routes their scans through per-ledger
scalar ``admits`` (with the real history) instead.

Tolerances: every admissibility comparison carries slack so that charging
eps_g/k exactly k times is never rejected on the final charge by float
accumulation drift in the running sums.  The basic filter compares through
:meth:`PrivacyBudget.fits_within` (absolute 1e-12, relative 1e-9 of the
global budget), and its ``max_epsilon`` delta-affordability check uses the
same slack so the two can never disagree; the strong filter uses an
absolute slack of 1e-12 on epsilon / 1e-15 on delta plus a relative 1e-12
of the global budget.
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np

from repro.dp.budget import (
    PrivacyBudget,
    ZERO_BUDGET,
    _ABS_TOL,
    _REL_TOL,
    sum_budgets,
)
from repro.dp.composition import (
    DELTA_DRIFT_ABS as _DELTA_DRIFT_ABS,
    DRIFT_REL as _DRIFT_REL,
    EPS_DRIFT_ABS as _EPS_DRIFT_ABS,
    rogers_filter_epsilon,
    rogers_filter_epsilon_from_sums as _rogers_from_sums,
    rogers_filter_epsilon_from_sums_batch as _rogers_from_sums_batch,
)
from repro.errors import InvalidBudgetError

__all__ = ["PrivacyFilter", "BasicCompositionFilter", "StrongCompositionFilter"]


def _as_totals_matrix(totals) -> np.ndarray:
    """Coerce ledger totals into the (n, 4) float64 layout batch paths use."""
    arr = np.asarray(totals, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2 or arr.shape[1] != 4:
        raise InvalidBudgetError(
            f"totals must be an (n, 4) array of running sums, got shape {arr.shape}"
        )
    return arr


class PrivacyFilter(abc.ABC):
    """Admissibility rule for charging DP queries against one block."""

    def __init__(self, epsilon_global: float, delta_global: float) -> None:
        if epsilon_global <= 0:
            raise InvalidBudgetError(f"epsilon_global must be > 0, got {epsilon_global}")
        if not 0.0 <= delta_global <= 1.0:
            raise InvalidBudgetError(f"delta_global must be in [0, 1], got {delta_global}")
        self.epsilon_global = epsilon_global
        self.delta_global = delta_global

    @property
    def global_budget(self) -> PrivacyBudget:
        return PrivacyBudget(self.epsilon_global, self.delta_global)

    @abc.abstractmethod
    def admits(
        self,
        history: Sequence[PrivacyBudget],
        candidate: PrivacyBudget,
        totals: tuple = None,
    ) -> bool:
        """True iff ``history + [candidate]`` keeps the block within policy.

        ``totals``, when provided by the ledger, is the precomputed
        ``(sum eps, sum delta, sum eps^2, sum (e^eps - 1) eps / 2)`` of the
        history, making the check O(1).
        """

    def admits_batch(self, totals, candidate: PrivacyBudget) -> np.ndarray:
        """Vectorized :meth:`admits` over an (n, 4) array of totals rows.

        Subclasses override with a true NumPy pass.  This fallback loops the
        scalar rule with an *empty history*, so it is only valid for filters
        that decide from ``totals`` alone; the accountant detects filters
        that keep this base implementation and uses per-ledger scalar
        ``admits`` (with the real history) for them instead.
        """
        matrix = _as_totals_matrix(totals)
        return np.fromiter(
            (self.admits((), candidate, totals=tuple(row)) for row in matrix),
            dtype=bool,
            count=matrix.shape[0],
        )

    @abc.abstractmethod
    def max_epsilon(self, history: Sequence[PrivacyBudget], delta: float) -> float:
        """Largest epsilon whose (epsilon, delta) charge would still be admitted."""

    def max_epsilon_batch(self, totals, delta: float) -> float:
        """Largest epsilon that *every* totals row still admits at ``delta``.

        This is the batched form the accountant's multi-block ``max_epsilon``
        needs (the min over blocks of per-block headroom).  The generic
        implementation bisects the scalar epsilon against the whole batch;
        admissibility is monotone decreasing in epsilon, so the joint search
        converges to the per-block minimum.
        """
        matrix = _as_totals_matrix(totals)
        if matrix.shape[0] == 0:
            return 0.0
        if not bool(self.admits_batch(matrix, PrivacyBudget(0.0, delta)).all()):
            return 0.0
        lo, hi = 0.0, self.epsilon_global
        if bool(self.admits_batch(matrix, PrivacyBudget(hi, delta)).all()):
            return hi
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if bool(self.admits_batch(matrix, PrivacyBudget(mid, delta)).all()):
                lo = mid
            else:
                hi = mid
        return lo

    def loss_bound(
        self, history: Sequence[PrivacyBudget], totals: tuple = None
    ) -> PrivacyBudget:
        """A DP guarantee covering everything charged so far (diagnostics).

        ``totals``, when provided by the ledger, is the precomputed
        running-sums tuple, making the bound O(1) instead of O(|history|).
        Overrides must accept (and may ignore) the ``totals`` keyword.
        """
        if totals is not None:
            return PrivacyBudget(totals[0], min(1.0, totals[1]))
        return sum_budgets(history)


class BasicCompositionFilter(PrivacyFilter):
    """Admit while budgets sum within (eps_g, delta_g) -- paper Theorem 4.3."""

    def admits(
        self,
        history: Sequence[PrivacyBudget],
        candidate: PrivacyBudget,
        totals: tuple = None,
    ) -> bool:
        if totals is not None:
            eps_sum, delta_sum = totals[0], totals[1]
        else:
            spent = sum_budgets(history)
            eps_sum, delta_sum = spent.epsilon, spent.delta
        total = PrivacyBudget(
            eps_sum + candidate.epsilon, min(1.0, delta_sum + candidate.delta)
        )
        return total.fits_within(self.global_budget)

    def admits_batch(self, totals, candidate: PrivacyBudget) -> np.ndarray:
        matrix = _as_totals_matrix(totals)
        # Exactly fits_within's thresholds, computed once in scalar floats so
        # every row sees the same boundary the scalar path does.
        eps_thr = self.epsilon_global + _ABS_TOL + _REL_TOL * self.epsilon_global
        delta_thr = self.delta_global + _ABS_TOL + _REL_TOL * self.delta_global
        eps_ok = matrix[:, 0] + candidate.epsilon <= eps_thr
        delta_ok = np.minimum(1.0, matrix[:, 1] + candidate.delta) <= delta_thr
        return eps_ok & delta_ok

    def remaining(self, history: Sequence[PrivacyBudget]) -> PrivacyBudget:
        """Exact leftover budget under basic composition."""
        spent = sum_budgets(history)
        if not spent.fits_within(self.global_budget):
            return ZERO_BUDGET
        eps_left = max(0.0, self.epsilon_global - spent.epsilon)
        delta_left = max(0.0, self.delta_global - spent.delta)
        return PrivacyBudget(eps_left, delta_left)

    def _delta_affordable(self, delta: float, delta_left: float) -> bool:
        # Same slack as fits_within's delta comparison, so max_epsilon never
        # reports zero headroom for a delta that admits() would accept.
        return delta <= delta_left + _ABS_TOL + _REL_TOL * self.delta_global

    def max_epsilon(self, history: Sequence[PrivacyBudget], delta: float) -> float:
        left = self.remaining(history)
        if not self._delta_affordable(delta, left.delta):
            return 0.0
        return left.epsilon

    def max_epsilon_batch(self, totals, delta: float) -> float:
        matrix = _as_totals_matrix(totals)
        if matrix.shape[0] == 0:
            return 0.0
        spent_ok = self.admits_batch(matrix, ZERO_BUDGET)
        if not bool(spent_ok.all()):
            return 0.0
        delta_left = float(np.min(np.maximum(0.0, self.delta_global - matrix[:, 1])))
        if not self._delta_affordable(delta, delta_left):
            return 0.0
        return float(np.min(np.maximum(0.0, self.epsilon_global - matrix[:, 0])))


class StrongCompositionFilter(PrivacyFilter):
    """Rogers et al. adaptive strong-composition filter -- paper Theorem A.2.

    ``delta_slack`` is the share of delta_global consumed by the filter's own
    high-probability argument (delta_global/2 by default, leaving the other
    half for the queries' own deltas).

    The filter admits a charge when EITHER analysis keeps the block within
    (eps_g, delta_g): basic composition's running sum, or Theorem A.2's
    bound.  Both bounds hold simultaneously on the same loss (a union bound
    pays the slack), so taking the better one is sound -- and necessary,
    because the Rogers constant (28.04) makes lone moderate queries
    inadmissible under the strong bound alone even when they trivially fit
    the budget.
    """

    def __init__(
        self,
        epsilon_global: float,
        delta_global: float,
        delta_slack: float = None,
    ) -> None:
        super().__init__(epsilon_global, delta_global)
        if delta_slack is None:
            delta_slack = delta_global / 2.0
        if not 0.0 < delta_slack < 1.0:
            raise InvalidBudgetError(
                f"delta_slack must be in (0, 1), got {delta_slack} "
                "(strong composition requires delta_global > 0)"
            )
        if delta_slack > delta_global:
            raise InvalidBudgetError("delta_slack cannot exceed delta_global")
        self.delta_slack = delta_slack
        # Admission thresholds, precomputed once so the scalar and batched
        # paths compare against bit-identical boundaries.
        self._eps_threshold = (
            self.epsilon_global + _EPS_DRIFT_ABS + _DRIFT_REL * self.epsilon_global
        )
        self._delta_threshold = (
            self.delta_global + _DELTA_DRIFT_ABS + _DRIFT_REL * self.delta_global
        )

    def admits(
        self,
        history: Sequence[PrivacyBudget],
        candidate: PrivacyBudget,
        totals: tuple = None,
    ) -> bool:
        if totals is not None:
            eps_sum, delta_sum, sq_sum, linear_sum = totals
        else:
            eps_sum = sum(b.epsilon for b in history)
            delta_sum = sum(b.delta for b in history)
            sq_sum = sum(b.epsilon ** 2 for b in history)
            linear_sum = sum(math.expm1(b.epsilon) * b.epsilon / 2.0 for b in history)
        ce = candidate.epsilon
        strong_value = _rogers_from_sums(
            sq_sum + ce * ce,
            linear_sum + math.expm1(ce) * ce / 2.0,
            self.epsilon_global,
            self.delta_slack,
        )
        basic_value = eps_sum + ce
        eps_ok = min(strong_value, basic_value) <= self._eps_threshold
        delta_ok = self.delta_slack + delta_sum + candidate.delta <= self._delta_threshold
        return eps_ok and delta_ok

    def admits_batch(self, totals, candidate: PrivacyBudget) -> np.ndarray:
        matrix = _as_totals_matrix(totals)
        ce = candidate.epsilon
        strong_value = _rogers_from_sums_batch(
            matrix[:, 2] + ce * ce,
            matrix[:, 3] + math.expm1(ce) * ce / 2.0,
            self.epsilon_global,
            self.delta_slack,
        )
        basic_value = matrix[:, 0] + ce
        eps_ok = np.minimum(strong_value, basic_value) <= self._eps_threshold
        delta_ok = self.delta_slack + matrix[:, 1] + candidate.delta <= self._delta_threshold
        return eps_ok & delta_ok

    def max_epsilon(self, history: Sequence[PrivacyBudget], delta: float) -> float:
        if not self.admits(history, PrivacyBudget(0.0, delta)):
            return 0.0
        lo, hi = 0.0, self.epsilon_global
        if self.admits(history, PrivacyBudget(hi, delta)):
            return hi
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if self.admits(history, PrivacyBudget(mid, delta)):
                lo = mid
            else:
                hi = mid
        return lo

    def loss_bound(
        self, history: Sequence[PrivacyBudget], totals: tuple = None
    ) -> PrivacyBudget:
        if not history:
            return ZERO_BUDGET
        if totals is not None:
            eps_sum, delta_sum, sq_sum, linear_sum = totals
            strong = _rogers_from_sums(
                sq_sum, linear_sum, self.epsilon_global, self.delta_slack
            )
            return PrivacyBudget(
                min(strong, eps_sum), min(1.0, self.delta_slack + delta_sum)
            )
        strong = rogers_filter_epsilon(
            [b.epsilon for b in history], self.epsilon_global, self.delta_slack
        )
        basic = sum(b.epsilon for b in history)
        delta = min(1.0, self.delta_slack + sum(b.delta for b in history))
        return PrivacyBudget(min(strong, basic), delta)
