"""Per-block privacy filters.

A *filter* decides whether one more DP query may be charged to a block given
everything already charged to it, while guaranteeing the block's cumulative
privacy loss stays within the global (eps_g, delta_g) policy.  Two variants,
matching the paper's two composition analyses:

* :class:`BasicCompositionFilter` -- Theorem 4.3: admit while
  ``sum eps_i <= eps_g`` and ``sum delta_i <= delta_g``.  Budgets add up, so
  the notion of "remaining budget" is exact.
* :class:`StrongCompositionFilter` -- Theorem A.2 (Rogers et al.'s adaptive
  filter): admits *more* small queries than basic composition by paying a
  ``delta_slack`` once.  There is no exact remaining budget; the filter
  answers admissibility queries and can binary-search the largest admissible
  next epsilon.
* :class:`RenyiCompositionFilter` -- a per-order Renyi-DP (moments
  accountant) ledger: each charge contributes an RDP vector (exact for
  Gaussian-mechanism charges, the Bun-Steinke pure-DP reduction otherwise)
  that composes *additively* per order, and admission converts the running
  vector back to epsilon at a reserved ``delta_conversion`` via the
  Canonne-Kamath-Steinke bound.  Tightest of the three for the
  many-small-charges workloads DP-SGD produces.

Filters are pure decision logic over a charge history; the ledger/accountant
layer owns the history itself.

Batched evaluation and the pluggable totals schema
--------------------------------------------------
Every decision rule here reduces to arithmetic on a block's running totals
row, so the accountant's struct-of-arrays ledger store can evaluate a whole
stream's blocks in one NumPy pass.  A filter class declares its row layout:

* :attr:`PrivacyFilter.totals_width` -- the row length.  The first
  ``TOTALS_BASE`` (= 4) columns are fixed for every filter:
  ``(sum eps, sum delta, sum eps^2, sum (e^eps - 1) eps / 2)``; a filter
  may extend the row (``RenyiCompositionFilter`` appends one running-RDP
  column per Renyi order).
* :meth:`PrivacyFilter.contribution` -- one charge's additive increment to
  the row.  Ledgers, ``charge_many``'s scratch accumulation, and the staged
  overlay all apply exactly this vector, which is what keeps the scalar and
  batched paths float-identical.

:meth:`PrivacyFilter.admits_batch` takes an ``(n, totals_width)`` float64
array of such totals rows and returns a boolean admit vector; the contract
is that ``admits_batch(totals, c)[i]`` equals
``admits((), c, totals=tuple(totals[i]))`` decision-for-decision (the
vectorized arithmetic mirrors the scalar operation order exactly).
:meth:`PrivacyFilter.max_epsilon_batch` is the batched analogue of
``max_epsilon`` restricted to the conjunction over rows: the largest epsilon
every row still admits at the given delta.

The batch contract only holds for filters whose decisions are a pure
function of the totals row; the accountant detects filters that keep the
base-class ``admits_batch`` and routes their scans through per-ledger
scalar ``admits`` (with the real history) instead.

Tolerances: every admissibility comparison carries slack so that charging
eps_g/k exactly k times is never rejected on the final charge by float
accumulation drift in the running sums.  The basic filter compares through
:meth:`PrivacyBudget.fits_within` (absolute 1e-12, relative 1e-9 of the
global budget), and its ``max_epsilon`` delta-affordability check uses the
same slack so the two can never disagree; the strong filter uses an
absolute slack of 1e-12 on epsilon / 1e-15 on delta plus a relative 1e-12
of the global budget.
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np

from repro.dp.budget import (
    PrivacyBudget,
    ZERO_BUDGET,
    _ABS_TOL,
    _REL_TOL,
    sum_budgets,
)
from repro.dp.composition import (
    DELTA_DRIFT_ABS as _DELTA_DRIFT_ABS,
    DRIFT_REL as _DRIFT_REL,
    EPS_DRIFT_ABS as _EPS_DRIFT_ABS,
    rogers_filter_epsilon,
    rogers_filter_epsilon_from_sums as _rogers_from_sums,
    rogers_filter_epsilon_from_sums_batch as _rogers_from_sums_batch,
)
from repro.dp.rdp import (
    DEFAULT_ORDERS,
    PRUNED_ORDERS,
    pure_dp_rdp,
    rdp_epsilon_penalties,
)
from repro.errors import InvalidBudgetError

__all__ = [
    "TOTALS_BASE",
    "PrivacyFilter",
    "BasicCompositionFilter",
    "StrongCompositionFilter",
    "RenyiCompositionFilter",
]

# Number of totals columns shared by every filter (see module docstring).
TOTALS_BASE = 4


def _drift_thresholds(epsilon_global: float, delta_global: float):
    """Admission thresholds with the shared float-drift slack, computed once
    in scalar floats so scalar and batched paths compare against the same
    bit-identical boundaries."""
    eps_threshold = epsilon_global + _EPS_DRIFT_ABS + _DRIFT_REL * epsilon_global
    delta_threshold = delta_global + _DELTA_DRIFT_ABS + _DRIFT_REL * delta_global
    return eps_threshold, delta_threshold


def _as_totals_matrix(totals, width: int = TOTALS_BASE) -> np.ndarray:
    """Coerce ledger totals into the (n, width) float64 layout batch paths use."""
    arr = np.asarray(totals, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2 or arr.shape[1] != width:
        raise InvalidBudgetError(
            f"totals must be an (n, {width}) array of running sums, "
            f"got shape {arr.shape}"
        )
    return arr


class PrivacyFilter(abc.ABC):
    """Admissibility rule for charging DP queries against one block."""

    def __init__(self, epsilon_global: float, delta_global: float) -> None:
        if epsilon_global <= 0:
            raise InvalidBudgetError(f"epsilon_global must be > 0, got {epsilon_global}")
        if not 0.0 <= delta_global <= 1.0:
            raise InvalidBudgetError(f"delta_global must be in [0, 1], got {delta_global}")
        self.epsilon_global = epsilon_global
        self.delta_global = delta_global

    @property
    def global_budget(self) -> PrivacyBudget:
        return PrivacyBudget(self.epsilon_global, self.delta_global)

    @property
    def totals_width(self) -> int:
        """Length of this filter's ledger-store totals row.

        The first :data:`TOTALS_BASE` columns are the shared running sums;
        subclasses that keep extra per-block state (e.g. per-order RDP)
        extend the row and override this together with :meth:`contribution`.
        """
        return TOTALS_BASE

    @property
    def delta_reserved(self) -> float:
        """Share of ``delta_global`` consumed by the filter's own analysis
        (strong composition's slack, the RDP conversion delta); zero for
        filters whose admitted charges may spend the whole delta budget.
        Sessions ration their per-attempt delta out of what is left."""
        return 0.0

    def contribution(self, budget: PrivacyBudget) -> np.ndarray:
        """One charge's additive increment to a block's totals row.

        Every accumulation path -- per-ledger ``record``, ``charge_many``'s
        scratch validation, the staged-batch overlay -- applies exactly this
        vector, so scalar and batched accounting stay float-identical.
        """
        eps = budget.epsilon
        return np.array(
            [eps, budget.delta, eps * eps, math.expm1(eps) * eps / 2.0]
        )

    @abc.abstractmethod
    def admits(
        self,
        history: Sequence[PrivacyBudget],
        candidate: PrivacyBudget,
        totals: tuple = None,
    ) -> bool:
        """True iff ``history + [candidate]`` keeps the block within policy.

        ``totals``, when provided by the ledger, is the precomputed
        ``(sum eps, sum delta, sum eps^2, sum (e^eps - 1) eps / 2)`` of the
        history, making the check O(1).
        """

    def admits_batch(self, totals, candidate: PrivacyBudget) -> np.ndarray:
        """Vectorized :meth:`admits` over an (n, 4) array of totals rows.

        Subclasses override with a true NumPy pass.  This fallback loops the
        scalar rule with an *empty history*, so it is only valid for filters
        that decide from ``totals`` alone; the accountant detects filters
        that keep this base implementation and uses per-ledger scalar
        ``admits`` (with the real history) for them instead.
        """
        matrix = _as_totals_matrix(totals, self.totals_width)
        return np.fromiter(
            (self.admits((), candidate, totals=tuple(row)) for row in matrix),
            dtype=bool,
            count=matrix.shape[0],
        )

    @abc.abstractmethod
    def max_epsilon(self, history: Sequence[PrivacyBudget], delta: float) -> float:
        """Largest epsilon whose (epsilon, delta) charge would still be admitted."""

    def max_epsilon_batch(self, totals, delta: float) -> float:
        """Largest epsilon that *every* totals row still admits at ``delta``.

        This is the batched form the accountant's multi-block ``max_epsilon``
        needs (the min over blocks of per-block headroom).  The generic
        implementation bisects the scalar epsilon against the whole batch;
        admissibility is monotone decreasing in epsilon, so the joint search
        converges to the per-block minimum.
        """
        matrix = _as_totals_matrix(totals, self.totals_width)
        if matrix.shape[0] == 0:
            return 0.0
        if not bool(self.admits_batch(matrix, PrivacyBudget(0.0, delta)).all()):
            return 0.0
        lo, hi = 0.0, self.epsilon_global
        if bool(self.admits_batch(matrix, PrivacyBudget(hi, delta)).all()):
            return hi
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if bool(self.admits_batch(matrix, PrivacyBudget(mid, delta)).all()):
                lo = mid
            else:
                hi = mid
        return lo

    def loss_bound(
        self, history: Sequence[PrivacyBudget], totals: tuple = None
    ) -> PrivacyBudget:
        """A DP guarantee covering everything charged so far (diagnostics).

        ``totals``, when provided by the ledger, is the precomputed
        running-sums tuple, making the bound O(1) instead of O(|history|).
        Overrides must accept (and may ignore) the ``totals`` keyword.
        """
        if totals is not None:
            return PrivacyBudget(totals[0], min(1.0, totals[1]))
        return sum_budgets(history)


class BasicCompositionFilter(PrivacyFilter):
    """Admit while budgets sum within (eps_g, delta_g) -- paper Theorem 4.3."""

    def admits(
        self,
        history: Sequence[PrivacyBudget],
        candidate: PrivacyBudget,
        totals: tuple = None,
    ) -> bool:
        if totals is not None:
            eps_sum, delta_sum = totals[0], totals[1]
        else:
            spent = sum_budgets(history)
            eps_sum, delta_sum = spent.epsilon, spent.delta
        total = PrivacyBudget(
            eps_sum + candidate.epsilon, min(1.0, delta_sum + candidate.delta)
        )
        return total.fits_within(self.global_budget)

    def admits_batch(self, totals, candidate: PrivacyBudget) -> np.ndarray:
        matrix = _as_totals_matrix(totals)
        # Exactly fits_within's thresholds, computed once in scalar floats so
        # every row sees the same boundary the scalar path does.
        eps_thr = self.epsilon_global + _ABS_TOL + _REL_TOL * self.epsilon_global
        delta_thr = self.delta_global + _ABS_TOL + _REL_TOL * self.delta_global
        eps_ok = matrix[:, 0] + candidate.epsilon <= eps_thr
        delta_ok = np.minimum(1.0, matrix[:, 1] + candidate.delta) <= delta_thr
        return eps_ok & delta_ok

    def remaining(self, history: Sequence[PrivacyBudget]) -> PrivacyBudget:
        """Exact leftover budget under basic composition."""
        spent = sum_budgets(history)
        if not spent.fits_within(self.global_budget):
            return ZERO_BUDGET
        eps_left = max(0.0, self.epsilon_global - spent.epsilon)
        delta_left = max(0.0, self.delta_global - spent.delta)
        return PrivacyBudget(eps_left, delta_left)

    def _delta_affordable(self, delta: float, delta_left: float) -> bool:
        # Same slack as fits_within's delta comparison, so max_epsilon never
        # reports zero headroom for a delta that admits() would accept.
        return delta <= delta_left + _ABS_TOL + _REL_TOL * self.delta_global

    def max_epsilon(self, history: Sequence[PrivacyBudget], delta: float) -> float:
        left = self.remaining(history)
        if not self._delta_affordable(delta, left.delta):
            return 0.0
        return left.epsilon

    def max_epsilon_batch(self, totals, delta: float) -> float:
        matrix = _as_totals_matrix(totals)
        if matrix.shape[0] == 0:
            return 0.0
        spent_ok = self.admits_batch(matrix, ZERO_BUDGET)
        if not bool(spent_ok.all()):
            return 0.0
        delta_left = float(np.min(np.maximum(0.0, self.delta_global - matrix[:, 1])))
        if not self._delta_affordable(delta, delta_left):
            return 0.0
        return float(np.min(np.maximum(0.0, self.epsilon_global - matrix[:, 0])))


class StrongCompositionFilter(PrivacyFilter):
    """Rogers et al. adaptive strong-composition filter -- paper Theorem A.2.

    ``delta_slack`` is the share of delta_global consumed by the filter's own
    high-probability argument (delta_global/2 by default, leaving the other
    half for the queries' own deltas).

    The filter admits a charge when EITHER analysis keeps the block within
    (eps_g, delta_g): basic composition's running sum, or Theorem A.2's
    bound.  Both bounds hold simultaneously on the same loss (a union bound
    pays the slack), so taking the better one is sound -- and necessary,
    because the Rogers constant (28.04) makes lone moderate queries
    inadmissible under the strong bound alone even when they trivially fit
    the budget.
    """

    def __init__(
        self,
        epsilon_global: float,
        delta_global: float,
        delta_slack: float = None,
    ) -> None:
        super().__init__(epsilon_global, delta_global)
        if delta_slack is None:
            delta_slack = delta_global / 2.0
        if not 0.0 < delta_slack < 1.0:
            raise InvalidBudgetError(
                f"delta_slack must be in (0, 1), got {delta_slack} "
                "(strong composition requires delta_global > 0)"
            )
        if delta_slack > delta_global:
            raise InvalidBudgetError("delta_slack cannot exceed delta_global")
        self.delta_slack = delta_slack
        # Admission thresholds, precomputed once so the scalar and batched
        # paths compare against bit-identical boundaries.
        self._eps_threshold, self._delta_threshold = _drift_thresholds(
            self.epsilon_global, self.delta_global
        )

    @property
    def delta_reserved(self) -> float:
        return self.delta_slack

    def admits(
        self,
        history: Sequence[PrivacyBudget],
        candidate: PrivacyBudget,
        totals: tuple = None,
    ) -> bool:
        if totals is not None:
            eps_sum, delta_sum, sq_sum, linear_sum = totals
        else:
            eps_sum = sum(b.epsilon for b in history)
            delta_sum = sum(b.delta for b in history)
            sq_sum = sum(b.epsilon ** 2 for b in history)
            linear_sum = sum(math.expm1(b.epsilon) * b.epsilon / 2.0 for b in history)
        ce = candidate.epsilon
        strong_value = _rogers_from_sums(
            sq_sum + ce * ce,
            linear_sum + math.expm1(ce) * ce / 2.0,
            self.epsilon_global,
            self.delta_slack,
        )
        basic_value = eps_sum + ce
        eps_ok = min(strong_value, basic_value) <= self._eps_threshold
        delta_ok = self.delta_slack + delta_sum + candidate.delta <= self._delta_threshold
        return eps_ok and delta_ok

    def admits_batch(self, totals, candidate: PrivacyBudget) -> np.ndarray:
        matrix = _as_totals_matrix(totals)
        ce = candidate.epsilon
        strong_value = _rogers_from_sums_batch(
            matrix[:, 2] + ce * ce,
            matrix[:, 3] + math.expm1(ce) * ce / 2.0,
            self.epsilon_global,
            self.delta_slack,
        )
        basic_value = matrix[:, 0] + ce
        eps_ok = np.minimum(strong_value, basic_value) <= self._eps_threshold
        delta_ok = self.delta_slack + matrix[:, 1] + candidate.delta <= self._delta_threshold
        return eps_ok & delta_ok

    def max_epsilon(self, history: Sequence[PrivacyBudget], delta: float) -> float:
        if not self.admits(history, PrivacyBudget(0.0, delta)):
            return 0.0
        lo, hi = 0.0, self.epsilon_global
        if self.admits(history, PrivacyBudget(hi, delta)):
            return hi
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if self.admits(history, PrivacyBudget(mid, delta)):
                lo = mid
            else:
                hi = mid
        return lo

    def loss_bound(
        self, history: Sequence[PrivacyBudget], totals: tuple = None
    ) -> PrivacyBudget:
        if not history:
            return ZERO_BUDGET
        if totals is not None:
            eps_sum, delta_sum, sq_sum, linear_sum = totals
            strong = _rogers_from_sums(
                sq_sum, linear_sum, self.epsilon_global, self.delta_slack
            )
            return PrivacyBudget(
                min(strong, eps_sum), min(1.0, self.delta_slack + delta_sum)
            )
        strong = rogers_filter_epsilon(
            [b.epsilon for b in history], self.epsilon_global, self.delta_slack
        )
        basic = sum(b.epsilon for b in history)
        delta = min(1.0, self.delta_slack + sum(b.delta for b in history))
        return PrivacyBudget(min(strong, basic), delta)


class RenyiCompositionFilter(PrivacyFilter):
    """Per-order Renyi-DP block filter (the moments-accountant analysis).

    Extends the totals row with one running-RDP column per order: each
    charge contributes its RDP curve -- exact
    ``compute_rdp(q, sigma, steps)`` for charges carrying an
    ``rdp_vector`` hook (:class:`~repro.dp.rdp.GaussianMechanismBudget`),
    the Bun-Steinke pure-DP reduction ``min(eps, alpha eps^2 / 2)``
    otherwise -- and RDP composes *additively* per order, so intra-batch
    accumulation, staging overlays, and rollback are the same row
    arithmetic as the base columns.  A charge is admitted when the
    accumulated curve, converted back to epsilon at the reserved
    ``delta_conversion`` (Canonne-Kamath-Steinke, built from the same
    per-order penalty vector as :func:`~repro.dp.rdp.rdp_to_epsilon`),
    stays within ``epsilon_global``
    -- or when plain basic composition does (both bounds hold on the same
    loss simultaneously, so taking the better one is sound, exactly as the
    strong filter unions in the basic bound).

    The per-charge delta of an ``(epsilon, delta)`` budget rides additively
    outside the RDP curve (the moments accountant's standard treatment of
    non-Gaussian mechanisms): admission requires
    ``delta_conversion + sum delta_i + candidate.delta <= delta_global``,
    the same split discipline as the strong filter's slack.  For
    Gaussian-mechanism charges this double-counts their conversion delta
    (their curve already captures the whole mechanism), which is
    conservative, never unsound.

    Adaptivity: continuing while the accumulated RDP stays within a fixed
    per-order budget is a valid Renyi filter (Feldman & Zrnic 2021), and
    the conversion threshold here fixes that per-order budget up front
    (``epsilon_global - penalty(alpha)``), so admission under adaptively
    chosen charges is sound order by order; the final guarantee takes the
    best order, as the moments accountant always has.
    """

    #: Named order grids accepted by the ``orders`` parameter: "default"
    #: is :data:`~repro.dp.rdp.DEFAULT_ORDERS` (69 orders, the dense grid);
    #: "pruned" is :data:`~repro.dp.rdp.PRUNED_ORDERS` (17 orders, ~4x
    #: narrower store rows at a few percent of conversion tightness --
    #: bounded by tests in ``tests/core/test_renyi.py``).
    ORDER_PRESETS = {"default": DEFAULT_ORDERS, "pruned": PRUNED_ORDERS}

    def __init__(
        self,
        epsilon_global: float,
        delta_global: float,
        orders=None,
        delta_conversion: float = None,
    ) -> None:
        super().__init__(epsilon_global, delta_global)
        if orders is None:
            orders = DEFAULT_ORDERS
        elif isinstance(orders, str):
            if orders not in self.ORDER_PRESETS:
                raise InvalidBudgetError(
                    f"unknown orders preset {orders!r}; "
                    f"pick one of {sorted(self.ORDER_PRESETS)}"
                )
            orders = self.ORDER_PRESETS[orders]
        orders = tuple(orders)
        if not orders:
            raise InvalidBudgetError("need at least one Renyi order")
        # The filter's charges go through the binomial-expansion RDP paths
        # (compute_rdp for Gaussian budgets), which require integer orders;
        # reject fractional ones up front rather than truncating silently.
        for order in orders:
            if order < 2 or int(order) != order:
                raise InvalidBudgetError(
                    f"Renyi filter orders must be integers >= 2, got {order}"
                )
        self.orders = tuple(int(order) for order in orders)
        if delta_conversion is None:
            delta_conversion = delta_global / 2.0
        if not 0.0 < delta_conversion < 1.0:
            raise InvalidBudgetError(
                f"delta_conversion must be in (0, 1), got {delta_conversion} "
                "(Renyi accounting requires delta_global > 0)"
            )
        if delta_conversion > delta_global:
            raise InvalidBudgetError("delta_conversion cannot exceed delta_global")
        self.delta_conversion = delta_conversion
        # Per-order conversion penalty: eps(alpha) = rdp(alpha) + penalty.
        # Built by the same helper rdp_to_epsilon uses, so this filter's
        # admit boundary and the accountant's conversions agree bit-for-bit.
        self._penalty = rdp_epsilon_penalties(self.orders, delta_conversion)
        self._alpha = np.asarray(self.orders, dtype=np.float64)
        self._eps_threshold, self._delta_threshold = _drift_thresholds(
            self.epsilon_global, self.delta_global
        )

    @property
    def totals_width(self) -> int:
        return TOTALS_BASE + len(self.orders)

    @property
    def delta_reserved(self) -> float:
        return self.delta_conversion

    def charge_rdp(self, budget: PrivacyBudget) -> np.ndarray:
        """One charge's RDP vector over this filter's orders.

        Budgets exposing an ``rdp_vector(orders)`` hook (Gaussian-mechanism
        charges) contribute their exact curve; anything else gets the
        generic pure-DP reduction of its epsilon.
        """
        rdp_vector = getattr(budget, "rdp_vector", None)
        if rdp_vector is not None:
            return np.asarray(rdp_vector(self.orders), dtype=np.float64)
        return pure_dp_rdp(budget.epsilon, self.orders)

    def contribution(self, budget: PrivacyBudget) -> np.ndarray:
        return np.concatenate(
            [super().contribution(budget), self.charge_rdp(budget)]
        )

    def _totals_of(self, history: Sequence[PrivacyBudget]) -> np.ndarray:
        """Replay a history into one totals row (the ledger's accumulation
        order, so standalone and ledger-backed decisions agree)."""
        totals = np.zeros(self.totals_width)
        for budget in history:
            totals += self.contribution(budget)
        return totals

    def _eps_after(self, matrix: np.ndarray, candidate: PrivacyBudget) -> np.ndarray:
        """Per-row epsilon bound after the candidate lands: the better of
        the converted RDP curve and basic composition.

        The candidate's curve and the conversion penalty are summed first
        (one small vector) so the scan allocates a single (n, orders)
        temporary; scalar and batched decisions share this exact op order.
        """
        shifted = self.charge_rdp(candidate) + self._penalty
        eps_rdp = np.maximum(
            0.0, np.min(matrix[:, TOTALS_BASE:] + shifted, axis=1)
        )
        basic = matrix[:, 0] + candidate.epsilon
        return np.minimum(eps_rdp, basic)

    def admits(
        self,
        history: Sequence[PrivacyBudget],
        candidate: PrivacyBudget,
        totals: tuple = None,
    ) -> bool:
        if totals is None:
            totals = self._totals_of(history)
        matrix = _as_totals_matrix(totals, self.totals_width)
        return bool(self.admits_batch(matrix, candidate)[0])

    def admits_batch(self, totals, candidate: PrivacyBudget) -> np.ndarray:
        matrix = _as_totals_matrix(totals, self.totals_width)
        eps_ok = self._eps_after(matrix, candidate) <= self._eps_threshold
        delta_ok = (
            self.delta_conversion + matrix[:, 1] + candidate.delta
            <= self._delta_threshold
        )
        return eps_ok & delta_ok

    def max_epsilon(self, history: Sequence[PrivacyBudget], delta: float) -> float:
        return self.max_epsilon_batch(
            self._totals_of(history).reshape(1, -1), delta
        )

    def max_epsilon_batch(self, totals, delta: float) -> float:
        """Largest epsilon every row still admits at ``delta``, closed form.

        Inverts the pure-DP candidate curve ``min(eps, alpha eps^2 / 2)``
        against each order's headroom ``h = eps_g - penalty - rdp``: the
        admissible set at one order is ``[0, h]`` when ``h >= 2/alpha``
        (the linear branch binds at the boundary) and
        ``[0, sqrt(2 h / alpha)]`` otherwise, the per-row answer is the
        best order (admission needs only one order within budget) or the
        basic-composition headroom if larger, and the joint answer is the
        worst row.  Inverting against ``epsilon_global`` rather than the
        drift-slacked threshold leaves the slack as margin, so a charge at
        exactly the returned epsilon is always admitted.
        """
        matrix = _as_totals_matrix(totals, self.totals_width)
        if matrix.shape[0] == 0:
            return 0.0
        if not bool(self.admits_batch(matrix, PrivacyBudget(0.0, delta)).all()):
            return 0.0
        headroom = self.epsilon_global - self._penalty - matrix[:, TOTALS_BASE:]
        linear = np.maximum(headroom, 0.0)
        quadratic = np.sqrt(2.0 * linear / self._alpha)
        eps_rdp = np.where(headroom >= 2.0 / self._alpha, linear, quadratic)
        best = np.maximum(
            eps_rdp.max(axis=1), self.epsilon_global - matrix[:, 0]
        )
        return float(min(max(float(best.min()), 0.0), self.epsilon_global))

    def loss_bound(
        self, history: Sequence[PrivacyBudget], totals: tuple = None
    ) -> PrivacyBudget:
        # An uncharged block's bound is zero, not the conversion slack --
        # keyed on the history (as the strong filter does), never on the
        # totals, so zero-epsilon charges still report their delta spend.
        if not history:
            return ZERO_BUDGET
        if totals is None:
            totals = self._totals_of(history)
        arr = np.asarray(totals, dtype=np.float64)
        eps_rdp = max(0.0, float(np.min(arr[TOTALS_BASE:] + self._penalty)))
        eps = min(float(arr[0]), eps_rdp)
        delta = min(1.0, self.delta_conversion + float(arr[1]))
        return PrivacyBudget(eps, delta)

    def loss_bound_batch(self, totals):
        """Per-row ``(epsilon, delta)`` bound arrays -- the accountant's
        vectorized ``stream_loss_bound`` pass (rows with no charges are the
        caller's to exclude, as with the other filters)."""
        matrix = _as_totals_matrix(totals, self.totals_width)
        eps_rdp = np.maximum(
            0.0, np.min(matrix[:, TOTALS_BASE:] + self._penalty, axis=1)
        )
        eps = np.minimum(matrix[:, 0], eps_rdp)
        delta = np.minimum(1.0, self.delta_conversion + matrix[:, 1])
        return eps, delta
