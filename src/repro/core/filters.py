"""Per-block privacy filters.

A *filter* decides whether one more DP query may be charged to a block given
everything already charged to it, while guaranteeing the block's cumulative
privacy loss stays within the global (eps_g, delta_g) policy.  Two variants,
matching the paper's two composition analyses:

* :class:`BasicCompositionFilter` -- Theorem 4.3: admit while
  ``sum eps_i <= eps_g`` and ``sum delta_i <= delta_g``.  Budgets add up, so
  the notion of "remaining budget" is exact.
* :class:`StrongCompositionFilter` -- Theorem A.2 (Rogers et al.'s adaptive
  filter): admits *more* small queries than basic composition by paying a
  ``delta_slack`` once.  There is no exact remaining budget; the filter
  answers admissibility queries and can binary-search the largest admissible
  next epsilon.

Filters are pure decision logic over a charge history; the ledger/accountant
layer owns the history itself.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.dp.budget import PrivacyBudget, ZERO_BUDGET, sum_budgets
from repro.dp.composition import (
    rogers_filter_epsilon,
    rogers_filter_epsilon_from_sums as _rogers_from_sums,
)
from repro.errors import InvalidBudgetError

__all__ = ["PrivacyFilter", "BasicCompositionFilter", "StrongCompositionFilter"]


class PrivacyFilter(abc.ABC):
    """Admissibility rule for charging DP queries against one block."""

    def __init__(self, epsilon_global: float, delta_global: float) -> None:
        if epsilon_global <= 0:
            raise InvalidBudgetError(f"epsilon_global must be > 0, got {epsilon_global}")
        if not 0.0 <= delta_global <= 1.0:
            raise InvalidBudgetError(f"delta_global must be in [0, 1], got {delta_global}")
        self.epsilon_global = epsilon_global
        self.delta_global = delta_global

    @property
    def global_budget(self) -> PrivacyBudget:
        return PrivacyBudget(self.epsilon_global, self.delta_global)

    @abc.abstractmethod
    def admits(
        self,
        history: Sequence[PrivacyBudget],
        candidate: PrivacyBudget,
        totals: tuple = None,
    ) -> bool:
        """True iff ``history + [candidate]`` keeps the block within policy.

        ``totals``, when provided by the ledger, is the precomputed
        ``(sum eps, sum delta, sum eps^2, sum (e^eps - 1) eps / 2)`` of the
        history, making the check O(1).
        """

    @abc.abstractmethod
    def max_epsilon(self, history: Sequence[PrivacyBudget], delta: float) -> float:
        """Largest epsilon whose (epsilon, delta) charge would still be admitted."""

    def loss_bound(self, history: Sequence[PrivacyBudget]) -> PrivacyBudget:
        """A DP guarantee covering everything charged so far (diagnostics)."""
        return sum_budgets(history)


class BasicCompositionFilter(PrivacyFilter):
    """Admit while budgets sum within (eps_g, delta_g) -- paper Theorem 4.3."""

    def admits(
        self,
        history: Sequence[PrivacyBudget],
        candidate: PrivacyBudget,
        totals: tuple = None,
    ) -> bool:
        if totals is not None:
            eps_sum, delta_sum = totals[0], totals[1]
        else:
            spent = sum_budgets(history)
            eps_sum, delta_sum = spent.epsilon, spent.delta
        total = PrivacyBudget(
            eps_sum + candidate.epsilon, min(1.0, delta_sum + candidate.delta)
        )
        return total.fits_within(self.global_budget)

    def remaining(self, history: Sequence[PrivacyBudget]) -> PrivacyBudget:
        """Exact leftover budget under basic composition."""
        spent = sum_budgets(history)
        if not spent.fits_within(self.global_budget):
            return ZERO_BUDGET
        eps_left = max(0.0, self.epsilon_global - spent.epsilon)
        delta_left = max(0.0, self.delta_global - spent.delta)
        return PrivacyBudget(eps_left, delta_left)

    def max_epsilon(self, history: Sequence[PrivacyBudget], delta: float) -> float:
        left = self.remaining(history)
        if delta > left.delta + 1e-15:
            return 0.0
        return left.epsilon


class StrongCompositionFilter(PrivacyFilter):
    """Rogers et al. adaptive strong-composition filter -- paper Theorem A.2.

    ``delta_slack`` is the share of delta_global consumed by the filter's own
    high-probability argument (delta_global/2 by default, leaving the other
    half for the queries' own deltas).

    The filter admits a charge when EITHER analysis keeps the block within
    (eps_g, delta_g): basic composition's running sum, or Theorem A.2's
    bound.  Both bounds hold simultaneously on the same loss (a union bound
    pays the slack), so taking the better one is sound -- and necessary,
    because the Rogers constant (28.04) makes lone moderate queries
    inadmissible under the strong bound alone even when they trivially fit
    the budget.
    """

    def __init__(
        self,
        epsilon_global: float,
        delta_global: float,
        delta_slack: float = None,
    ) -> None:
        super().__init__(epsilon_global, delta_global)
        if delta_slack is None:
            delta_slack = delta_global / 2.0
        if not 0.0 < delta_slack < 1.0:
            raise InvalidBudgetError(
                f"delta_slack must be in (0, 1), got {delta_slack} "
                "(strong composition requires delta_global > 0)"
            )
        if delta_slack > delta_global:
            raise InvalidBudgetError("delta_slack cannot exceed delta_global")
        self.delta_slack = delta_slack

    def admits(
        self,
        history: Sequence[PrivacyBudget],
        candidate: PrivacyBudget,
        totals: tuple = None,
    ) -> bool:
        import math

        if totals is not None:
            eps_sum, delta_sum, sq_sum, linear_sum = totals
        else:
            eps_sum = sum(b.epsilon for b in history)
            delta_sum = sum(b.delta for b in history)
            sq_sum = sum(b.epsilon ** 2 for b in history)
            linear_sum = sum(math.expm1(b.epsilon) * b.epsilon / 2.0 for b in history)
        ce = candidate.epsilon
        strong_value = _rogers_from_sums(
            sq_sum + ce * ce,
            linear_sum + math.expm1(ce) * ce / 2.0,
            self.epsilon_global,
            self.delta_slack,
        )
        basic_value = eps_sum + ce
        eps_ok = min(strong_value, basic_value) <= self.epsilon_global + 1e-12
        delta_ok = (
            self.delta_slack + delta_sum + candidate.delta <= self.delta_global + 1e-15
        )
        return eps_ok and delta_ok

    def max_epsilon(self, history: Sequence[PrivacyBudget], delta: float) -> float:
        if not self.admits(history, PrivacyBudget(0.0, delta)):
            return 0.0
        lo, hi = 0.0, self.epsilon_global
        if self.admits(history, PrivacyBudget(hi, delta)):
            return hi
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if self.admits(history, PrivacyBudget(mid, delta)):
                lo = mid
            else:
                hi = mid
        return lo

    def loss_bound(self, history: Sequence[PrivacyBudget]) -> PrivacyBudget:
        if not history:
            return ZERO_BUDGET
        strong = rogers_filter_epsilon(
            [b.epsilon for b in history], self.epsilon_global, self.delta_slack
        )
        basic = sum(b.epsilon for b in history)
        delta = min(1.0, self.delta_slack + sum(b.delta for b in history))
        return PrivacyBudget(min(strong, basic), delta)
