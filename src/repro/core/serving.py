"""Serving infrastructure (the right-hand side of Fig. 1).

Once a bundle leaves the Model & Feature Store it lives in the untrusted
domain: prediction servers and end-user devices.  This module models that
side of the platform so examples and integration tests can exercise the
full release path:

* :class:`PredictionServer` -- serves a released bundle's predictions and
  keeps request counters (everything it sees is already DP-protected by the
  training-time guarantee; serving adds no privacy cost).
* :class:`ContinuousEvaluator` -- the "continuously evaluates ... on new
  data" box of §2.1: scores the live model on fresh labeled traffic and
  flags *quality regressions* against the validation-time target.  A flag
  is a signal to resubmit the pipeline (fresh blocks have fresh budget);
  the evaluator itself only consumes data through the platform's DP
  release, so it reports DP statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.model_store import ReleasedBundle
from repro.dp.mechanisms import laplace_noise, make_rng
from repro.errors import PipelineError
from repro.ml.metrics import squared_errors

__all__ = ["PredictionServer", "ContinuousEvaluator", "EvaluationTick"]


class PredictionServer:
    """A (simulated) world-facing inference endpoint for one bundle."""

    def __init__(self, bundle: ReleasedBundle, region: str = "global") -> None:
        if bundle.model is None:
            raise PipelineError("bundle carries no model")
        self.bundle = bundle
        self.region = region
        self.requests_served = 0

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        self.requests_served += int(X.shape[0])
        return self.bundle.model.predict(X)

    def rollout(self, new_bundle: ReleasedBundle) -> "PredictionServer":
        """Swap in a newer version (returns self for chaining)."""
        if new_bundle.name != self.bundle.name:
            raise PipelineError(
                f"cannot roll {new_bundle.name!r} onto a {self.bundle.name!r} server"
            )
        if new_bundle.version < self.bundle.version:
            raise PipelineError("cannot roll back to an older version")
        self.bundle = new_bundle
        return self


@dataclass
class EvaluationTick:
    """One continuous-evaluation measurement."""

    clock_hours: float
    dp_metric: float
    samples: int
    regressed: bool


class ContinuousEvaluator:
    """Periodically score a served model on fresh labeled traffic.

    Each tick computes a DP estimate of the model's loss on the fresh batch
    (Laplace on the clipped loss sum and the count, epsilon_per_tick split
    between them) and compares it against ``target * tolerance``.  Ticks
    consume budget from the platform like any other query, so callers pass
    the epsilon they were granted.

    Only regression *detection* lives here; what to do about it (resubmit
    the pipeline on fresh blocks) is the platform operator's loop.
    """

    def __init__(
        self,
        server: PredictionServer,
        target: float,
        loss_bound: float = 1.0,
        tolerance: float = 1.5,
    ) -> None:
        if target <= 0:
            raise PipelineError(f"target must be > 0, got {target}")
        if loss_bound <= 0:
            raise PipelineError(f"loss_bound must be > 0, got {loss_bound}")
        if tolerance < 1.0:
            raise PipelineError(f"tolerance must be >= 1, got {tolerance}")
        self.server = server
        self.target = target
        self.loss_bound = loss_bound
        self.tolerance = tolerance
        self.history: List[EvaluationTick] = []

    def tick(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epsilon: float,
        clock_hours: float,
        rng: Optional[np.random.Generator] = None,
    ) -> EvaluationTick:
        """Score one fresh labeled batch; (epsilon, 0)-DP w.r.t. that batch."""
        if epsilon <= 0:
            raise PipelineError(f"epsilon must be > 0, got {epsilon}")
        rng = make_rng(rng)
        predictions = self.server.predict(X)
        losses = np.clip(squared_errors(y, predictions), 0.0, self.loss_bound)
        n = losses.size
        noisy_sum = float(losses.sum()) + laplace_noise(
            rng, 2.0 * self.loss_bound / epsilon
        )
        noisy_n = max(1.0, n + laplace_noise(rng, 2.0 / epsilon))
        dp_metric = max(0.0, noisy_sum / noisy_n)
        tick = EvaluationTick(
            clock_hours=clock_hours,
            dp_metric=dp_metric,
            samples=n,
            regressed=dp_metric > self.target * self.tolerance,
        )
        self.history.append(tick)
        return tick

    @property
    def regression_flagged(self) -> bool:
        """True if the two most recent ticks both regressed (debounced)."""
        if len(self.history) < 2:
            return False
        return self.history[-1].regressed and self.history[-2].regressed
