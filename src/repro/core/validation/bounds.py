"""Statistical concentration bounds used by the SLAed validators.

All bounds are one-sided with failure probability ``eta`` and are written
for losses bounded in [0, B]:

* :func:`bernstein_upper_bound` -- Listing 2's ``bernstein_upper_bound``:
  an upper bound on the population mean from an empirical mean, tight when
  the loss itself is small (Bernstein's inequality, cf. Shalev-Shwartz &
  Ben-David Appendix B).
* :func:`empirical_bernstein_upper_bound` -- Maurer & Pontil (2009): uses
  the empirical variance; tight when the variance is small.  The drop-in
  replacement §3.3 mentions.
* :func:`hoeffding_deviation` -- the distribution-free fallback used by the
  REJECT test and the statistics validator.
* :func:`binomial_upper_bound` / :func:`binomial_lower_bound` --
  Clopper-Pearson interval endpoints for accuracy validation (§B.2),
  generalized to non-integer "successes" (DP-noised counts).
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from repro.errors import ValidationError

__all__ = [
    "bernstein_upper_bound",
    "empirical_bernstein_upper_bound",
    "hoeffding_deviation",
    "binomial_upper_bound",
    "binomial_lower_bound",
]


def _check(eta: float, n: float, B: float) -> None:
    if not 0.0 < eta < 1.0:
        raise ValidationError(f"eta must be in (0, 1), got {eta}")
    if n <= 0:
        raise ValidationError(f"sample size must be > 0, got {n}")
    if B <= 0:
        raise ValidationError(f"loss range B must be > 0, got {B}")


def bernstein_upper_bound(mean_loss: float, n: float, eta: float, B: float) -> float:
    """Upper bound on the population mean loss, failure probability eta.

    ``mean_loss + sqrt(2 B mean_loss ln(1/eta) / n) + 4 B ln(1/eta) / n``.
    Matches Listing 2 lines 23-25 (whose published form has B = 1; the B
    factor on the last term generalizes the same inequality to [0, B]).
    """
    _check(eta, n, B)
    mean_loss = max(0.0, mean_loss)
    log_term = math.log(1.0 / eta)
    return (
        mean_loss
        + math.sqrt(2.0 * B * mean_loss * log_term / n)
        + 4.0 * B * log_term / n
    )


def empirical_bernstein_upper_bound(
    mean_loss: float, variance: float, n: float, eta: float, B: float
) -> float:
    """Maurer-Pontil empirical Bernstein bound (variance-adaptive).

    ``mean + sqrt(2 var ln(2/eta) / n) + 7 B ln(2/eta) / (3 (n - 1))``.
    """
    _check(eta, n, B)
    if n <= 1:
        raise ValidationError("empirical Bernstein needs n > 1")
    if variance < 0:
        raise ValidationError(f"variance must be >= 0, got {variance}")
    log_term = math.log(2.0 / eta)
    return (
        max(0.0, mean_loss)
        + math.sqrt(2.0 * variance * log_term / n)
        + 7.0 * B * log_term / (3.0 * (n - 1.0))
    )


def hoeffding_deviation(n: float, eta: float, B: float) -> float:
    """One-sided Hoeffding deviation for a mean of [0, B] variables.

    The paper's Appendix B uses the conservative form ``B sqrt(ln(1/eta)/n)``
    (REJECT test, §B.1); we keep it for faithfulness.  (The textbook constant
    would be ``B sqrt(ln(1/eta)/(2n))``.)
    """
    _check(eta, n, B)
    return B * math.sqrt(math.log(1.0 / eta) / n)


def binomial_upper_bound(successes: float, trials: float, eta: float) -> float:
    """Clopper-Pearson upper bound on a binomial probability parameter.

    Generalized to real-valued ``successes``/``trials`` (DP noise makes the
    counts non-integer); values are clamped into the feasible region first.
    """
    if not 0.0 < eta < 1.0:
        raise ValidationError(f"eta must be in (0, 1), got {eta}")
    if trials <= 0:
        return 1.0
    k = float(np.clip(successes, 0.0, trials))
    if k >= trials:
        return 1.0
    return float(stats.beta.ppf(1.0 - eta, k + 1.0, trials - k))


def binomial_lower_bound(successes: float, trials: float, eta: float) -> float:
    """Clopper-Pearson lower bound on a binomial probability parameter."""
    if not 0.0 < eta < 1.0:
        raise ValidationError(f"eta must be in (0, 1), got {eta}")
    if trials <= 0:
        return 0.0
    k = float(np.clip(successes, 0.0, trials))
    if k <= 0.0:
        return 0.0
    return float(stats.beta.ppf(eta, k, trials - k + 1.0))
