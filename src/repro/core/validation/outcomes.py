"""Validation outcomes: ACCEPT / REJECT / RETRY (§3.3, Fig. 2)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.dp.budget import PrivacyBudget

__all__ = ["Outcome", "ValidationResult"]


class Outcome(enum.Enum):
    """The three possible answers of an SLAed validator.

    * ACCEPT -- with probability >= (1 - eta) the model meets its quality
      target on the underlying distribution (Prop. 3.1).
    * REJECT -- with probability >= (1 - eta) *no* model in the class can
      meet the target (Prop. B.2); retraining with more data cannot help.
    * RETRY -- not enough evidence either way; privacy-adaptive training
      should escalate data and/or budget.
    """

    ACCEPT = "accept"
    REJECT = "reject"
    RETRY = "retry"


@dataclass
class ValidationResult:
    """Outcome plus the DP diagnostics the decision was based on."""

    outcome: Outcome
    budget_spent: PrivacyBudget
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def accepted(self) -> bool:
        return self.outcome is Outcome.ACCEPT

    @property
    def rejected(self) -> bool:
        return self.outcome is Outcome.REJECT
