"""SLAed validation: statistically rigorous, DP model acceptance (§3.3)."""

from repro.core.validation.accuracy import DPAccuracyValidator
from repro.core.validation.bounds import (
    bernstein_upper_bound,
    binomial_lower_bound,
    binomial_upper_bound,
    empirical_bernstein_upper_bound,
    hoeffding_deviation,
)
from repro.core.validation.loss import DPLossValidator
from repro.core.validation.outcomes import Outcome, ValidationResult
from repro.core.validation.statistics import DPStatisticValidator

__all__ = [
    "Outcome",
    "ValidationResult",
    "DPLossValidator",
    "DPAccuracyValidator",
    "DPStatisticValidator",
    "bernstein_upper_bound",
    "empirical_bernstein_upper_bound",
    "hoeffding_deviation",
    "binomial_upper_bound",
    "binomial_lower_bound",
]
