"""SLAed validator for accuracy (Appendix B.2).

Classification predictions are Bernoulli trials, so the validator uses
Clopper-Pearson binomial bounds, which are tighter than Bernstein for this
case (the reason Table 2's accuracy rows beat its loss rows).  Structure
mirrors the loss validator: DP correct-count and DP test-size via Laplace,
worst-case noise corrections, then the binomial bound against the target.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.validation.bounds import binomial_lower_bound, binomial_upper_bound
from repro.core.validation.outcomes import Outcome, ValidationResult
from repro.dp.budget import PrivacyBudget
from repro.dp.mechanisms import laplace_noise, make_rng
from repro.errors import ValidationError

__all__ = ["DPAccuracyValidator"]


class DPAccuracyValidator:
    """ACCEPT/REJECT/RETRY for an accuracy target tau_acc in (0, 1)."""

    def __init__(self, target: float, confidence: float = 0.95) -> None:
        if not 0.0 < target < 1.0:
            raise ValidationError(f"target must be in (0, 1), got {target}")
        if not 0.0 < confidence < 1.0:
            raise ValidationError(f"confidence must be in (0, 1), got {confidence}")
        self.target = target
        self.confidence = confidence

    # ------------------------------------------------------------------
    def accept_test(
        self,
        correct: np.ndarray,
        epsilon: float,
        eta: float,
        rng: np.random.Generator,
        correct_for_dp: bool = True,
    ) -> ValidationResult:
        """ACCEPT iff a DP lower confidence bound on accuracy clears the target.

        ``correct`` is the per-example 0/1 correctness vector on the test set.
        (epsilon, 0)-DP: Laplace(2/epsilon) on both the correct count and the
        test-set size.
        """
        if epsilon <= 0:
            raise ValidationError(f"epsilon must be > 0, got {epsilon}")
        correct = np.asarray(correct, dtype=float).reshape(-1)
        n = correct.size
        if n == 0:
            raise ValidationError("empty test set")
        rng = make_rng(rng)
        shift = 2.0 * math.log(3.0 / eta) / epsilon if correct_for_dp else 0.0

        k_dp = float(np.sum(correct)) + laplace_noise(rng, 2.0 / epsilon)
        n_dp = n + laplace_noise(rng, 2.0 / epsilon)
        # Worst-case corrections push the bound down: fewer successes, more trials.
        k_low = k_dp - shift
        n_high = n_dp + shift

        details = {"k_dp": k_dp, "n_dp": n_dp, "epsilon": epsilon}
        spent = PrivacyBudget(epsilon, 0.0)
        if n_high <= 1.0:
            return ValidationResult(Outcome.RETRY, spent, details)
        lower = binomial_lower_bound(k_low, n_high, eta / 3.0)
        details["accuracy_lower_bound"] = lower
        outcome = Outcome.ACCEPT if lower >= self.target else Outcome.RETRY
        return ValidationResult(outcome, spent, details)

    # ------------------------------------------------------------------
    def reject_test(
        self,
        best_correct_train: np.ndarray,
        epsilon: float,
        eta: float,
        rng: np.random.Generator,
    ) -> ValidationResult:
        """REJECT iff even the best-in-class model's accuracy upper bound
        misses the target (requires the empirical maximizer, §B.2)."""
        if epsilon <= 0:
            raise ValidationError(f"epsilon must be > 0, got {epsilon}")
        correct = np.asarray(best_correct_train, dtype=float).reshape(-1)
        n = correct.size
        if n == 0:
            raise ValidationError("empty training set")
        rng = make_rng(rng)
        shift = 2.0 * math.log(3.0 / eta) / epsilon

        k_dp = float(np.sum(correct)) + laplace_noise(rng, 2.0 / epsilon)
        n_dp = n + laplace_noise(rng, 2.0 / epsilon)
        k_high = k_dp + shift
        n_low = n_dp - shift

        details = {"k_dp": k_dp, "n_dp": n_dp, "epsilon": epsilon}
        spent = PrivacyBudget(epsilon, 0.0)
        if n_low <= 1.0:
            return ValidationResult(Outcome.RETRY, spent, details)
        upper = binomial_upper_bound(k_high, n_low, eta / 3.0)
        details["accuracy_upper_bound"] = upper
        outcome = Outcome.REJECT if upper < self.target else Outcome.RETRY
        return ValidationResult(outcome, spent, details)

    # ------------------------------------------------------------------
    def validate(
        self,
        correct: np.ndarray,
        epsilon: float,
        rng: np.random.Generator,
        best_correct_train: Optional[np.ndarray] = None,
        correct_for_dp: bool = True,
    ) -> ValidationResult:
        """Try ACCEPT, then REJECT when the empirical maximizer is available."""
        eta = 1.0 - self.confidence
        result = self.accept_test(
            correct, epsilon, eta / 2.0, rng, correct_for_dp=correct_for_dp
        )
        if result.outcome is Outcome.ACCEPT:
            return result
        if best_correct_train is not None:
            reject = self.reject_test(best_correct_train, epsilon, eta / 2.0, rng)
            if reject.outcome is Outcome.REJECT:
                reject.details.update(result.details)
                return reject
        return ValidationResult(Outcome.RETRY, result.budget_spent, result.details)
