"""SLAed validator for loss metrics (Listing 2 / Appendix B.1).

The ACCEPT test releases a model only when, with probability at least
(1 - eta), its *expected* loss on the data distribution is at most the
target.  It is (epsilon, 0)-DP on the test set: the test-set size and the
clipped loss sum each get half the epsilon via the Laplace mechanism, and
every DP estimate is corrected for the worst-case noise draw before the
Bernstein bound is applied -- the correction whose removal Table 2 shows to
be catastrophic ("UC DP SLA" column).

The REJECT test (Prop. B.2) decides that *no* model in the class can meet
the target.  It needs the empirical-risk-minimizer's training loss, which
the caller supplies when computable (e.g. closed-form ridge); pipelines
without it simply never REJECT (NNs, per the paper's closing remark in B.1).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.validation.bounds import bernstein_upper_bound, hoeffding_deviation
from repro.core.validation.outcomes import Outcome, ValidationResult
from repro.dp.budget import PrivacyBudget
from repro.dp.mechanisms import laplace_noise, make_rng
from repro.errors import ValidationError

__all__ = ["DPLossValidator"]


class DPLossValidator:
    """ACCEPT/REJECT/RETRY for bounded loss metrics (MSE, log-loss, ...).

    Parameters
    ----------
    target:
        tau_loss -- the loss the released model must stay under.
    loss_bound:
        B -- per-example losses are clipped into [0, B] before summing.
    confidence:
        1 - eta; Listing 2's default is 0.95.
    """

    def __init__(self, target: float, loss_bound: float = 1.0, confidence: float = 0.95) -> None:
        if target < 0:
            raise ValidationError(f"target must be >= 0, got {target}")
        if loss_bound <= 0:
            raise ValidationError(f"loss_bound must be > 0, got {loss_bound}")
        if not 0.0 < confidence < 1.0:
            raise ValidationError(f"confidence must be in (0, 1), got {confidence}")
        self.target = target
        self.loss_bound = loss_bound
        self.confidence = confidence

    # ------------------------------------------------------------------
    def accept_test(
        self,
        test_losses: np.ndarray,
        epsilon: float,
        eta: float,
        rng: np.random.Generator,
        correct_for_dp: bool = True,
    ) -> ValidationResult:
        """Listing 2's ``_ACCEPT_test`` on per-example test losses.

        ``correct_for_dp=False`` reproduces Table 2's "UC DP SLA" ablation:
        the DP noise is still added but the worst-case corrections are
        skipped, voiding the statistical guarantee.
        """
        if epsilon <= 0:
            raise ValidationError(f"epsilon must be > 0, got {epsilon}")
        B = self.loss_bound
        losses = np.clip(np.asarray(test_losses, dtype=float).reshape(-1), 0.0, B)
        n = losses.size
        if n == 0:
            raise ValidationError("empty test set")
        rng = make_rng(rng)
        correction = math.log(3.0 / (2.0 * eta)) if correct_for_dp else 0.0

        # DP test-set size, corrected downward (lower bound w.p. 1 - eta/3).
        n_dp = n + laplace_noise(rng, 2.0 / epsilon)
        n_dp_min = n_dp - 2.0 * correction / epsilon
        # DP loss sum, corrected upward (upper bound w.p. 1 - eta/3).
        loss_sum_dp = float(np.sum(losses)) + laplace_noise(rng, 2.0 * B / epsilon)
        loss_sum_dp_corr = loss_sum_dp + 2.0 * B * correction / epsilon

        details = {
            "n_dp_min": n_dp_min,
            "dp_loss_sum": loss_sum_dp_corr,
            "epsilon": epsilon,
        }
        spent = PrivacyBudget(epsilon, 0.0)
        if n_dp_min <= 1.0:
            # Too few (DP-estimated) samples for any statement.
            return ValidationResult(Outcome.RETRY, spent, details)
        mean_loss = max(0.0, loss_sum_dp_corr / n_dp_min)
        upper = bernstein_upper_bound(mean_loss, n_dp_min, eta / 3.0, B)
        details["loss_upper_bound"] = upper
        outcome = Outcome.ACCEPT if upper <= self.target else Outcome.RETRY
        return ValidationResult(outcome, spent, details)

    # ------------------------------------------------------------------
    def reject_test(
        self,
        erm_train_losses: np.ndarray,
        epsilon: float,
        eta: float,
        rng: np.random.Generator,
    ) -> ValidationResult:
        """Appendix B.1's REJECT test on the ERM's per-example training losses.

        Rejects (w.p. >= 1 - eta correctly) when even the best model in the
        class has expected loss above the target.
        """
        if epsilon <= 0:
            raise ValidationError(f"epsilon must be > 0, got {epsilon}")
        B = self.loss_bound
        losses = np.clip(np.asarray(erm_train_losses, dtype=float).reshape(-1), 0.0, B)
        n = losses.size
        if n == 0:
            raise ValidationError("empty training set")
        rng = make_rng(rng)

        n_dp = n + laplace_noise(rng, 2.0 / epsilon)
        n_dp_min = n_dp - 2.0 * math.log(3.0 / eta) / epsilon
        n_dp_max = n_dp + 2.0 * math.log(3.0 / eta) / epsilon
        loss_sum_dp = float(np.sum(losses)) + laplace_noise(rng, 2.0 * B / epsilon)
        # Lower bound on the ERM's training loss sum w.p. 1 - eta/3.
        loss_sum_dp_corr = loss_sum_dp - 2.0 * B * math.log(3.0 / (2.0 * eta)) / epsilon

        details = {"n_dp_min": n_dp_min, "epsilon": epsilon}
        spent = PrivacyBudget(epsilon, 0.0)
        if n_dp_min <= 1.0 or n_dp_max <= 1.0:
            return ValidationResult(Outcome.RETRY, spent, details)
        erm_loss_lower = max(0.0, loss_sum_dp_corr) / n_dp_max
        threshold = erm_loss_lower - hoeffding_deviation(n_dp_min, eta / 3.0, B)
        details["erm_loss_lower"] = threshold
        outcome = Outcome.REJECT if threshold > self.target else Outcome.RETRY
        return ValidationResult(outcome, spent, details)

    # ------------------------------------------------------------------
    def validate(
        self,
        test_losses: np.ndarray,
        epsilon: float,
        rng: np.random.Generator,
        erm_train_losses: Optional[np.ndarray] = None,
        correct_for_dp: bool = True,
    ) -> ValidationResult:
        """Full Listing 2 flow: try ACCEPT, then REJECT, else RETRY.

        The two tests run on disjoint data splits (test vs train), so by
        parallel composition the whole validation is (epsilon, 0)-DP.
        Confidence is split evenly between the tests as in Listing 2
        (``(1-conf)/2`` each).
        """
        eta = 1.0 - self.confidence
        result = self.accept_test(
            test_losses, epsilon, eta / 2.0, rng, correct_for_dp=correct_for_dp
        )
        if result.outcome is Outcome.ACCEPT:
            return result
        if erm_train_losses is not None:
            reject = self.reject_test(erm_train_losses, epsilon, eta / 2.0, rng)
            if reject.outcome is Outcome.REJECT:
                reject.details.update(result.details)
                return reject
        return ValidationResult(Outcome.RETRY, result.budget_spent, result.details)
