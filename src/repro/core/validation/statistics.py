"""SLAed validator for sum-based statistics (Appendix B.3).

The Avg.Speed (Taxi) and histogram (Criteo) pipelines of Table 1 release DP
statistics rather than trained models.  Their target is an *absolute error*
tau_err against the population value.  Two differences from the model
validators (both noted in B.3):

* the error can be bounded on the training data directly, so there is no
  separate test set; and
* by the law of large numbers the target is always reachable with enough
  data, so there is no REJECT test -- only ACCEPT or RETRY.

The ACCEPT bound combines three failure modes, each given eta/3: the DP
noise tail on the released statistic, the DP estimate of the sample size,
and the sampling (Hoeffding) error of the empirical mean.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.core.validation.bounds import hoeffding_deviation
from repro.core.validation.outcomes import Outcome, ValidationResult
from repro.dp.budget import PrivacyBudget
from repro.dp.mechanisms import laplace_noise, make_rng
from repro.errors import ValidationError

__all__ = ["DPStatisticValidator"]


class DPStatisticValidator:
    """ACCEPT/RETRY for the absolute error of a DP mean statistic.

    Parameters
    ----------
    target:
        tau_err -- the admissible absolute error.
    value_range:
        B -- values are clipped into [0, B] before averaging.
    """

    def __init__(self, target: float, value_range: float, confidence: float = 0.95) -> None:
        if target <= 0:
            raise ValidationError(f"target must be > 0, got {target}")
        if value_range <= 0:
            raise ValidationError(f"value_range must be > 0, got {value_range}")
        if not 0.0 < confidence < 1.0:
            raise ValidationError(f"confidence must be in (0, 1), got {confidence}")
        self.target = target
        self.value_range = value_range
        self.confidence = confidence

    def release_and_validate(
        self,
        values: np.ndarray,
        epsilon: float,
        rng: np.random.Generator,
        correct_for_dp: bool = True,
    ) -> Tuple[float, ValidationResult]:
        """Compute the DP mean and decide whether its error bound meets target.

        Returns ``(dp_mean, result)``.  (epsilon, 0)-DP: epsilon/2 for the
        clipped sum, epsilon/2 for the count.
        """
        if epsilon <= 0:
            raise ValidationError(f"epsilon must be > 0, got {epsilon}")
        B = self.value_range
        values = np.clip(np.asarray(values, dtype=float).reshape(-1), 0.0, B)
        n = values.size
        if n == 0:
            raise ValidationError("empty value set")
        rng = make_rng(rng)
        eta = 1.0 - self.confidence

        sum_dp = float(np.sum(values)) + laplace_noise(rng, 2.0 * B / epsilon)
        n_dp = n + laplace_noise(rng, 2.0 / epsilon)
        correction = math.log(3.0 / (2.0 * eta)) if correct_for_dp else 0.0
        n_dp_min = n_dp - 2.0 * correction / epsilon

        spent = PrivacyBudget(epsilon, 0.0)
        details = {"n_dp_min": n_dp_min, "epsilon": epsilon}
        if n_dp_min <= 1.0:
            dp_mean = float(np.clip(sum_dp / max(n_dp, 1.0), 0.0, B))
            return dp_mean, ValidationResult(Outcome.RETRY, spent, details)

        dp_mean = float(np.clip(sum_dp / n_dp_min, 0.0, B))
        # Worst-case |released - empirical| from the two Laplace draws ...
        noise_error = (2.0 * B * correction / epsilon + 2.0 * B * correction / epsilon) / n_dp_min
        # ... plus |empirical - population| sampling error.
        sampling_error = hoeffding_deviation(n_dp_min, eta / 3.0, B)
        bound = noise_error + sampling_error
        details["error_bound"] = bound
        outcome = Outcome.ACCEPT if bound <= self.target else Outcome.RETRY
        return dp_mean, ValidationResult(outcome, spent, details)
