"""Block-level privacy accounting (the paper's central mechanism).

The :class:`BlockAccountant` keeps one :class:`BlockLedger` per data block
and implements Alg. 4(c)'s ``AccessControl`` check: a query naming a set of
blocks and an (epsilon, delta) is admitted iff *every* named block's filter
admits the charge; the charge is then committed atomically (all blocks or
none).  By Theorem 4.2/4.3 this enforces the global (eps_g, delta_g)-DP
guarantee for the whole stream while new blocks keep arriving with zero
privacy loss -- the property that lets Sage run forever.

A block whose filter no longer admits the configured minimum charge is
*retired* (the DP-informed retention policy of §3.2): it stays retired for
good, since privacy loss never decreases.

Struct-of-arrays ledger store (pluggable totals schema)
-------------------------------------------------------
Every composition analysis here decides admissibility from running sums per
block, so the accountant keeps every block's totals in one contiguous
float64 matrix (:class:`LedgerStore`) of shape
``(n_blocks, filter.totals_width)``.  The first ``TOTALS_BASE`` (= 4)
columns are fixed for every filter class:

====== ==========================================
column meaning
====== ==========================================
0      ``sum eps_i``           (basic composition)
1      ``sum delta_i``         (basic composition)
2      ``sum eps_i^2``         (Theorem A.2 variance term)
3      ``sum (e^{eps_i} - 1) eps_i / 2``  (Theorem A.2 linear term)
====== ==========================================

and a filter may extend the row with its own additively-composed state:
:class:`~repro.core.filters.RenyiCompositionFilter` appends one running-RDP
column per Renyi order (columns ``4 .. 4 + len(orders)``, in the filter's
``orders`` sequence order), so an RDP stream's whole ledger is one
``(n_blocks, 4 + len(orders))`` matrix and every scan below stays a single
vectorized pass.  The increment a charge adds to a row is defined solely by
``filter.contribution(budget)`` -- ledgers, ``charge_many``'s scratch
validation, and the staged overlay all apply that exact vector, which is
what keeps scalar and batched accounting float-identical whatever the
schema width.

The store also keeps a parallel boolean *live* mask (False once a block is retired).  Rows
are in registration order and are never reclaimed; the matrix grows by
doubling.  Every :class:`BlockLedger` stays the per-block API -- it owns the
charge history and mirrors its totals into its store row on every commit, so
the matrix is always in sync no matter whether a charge lands through the
accountant or directly on a ledger.

Batched-API contract: the accountant evaluates whole-stream scans
(``usable_blocks``, ``usable_blocks_tail``, ``can_charge``, ``max_epsilon``,
``retired_blocks``, ``stream_loss_bound``) through a single prototype
filter's ``admits_batch`` / ``max_epsilon_batch`` over store rows.  This
assumes the ``filter_factory`` is *homogeneous*: every per-block filter
built by it must make decisions that depend only on the block's totals (as
:class:`~repro.core.filters.BasicCompositionFilter` and
:class:`~repro.core.filters.StrongCompositionFilter` do), not on per-filter
mutable state.  Custom filter classes that keep the base-class
``admits_batch`` are assumed to decide from the charge *history* instead;
the accountant detects them and routes every scan through per-ledger
scalar ``admits`` so enforcement stays exact (at per-ledger loop speed).
The detection inspects overrides of ``admits`` / ``admits_batch`` /
``max_epsilon`` / ``max_epsilon_batch`` only: a subclass that changes
decisions through a helper those methods call (e.g. ``remaining``) must
override the decision method (or its batch form) as well, or batched scans
will not see the change.

Batched atomic multi-charge (``charge_many``)
---------------------------------------------
``charge_many(requests)`` settles a whole batch of ``(block_keys, budget[,
label])`` charges -- e.g. one simulated hour of allocator settlements -- in
one pass.  Its contract:

* **Sequential equivalence.**  Requests are validated in order against
  running totals that already include every earlier request in the batch
  (intra-batch accumulation), so two charges naming the same block in one
  batch are checked against their combined total.  A committed batch leaves
  ledger histories, running totals, store rows, and the charge log exactly
  as the same charges applied one at a time through ``charge`` would have.
* **Atomicity.**  The commit is all-or-nothing: if any request is refused,
  nothing is committed anywhere and the error ``charge`` would have raised
  for that request (``BlockRetiredError`` / ``BudgetExceededError``)
  propagates.
* **Filter routing.**  Homogeneous totals-deciding filters are validated
  with one vectorized filter pass per request over a scratch copy of the
  touched store rows and committed with a single bulk row write; custom
  scalar-only filter classes route through the exact per-ledger path
  (sequential apply with snapshot rollback), at per-ledger loop speed.

Staged batches (the propose/settle commit path)
-----------------------------------------------
The platform's two-phase session protocol validates charges as sessions
propose them but commits the whole hour in one ``charge_many`` call.  The
accountant supports this with a :class:`StagedBatch` overlay opened by
``begin_staging()``:

* ``stage_charge(keys, budget, label)`` validates a request against the
  *effective* totals (committed store rows plus every earlier staged
  charge, accumulated in request order with exactly ``charge_many``'s
  float operations) and records it without touching any ledger.  A refusal
  raises the same error ``charge`` would and stages nothing.
* While a batch is open, every admissibility read (``admits_keys``,
  ``can_charge``, ``max_epsilon``, ``usable_blocks``/``usable_blocks_tail``)
  sees the effective totals, so later proposers contend with earlier staged
  charges exactly as they would with committed ones.  ``stream_loss_bound``
  and the charge log keep reporting *committed* state only, and retirement
  is not persisted until the batch closes (scans still filter staged-retired
  blocks out).
* ``pop_staged()`` closes the overlay and hands back the request list for a
  single ``charge_many`` commit.  Because staging replayed the exact
  accumulation ``charge_many`` validates with, a staged batch can never be
  refused at commit time.
* ``commit_staged_trusted()`` exploits exactly that guarantee: instead of
  handing the requests back through ``charge_many``'s full re-validation, it
  bulk-writes the staged effective rows (which *are* the post-batch totals,
  byte for byte) straight into the store.  Same commit, roughly half the
  accounting cost; the access layer gates it behind an explicit
  ``trusted_staged_commit`` flag.

Staging requires the vectorized filter path (``staging_supported``);
mutating the accountant through ``charge``/``charge_many`` while a batch is
open is an error, since the overlay could not see those writes.

Sharding
--------
:mod:`repro.core.sharding` builds on exactly these contracts: a
:class:`~repro.core.sharding.ShardedBlockAccountant` keeps each shard's
totals in its own contiguous :class:`LedgerStore` while presenting the
same global row space (rows in registration order -- the
``rows_for_keys`` / ``ReservationTable`` alignment invariant), validates
``charge_many`` batches shard-locally with this module's float
accumulation, and commits all shards or none.  The partitioner contract
and the global-row-space invariant are documented there.  The
snapshot-scoped scan memo (``begin_scan_memo``) serves the platform's
parallel propose phase: while a staged batch is open and untouched,
whole-stream admit scans may be computed once and shared across sessions.
"""

from __future__ import annotations

import inspect
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core import faults
from repro.core.filters import (
    TOTALS_BASE,
    BasicCompositionFilter,
    PrivacyFilter,
    StrongCompositionFilter,
)
from repro.dp.budget import PrivacyBudget, ZERO_BUDGET
from repro.dp.composition import rogers_filter_epsilon_from_sums_batch
from repro.errors import (
    BlockRetiredError,
    BudgetExceededError,
    InvalidBudgetError,
    RecoveryError,
    SnapshotMismatchError,
)

__all__ = [
    "BlockLedger",
    "BlockAccountant",
    "ChargeRecord",
    "LedgerStore",
    "StagedBatch",
]

# Column indices of the shared base columns of the totals matrix (see
# module docstring); filter-specific columns (e.g. per-order RDP) follow.
TOT_EPS, TOT_DELTA, TOT_SQ, TOT_LINEAR = range(TOTALS_BASE)

# Bound on the memoized key-tuple -> store-row-array mapping (the window
# scan hot path re-resolves the same windows every hour).
_ROW_CACHE_LIMIT = 4096


@dataclass(frozen=True)
class ChargeRecord:
    """One committed charge: who consumed what, against which blocks."""

    budget: PrivacyBudget
    block_keys: tuple
    label: str = ""


# Per-class cache: does this filter's loss_bound accept the O(1) ``totals``
# keyword, or is it a legacy override with the plain (history) signature?
_LOSS_BOUND_ACCEPTS_TOTALS: Dict[type, bool] = {}


def _loss_bound_accepts_totals(filter_obj: PrivacyFilter) -> bool:
    cls = type(filter_obj)
    cached = _LOSS_BOUND_ACCEPTS_TOTALS.get(cls)
    if cached is None:
        try:
            params = inspect.signature(cls.loss_bound).parameters
            cached = "totals" in params or any(
                p.kind is p.VAR_KEYWORD for p in params.values()
            )
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            cached = False
        _LOSS_BOUND_ACCEPTS_TOTALS[cls] = cached
    return cached


def _defining_class(cls: type, name: str) -> type:
    return next(c for c in cls.__mro__ if name in c.__dict__)


def _scans_can_vectorize(filter_obj: PrivacyFilter) -> bool:
    """Whether batched scans are exact for this filter class.

    The base-class ``admits_batch`` sees an empty history, so it is only
    valid for totals-deciding filters; and an *inherited* concrete
    ``admits_batch`` must not shadow a subclass's overridden scalar rule
    (the batch method has to be defined at or below wherever ``admits`` /
    ``max_epsilon`` were last overridden).

    Only these four decision methods are inspected: a subclass that changes
    behavior through a *helper* they call (e.g. ``remaining``) without
    overriding the decision method itself is undetectable here and must
    override the corresponding batch method too -- see the batched-API
    contract in the module docstring.
    """
    cls = type(filter_obj)
    batch_owner = _defining_class(cls, "admits_batch")
    if batch_owner is PrivacyFilter:
        return False
    if not issubclass(batch_owner, _defining_class(cls, "admits")):
        return False
    max_batch_owner = _defining_class(cls, "max_epsilon_batch")
    max_owner = _defining_class(cls, "max_epsilon")
    if max_batch_owner is PrivacyFilter:
        # The base max_epsilon_batch bisects admits_batch; that is exact
        # only while the scalar max_epsilon has not been overridden below
        # the class whose admits_batch the bisection runs against.
        return issubclass(batch_owner, max_owner)
    # A concrete batch method must sit at or below the scalar it mirrors.
    return issubclass(max_batch_owner, max_owner)


class LedgerStore:
    """Contiguous struct-of-arrays running totals for a stream's blocks.

    One row per registered block, in registration order; rows are appended
    with amortized O(1) doubling growth and never deleted (retirement only
    clears the live bit -- privacy loss is forever).  ``width`` is the
    filter's totals-row length: the shared base columns plus any
    filter-specific extension (see the module docstring's column map).
    """

    def __init__(self, capacity: int = 64, width: int = TOTALS_BASE) -> None:
        capacity = max(1, int(capacity))
        self._width = max(TOTALS_BASE, int(width))
        self._totals = np.zeros((capacity, self._width), dtype=np.float64)
        self._live = np.zeros(capacity, dtype=bool)
        self._counts = np.zeros(capacity, dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def width(self) -> int:
        """Totals-row length (4 base columns + filter extension)."""
        return self._width

    @property
    def totals(self) -> np.ndarray:
        """The (n_blocks, width) totals matrix.

        A view into the backing buffer: re-read it on each use rather than
        caching it, since registering a block past the current capacity
        reallocates the buffer and silently detaches old views.
        """
        return self._totals[: self._size]

    @property
    def live(self) -> np.ndarray:
        """Boolean mask of blocks not yet retired.

        A writable view with the same caveat as :attr:`totals`: growth
        reallocates, so never cache it across block registrations.
        """
        return self._live[: self._size]

    @property
    def charge_counts(self) -> np.ndarray:
        """Number of committed charges per block (view caveat as above)."""
        return self._counts[: self._size]

    def _grow(self, array: np.ndarray) -> np.ndarray:
        shape = (2 * array.shape[0],) + array.shape[1:]
        grown = np.zeros(shape, dtype=array.dtype)
        grown[: self._size] = array[: self._size]
        return grown

    def append(self) -> int:
        """Add a zeroed row for a new block; returns its row index."""
        if self._size == self._totals.shape[0]:
            self._totals = self._grow(self._totals)
            self._live = self._grow(self._live)
            self._counts = self._grow(self._counts)
        index = self._size
        self._totals[index, :] = 0.0
        self._live[index] = True
        self._counts[index] = 0
        self._size += 1
        return index

    def write_row(self, index: int, totals: Sequence[float], count: int) -> None:
        self._totals[index, :] = totals
        self._counts[index] = count

    def write_rows(self, indices, totals: np.ndarray, counts: np.ndarray) -> None:
        """Bulk row update (the batched ``charge_many`` commit path)."""
        self._totals[indices] = totals
        self._counts[indices] = counts

    def retire(self, indices) -> None:
        # repro: allow(purity) -- deferred retirement persistence: scans may
        # lazily mark exhausted blocks; idempotent and observationally
        # invisible (a retired block refuses every charge either way).
        self._live[indices] = False

    def truncate_to(self, size: int) -> None:
        """Drop every row past ``size`` (the durability layer's hour
        rollback: the only rows ever truncated are same-hour registrations
        that no committed charge has touched).  Vacated buffer regions are
        re-zeroed so they stay indistinguishable from never-used capacity.
        """
        size = int(size)
        if size < 0 or size > self._size:
            raise RecoveryError(
                f"cannot truncate store of {self._size} rows to {size}"
            )
        if size == self._size:
            return
        self._totals[size : self._size] = 0.0
        self._live[size : self._size] = False
        self._counts[size : self._size] = 0
        self._size = size


class StagedBatch:
    """Charges validated against the accountant but not yet committed.

    Keeps one dense *effective-totals* matrix: a copy of the committed store
    totals that absorbs each staged request's contribution in request order
    -- the exact float accumulation ``charge_many``'s validation replays --
    so staging decisions and the final commit can never disagree, and reads
    through the overlay are as cheap as reads of the store itself.  The
    per-request store rows are retained alongside the requests so a trusted
    commit can bulk-write the effective rows without re-resolving keys.
    """

    def __init__(self, accountant: "BlockAccountant") -> None:
        self._eff = accountant.store.totals.copy()
        self._width = accountant.store.width
        self.requests: List[tuple] = []
        self.request_rows: List[np.ndarray] = []

    def __len__(self) -> int:
        return len(self.requests)

    def effective_totals(self, size: int) -> np.ndarray:
        """The (size, width) committed-plus-staged totals view.

        Blocks registered after the batch opened have zero committed totals
        and no staged charges, so their effective rows are zero too.
        """
        if size > self._eff.shape[0]:
            grown = np.zeros((max(size, 2 * self._eff.shape[0]), self._width))
            grown[: self._eff.shape[0]] = self._eff
            # repro: allow(purity) -- capacity growth only: new rows are all
            # zero, so every read returns the same values as before.
            self._eff = grown
        return self._eff[:size]

    def add(self, rows: np.ndarray, contribution: np.ndarray) -> None:
        self._eff[rows] += contribution


@dataclass
class BlockLedger:
    """Charge history + filter for a single block.

    Running totals (epsilon, delta, epsilon^2, and the strong-composition
    linear term) are maintained on every charge so admissibility checks are
    O(1) instead of O(|history|).  A ledger registered with a
    :class:`BlockAccountant` additionally mirrors its totals into the
    accountant's :class:`LedgerStore` row on every commit, which is what
    keeps the vectorized block scans exact.
    """

    key: object
    filter: PrivacyFilter
    history: List[PrivacyBudget] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._store: Optional[LedgerStore] = None
        self._row = -1
        # Base columns (eps, delta, eps^2, linear) plus whatever the filter's
        # schema appends (e.g. one running-RDP sum per order).
        width = getattr(self.filter, "totals_width", TOTALS_BASE)
        self._totals = [0.0] * width
        for budget in self.history:
            self._accumulate(budget)

    def _attach(self, store: LedgerStore, row: int) -> None:
        """Bind this ledger to its struct-of-arrays row (accountant use)."""
        self._store = store
        self._row = row
        store.write_row(row, self._totals, len(self.history))

    def _accumulate(
        self, budget: PrivacyBudget, contribution: Optional[np.ndarray] = None
    ) -> None:
        # The filter defines the charge's row increment; scalar adds over
        # its entries are the same float64 ops the batched paths apply, so
        # per-ledger and vectorized accounting stay bit-identical.
        if contribution is None:
            contribution = self.filter.contribution(budget)
        totals = self._totals
        for index, value in enumerate(contribution.tolist()):
            totals[index] += value
        if self._store is not None:
            self._store.write_row(self._row, totals, len(self.history))

    @property
    def totals(self) -> tuple:
        """The running totals row (base sums first, schema extension after)."""
        return tuple(self._totals)

    def record(
        self, budget: PrivacyBudget, contribution: Optional[np.ndarray] = None
    ) -> None:
        """Append a committed charge, keeping the running totals in sync.

        ``contribution`` is an optional precomputed ``filter.contribution``
        vector for the budget (a multi-block charge shares one across its
        ledgers -- the increment is a pure function of the budget, so the
        accumulated floats are identical either way).
        """
        self.history.append(budget)
        self._accumulate(budget, contribution)

    def admits(self, candidate: PrivacyBudget) -> bool:
        return self.filter.admits(self.history, candidate, totals=tuple(self._totals))

    def charge(self, budget: PrivacyBudget) -> None:
        if not self.admits(budget):
            raise BudgetExceededError(
                f"charge {budget} exceeds block {self.key!r}'s remaining budget",
                block_id=self.key,
            )
        self.record(budget)

    def max_epsilon(self, delta: float = 0.0) -> float:
        """Largest epsilon still chargeable at the given delta."""
        return self.filter.max_epsilon(self.history, delta)

    def loss_bound(self) -> PrivacyBudget:
        """DP guarantee covering everything charged to this block so far."""
        if _loss_bound_accepts_totals(self.filter):
            return self.filter.loss_bound(self.history, totals=tuple(self._totals))
        return self.filter.loss_bound(self.history)

    def is_retired(self, min_budget: PrivacyBudget) -> bool:
        """True when the block can no longer absorb even ``min_budget``."""
        return not self.admits(min_budget)


class BlockAccountant:
    """All block ledgers of one sensitive stream, with atomic multi-block charges.

    Parameters
    ----------
    epsilon_global / delta_global:
        The stream's global DP policy (the company-configured ceiling).
    filter_factory:
        Builds the per-block filter; defaults to basic composition
        (Theorem 4.3).  Pass ``StrongCompositionFilter`` for Theorem A.2
        accounting.  Must be homogeneous (see module docstring) for the
        vectorized scans to be exact.
    retirement_budget:
        Blocks that cannot absorb this charge any more count as retired;
        defaults to (epsilon_global/1000, 0).
    """

    def __init__(
        self,
        epsilon_global: float,
        delta_global: float,
        filter_factory: Optional[Callable[[float, float], PrivacyFilter]] = None,
        retirement_budget: Optional[PrivacyBudget] = None,
    ) -> None:
        if filter_factory is None:
            filter_factory = BasicCompositionFilter
        self._make_filter = filter_factory
        self.epsilon_global = epsilon_global
        self.delta_global = delta_global
        self.retirement_budget = retirement_budget or PrivacyBudget(
            epsilon_global / 1000.0, 0.0
        )
        self._ledgers: Dict[object, BlockLedger] = {}
        self._charges: List[ChargeRecord] = []
        # The prototype filter that evaluates the whole matrix in one pass
        # (all per-block filters share its params) + the struct-of-arrays
        # totals store sized to the filter's declared schema width.
        self._batch_filter = filter_factory(epsilon_global, delta_global)
        self._store = LedgerStore(
            width=getattr(self._batch_filter, "totals_width", TOTALS_BASE)
        )
        # A filter whose batch methods are missing or shadowed by scalar
        # overrides (e.g. it decides from the charge history, or a subclass
        # tightened admits without re-deriving admits_batch) must scan
        # through per-ledger scalar admits, or batched scans would silently
        # admit what the scalar rule refuses.
        self._vectorized = _scans_can_vectorize(self._batch_filter)
        self._keys: List[object] = []
        self._rows: Dict[object, int] = {}
        # Memoized key-tuple -> row-array translations (rows never move, so
        # entries never go stale; the cache is only bounded for memory).
        self._row_cache: Dict[tuple, np.ndarray] = {}
        # Open staged batch (the propose/settle overlay), or None.
        self._staged: Optional[StagedBatch] = None
        # Snapshot-scoped scan memo (see begin_scan_memo), or None.
        self._scan_memo: Optional[Dict] = None
        # Retirement is permanent (privacy loss never decreases), so dead
        # blocks can be pruned from every scan once detected.  This keeps
        # usable_blocks() linear in the number of *live* blocks even when a
        # stream has run for thousands of hours.
        self._dead: set = set()
        # Telemetry tracer attached by a traced platform (None = tracing
        # off).  Consulted only on the mutating charge path, never by the
        # pure read surface, and never fed back into accounting decisions.
        self._tracer = None

    # ------------------------------------------------------------------
    # Block lifecycle
    # ------------------------------------------------------------------
    def register_block(self, key: object) -> BlockLedger:
        """Create a ledger for a freshly ingested block (zero loss so far)."""
        if key in self._ledgers:
            raise InvalidBudgetError(f"block {key!r} already registered")
        # A new row changes every whole-stream scan: memoized scans are stale.
        self._scan_memo = None
        ledger = BlockLedger(
            key=key, filter=self._make_filter(self.epsilon_global, self.delta_global)
        )
        row = self._append_store_row(key)
        ledger._attach(self._store, row)
        self._ledgers[key] = ledger
        self._keys.append(key)
        self._rows[key] = row
        return ledger

    def _append_store_row(self, key: object) -> int:
        """Store-row allocation hook for :meth:`register_block`; sharded
        accountants route the row to the partitioner's shard."""
        return self._store.append()

    def register_blocks(self, keys: Sequence[object]) -> None:
        for key in keys:
            self.register_block(key)

    def __contains__(self, key: object) -> bool:
        return key in self._ledgers

    def ledger(self, key: object) -> BlockLedger:
        if key not in self._ledgers:
            raise InvalidBudgetError(f"block {key!r} was never registered")
        return self._ledgers[key]

    @property
    def block_keys(self) -> List[object]:
        return list(self._keys)

    @property
    def store(self) -> LedgerStore:
        """The struct-of-arrays totals store (rows in registration order)."""
        return self._store

    @property
    def batch_filter(self) -> PrivacyFilter:
        """The prototype batch filter (telemetry reads its order grid to
        gauge Renyi order saturation; accounting goes through the batch
        scan methods, not this handle)."""
        return self._batch_filter

    def attach_tracer(self, tracer) -> None:
        """Attach a telemetry tracer (``None`` detaches).  The tracer only
        ever *records* -- batch spans on ``charge_many`` and, for sharded
        accountants, per-shard commit spans -- so attaching one cannot
        change any admission decision."""
        self._tracer = tracer

    @property
    def delta_reserved(self) -> float:
        """Share of ``delta_global`` the filter's own analysis consumes
        (zero for basic composition); sessions ration attempt deltas out of
        the remainder so repeated attempts cannot delta-exhaust a block."""
        return getattr(self._batch_filter, "delta_reserved", 0.0)

    def _key_rows(self, keys: Sequence[object]) -> np.ndarray:
        """Store rows for the named keys; rejects unregistered keys.

        The hourly drive resolves the same windows over and over (every
        proposal, settlement, and reservation read names a recent-blocks
        window), so translations are memoized by key tuple.  Rows are
        assigned once at registration and never move, so cached arrays
        never go stale; they are returned read-only since callers share
        them.
        """
        tkey = tuple(keys)
        cached = self._row_cache.get(tkey)
        if cached is None:
            try:
                cached = np.fromiter(
                    (self._rows[k] for k in keys), dtype=np.intp, count=len(keys)
                )
            except KeyError as exc:
                raise InvalidBudgetError(
                    f"block {exc.args[0]!r} was never registered"
                ) from None
            cached.setflags(write=False)
            if len(self._row_cache) >= _ROW_CACHE_LIMIT:
                # repro: allow(purity) -- bounded memo-cache reset; rebuilt
                # entries are value-identical to the evicted ones.
                self._row_cache.clear()
            # repro: allow(purity) -- memo-cache fill; reads are value-identical
            self._row_cache[tkey] = cached
        return cached

    def rows_for_keys(self, keys: Sequence[object]) -> np.ndarray:
        """Store row indices (registration order) for the named keys.

        This is the alignment contract the platform's ``ReservationTable``
        relies on: its block columns are indexed by exactly these rows.
        """
        return self._key_rows(keys)

    def _totals_view(self) -> np.ndarray:
        """Totals every admissibility read decides from: the committed store
        rows, overlaid with staged contributions while a batch is open."""
        if self._staged is not None:
            return self._staged.effective_totals(len(self._store))
        return self._store.totals

    # ------------------------------------------------------------------
    # Staged batches (validate now, commit the hour in one charge_many)
    # ------------------------------------------------------------------
    @property
    def staging_supported(self) -> bool:
        """Staging needs the vectorized filter path: the overlay replays
        batched filter decisions over effective totals, which a custom
        scalar-only (history-deciding) filter cannot reproduce."""
        return self._vectorized

    @property
    def staging_active(self) -> bool:
        return self._staged is not None

    @property
    def staged_requests(self) -> List[tuple]:
        """Copy of the open batch's ``(keys, budget, label)`` requests
        (empty when no batch is open).

        This is what the durability layer writes ahead: the exact batch the
        closing ``charge_many``/trusted commit will land, captured *before*
        the commit so a crash between WAL append and commit replays the
        identical requests.
        """
        if self._staged is None:
            return []
        return list(self._staged.requests)

    @property
    def staged_request_count(self) -> int:
        """Number of charges staged in the open batch (0 when none is open).

        The platform's parallel propose drive uses this as (part of) its
        speculation token: a first proposal computed against the empty
        overlay is reusable only while nothing has been staged since.
        """
        return len(self._staged.requests) if self._staged is not None else 0

    def _new_staged_batch(self) -> StagedBatch:
        """Overlay factory hook; sharded accountants return an overlay that
        also tracks staged spend per shard."""
        return StagedBatch(self)

    def begin_staging(self) -> StagedBatch:
        """Open a staged batch; subsequent reads see staged charges."""
        if self._staged is not None:
            raise InvalidBudgetError("a staged batch is already open")
        if not self._vectorized:
            raise InvalidBudgetError(
                "staging requires a homogeneous totals-deciding filter; "
                "this accountant's filter routes through the scalar path"
            )
        self._staged = self._new_staged_batch()
        return self._staged

    # ------------------------------------------------------------------
    # Snapshot-scoped scan memo (the parallel propose phase)
    # ------------------------------------------------------------------
    def begin_scan_memo(self) -> None:
        """Start memoizing whole-stream admit scans by floor budget.

        Valid only while the effective totals are *frozen*: a staged batch
        must be open and nothing may be staged, charged, or registered
        until :meth:`end_scan_memo`.  The platform's parallel propose
        phase brackets its session peeks with this -- every peek reads the
        same snapshot by construction, so the live-admit scan for a given
        floor budget is computed once and shared across all sessions
        (decisions are identical to recomputing; only the redundant passes
        disappear).  Reads are thread-safe: concurrent memo misses just
        compute the same read-only row array twice.
        """
        if self._staged is None:
            raise InvalidBudgetError(
                "scan memoization requires an open (frozen) staged batch"
            )
        self._scan_memo = {}

    def end_scan_memo(self) -> None:
        self._scan_memo = None

    def stage_charge(
        self, keys: Sequence[object], budget: PrivacyBudget, label: str = ""
    ) -> None:
        """Validate one request against the effective totals and stage it.

        Raises exactly what :meth:`charge` would (``BlockRetiredError`` /
        ``BudgetExceededError``) and stages nothing on refusal; on success
        the request joins the batch and becomes visible to every subsequent
        read and stage decision (intra-batch accumulation).
        """
        if self._staged is None:
            raise InvalidBudgetError("no staged batch is open")
        # Staging moves the effective totals: any memoized scans are stale.
        self._scan_memo = None
        keys = list(keys)
        if not keys:
            raise InvalidBudgetError("a charge must name at least one block")
        if len(set(keys)) != len(keys):
            raise InvalidBudgetError("duplicate block keys in one charge")
        rows = self._key_rows(keys)
        eff = self._staged.effective_totals(len(self._store))
        admitted = self._batch_filter.admits_batch(eff[rows], budget)
        if not admitted.all():
            pos = int(np.argmin(admitted))
            retired = not bool(
                self._batch_filter.admits_batch(
                    eff[rows[pos]], self.retirement_budget
                )[0]
            )
            self._raise_refusal(keys[pos], budget, retired)
        self._staged.add(rows, self._contribution(budget))
        self._staged.requests.append((keys, budget, label))
        self._staged.request_rows.append(rows)

    def pop_staged(self) -> List[tuple]:
        """Close the staged batch, returning its ``(keys, budget, label)``
        requests for a single :meth:`charge_many` commit (nothing has been
        committed yet; discarding the return value aborts the batch)."""
        # Closing the overlay ends the frozen snapshot any scan memo was
        # defined against (commits may follow immediately).
        self._scan_memo = None
        staged, self._staged = self._staged, None
        return staged.requests if staged is not None else []

    def _forbid_staging(self, what: str) -> None:
        if self._staged is not None:
            raise InvalidBudgetError(
                f"cannot {what} while a staged batch is open; "
                "pop_staged() and commit it first"
            )

    # ------------------------------------------------------------------
    # The AccessControl check (Alg. 4(c) line 8)
    # ------------------------------------------------------------------
    def admits_keys(self, keys: Sequence[object], budget: PrivacyBudget) -> np.ndarray:
        """Per-key admit decisions in one batched filter pass."""
        if not keys:
            return np.zeros(0, dtype=bool)
        if not self._vectorized:
            return np.fromiter(
                (self.ledger(k).admits(budget) for k in keys),
                dtype=bool,
                count=len(keys),
            )
        rows = self._key_rows(keys)
        return self._batch_filter.admits_batch(self._totals_view()[rows], budget)

    def can_charge(self, keys: Sequence[object], budget: PrivacyBudget) -> bool:
        """True iff every named block admits the charge."""
        if not keys:
            return False
        return bool(self.admits_keys(keys, budget).all())

    def charge(
        self, keys: Sequence[object], budget: PrivacyBudget, label: str = ""
    ) -> ChargeRecord:
        """Atomically charge ``budget`` to every named block.

        Either all ledgers absorb the charge or none do (a failed check on
        any block leaves every other block untouched).
        """
        self._forbid_staging("charge")
        keys = list(keys)
        if not keys:
            raise InvalidBudgetError("a charge must name at least one block")
        if len(set(keys)) != len(keys):
            raise InvalidBudgetError("duplicate block keys in one charge")
        admitted = self.admits_keys(keys, budget)
        if not admitted.all():
            key = keys[int(np.argmin(admitted))]  # first refusing block
            if self._ledgers[key].is_retired(self.retirement_budget):
                raise BlockRetiredError(f"block {key!r} is retired", block_id=key)
            raise BudgetExceededError(
                f"block {key!r} cannot absorb {budget}", block_id=key
            )
        # Homogeneous filters share one contribution vector across the
        # charge's blocks; custom (scalar-path) filters compute per ledger,
        # since only homogeneity guarantees the prototype's increment is
        # every ledger's increment.
        contribution = self._contribution(budget) if self._vectorized else None
        for key in keys:
            self._ledgers[key].record(budget, contribution)
        record = ChargeRecord(budget=budget, block_keys=tuple(keys), label=label)
        self._charges.append(record)
        return record

    # ------------------------------------------------------------------
    # Batched hourly settlement (atomic multi-request charges)
    # ------------------------------------------------------------------
    @staticmethod
    def _normalize_requests(requests) -> List[tuple]:
        """Coerce ``(keys, budget[, label])`` requests into a uniform list,
        applying the same per-request validation as :meth:`charge`."""
        norm = []
        for request in requests:
            if len(request) == 2:
                keys, budget = request
                label = ""
            else:
                keys, budget, label = request
            keys = list(keys)
            if not keys:
                raise InvalidBudgetError("a charge must name at least one block")
            if len(set(keys)) != len(keys):
                raise InvalidBudgetError("duplicate block keys in one charge")
            norm.append((keys, budget, label))
        return norm

    def _contribution(self, budget: PrivacyBudget) -> np.ndarray:
        """One charge's totals-row increment (same ops as ``_accumulate``)."""
        return self._batch_filter.contribution(budget)

    def _raise_refusal(
        self, key: object, budget: PrivacyBudget, retired: bool
    ) -> None:
        if retired:
            raise BlockRetiredError(f"block {key!r} is retired", block_id=key)
        raise BudgetExceededError(
            f"block {key!r} cannot absorb {budget}", block_id=key
        )

    def _validate_many_vectorized(self, norm: List[tuple]):
        """Vectorized all-requests admissibility check with intra-batch
        accumulation.

        Returns ``(touched_rows, work, counts_delta)`` where ``work`` holds
        the touched rows' totals *after* the whole batch and ``counts_delta``
        the per-row number of new charges.  ``work`` starts as a copy of
        the store rows and absorbs each request's contribution in order, so
        request ``j`` is checked against exactly the float totals a
        sequential ``charge`` loop would have produced -- two charges against
        the same block in one batch are checked against their combined total.
        Raises (committing nothing) on the first refusing request, with the
        same error :meth:`charge` raises.
        """
        row_lists = [self._key_rows(keys) for keys, _, _ in norm]
        touched = np.unique(np.concatenate(row_lists))
        work = self._store.totals[touched].copy()
        counts_delta = np.zeros(touched.size, dtype=np.int64)
        for (keys, budget, _), rows in zip(norm, row_lists):
            # touched is sorted-unique and rows is a subset, so searchsorted
            # is an exact row -> scratch-index translation.
            lrows = np.searchsorted(touched, rows)
            admitted = self._batch_filter.admits_batch(work[lrows], budget)
            if not admitted.all():
                pos = int(np.argmin(admitted))
                retired = not bool(
                    self._batch_filter.admits_batch(
                        work[lrows[pos]], self.retirement_budget
                    )[0]
                )
                self._raise_refusal(keys[pos], budget, retired)
            work[lrows] += self._contribution(budget)
            counts_delta[lrows] += 1
        return touched, work, counts_delta

    def _validate_for_commit(self, norm: List[tuple]):
        """Phase-one validation as invoked from the commit path.

        Same contract as :meth:`_validate_many_vectorized`, which it
        delegates to -- but this seam is reachable only from
        :meth:`charge_many` (a mutator), never from the pure read surface
        (``can_charge_many`` calls the validator directly).  The sharded
        accountant overrides it to stopwatch per-shard validation for the
        wall profiler, which the telemetry-isolation and purity rules
        forbid on the shared pure-reachable validator itself.
        """
        return self._validate_many_vectorized(norm)

    def _apply_many_scalar(self, norm: List[tuple], commit: bool) -> List[ChargeRecord]:
        """Per-ledger sequential apply with full rollback -- the exact path
        for filters whose decisions batched scans cannot reproduce."""
        # dict.fromkeys, not a set: ledger creation and snapshot/rollback
        # order must be first-touch deterministic run to run.
        touched_keys = dict.fromkeys(key for keys, _, _ in norm for key in keys)
        ledgers = {key: self.ledger(key) for key in touched_keys}
        snapshot = {
            key: (len(led.history), list(led._totals))
            for key, led in ledgers.items()
        }

        def rollback() -> None:
            for key, (n_history, totals) in snapshot.items():
                led = ledgers[key]
                del led.history[n_history:]
                led._totals = totals
                self._store.write_row(led._row, totals, n_history)

        records = []
        try:
            for keys, budget, label in norm:
                for key in keys:
                    if not ledgers[key].admits(budget):
                        retired = ledgers[key].is_retired(self.retirement_budget)
                        self._raise_refusal(key, budget, retired)
                for key in keys:
                    ledgers[key].record(budget)
                records.append(
                    ChargeRecord(budget=budget, block_keys=tuple(keys), label=label)
                )
        except Exception:
            rollback()
            raise
        if not commit:
            rollback()
            return records
        self._charges.extend(records)
        return records

    def charge_many(self, requests) -> List[ChargeRecord]:
        """Atomically commit a whole batch of ``(keys, budget[, label])`` charges.

        The batch contract: requests are validated in order against running
        totals that include every earlier request in the batch (intra-batch
        accumulation), so a committed batch is observationally identical to
        the same charges applied sequentially via :meth:`charge` -- but the
        commit is all-or-nothing: one refusing request anywhere leaves every
        ledger, the totals store, and the charge log untouched, and raises
        the error :meth:`charge` would have raised for that request.

        For homogeneous totals-deciding filters the whole batch is validated
        in one vectorized pass over the ledger store and committed with a
        single bulk row write; custom scalar-only filter classes route
        through the exact per-ledger path (apply + rollback).
        """
        self._forbid_staging("charge_many")
        norm = self._normalize_requests(requests)
        if not norm:
            return []
        if not self._vectorized:
            return self._apply_many_scalar(norm, commit=True)
        with (
            self._tracer.span("charge.batch", requests=len(norm))
            if self._tracer is not None
            else nullcontext()
        ):
            touched, work, counts_delta = self._validate_for_commit(norm)
            # Crash point between phase-one validation and the phase-two
            # commit (for the sharded accountant this sits exactly between
            # the 2PC phases: every shard has validated, none has written).
            faults.trip("charge.between_validate_and_commit")
            return self._commit_validated(norm, touched, work, counts_delta)

    def _commit_validated(
        self,
        norm: List[tuple],
        touched: np.ndarray,
        work: np.ndarray,
        counts_delta: np.ndarray,
    ) -> List[ChargeRecord]:
        """Land a validated batch: bulk store-row write, history append,
        ledger-totals sync, charge log.  ``work`` must hold the touched
        rows' exact post-batch totals (``charge_many``'s scratch or a
        staged batch's effective rows -- the two are byte-identical by
        construction)."""
        ledgers = self._ledgers
        records = []
        for keys, budget, label in norm:
            for key in keys:
                ledgers[key].history.append(budget)
            records.append(
                ChargeRecord(budget=budget, block_keys=tuple(keys), label=label)
            )
        self._store.write_rows(
            touched, work, self._store.charge_counts[touched] + counts_delta
        )
        block_keys = self._keys
        for row, totals in zip(touched.tolist(), work.tolist()):
            ledgers[block_keys[row]]._totals = totals
        self._charges.extend(records)
        return records

    def commit_staged_trusted(self) -> List[ChargeRecord]:
        """Close the staged batch and commit it *without* re-validation.

        Staging already performed the exact accumulation ``charge_many``'s
        validation would replay (same starting rows, same contribution
        vectors, same order), so the overlay's effective rows for the
        touched blocks *are* the post-batch totals byte for byte and the
        batch provably cannot be refused -- this path just bulk-writes them.
        The access layer keeps it behind an explicit opt-in flag; the
        byte-parity against the validating path is pinned by tests.
        """
        self._scan_memo = None  # the frozen snapshot ends with the overlay
        staged, self._staged = self._staged, None
        if staged is None or not staged.requests:
            return []
        rows_concat = np.concatenate(staged.request_rows)
        counts = np.bincount(rows_concat, minlength=len(self._store))
        touched = np.flatnonzero(counts)
        work = staged.effective_totals(len(self._store))[touched]
        return self._commit_validated(
            staged.requests, touched, work, counts[touched]
        )

    def can_charge_many(self, requests) -> bool:
        """True iff :meth:`charge_many` would commit the whole batch.

        An empty batch is vacuously committable.  Malformed requests (empty
        key sets, duplicate keys, unregistered blocks) raise just as
        ``charge_many`` does.
        """
        norm = self._normalize_requests(requests)
        if not norm:
            return True
        try:
            if not self._vectorized:
                self._apply_many_scalar(norm, commit=False)
            else:
                self._validate_many_vectorized(norm)
        except (BudgetExceededError, BlockRetiredError):
            return False
        return True

    # ------------------------------------------------------------------
    # Durability hooks (hour rollback + snapshot export/restore)
    # ------------------------------------------------------------------
    def rollback_registrations(self, n_blocks: int) -> None:
        """Unregister every block past the first ``n_blocks`` (registration
        order) -- the durability layer's hour rollback.

        Only same-hour registrations are ever rolled back, and the platform
        rolls back strictly *before* the hour's staged batch commits, so the
        removed rows carry no committed charges; dropping them (and their
        store rows) restores the exact pre-hour accountant.
        """
        if n_blocks < 0 or n_blocks > len(self._keys):
            raise RecoveryError(
                f"cannot roll registrations back to {n_blocks}; "
                f"{len(self._keys)} blocks are registered"
            )
        removed = self._keys[n_blocks:]
        if not removed:
            return
        for key in removed:
            del self._ledgers[key]
            del self._rows[key]
            self._dead.discard(key)
        del self._keys[n_blocks:]
        # Cached row arrays / memoized scans may name the removed rows.
        self._row_cache.clear()
        self._scan_memo = None
        self._store.truncate_to(n_blocks)

    def export_state(self) -> dict:
        """Snapshot this accountant's full committed state (picklable).

        Pending lazy retirement is persisted first so the exported live
        mask is the normalized one every scan would converge to.
        """
        self.retired_blocks()
        store = self._store
        return {
            "schema_width": store.width,
            "epsilon_global": self.epsilon_global,
            "delta_global": self.delta_global,
            "keys": list(self._keys),
            "totals": store.totals.copy(),
            "live": store.live.copy(),
            "counts": store.charge_counts.copy(),
            "charges": [
                (r.budget, r.block_keys, r.label) for r in self._charges
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Restore an :meth:`export_state` snapshot into a *fresh* accountant.

        Blocks re-register through the normal registration path (so a
        sharded accountant rebuilds the identical row-to-shard routing),
        ledger histories are rebuilt from the exported charge log, and the
        exported totals are written back verbatim -- the restored store is
        byte-identical to the exported one.
        """
        if self._keys or self._charges:
            raise RecoveryError(
                "restore_state requires a fresh accountant "
                f"({len(self._keys)} blocks, {len(self._charges)} charges "
                "already present)"
            )
        if state["schema_width"] != self._store.width:
            raise SnapshotMismatchError(
                f"snapshot schema width {state['schema_width']} does not "
                f"match this accountant's width {self._store.width}"
            )
        if (
            state["epsilon_global"] != self.epsilon_global
            or state["delta_global"] != self.delta_global
        ):
            raise SnapshotMismatchError(
                f"snapshot global budget ({state['epsilon_global']}, "
                f"{state['delta_global']}) does not match this accountant's "
                f"({self.epsilon_global}, {self.delta_global})"
            )
        for key in state["keys"]:
            self.register_block(key)
        totals = np.asarray(state["totals"], dtype=np.float64)
        counts = np.asarray(state["counts"], dtype=np.int64)
        live = np.asarray(state["live"], dtype=bool)
        expected = (len(self._keys), self._store.width)
        if totals.shape != expected:
            raise SnapshotMismatchError(
                f"snapshot totals shape {totals.shape} does not match "
                f"the restored key set {expected}"
            )
        for budget, block_keys, label in state["charges"]:
            for key in block_keys:
                if key not in self._ledgers:
                    raise RecoveryError(
                        f"snapshot charge names unknown block {key!r}"
                    )
                self._ledgers[key].history.append(budget)
            self._charges.append(
                ChargeRecord(budget=budget, block_keys=tuple(block_keys), label=label)
            )
        if self._keys:
            rows = np.arange(len(self._keys), dtype=np.intp)
            self._store.write_rows(rows, totals, counts)
            for key, row_totals in zip(self._keys, totals.tolist()):
                self._ledgers[key]._totals = row_totals
            dead_rows = np.flatnonzero(~live)
            if dead_rows.size:
                self._store.retire(dead_rows)
                self._dead.update(self._keys[i] for i in dead_rows)

    # ------------------------------------------------------------------
    # Queries used by the platform / iterators (vectorized scans)
    # ------------------------------------------------------------------
    def max_epsilon(self, keys: Sequence[object], delta: float = 0.0) -> float:
        """Largest epsilon chargeable to *all* named blocks at once."""
        if not keys:
            return 0.0
        if not self._vectorized:
            return min(self.ledger(k).max_epsilon(delta) for k in keys)
        rows = self._key_rows(keys)
        return float(
            self._batch_filter.max_epsilon_batch(self._totals_view()[rows], delta)
        )

    def _live_admit_rows(self, floor: PrivacyBudget) -> np.ndarray:
        """Rows of live blocks admitting ``floor``, marking newly retired
        blocks dead along the way -- the shared body of every block scan.

        While a scan memo is active (totals frozen, see
        :meth:`begin_scan_memo`) the result is cached per floor budget and
        shared read-only across callers.
        """
        memo = self._scan_memo
        if memo is not None:
            cached = memo.get(floor)
            if cached is not None:
                return cached
        live_rows = np.nonzero(self._store.live)[0]
        if live_rows.size == 0:
            return live_rows
        if not self._vectorized:
            alive = np.fromiter(
                (
                    not self._ledgers[self._keys[i]].is_retired(self.retirement_budget)
                    for i in live_rows
                ),
                dtype=bool,
                count=live_rows.size,
            )
        else:
            alive = self._batch_filter.admits_batch(
                self._totals_view()[live_rows], self.retirement_budget
            )
        if not alive.all():
            retired_rows = live_rows[~alive]
            # Retirement is persisted only from *committed* totals: while a
            # staged batch is open, staged-retired blocks are filtered out
            # of this scan but stay live until the batch commits.
            if self._staged is None:
                # repro: allow(purity) -- deferred retirement: idempotent
                # persistence of a fact the scan already proved; _dead is
                # only ever read for membership, never iterated.
                self._store.retire(retired_rows)
                # repro: allow(purity) -- see above
                self._dead.update(self._keys[i] for i in retired_rows)
            live_rows = live_rows[alive]
        if floor != self.retirement_budget:
            if not self._vectorized:
                admitted = np.fromiter(
                    (self._ledgers[self._keys[i]].admits(floor) for i in live_rows),
                    dtype=bool,
                    count=live_rows.size,
                )
            else:
                admitted = self._batch_filter.admits_batch(
                    self._totals_view()[live_rows], floor
                )
            live_rows = live_rows[admitted]
        if memo is not None:
            live_rows.setflags(write=False)  # shared across memo readers
            # repro: allow(purity) -- scan-memo cache fill: the memo only
            # exists while totals are frozen, and the cached rows are the
            # value an uncached scan would recompute identically.
            memo[floor] = live_rows
        return live_rows

    def usable_blocks(self, min_budget: Optional[PrivacyBudget] = None) -> List[object]:
        """Keys of blocks that can still absorb ``min_budget`` (default: the
        retirement threshold), in registration order."""
        floor = min_budget or self.retirement_budget
        return [self._keys[i] for i in self._live_admit_rows(floor)]

    def usable_blocks_tail(
        self,
        min_budget: Optional[PrivacyBudget],
        count: int,
        key_filter=None,
        row_filter=None,
    ) -> List[object]:
        """The newest ``count`` usable blocks (chronological order) -- the
        hot path of window selection.  One vectorized admit pass over live
        blocks.  ``row_filter`` is the vectorized per-caller filter (an
        ndarray of store rows -> boolean mask, e.g. the platform's
        reservation check); ``key_filter`` is the scalar per-key form.
        Either only ever sees blocks whose ledgers admitted the floor."""
        if count <= 0:
            return []
        floor = min_budget or self.retirement_budget
        if not self._vectorized:
            # Scalar-filter fallback keeps the seed's early-stopping tail
            # walk: O(count) ledger evaluations, not O(n_live).
            out = []
            live = self._store.live
            for i in range(len(self._store) - 1, -1, -1):
                if not live[i]:
                    continue
                key = self._keys[i]
                led = self._ledgers[key]
                if led.is_retired(self.retirement_budget):
                    # repro: allow(purity) -- deferred retirement (scalar
                    # tail walk); same idempotent persistence as the
                    # vectorized scan above.
                    self._store.retire(i)
                    # repro: allow(purity) -- see above
                    self._dead.add(key)
                    continue
                if not led.admits(floor):
                    continue
                if row_filter is not None and not bool(
                    np.asarray(row_filter(np.array([i], dtype=np.intp)))[0]
                ):
                    continue
                if key_filter is not None and not key_filter(key):
                    continue
                out.append(key)
                if len(out) == count:
                    break
            out.reverse()
            return out
        rows = self._live_admit_rows(floor)
        if row_filter is not None and rows.size:
            rows = rows[np.asarray(row_filter(rows), dtype=bool)]
        if key_filter is None:
            return [self._keys[i] for i in rows[-count:]]
        out: List[object] = []
        for i in rows[::-1]:
            key = self._keys[i]
            if not key_filter(key):
                continue
            out.append(key)
            if len(out) == count:
                break
        out.reverse()
        return out

    def retired_blocks(self) -> List[object]:
        self._live_admit_rows(self.retirement_budget)  # refresh the dead set
        return [k for k in self._keys if k in self._dead]

    def stream_loss_bound(self) -> PrivacyBudget:
        """The stream-wide guarantee: a bound dominating *every* block
        (Theorem 4.2), i.e. the component-wise max over block bounds.

        (A lexicographic max would under-report delta whenever the
        highest-epsilon block is not also the highest-delta one.)
        """
        if not self._keys:
            return ZERO_BUDGET
        return self._loss_bound_over_rows(None)

    def _loss_bound_over_rows(self, rows: Optional[np.ndarray]) -> PrivacyBudget:
        """Component-wise max of the per-block bounds of the named store
        rows -- ``stream_loss_bound`` over all rows (``rows=None``, which
        reduces over the store view without copying it), a shard's bound
        over its rows (``ShardedBlockAccountant.shard_loss_bounds``).  One
        vectorized pass for the known filter families; blocks with no
        charges contribute zero, not the filter's slack."""
        if rows is None:
            if len(self._store) == 0:
                return ZERO_BUDGET
            totals_rows = self._store.totals
            counts = self._store.charge_counts
        else:
            if rows.size == 0:
                return ZERO_BUDGET
            totals_rows = self._store.totals[rows]
            counts = self._store.charge_counts[rows]
        if type(self._batch_filter) is BasicCompositionFilter:
            # Basic composition's per-block bound is exactly the totals row.
            eps = float(totals_rows[:, TOT_EPS].max())
            delta = float(np.minimum(1.0, totals_rows[:, TOT_DELTA]).max())
            return PrivacyBudget(eps, delta)
        if type(self._batch_filter) is StrongCompositionFilter:
            # One vectorized Theorem A.2 pass over the charged rows.
            charged = counts > 0
            if not charged.any():
                return ZERO_BUDGET
            totals = totals_rows[charged]
            f = self._batch_filter
            strong = rogers_filter_epsilon_from_sums_batch(
                totals[:, TOT_SQ], totals[:, TOT_LINEAR],
                f.epsilon_global, f.delta_slack,
            )
            eps = float(np.minimum(strong, totals[:, TOT_EPS]).max())
            delta = float(np.minimum(1.0, f.delta_slack + totals[:, TOT_DELTA]).max())
            return PrivacyBudget(eps, delta)
        loss_bound_batch = getattr(self._batch_filter, "loss_bound_batch", None)
        if self._vectorized and loss_bound_batch is not None:
            # Filters with a vectorized per-row bound (e.g. the Renyi
            # filter's converted-RDP curve): one pass over charged rows.
            charged = counts > 0
            if not charged.any():
                return ZERO_BUDGET
            eps_rows, delta_rows = loss_bound_batch(totals_rows[charged])
            return PrivacyBudget(
                float(eps_rows.max()), float(min(1.0, delta_rows.max()))
            )
        worst_eps = 0.0
        worst_delta = 0.0
        row_iter = range(len(self._store)) if rows is None else rows
        for i in row_iter:
            bound = self._ledgers[self._keys[i]].loss_bound()
            worst_eps = max(worst_eps, bound.epsilon)
            worst_delta = max(worst_delta, bound.delta)
        return PrivacyBudget(worst_eps, worst_delta)

    @property
    def charges(self) -> List[ChargeRecord]:
        return list(self._charges)
