"""Block-level privacy accounting (the paper's central mechanism).

The :class:`BlockAccountant` keeps one :class:`BlockLedger` per data block
and implements Alg. 4(c)'s ``AccessControl`` check: a query naming a set of
blocks and an (epsilon, delta) is admitted iff *every* named block's filter
admits the charge; the charge is then committed atomically (all blocks or
none).  By Theorem 4.2/4.3 this enforces the global (eps_g, delta_g)-DP
guarantee for the whole stream while new blocks keep arriving with zero
privacy loss -- the property that lets Sage run forever.

A block whose filter no longer admits the configured minimum charge is
*retired* (the DP-informed retention policy of §3.2): it stays retired for
good, since privacy loss never decreases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.filters import BasicCompositionFilter, PrivacyFilter
from repro.dp.budget import PrivacyBudget, ZERO_BUDGET
from repro.errors import BlockRetiredError, BudgetExceededError, InvalidBudgetError

__all__ = ["BlockLedger", "BlockAccountant", "ChargeRecord"]


@dataclass(frozen=True)
class ChargeRecord:
    """One committed charge: who consumed what, against which blocks."""

    budget: PrivacyBudget
    block_keys: tuple
    label: str = ""


@dataclass
class BlockLedger:
    """Charge history + filter for a single block.

    Running totals (epsilon, delta, epsilon^2, and the strong-composition
    linear term) are maintained on every charge so admissibility checks are
    O(1) instead of O(|history|) -- ledgers sit on the platform's hottest
    path (every block scan of every session, every hour).
    """

    key: object
    filter: PrivacyFilter
    history: List[PrivacyBudget] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._totals = [0.0, 0.0, 0.0, 0.0]  # eps, delta, eps^2, linear
        for budget in self.history:
            self._accumulate(budget)

    def _accumulate(self, budget: PrivacyBudget) -> None:
        import math

        eps = budget.epsilon
        self._totals[0] += eps
        self._totals[1] += budget.delta
        self._totals[2] += eps * eps
        self._totals[3] += math.expm1(eps) * eps / 2.0

    def record(self, budget: PrivacyBudget) -> None:
        """Append a committed charge, keeping the running totals in sync."""
        self.history.append(budget)
        self._accumulate(budget)

    def admits(self, candidate: PrivacyBudget) -> bool:
        return self.filter.admits(self.history, candidate, totals=tuple(self._totals))

    def charge(self, budget: PrivacyBudget) -> None:
        if not self.admits(budget):
            raise BudgetExceededError(
                f"charge {budget} exceeds block {self.key!r}'s remaining budget",
                block_id=self.key,
            )
        self.record(budget)

    def max_epsilon(self, delta: float = 0.0) -> float:
        """Largest epsilon still chargeable at the given delta."""
        return self.filter.max_epsilon(self.history, delta)

    def loss_bound(self) -> PrivacyBudget:
        """DP guarantee covering everything charged to this block so far."""
        return self.filter.loss_bound(self.history)

    def is_retired(self, min_budget: PrivacyBudget) -> bool:
        """True when the block can no longer absorb even ``min_budget``."""
        return not self.admits(min_budget)


class BlockAccountant:
    """All block ledgers of one sensitive stream, with atomic multi-block charges.

    Parameters
    ----------
    epsilon_global / delta_global:
        The stream's global DP policy (the company-configured ceiling).
    filter_factory:
        Builds the per-block filter; defaults to basic composition
        (Theorem 4.3).  Pass ``StrongCompositionFilter`` for Theorem A.2
        accounting.
    retirement_budget:
        Blocks that cannot absorb this charge any more count as retired;
        defaults to (epsilon_global/1000, 0).
    """

    def __init__(
        self,
        epsilon_global: float,
        delta_global: float,
        filter_factory: Optional[Callable[[float, float], PrivacyFilter]] = None,
        retirement_budget: Optional[PrivacyBudget] = None,
    ) -> None:
        if filter_factory is None:
            filter_factory = BasicCompositionFilter
        self._make_filter = filter_factory
        self.epsilon_global = epsilon_global
        self.delta_global = delta_global
        self.retirement_budget = retirement_budget or PrivacyBudget(
            epsilon_global / 1000.0, 0.0
        )
        self._ledgers: Dict[object, BlockLedger] = {}
        self._charges: List[ChargeRecord] = []
        # Retirement is permanent (privacy loss never decreases), so dead
        # blocks can be pruned from every scan once detected.  This keeps
        # usable_blocks() linear in the number of *live* blocks even when a
        # stream has run for thousands of hours.
        self._dead: set = set()

    # ------------------------------------------------------------------
    # Block lifecycle
    # ------------------------------------------------------------------
    def register_block(self, key: object) -> BlockLedger:
        """Create a ledger for a freshly ingested block (zero loss so far)."""
        if key in self._ledgers:
            raise InvalidBudgetError(f"block {key!r} already registered")
        ledger = BlockLedger(
            key=key, filter=self._make_filter(self.epsilon_global, self.delta_global)
        )
        self._ledgers[key] = ledger
        return ledger

    def register_blocks(self, keys: Sequence[object]) -> None:
        for key in keys:
            self.register_block(key)

    def __contains__(self, key: object) -> bool:
        return key in self._ledgers

    def ledger(self, key: object) -> BlockLedger:
        if key not in self._ledgers:
            raise InvalidBudgetError(f"block {key!r} was never registered")
        return self._ledgers[key]

    @property
    def block_keys(self) -> List[object]:
        return list(self._ledgers)

    # ------------------------------------------------------------------
    # The AccessControl check (Alg. 4(c) line 8)
    # ------------------------------------------------------------------
    def can_charge(self, keys: Sequence[object], budget: PrivacyBudget) -> bool:
        """True iff every named block admits the charge."""
        if not keys:
            return False
        return all(self.ledger(k).admits(budget) for k in keys)

    def charge(
        self, keys: Sequence[object], budget: PrivacyBudget, label: str = ""
    ) -> ChargeRecord:
        """Atomically charge ``budget`` to every named block.

        Either all ledgers absorb the charge or none do (a failed check on
        any block leaves every other block untouched).
        """
        keys = list(keys)
        if not keys:
            raise InvalidBudgetError("a charge must name at least one block")
        if len(set(keys)) != len(keys):
            raise InvalidBudgetError("duplicate block keys in one charge")
        for key in keys:
            ledger = self.ledger(key)
            if ledger.admits(budget):
                continue
            if ledger.is_retired(self.retirement_budget):
                raise BlockRetiredError(f"block {key!r} is retired", block_id=key)
            raise BudgetExceededError(
                f"block {key!r} cannot absorb {budget}", block_id=key
            )
        for key in keys:
            self._ledgers[key].record(budget)
        record = ChargeRecord(budget=budget, block_keys=tuple(keys), label=label)
        self._charges.append(record)
        return record

    # ------------------------------------------------------------------
    # Queries used by the platform / iterators
    # ------------------------------------------------------------------
    def max_epsilon(self, keys: Sequence[object], delta: float = 0.0) -> float:
        """Largest epsilon chargeable to *all* named blocks at once."""
        if not keys:
            return 0.0
        return min(self.ledger(k).max_epsilon(delta) for k in keys)

    def usable_blocks(self, min_budget: Optional[PrivacyBudget] = None) -> List[object]:
        """Keys of blocks that can still absorb ``min_budget`` (default: the
        retirement threshold), in registration order."""
        floor = min_budget or self.retirement_budget
        out = []
        for k, led in self._ledgers.items():
            if k in self._dead:
                continue
            if led.is_retired(self.retirement_budget):
                self._dead.add(k)
                continue
            if led.admits(floor):
                out.append(k)
        return out

    def usable_blocks_tail(
        self,
        min_budget: Optional[PrivacyBudget],
        count: int,
        key_filter=None,
    ) -> List[object]:
        """The newest ``count`` usable blocks (chronological order), scanning
        from the tail with early stop -- the hot path of window selection."""
        floor = min_budget or self.retirement_budget
        out: List[object] = []
        for k in reversed(self._ledgers):  # registration order, newest first
            if k in self._dead:
                continue
            led = self._ledgers[k]
            if led.is_retired(self.retirement_budget):
                self._dead.add(k)
                continue
            if not led.admits(floor):
                continue
            if key_filter is not None and not key_filter(k):
                continue
            out.append(k)
            if len(out) == count:
                break
        out.reverse()
        return out

    def retired_blocks(self) -> List[object]:
        for k, led in self._ledgers.items():
            if k not in self._dead and led.is_retired(self.retirement_budget):
                self._dead.add(k)
        return [k for k in self._ledgers if k in self._dead]

    def stream_loss_bound(self) -> PrivacyBudget:
        """The stream-wide guarantee: max over blocks (Theorem 4.2)."""
        worst = ZERO_BUDGET
        for led in self._ledgers.values():
            bound = led.loss_bound()
            if (bound.epsilon, bound.delta) > (worst.epsilon, worst.delta):
                worst = bound
        return worst

    @property
    def charges(self) -> List[ChargeRecord]:
        return list(self._charges)
