"""The wide-access Model & Feature Store (Fig. 1, §2.1).

Everything placed here is, per the threat model (§2.2), *released to the
untrusted domain*: the store is the boundary at which privacy loss is
incurred, which is why the platform only pushes bundles whose budgets were
charged through access control.  The store itself is a plain registry --
teams discover and reuse released models+features from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.validation.outcomes import ValidationResult
from repro.dp.budget import PrivacyBudget
from repro.errors import PipelineError

__all__ = ["ReleasedBundle", "ModelFeatureStore"]


@dataclass(frozen=True)
class ReleasedBundle:
    """A model+features release with its provenance."""

    name: str
    version: int
    model: object
    features: Dict
    validation: ValidationResult
    budget: PrivacyBudget
    block_keys: Tuple
    release_time_hours: float


class ModelFeatureStore:
    """Versioned registry of released bundles."""

    def __init__(self) -> None:
        self._bundles: Dict[str, List[ReleasedBundle]] = {}

    def release(
        self,
        name: str,
        model: object,
        features: Dict,
        validation: ValidationResult,
        budget: PrivacyBudget,
        block_keys,
        release_time_hours: float = 0.0,
    ) -> ReleasedBundle:
        """Publish a bundle; only validated models should reach this point."""
        if not validation.accepted:
            raise PipelineError(
                f"refusing to release {name!r}: validation outcome is "
                f"{validation.outcome.value!r}, not accept"
            )
        versions = self._bundles.setdefault(name, [])
        bundle = ReleasedBundle(
            name=name,
            version=len(versions) + 1,
            model=model,
            features=dict(features),
            validation=validation,
            budget=budget,
            block_keys=tuple(block_keys),
            release_time_hours=release_time_hours,
        )
        versions.append(bundle)
        return bundle

    # ------------------------------------------------------------------
    def latest(self, name: str) -> Optional[ReleasedBundle]:
        versions = self._bundles.get(name)
        return versions[-1] if versions else None

    def versions(self, name: str) -> List[ReleasedBundle]:
        return list(self._bundles.get(name, []))

    def names(self) -> List[str]:
        return list(self._bundles)

    def __len__(self) -> int:
        return sum(len(v) for v in self._bundles.values())

    def total_released_budget(self) -> PrivacyBudget:
        """Sum of all released bundles' budgets (diagnostic; the *per-block*
        accounting in the accountant is what the guarantee rests on)."""
        total = PrivacyBudget(0.0, 0.0)
        for versions in self._bundles.values():
            for bundle in versions:
                total = total + bundle.budget
        return total

    # ------------------------------------------------------------------
    def version_marks(self) -> Dict[str, int]:
        """Per-name version counts right now (the durability layer's
        pre-hour mark for :meth:`rollback_to_marks`)."""
        return {name: len(versions) for name, versions in self._bundles.items()}

    def rollback_to_marks(self, marks: Dict[str, int]) -> None:
        """Withdraw every bundle released since ``marks`` was captured
        (the platform's hour rollback: a rolled-back hour's releases were
        never validly accounted, so they must not stay published)."""
        for name in list(self._bundles):
            keep = marks.get(name, 0)
            if keep <= 0:
                del self._bundles[name]
            else:
                del self._bundles[name][keep:]
