"""Sharded block accounting: partitioned ledger stores + two-phase commit.

Sage's block composition is embarrassingly parallel: blocks are disjoint
data slices, every admissibility decision is arithmetic on one block's
running-totals row, and a multi-block charge is just the conjunction of
per-block decisions (Lecuyer et al., SOSP 2019, §5).  Privacy state
therefore partitions cleanly by block key.  This module exploits that:

* :class:`ShardedLedgerStore` partitions a stream's blocks into ``n_shards``
  shards by a pluggable *partitioner* and keeps each shard's totals in its
  own contiguous :class:`~repro.core.accountant.LedgerStore` (at any filter
  schema width), alongside a coherent *global-row-space* mirror;
* :class:`ShardedBlockAccountant` is a drop-in
  :class:`~repro.core.accountant.BlockAccountant` whose batched settlement
  (``charge_many`` / ``can_charge_many`` / staged commits) runs as a
  deterministic **two-phase shard commit**: every touched shard validates
  its slice of the batch locally (optionally in a worker pool), then the
  batch commits on all shards or aborts on all of them.

Partitioner contract
--------------------
A partitioner is any object with ``n_shards`` and
``shard_of(key, index) -> int`` where ``index`` is the block's registration
index (its global store row).  The mapping must be **deterministic and
stable**: a block's shard is decided once at registration and never changes
(rows never move -- the same invariant the row caches and the
``ReservationTable`` column alignment rely on).  Two policies ship here:

* :class:`HashPartitioner` -- a stable content hash of the block key
  (``zlib.crc32`` of its ``repr``; *not* Python's randomized ``hash``), so
  a key lands on the same shard in every process and every run;
* :class:`RangePartitioner` -- contiguous ranges: runs of ``span``
  consecutive registrations (for time-partitioned streams, ``span``
  consecutive hours) per shard, striped round-robin so all shards keep
  growing as the stream does.

The global-row-space invariant
------------------------------
Every public accountant surface keeps speaking the *global* row space --
rows in registration order across all shards, exactly the single-store
numbering.  ``rows_for_keys`` returns global rows, ``usable_blocks`` et al.
scan in registration order, and the platform's ``ReservationTable`` columns
stay aligned without knowing shards exist.  Internally the sharded store
dual-writes: every totals update lands in the owning shard's contiguous
store *and* in the global mirror (the same float64 values, written once
each), so shard-local validation reads its small contiguous slab while
whole-stream scans and staged overlays read the mirror -- both views are
byte-identical to the single-store layout at all times, which is what makes
every PR 1-4 scan, staging, and parity property carry over unchanged.

Two-phase shard commit
----------------------
``charge_many`` groups each request's rows by owning shard and validates
shard by shard with the exact intra-batch float accumulation of the
single-store path (each shard replays *its* rows of every request, in
request order; rows are disjoint across shards, so per-row accumulation is
untouched by the grouping).  A shard stops at its first refusal; the
globally-first refusal -- the minimal ``(request, key position)`` over
shards -- raises exactly the error the sequential path raises, and nothing
commits anywhere.  When every shard validates, phase two bulk-writes each
shard's post-batch rows (all shards or none; the write itself cannot be
refused).  Validation is pure per shard, so it can fan out across a thread
pool (``commit_workers``); results are deterministic regardless of
scheduling because shards share no rows.

Staged batches ride the same machinery: :class:`ShardedStagedBatch` keeps
the overlay's effective totals in the global row space (bit-identical
accumulation) while tracking staged spend per shard
(``staged_spend_by_shard``), and both the validating commit
(``charge_many``) and the trusted bulk-write commit land through the
sharded store's per-shard writes.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.accountant import (
    BlockAccountant,
    LedgerStore,
    StagedBatch,
)
from repro.core.filters import TOTALS_BASE
from repro.dp.budget import PrivacyBudget
from repro.errors import InvalidBudgetError, RecoveryError

__all__ = [
    "HashPartitioner",
    "RangePartitioner",
    "ShardedLedgerStore",
    "ShardedStagedBatch",
    "ShardedBlockAccountant",
    "sharded_accountant_factory",
]


def _check_n_shards(n_shards: int) -> int:
    n_shards = int(n_shards)
    if n_shards < 1:
        raise InvalidBudgetError(f"n_shards must be >= 1, got {n_shards}")
    return n_shards


class HashPartitioner:
    """Stable content-hash shard assignment.

    Uses ``zlib.crc32`` of the key's ``repr`` -- deterministic across
    processes and runs (Python's builtin ``hash`` is randomized for
    strings), so a replayed stream reproduces the same shard layout.
    The cross-process guarantee holds for keys with a *value-based* repr
    (ints, floats, strings, and tuples thereof -- every key type the
    platform's partitioners produce); a custom key class relying on the
    default ``object.__repr__`` (which embeds a memory address) still
    shards consistently within one process but must override ``__repr__``
    (or use :class:`RangePartitioner`) to keep layouts reproducible
    across processes.
    """

    def __init__(self, n_shards: int) -> None:
        self.n_shards = _check_n_shards(n_shards)

    def shard_of(self, key: object, index: int) -> int:
        return zlib.crc32(repr(key).encode("utf-8")) % self.n_shards


class RangePartitioner:
    """Contiguous-range shard assignment.

    Registration order is the stream's block order (time order for
    time-partitioned streams), so runs of ``span`` consecutive
    registrations form contiguous key ranges; striping the runs
    round-robin keeps every shard growing as the stream does instead of
    parking all fresh (highest-budget) blocks on the last shard.
    """

    def __init__(self, n_shards: int, span: int = 64) -> None:
        self.n_shards = _check_n_shards(n_shards)
        if int(span) < 1:
            raise InvalidBudgetError(f"span must be >= 1, got {span}")
        self.span = int(span)

    def shard_of(self, key: object, index: int) -> int:
        return (index // self.span) % self.n_shards


class ShardedLedgerStore:
    """Per-shard contiguous ledger stores behind a global-row-space view.

    Presents the exact :class:`~repro.core.accountant.LedgerStore` surface
    (``totals`` / ``live`` / ``charge_counts`` / ``write_row`` /
    ``write_rows`` / ``retire``) in the global row space, so every existing
    accountant scan and overlay runs unmodified, while each shard's rows
    also live in their own contiguous store for shard-local validation.
    Writes are applied to both (same float64 values; the mirror is the
    read view, the shard stores are the parallel-validation view).
    """

    def __init__(
        self, n_shards: int, width: int = TOTALS_BASE, capacity: int = 64
    ) -> None:
        n_shards = _check_n_shards(n_shards)
        self._n_shards = n_shards
        self._mirror = LedgerStore(capacity, width)
        per_shard = max(8, capacity // n_shards)
        self._shards = [LedgerStore(per_shard, width) for _ in range(n_shards)]
        # Global row -> (owning shard, local row) and the inverse
        # (per-shard arrays of global rows in local-row order).
        self._shard_ids = np.zeros(capacity, dtype=np.intp)
        self._local = np.zeros(capacity, dtype=np.intp)
        self._members = [
            np.zeros(per_shard, dtype=np.intp) for _ in range(n_shards)
        ]

    # -- LedgerStore surface (global row space) -------------------------
    def __len__(self) -> int:
        return len(self._mirror)

    @property
    def width(self) -> int:
        return self._mirror.width

    @property
    def totals(self) -> np.ndarray:
        """Global (n_blocks, width) totals view (same caveats as
        :attr:`LedgerStore.totals`: growth reallocates, never cache)."""
        return self._mirror.totals

    @property
    def live(self) -> np.ndarray:
        return self._mirror.live

    @property
    def charge_counts(self) -> np.ndarray:
        return self._mirror.charge_counts

    def append(self, shard: Optional[int] = None) -> int:
        """Add a zeroed row owned by ``shard``; returns its *global* row.

        ``shard`` defaults to 0 so the store still satisfies the plain
        ``append()`` contract (the accountant's registration path always
        passes the partitioner's choice).
        """
        shard = 0 if shard is None else int(shard)
        if not 0 <= shard < self._n_shards:
            raise InvalidBudgetError(
                f"shard {shard} out of range [0, {self._n_shards})"
            )
        row = self._mirror.append()
        if row == self._shard_ids.shape[0]:
            self._shard_ids = self._grow_index(self._shard_ids, row)
            self._local = self._grow_index(self._local, row)
        local = self._shards[shard].append()
        members = self._members[shard]
        if local == members.shape[0]:
            self._members[shard] = members = self._grow_index(members, local)
        members[local] = row
        self._shard_ids[row] = shard
        self._local[row] = local
        return row

    @staticmethod
    def _grow_index(array: np.ndarray, size: int) -> np.ndarray:
        grown = np.zeros(2 * array.shape[0], dtype=array.dtype)
        grown[:size] = array[:size]
        return grown

    def write_row(self, index: int, totals: Sequence[float], count: int) -> None:
        self._mirror.write_row(index, totals, count)
        self._shards[self._shard_ids[index]].write_row(
            self._local[index], totals, count
        )

    def write_rows(self, indices, totals: np.ndarray, counts: np.ndarray) -> None:
        """Bulk row update, fanned out to each owning shard (the phase-two
        commit of the sharded ``charge_many``)."""
        indices = np.atleast_1d(np.asarray(indices, dtype=np.intp))
        totals = np.atleast_2d(np.asarray(totals))
        counts = np.atleast_1d(np.asarray(counts))
        self._mirror.write_rows(indices, totals, counts)
        sids = self._shard_ids[indices]
        for shard in np.unique(sids):
            mask = sids == shard
            self._shards[shard].write_rows(
                self._local[indices[mask]], totals[mask], counts[mask]
            )

    def retire(self, indices) -> None:
        indices = np.atleast_1d(np.asarray(indices, dtype=np.intp))
        # repro: allow(purity) -- deferred retirement fan-out: mirror and
        # shards persist the same idempotent fact the scan already proved.
        self._mirror.retire(indices)
        sids = self._shard_ids[indices]
        for shard in np.unique(sids):
            # repro: allow(purity) -- see above
            self._shards[shard].retire(self._local[indices[sids == shard]])

    def truncate_to(self, size: int) -> None:
        """Drop every global row past ``size`` (the durability layer's hour
        rollback), shrinking each owning shard's store in step.

        Rows are appended to a shard in global registration order, so the
        trailing *global* rows are exactly the trailing *local* rows of
        their shards -- each shard store just truncates its own tail.
        """
        current = len(self._mirror)
        size = int(size)
        if size < 0 or size > current:
            raise RecoveryError(
                f"cannot truncate store of {current} rows to {size}"
            )
        if size == current:
            return
        removed_shards = self._shard_ids[size:current]
        for shard in np.unique(removed_shards):
            sstore = self._shards[shard]
            sstore.truncate_to(len(sstore) - int((removed_shards == shard).sum()))
        self._mirror.truncate_to(size)
        # _shard_ids/_local/_members entries past the new sizes are stale
        # but unreachable; the next append overwrites them.

    # -- shard topology -------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self._n_shards

    def shard_store(self, shard: int) -> LedgerStore:
        """One shard's contiguous store (rows in shard-local order)."""
        return self._shards[shard]

    def shard_sizes(self) -> np.ndarray:
        return np.array([len(s) for s in self._shards], dtype=np.int64)

    def shard_of_rows(self, rows) -> np.ndarray:
        """Owning shard of each global row."""
        return self._shard_ids[np.asarray(rows, dtype=np.intp)]

    def local_rows(self, rows) -> np.ndarray:
        """Shard-local row of each global row (pair with
        :meth:`shard_of_rows`)."""
        return self._local[np.asarray(rows, dtype=np.intp)]

    def global_rows(self, shard: int, local_rows) -> np.ndarray:
        """Global rows of the given shard-local rows."""
        return self._members[shard][np.asarray(local_rows, dtype=np.intp)]

    def shard_rows(self, shard: int) -> np.ndarray:
        """All global rows owned by ``shard``, in shard-local order."""
        return self._members[shard][: len(self._shards[shard])].copy()


class ShardedStagedBatch(StagedBatch):
    """A staged overlay whose per-shard footprint is readable on demand.

    The effective-totals accumulation is inherited *unchanged* (global row
    space, bit-identical floats to the single-store overlay -- that is the
    parity contract), and staging itself carries zero extra bookkeeping:
    the per-shard view operators and shard-commit diagnostics want is
    derived lazily from the overlay's retained requests/rows by
    :meth:`shard_footprint`.
    """

    def __init__(self, accountant: "ShardedBlockAccountant") -> None:
        super().__init__(accountant)
        store = accountant.store
        self._shard_of_rows = store.shard_of_rows
        self._n_shards = store.n_shards

    def shard_footprint(self):
        """How the open batch distributes over shards, derived on demand.

        Returns ``(request_counts, row_touches, epsilon)`` arrays of
        length ``n_shards``: staged charges touching each shard, rows
        touched per shard (with multiplicity), and staged
        basic-composition epsilon per shard.
        """
        request_counts = np.zeros(self._n_shards, dtype=np.int64)
        row_touches = np.zeros(self._n_shards, dtype=np.int64)
        epsilon = np.zeros(self._n_shards, dtype=np.float64)
        for (_, budget, _), rows in zip(self.requests, self.request_rows):
            touches = np.bincount(
                self._shard_of_rows(rows), minlength=self._n_shards
            )
            request_counts += touches > 0
            row_touches += touches
            epsilon += touches * budget.epsilon
        return request_counts, row_touches, epsilon


class ShardedBlockAccountant(BlockAccountant):
    """A :class:`BlockAccountant` over a partitioned ledger store.

    Drop-in: the full accountant surface (``admits_keys``, ``can_charge`` /
    ``can_charge_many``, ``charge`` / ``charge_many`` with cross-shard
    all-or-nothing rollback, ``max_epsilon`` / ``max_epsilon_batch``,
    staging overlays, ``rows_for_keys``, every block scan, loss bounds) is
    inherited and stays *byte-identical* to the single-store accountant --
    the global mirror holds the same float64 rows in the same order, and
    the sharded validation replays the same per-row accumulation.  What
    changes is the execution shape: batched settlement validates shard by
    shard over small contiguous slabs (phase one, optionally in a worker
    pool) and commits per shard (phase two, all shards or none).

    Parameters
    ----------
    n_shards:
        Number of shards (ignored when ``partitioner`` is given).
    partitioner:
        Shard policy object (see the module docstring's contract);
        defaults to :class:`HashPartitioner`.
    commit_workers:
        Thread-pool width for phase-one shard validation; 0 (default)
        validates shards serially.  Results are identical either way.
    """

    def __init__(
        self,
        epsilon_global: float,
        delta_global: float,
        filter_factory=None,
        retirement_budget: Optional[PrivacyBudget] = None,
        n_shards: int = 4,
        partitioner=None,
        commit_workers: int = 0,
    ) -> None:
        super().__init__(
            epsilon_global,
            delta_global,
            filter_factory=filter_factory,
            retirement_budget=retirement_budget,
        )
        if partitioner is None:
            partitioner = HashPartitioner(n_shards)
        self._partitioner = partitioner
        # Replace the flat store before any block registers; the mirror
        # inside reproduces the single store byte for byte.
        self._store = ShardedLedgerStore(
            partitioner.n_shards, width=self._store.width
        )
        self._commit_workers = max(0, int(commit_workers))
        self._commit_pool: Optional[ThreadPoolExecutor] = None
        # Per-shard phase-one wall times (microseconds), stopwatched by
        # _validate_for_commit when a profiler is attached and consumed
        # by _commit_validated -- commit-path-only scratch, always None
        # outside one charge_many call.
        self._profile_walls: Optional[Dict[int, float]] = None

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self._store.n_shards

    @property
    def partitioner(self):
        return self._partitioner

    def shard_of_key(self, key: object) -> int:
        """The shard owning a registered block."""
        return int(self._store.shard_of_rows(self._key_rows([key]))[0])

    def _append_store_row(self, key: object) -> int:
        """Registration routes the new row to the partitioner's shard; all
        other :meth:`register_block` bookkeeping is inherited."""
        return self._store.append(
            int(self._partitioner.shard_of(key, len(self._store)))
        )

    def _new_staged_batch(self) -> StagedBatch:
        return ShardedStagedBatch(self)

    def staged_spend_by_shard(self) -> np.ndarray:
        """Per-shard staged basic-composition epsilon of the open batch
        (zeros when no batch is open)."""
        if isinstance(self._staged, ShardedStagedBatch):
            return self._staged.shard_footprint()[2]
        return np.zeros(self.n_shards)

    # ------------------------------------------------------------------
    # Two-phase shard commit (phase one: validate every shard)
    # ------------------------------------------------------------------
    def _validate_shard(self, items: List[tuple], norm: List[tuple], shard: int):
        """Replay one shard's slice of the batch over its contiguous store.

        ``items`` is ``[(request_index, positions, local_rows), ...]`` in
        request order, where ``positions`` are the request's key positions
        owned by this shard.  Stops at the shard's first refusal; decisions
        up to the *globally* first refusing request are exact because every
        earlier request was admitted on all its rows in every shard, so the
        accumulated scratch state matches the sequential path bit for bit.
        Returns ``(touched_local, work, counts_delta, refusal)`` with
        ``refusal = (request_index, position, retired) | None``.
        """
        sstore = self._store.shard_store(shard)
        touched = np.unique(np.concatenate([local for _, _, local in items]))
        work = sstore.totals[touched].copy()
        counts_delta = np.zeros(touched.size, dtype=np.int64)
        refusal = None
        for req_idx, positions, local in items:
            _, budget, _ = norm[req_idx]
            lrows = np.searchsorted(touched, local)
            admitted = self._batch_filter.admits_batch(work[lrows], budget)
            if not admitted.all():
                first = int(np.argmin(admitted))
                retired = not bool(
                    self._batch_filter.admits_batch(
                        work[lrows[first]], self.retirement_budget
                    )[0]
                )
                refusal = (req_idx, int(positions[first]), retired)
                break
            work[lrows] += self._contribution(budget)
            counts_delta[lrows] += 1
        return touched, work, counts_delta, refusal

    def _validate_many_vectorized(self, norm: List[tuple], walls=None):
        """Sharded phase-one validation with the single-store contract.

        Same call shape and semantics as the base method -- returns the
        sorted global ``(touched, work, counts_delta)`` of the whole batch,
        or raises the sequential path's error for the globally first
        refusing ``(request, key)`` -- so ``charge_many``,
        ``can_charge_many``, and the commit path run unmodified on top.
        ``walls`` (commit path only, profiler attached) is a caller-owned
        dict filled with each shard's validation wall time in microseconds
        -- stopwatched inside the worker callable but written back
        serially, so the pool threads never touch shared state.
        """
        store = self._store
        row_lists = [self._key_rows(keys) for keys, _, _ in norm]
        per_shard: dict = {}
        for req_idx, rows in enumerate(row_lists):
            sids = store.shard_of_rows(rows)
            local = store.local_rows(rows)
            for shard in np.unique(sids):
                mask = sids == shard
                per_shard.setdefault(int(shard), []).append(
                    (req_idx, np.flatnonzero(mask), local[mask])
                )

        shards = sorted(per_shard)
        timed = walls is not None

        def validate(s):
            if not timed:
                return self._validate_shard(per_shard[s], norm, s), 0.0
            t0 = time.perf_counter()
            res = self._validate_shard(per_shard[s], norm, s)
            return res, (time.perf_counter() - t0) * 1e6

        if self._commit_workers and len(shards) > 1:
            pool = self._ensure_commit_pool()
            pairs = list(pool.map(validate, shards))
        else:
            pairs = [validate(s) for s in shards]
        results = [res for res, _ in pairs]
        if timed:
            for s, (_, wall) in zip(shards, pairs):
                walls[s] = wall

        refusals = [res[3] for res in results if res[3] is not None]
        if refusals:
            req_idx, pos, retired = min(refusals, key=lambda r: (r[0], r[1]))
            keys, budget, _ = norm[req_idx]
            self._raise_refusal(keys[pos], budget, retired)

        # Phase two's input: gather every shard's post-batch rows back into
        # the sorted global row order the single-store path produces.
        touched = np.concatenate(
            [store.global_rows(s, res[0]) for s, res in zip(shards, results)]
        )
        work = np.concatenate([res[1] for res in results])
        counts_delta = np.concatenate([res[2] for res in results])
        order = np.argsort(touched)
        return touched[order], work[order], counts_delta[order]

    def _validate_for_commit(self, norm: List[tuple]):
        """Commit-path validation, stopwatching shards for the profiler.

        Without a profiler this is exactly the inherited delegation.  With
        one, each shard's phase-one wall time is measured (inside the
        worker callable, with plain ``perf_counter`` arithmetic -- no
        telemetry calls off the serial path) and parked for
        :meth:`_commit_validated` to attribute at the serial commit point.
        The stash is dead scratch on every other path: ``can_charge_many``
        calls the validator directly and never reaches this seam.
        """
        if getattr(self._tracer, "profiler", None) is None:
            return self._validate_many_vectorized(norm)
        walls: Dict[int, float] = {}
        result = self._validate_many_vectorized(norm, walls)
        self._profile_walls = walls
        return result

    def _commit_validated(self, norm, touched, work, counts_delta):
        """Phase two, with per-shard telemetry when a tracer is attached.

        Spans are emitted here -- the serial commit point -- never from
        inside the validation pool, so a traced run's emission order (and
        therefore its logical clock) is deterministic regardless of how
        phase one was scheduled.  Each touched shard gets one
        ``shard.validate`` span derived from the batch's committed
        footprint, then the inherited cross-shard bulk write runs under a
        ``shard.commit`` span.

        With a profiler attached the tee splits here: the deterministic
        ``shard.validate`` spans go straight to the tracer half (their
        tick durations are emission-order artifacts either way), while the
        profiler half gets one synthesized span per shard carrying the
        wall time :meth:`_validate_for_commit` measured -- the per-shard
        decomposition of the batch's parallel phase.  ``shard.commit``
        rides the tee like every other site (phase two is serial, its
        wall duration is real).
        """
        tracer = self._tracer
        walls, self._profile_walls = self._profile_walls, None
        if tracer is None:
            return super()._commit_validated(norm, touched, work, counts_delta)
        profiler = getattr(tracer, "profiler", None)
        base = getattr(tracer, "tracer", tracer)
        sids = self._store.shard_of_rows(touched)
        shards, row_counts = np.unique(sids, return_counts=True)
        for shard, rows in zip(shards.tolist(), row_counts.tolist()):
            with base.span("shard.validate", shard=shard, rows=rows):
                pass
            if profiler is not None and walls is not None:
                profiler.record_span(
                    "shard.validate",
                    walls.get(shard, 0.0),
                    shard=shard,
                    rows=rows,
                )
        with tracer.span(
            "shard.commit", shards=len(shards), requests=len(norm)
        ):
            return super()._commit_validated(norm, touched, work, counts_delta)

    def _ensure_commit_pool(self) -> ThreadPoolExecutor:
        if self._commit_pool is None:
            self._commit_pool = ThreadPoolExecutor(
                max_workers=self._commit_workers,
                thread_name_prefix="shard-validate",
            )
        return self._commit_pool

    def close(self) -> None:
        """Release the shard-validation worker threads (idempotent; a
        later ``charge_many`` re-creates the pool on demand)."""
        if self._commit_pool is not None:
            self._commit_pool.shutdown(wait=False)
            self._commit_pool = None

    # ------------------------------------------------------------------
    # Cross-shard aggregates
    # ------------------------------------------------------------------
    def shard_loss_bounds(self) -> List[PrivacyBudget]:
        """Per-shard stream loss bound (the worst block within each shard).

        The component-wise max over shards equals :meth:`stream_loss_bound`
        -- the aggregate every cross-shard dashboard must reduce with
        (taking any single shard's bound under-reports the stream).  Each
        shard is one vectorized pass over its rows (the same
        filter-family branches ``stream_loss_bound`` uses)."""
        return [
            self._loss_bound_over_rows(self._store.shard_rows(shard))
            for shard in range(self.n_shards)
        ]


def sharded_accountant_factory(
    n_shards: int,
    policy: str = "hash",
    span: int = 64,
    commit_workers: int = 0,
) -> Callable[..., ShardedBlockAccountant]:
    """An ``accountant_factory`` for :class:`~repro.core.access_control.
    SageAccessControl` / :class:`~repro.core.platform.Sage` that builds
    sharded accountants with the named partition policy ("hash" or
    "range")."""
    if policy not in ("hash", "range"):
        raise InvalidBudgetError(f"unknown shard policy {policy!r}")

    def factory(epsilon_global, delta_global, filter_factory=None, **kwargs):
        partitioner = (
            HashPartitioner(n_shards)
            if policy == "hash"
            else RangePartitioner(n_shards, span=span)
        )
        return ShardedBlockAccountant(
            epsilon_global,
            delta_global,
            filter_factory=filter_factory,
            partitioner=partitioner,
            commit_workers=commit_workers,
            **kwargs,
        )

    return factory
