"""DP training pipelines: the Sage analogue of TFX pipelines (§3.1, Fig. 2).

A pipeline owns three developer-supplied stages, mirroring Listing 1:

* ``preprocessing_fn(batch, epsilon, rng)`` -- optional; computes DP
  aggregate features (e.g. ``dp_group_by_mean``) and returns the model
  matrix.  Must be (epsilon, 0)-DP with respect to the batch.
* ``trainer_fn(X, y, budget, rng)`` -- trains and returns an
  :class:`~repro.ml.base.Estimator`; must be ``budget``-DP.
* an SLAed validator -- consumes the held-out split and the validation
  epsilon share.

``run`` splits the granted (epsilon, delta) across stages as in Fig. 2
(epsilon/3 each; all of delta to training) and charges the *sum* of the
stage budgets, exactly the accounting the paper uses.

Two further pipeline kinds cover Table 1's non-model rows:
:class:`StatisticPipeline` (Avg.Speed x3) and :class:`HistogramPipeline`
(Counts x26).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.validation.accuracy import DPAccuracyValidator
from repro.core.validation.loss import DPLossValidator
from repro.core.validation.outcomes import Outcome, ValidationResult
from repro.core.validation.statistics import DPStatisticValidator
from repro.data.stream import StreamBatch
from repro.dp.budget import PrivacyBudget
from repro.dp.mechanisms import make_rng
from repro.dp.queries import dp_count, dp_histogram
from repro.errors import PipelineError
from repro.ml.metrics import squared_errors
from repro.ml.preprocessing import train_test_split

__all__ = [
    "PipelineRun",
    "TrainingPipeline",
    "StatisticPipeline",
    "HistogramPipeline",
]

PreprocessFn = Callable[[StreamBatch, float, np.random.Generator], Tuple[np.ndarray, np.ndarray, Dict]]
TrainerFn = Callable[[np.ndarray, np.ndarray, PrivacyBudget, np.random.Generator], object]


@dataclass
class PipelineRun:
    """Everything one pipeline invocation produced."""

    name: str
    outcome: Outcome
    validation: ValidationResult
    budget_charged: PrivacyBudget
    model: object = None
    features: Dict = field(default_factory=dict)
    train_size: int = 0
    test_size: int = 0

    @property
    def accepted(self) -> bool:
        return self.outcome is Outcome.ACCEPT


class TrainingPipeline:
    """A model-producing DP pipeline (Taxi LR/NN, Criteo LG/NN).

    Parameters
    ----------
    name:
        Pipeline identifier (used in charge labels and the model store).
    trainer_fn:
        Must return an estimator and be ``budget``-DP.
    validator:
        :class:`DPLossValidator` or :class:`DPAccuracyValidator`.
    metric:
        ``"mse"`` feeds per-example squared errors to a loss validator;
        ``"accuracy"`` feeds 0/1 correctness to an accuracy validator.
    preprocessing_fn:
        Optional DP featurization stage; when absent its epsilon share goes
        to training (the split then matches pipelines whose preprocessing is
        record-local and free).
    erm_fn:
        Optional ``(X_train, y_train) -> per-example losses`` of the
        empirical risk minimizer, enabling the REJECT test (closed-form
        models only, §B.1).
    """

    def __init__(
        self,
        name: str,
        trainer_fn: TrainerFn,
        validator,
        metric: str = "mse",
        preprocessing_fn: Optional[PreprocessFn] = None,
        erm_fn: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
        test_fraction: float = 0.1,
    ) -> None:
        if metric not in ("mse", "accuracy"):
            raise PipelineError(f"metric must be 'mse' or 'accuracy', got {metric!r}")
        if metric == "mse" and not isinstance(validator, DPLossValidator):
            raise PipelineError("metric 'mse' requires a DPLossValidator")
        if metric == "accuracy" and not isinstance(validator, DPAccuracyValidator):
            raise PipelineError("metric 'accuracy' requires a DPAccuracyValidator")
        if not 0.0 < test_fraction < 1.0:
            raise PipelineError(f"test_fraction must be in (0, 1), got {test_fraction}")
        self.name = name
        self.trainer_fn = trainer_fn
        self.validator = validator
        self.metric = metric
        self.preprocessing_fn = preprocessing_fn
        self.erm_fn = erm_fn
        self.test_fraction = test_fraction

    # ------------------------------------------------------------------
    def _stage_budgets(self, budget: PrivacyBudget) -> Tuple[float, PrivacyBudget, float]:
        """(eps_preprocess, train_budget, eps_validate) per Fig. 2."""
        third = budget.epsilon / 3.0
        if self.preprocessing_fn is None:
            return 0.0, PrivacyBudget(2.0 * third, budget.delta), third
        return third, PrivacyBudget(third, budget.delta), third

    def _test_statistics(self, model, X_test: np.ndarray, y_test: np.ndarray) -> np.ndarray:
        predictions = model.predict(X_test)
        if self.metric == "mse":
            return squared_errors(y_test, predictions)
        labels = (np.asarray(predictions, dtype=float) >= 0.5).astype(float)
        return (labels == np.asarray(y_test, dtype=float)).astype(float)

    # ------------------------------------------------------------------
    def run(
        self,
        batch: StreamBatch,
        budget: PrivacyBudget,
        rng: np.random.Generator,
        correct_for_dp: bool = True,
    ) -> PipelineRun:
        """Preprocess, train, and SLA-validate on one assembled batch.

        The caller (iterator/platform) is responsible for having charged
        ``budget`` to the blocks that produced ``batch``; this method only
        guarantees it doesn't *exceed* that budget.
        """
        rng = make_rng(rng)
        eps_pre, train_budget, eps_val = self._stage_budgets(budget)

        features: Dict = {}
        if self.preprocessing_fn is not None:
            X, y, features = self.preprocessing_fn(batch, eps_pre, rng)
        else:
            X, y = batch.X, batch.y

        X_train, X_test, y_train, y_test = train_test_split(
            X, y, self.test_fraction, rng
        )
        model = self.trainer_fn(X_train, y_train, train_budget, rng)

        stats = self._test_statistics(model, X_test, y_test)
        erm_losses = None
        if self.erm_fn is not None and self.metric == "mse":
            erm_losses = self.erm_fn(X_train, y_train)
        if self.metric == "mse":
            validation = self.validator.validate(
                stats, eps_val, rng,
                erm_train_losses=erm_losses,
                correct_for_dp=correct_for_dp,
            )
        else:
            validation = self.validator.validate(
                stats, eps_val, rng, correct_for_dp=correct_for_dp
            )
        return PipelineRun(
            name=self.name,
            outcome=validation.outcome,
            validation=validation,
            budget_charged=budget,
            model=model,
            features=features,
            train_size=int(X_train.shape[0]),
            test_size=int(X_test.shape[0]),
        )


class StatisticPipeline:
    """Per-key DP mean statistic with absolute-error SLA (Avg.Speed x3).

    Releases ``dp_group_by_mean(key_column, value_column)`` and ACCEPTs only
    if every key's error bound meets the target.  Keys partition the data,
    so the whole release is (epsilon, 0)-DP by parallel composition; the
    confidence is union-bounded across keys.
    """

    def __init__(
        self,
        name: str,
        key_column: str,
        value_column: str,
        nkeys: int,
        value_range: float,
        target: float,
        confidence: float = 0.95,
    ) -> None:
        if nkeys <= 0:
            raise PipelineError(f"nkeys must be > 0, got {nkeys}")
        self.name = name
        self.key_column = key_column
        self.value_column = value_column
        self.nkeys = nkeys
        self.value_range = value_range
        self.target = target
        self.confidence = confidence

    def run(
        self,
        batch: StreamBatch,
        budget: PrivacyBudget,
        rng: np.random.Generator,
        correct_for_dp: bool = True,
    ) -> PipelineRun:
        rng = make_rng(rng)
        epsilon = budget.epsilon
        keys = np.asarray(batch.extras[self.key_column])
        values = np.asarray(batch.extras[self.value_column])
        # One validator per key; the keys partition the data, so by parallel
        # composition the combined release-and-bound is (epsilon, 0)-DP.
        # Confidence is union-bounded across keys.
        per_key_confidence = 1.0 - (1.0 - self.confidence) / self.nkeys
        validator = DPStatisticValidator(
            self.target, self.value_range, confidence=per_key_confidence
        )
        means = np.zeros(self.nkeys)
        worst_bound = 0.0
        all_accept = True
        for k in range(self.nkeys):
            key_values = values[keys == k]
            if key_values.size == 0:
                all_accept = False
                worst_bound = float("inf")
                continue
            means[k], result = validator.release_and_validate(
                key_values, epsilon, rng, correct_for_dp=correct_for_dp
            )
            worst_bound = max(worst_bound, result.details.get("error_bound", float("inf")))
            all_accept = all_accept and result.outcome is Outcome.ACCEPT
        outcome = Outcome.ACCEPT if all_accept else Outcome.RETRY
        validation = ValidationResult(
            outcome,
            PrivacyBudget(epsilon, 0.0),
            {"worst_error_bound": worst_bound},
        )
        return PipelineRun(
            name=self.name,
            outcome=outcome,
            validation=validation,
            budget_charged=budget,
            model=means,
            features={"group_means": means},
            train_size=len(batch),
            test_size=0,
        )


class HistogramPipeline:
    """DP frequency histogram of one categorical column (Criteo Counts x26).

    Releases normalized category frequencies and ACCEPTs when every
    category's absolute frequency error is bounded by the target with
    probability (1 - eta): Laplace tails (union over cells) plus Hoeffding
    sampling error, each corrected for the DP count of n.
    """

    def __init__(
        self,
        name: str,
        key_column: str,
        nkeys: int,
        target: float,
        confidence: float = 0.95,
    ) -> None:
        if nkeys <= 0:
            raise PipelineError(f"nkeys must be > 0, got {nkeys}")
        if target <= 0:
            raise PipelineError(f"target must be > 0, got {target}")
        self.name = name
        self.key_column = key_column
        self.nkeys = nkeys
        self.target = target
        self.confidence = confidence

    def run(
        self,
        batch: StreamBatch,
        budget: PrivacyBudget,
        rng: np.random.Generator,
        correct_for_dp: bool = True,
    ) -> PipelineRun:
        rng = make_rng(rng)
        epsilon = budget.epsilon
        keys = np.asarray(batch.extras[self.key_column])
        n = keys.size
        eta = 1.0 - self.confidence
        # epsilon/2 for the histogram (parallel across cells), epsilon/2 for n.
        counts = dp_histogram(keys, self.nkeys, epsilon / 2.0, rng)
        n_dp = dp_count(n, epsilon / 2.0, rng)
        correction = math.log(3.0 / (2.0 * eta)) if correct_for_dp else 0.0
        n_min = n_dp - 4.0 * correction / epsilon

        if n_min <= 1.0:
            outcome = Outcome.RETRY
            bound = float("inf")
            freqs = np.clip(counts / max(n_dp, 1.0), 0.0, 1.0)
        else:
            freqs = np.clip(counts / n_min, 0.0, 1.0)
            # Laplace tail on each cell count, union-bounded over cells.
            cell_eta = eta / (3.0 * self.nkeys)
            cell_tail = (2.0 / (epsilon / 2.0)) * math.log(1.0 / (2.0 * cell_eta))
            noise_error = (cell_tail + 4.0 * correction / epsilon) / n_min
            sampling_error = math.sqrt(math.log(3.0 * self.nkeys / eta) / (2.0 * n_min))
            bound = noise_error + sampling_error
            outcome = Outcome.ACCEPT if bound <= self.target else Outcome.RETRY

        validation = ValidationResult(
            outcome, PrivacyBudget(epsilon, 0.0), {"error_bound": bound}
        )
        return PipelineRun(
            name=self.name,
            outcome=outcome,
            validation=validation,
            budget_charged=budget,
            model=freqs,
            features={"frequencies": freqs},
            train_size=n,
            test_size=0,
        )
