"""Durable accounting: write-ahead charge log, snapshots, recovery.

Today's platform otherwise lives and dies with one Python process; this
module gives :class:`~repro.core.platform.Sage` crash durability (ROADMAP
open item 2's WAL/snapshot half).  The drive records every settled hour in
a write-ahead log *before* committing it in memory, periodically snapshots
the full accounting state, and a restarted platform recovers by loading
the latest valid snapshot and replaying the subsequent WAL hours through
the **existing** ``charge_many``/``request_many`` path -- so recovered
state is byte-identical to the uninterrupted run by construction, and the
repo's parity fingerprinting can verify it.

WAL file format
---------------
One append-only file, ``charge.wal``, in the platform's ``wal_dir``::

    8 bytes   file magic ``b"SAGEWAL1"``
    repeated  records, each framed as
                 uint32le  payload length
                 uint32le  CRC32 of the payload
                 payload   pickled dict

Two record kinds (the ``"kind"`` key of the payload dict):

* ``"hour"`` -- the write-ahead intent, appended and fsynced *before* the
  hour commits in memory.  Carries everything replay needs:

  ====================== ==================================================
  key                    value
  ====================== ==================================================
  ``hour_index``         0-based index of the hour being settled
  ``hours``              clock step of this ``advance`` call
  ``schema_width``       ledger totals width (validated on replay)
  ``n_entries``          pipelines submitted at hour start
  ``entry_names``        their names, submission order (validated)
  ``new_block_keys``     keys the hour's ingest registered (validated)
  ``requests``           the exact staged ``(keys, budget, label)`` batch
                         that one ``request_many`` call will commit
  ``deltas``             per driven session, in drive order: status /
                         epsilon / window_blocks / total_spent after the
                         hour plus the attempt records it appended
  ``rng_state``          the platform RNG's bit-generator state *after*
                         the hour (replay skips pipeline executions, so
                         it restores the post-hour stream position)
  ``clock_hours``        platform clock after the hour
  ====================== ==================================================

* ``"commit"`` -- the commit marker, appended after the in-memory commit:
  ``hour_index`` plus a ``digest`` (CRC32 of the pickled
  :func:`state_summary`) of the committed post-hour state.  Replay
  verifies each replayed hour against it.  A trailing ``"hour"`` record
  without its marker means the process died between WAL append and the
  commit marker; the hour is durable and is replayed (the record was
  fully determined before the commit began).

The reader (:func:`read_wal`) is **truncated-tail tolerant**: a final
record with fewer bytes than its frame promises (a crash mid-append) is
reported via ``truncated_tail``/``end_offset`` and ignored, and the
writer truncates it away on reopen.  A *complete* record whose CRC does
not match, or a bad file magic, is real corruption and raises
:class:`~repro.errors.WalCorruptionError` naming the file, byte offset,
and record index -- a corrupt record is never silently replayed.

Snapshot format and atomicity
-----------------------------
``snapshot-<hour>.snap`` files carry one framed record (magic
``b"SAGESNP1"``, then the same length/CRC frame) whose payload captures
everything :meth:`~repro.core.platform.Sage.recover` restores: accountant
export (keys, totals, live mask, charge counts, charge log), reservation
matrix and free pool, per-session protocol state, the pickled growing
database, RNG state, clock, and a state digest.  Snapshots are written to
a temp file in the same directory and published with ``os.replace``, so a
crash mid-write (crash point ``snapshot.mid_write``) can never leave a
half-written snapshot where the loader finds it; ``latest()`` also skips
corrupt snapshot files and falls back to the next older valid one.

Recovery procedure
------------------
On a **fresh** platform constructed with the same configuration (same
source, seed, filters, accountant factory) and the original pipelines in
submission order:

1. Load the newest valid snapshot, if any: re-submit the first
   ``len(entries)`` pipelines (names validated), restore the database,
   accountant, reservation table, session states, RNG, and clock, then
   verify the snapshot's state digest.
2. For each WAL ``"hour"`` record at or past the snapshot hour, in order:
   re-submit pipelines until the record's ``n_entries`` is reached, then
   replay the hour -- re-run ingest (the restored RNG regenerates the
   identical blocks; keys are validated against the record), register /
   allocate / grant through the normal hour-open path, apply the recorded
   per-session deltas in drive order (settling reservations attempt by
   attempt exactly as the live drive does), and commit the recorded
   request batch through **one** ``request_many`` call -- the same entry
   point the live hour used, no parallel apply path.  Restore the
   post-hour RNG state and verify the hour's commit digest when present.
3. Position the WAL writer at the end of the last complete record
   (repairing any torn tail) so the platform can keep advancing.

Recovery limitations (by design): released model artifacts are not
re-materialized (``bundle``/``final_run`` stay ``None`` on recovered
entries -- the accounting, attempts, and release times are the durability
contract; the model store is wide-access derived data), and a pipeline
submission is durable only once a later hour has committed (submissions
are recorded in the next hour record, not journaled individually).
Budgets and block keys are persisted with :mod:`pickle`; WAL and snapshot
files are trusted local state, not an interchange format.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.core import faults
from repro.core.adaptive import AttemptRecord
from repro.errors import RecoveryError, SnapshotMismatchError, WalCorruptionError

__all__ = [
    "RecoveryReport",
    "SnapshotStore",
    "WalScan",
    "WalWriter",
    "build_snapshot_payload",
    "pair_hour_records",
    "read_wal",
    "restore_snapshot_payload",
    "state_digest",
    "state_summary",
    "wal_path",
]

WAL_MAGIC = b"SAGEWAL1"
SNAP_MAGIC = b"SAGESNP1"
# Per-record frame: payload length, CRC32 of the payload.
_FRAME = struct.Struct("<II")
_PICKLE_PROTOCOL = 4


def wal_path(wal_dir) -> Path:
    """The charge log's location inside a platform's WAL directory."""
    return Path(wal_dir) / "charge.wal"


def _encode_record(payload_obj) -> bytes:
    payload = pickle.dumps(payload_obj, protocol=_PICKLE_PROTOCOL)
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


# ----------------------------------------------------------------------
# WAL reader (truncated-tail tolerant, CRC enforcing)
# ----------------------------------------------------------------------
@dataclass
class WalScan:
    """Result of reading a WAL file.

    ``records`` are the complete, CRC-verified payload dicts in file
    order; ``truncated_tail`` reports an incomplete trailing record (a
    crash mid-append) whose bytes start at ``end_offset`` -- the offset
    the writer resumes (and truncates) at.
    """

    records: List[dict]
    truncated_tail: bool
    end_offset: int


def read_wal(path) -> WalScan:
    """Read every complete record of a WAL file, tolerating a torn tail.

    Raises :class:`~repro.errors.WalCorruptionError` (naming the file,
    byte offset, and record index) for a bad magic or a complete record
    whose CRC32 does not match -- corruption is surfaced, never silently
    replayed.  A missing file reads as an empty scan.
    """
    path = Path(path)
    if not path.exists():
        return WalScan(records=[], truncated_tail=False, end_offset=0)
    data = path.read_bytes()
    if not data:
        return WalScan(records=[], truncated_tail=False, end_offset=0)
    if len(data) < len(WAL_MAGIC):
        if WAL_MAGIC.startswith(data):
            # Crash while writing the very header: treat as a torn tail.
            return WalScan(records=[], truncated_tail=True, end_offset=0)
        raise WalCorruptionError(path, 0, "bad file magic")
    if data[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise WalCorruptionError(path, 0, "bad file magic")
    records: List[dict] = []
    offset = len(WAL_MAGIC)
    index = 0
    truncated = False
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            truncated = True
            break
        length, crc = _FRAME.unpack_from(data, offset)
        if offset + _FRAME.size + length > len(data):
            truncated = True
            break
        payload = data[offset + _FRAME.size : offset + _FRAME.size + length]
        if zlib.crc32(payload) != crc:
            raise WalCorruptionError(
                path, offset, "record CRC mismatch", record=index
            )
        try:
            record = pickle.loads(payload)
        except Exception as exc:
            raise WalCorruptionError(
                path, offset, f"undecodable record payload ({exc})", record=index
            ) from exc
        records.append(record)
        offset += _FRAME.size + length
        index += 1
    return WalScan(records=records, truncated_tail=truncated, end_offset=offset)


def pair_hour_records(records) -> List[Tuple[dict, Optional[int]]]:
    """Group a scan's records into ``(hour_record, commit_digest)`` pairs.

    An hour whose commit marker is missing (crash between WAL append and
    the marker) pairs with ``None`` -- it is still replayed, just without
    a digest to verify against.
    """
    hours: List[Tuple[dict, Optional[int]]] = []
    pending: Optional[dict] = None
    for record in records:
        kind = record.get("kind")
        if kind == "hour":
            if pending is not None:
                hours.append((pending, None))
            pending = record
        elif kind == "commit":
            if (
                pending is not None
                and record.get("hour_index") == pending.get("hour_index")
            ):
                hours.append((pending, record.get("digest")))
                pending = None
            # An orphan commit marker (no matching open hour) carries no
            # replayable state; skip it rather than failing recovery.
    if pending is not None:
        hours.append((pending, None))
    return hours


# ----------------------------------------------------------------------
# WAL writer (hour lifecycle: begin / append / commit | abort)
# ----------------------------------------------------------------------
class WalWriter:
    """Appender for the charge log, with an explicit hour lifecycle.

    ``begin_hour()`` marks the current end of file; ``append_hour``
    writes + fsyncs the write-ahead hour record; ``commit_hour`` appends
    the commit marker and closes the lifecycle; ``abort_hour`` truncates
    everything appended since ``begin_hour`` (no-op when no hour is
    open).  Every ``begin_hour`` must reach ``commit_hour`` or
    ``abort_hour`` -- the invariant linter's paired-calls rule enforces
    this on the platform drive.

    Opening an existing file validates it with :func:`read_wal` (real
    corruption raises) and truncates any torn tail so appends resume at
    the last complete record.
    """

    def __init__(self, path, telemetry=None) -> None:
        self._tracer = telemetry.probe if telemetry is not None else None
        self._metrics = telemetry.metrics if telemetry is not None else None
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        if self._path.exists() and self._path.stat().st_size > 0:
            scan = read_wal(self._path)
            self._fh = open(self._path, "r+b")
            self._fh.seek(scan.end_offset)
            self._fh.truncate()
        else:
            self._fh = open(self._path, "wb")
            self._fh.write(WAL_MAGIC)
            self._sync()
        self._hour_start: Optional[int] = None

    @property
    def path(self) -> Path:
        return self._path

    @property
    def hour_open(self) -> bool:
        return self._hour_start is not None

    def _sync(self) -> None:
        if self._tracer is None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            return
        with self._tracer.span("wal.fsync") as span:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        self._metrics.inc("sage_wal_fsyncs_total")
        self._metrics.observe("sage_wal_fsync_ticks", span.duration)

    def begin_hour(self) -> None:
        """Open an hour: remember the offset ``abort_hour`` truncates to."""
        if self._hour_start is not None:
            raise RecoveryError(
                f"WAL {self._path}: an hour is already open; commit or abort "
                "it before beginning another"
            )
        self._hour_start = self._fh.tell()

    def append_hour(self, payload: dict) -> None:
        """Write-ahead append: the hour record lands and fsyncs *before*
        the in-memory commit (crash points fire on both sides)."""
        if self._hour_start is None:
            raise RecoveryError(f"WAL {self._path}: no hour is open to append")
        faults.trip("wal.before_append")
        record = dict(payload)
        record["kind"] = "hour"
        encoded = _encode_record(record)
        with (
            self._tracer.span("wal.append", bytes=len(encoded))
            if self._tracer is not None
            else nullcontext()
        ):
            self._fh.write(encoded)
            self._sync()
        if self._metrics is not None:
            self._metrics.inc("sage_wal_bytes_total", len(encoded))
            self._metrics.observe("sage_wal_append_bytes", len(encoded))
        faults.trip("wal.after_append")

    def commit_hour(self, hour_index: int, digest: int) -> None:
        """Append the commit marker (post-commit digest) and close the hour."""
        if self._hour_start is None:
            raise RecoveryError(f"WAL {self._path}: no hour is open to commit")
        encoded = _encode_record(
            {"kind": "commit", "hour_index": int(hour_index), "digest": int(digest)}
        )
        with (
            self._tracer.span("wal.commit", hour_index=int(hour_index))
            if self._tracer is not None
            else nullcontext()
        ):
            self._fh.write(encoded)
            self._sync()
        if self._metrics is not None:
            self._metrics.inc("sage_wal_bytes_total", len(encoded))
        self._hour_start = None

    def abort_hour(self) -> None:
        """Truncate everything appended since ``begin_hour``.

        No-op when no hour is open, so the platform's exception handler
        can call it unconditionally.
        """
        if self._hour_start is None:
            return
        self._fh.seek(self._hour_start)
        self._fh.truncate()
        self._sync()
        self._hour_start = None

    def compact(self, upto_hour: int) -> int:
        """Drop hour/commit records for hours before ``upto_hour``.

        The platform calls this after each snapshot write with the
        *oldest retained* snapshot's hour: every dropped hour is folded
        into every snapshot recovery could still load, so the corrupt-
        newest-snapshot fallback keeps working.  Records that carry no
        hour index are preserved untouched, in order.

        The rewrite is crash-atomic (same-directory temp file, fsync,
        ``os.replace``): a crash mid-compaction leaves either the old log
        or the new one, both complete.  Returns the number of records
        dropped (0 means the file was not rewritten).  An open hour must
        be committed or aborted first.
        """
        if self._hour_start is not None:
            raise RecoveryError(
                f"WAL {self._path}: cannot compact while an hour is open"
            )
        upto_hour = int(upto_hour)
        if upto_hour <= 0:
            return 0
        self._fh.flush()
        scan = read_wal(self._path)
        kept: List[dict] = []
        dropped = 0
        for record in scan.records:
            hour_index = record.get("hour_index")
            if (
                record.get("kind") in ("hour", "commit")
                and hour_index is not None
                and int(hour_index) < upto_hour
            ):
                dropped += 1
            else:
                kept.append(record)
        if not dropped:
            return 0
        with (
            self._tracer.span(
                "wal.compact", upto_hour=upto_hour, dropped=dropped
            )
            if self._tracer is not None
            else nullcontext()
        ):
            tmp = self._path.with_name(self._path.name + ".compact")
            with open(tmp, "wb") as fh:
                fh.write(WAL_MAGIC)
                for record in kept:
                    fh.write(_encode_record(record))
                fh.flush()
                os.fsync(fh.fileno())
            self._fh.close()
            os.replace(tmp, self._path)
            try:
                dir_fd = os.open(self._path.parent, os.O_RDONLY)
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
            except OSError:  # pragma: no cover - platform-dependent best effort
                pass
            self._fh = open(self._path, "r+b")
            self._fh.seek(0, os.SEEK_END)
        if self._metrics is not None:
            self._metrics.inc("sage_wal_compact_dropped_total", dropped)
        return dropped

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


# ----------------------------------------------------------------------
# Snapshots (atomic write, corrupt-fallback load)
# ----------------------------------------------------------------------
class SnapshotStore:
    """Periodic full-state snapshots in a platform's WAL directory.

    Files are ``snapshot-<hour>.snap``, written via a same-directory temp
    file + ``os.replace`` so readers only ever see complete snapshots;
    the newest ``keep`` snapshots are retained.  ``latest()`` skips
    corrupt files (surviving e.g. bit rot on the newest snapshot) and
    falls back to the next older valid one.
    """

    def __init__(self, directory, keep: int = 3, telemetry=None) -> None:
        self._tracer = telemetry.probe if telemetry is not None else None
        self._metrics = telemetry.metrics if telemetry is not None else None
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._keep = max(1, int(keep))

    def path_for(self, hour_index: int) -> Path:
        return self._dir / f"snapshot-{int(hour_index):08d}.snap"

    def snapshot_paths(self) -> List[Path]:
        return sorted(self._dir.glob("snapshot-*.snap"))

    def write(self, hour_index: int, payload: dict) -> Path:
        final = self.path_for(hour_index)
        blob = SNAP_MAGIC + _encode_record(payload)
        with (
            self._tracer.span(
                "snapshot.write", hour_index=int(hour_index), bytes=len(blob)
            )
            if self._tracer is not None
            else nullcontext()
        ):
            tmp = final.with_name(final.name + ".tmp")
            with open(tmp, "wb") as fh:
                # Two writes around the crash point: a mid-snapshot death
                # leaves only the temp file -- the published snapshot set is
                # untouched and recovery falls back to the previous one.
                half = len(blob) // 2
                fh.write(blob[:half])
                fh.flush()
                faults.trip("snapshot.mid_write")
                fh.write(blob[half:])
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, final)
            try:
                dir_fd = os.open(self._dir, os.O_RDONLY)
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
            except OSError:  # pragma: no cover - platform-dependent best effort
                pass
            self._prune()
        if self._metrics is not None:
            self._metrics.inc("sage_snapshots_written_total")
            self._metrics.set_gauge("sage_snapshot_bytes", len(blob))
        return final

    def _prune(self) -> None:
        paths = self.snapshot_paths()
        for stale in paths[: -self._keep]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    def load(self, path) -> dict:
        """Decode one snapshot file; integrity failures raise
        :class:`~repro.errors.SnapshotMismatchError` naming the file."""
        path = Path(path)
        data = path.read_bytes()
        if len(data) < len(SNAP_MAGIC) or data[: len(SNAP_MAGIC)] != SNAP_MAGIC:
            raise SnapshotMismatchError(f"snapshot {path}: bad file magic")
        offset = len(SNAP_MAGIC)
        if len(data) < offset + _FRAME.size:
            raise SnapshotMismatchError(f"snapshot {path}: truncated frame header")
        length, crc = _FRAME.unpack_from(data, offset)
        payload = data[offset + _FRAME.size : offset + _FRAME.size + length]
        if len(payload) != length:
            raise SnapshotMismatchError(
                f"snapshot {path}: truncated payload at byte {offset + _FRAME.size}"
            )
        if zlib.crc32(payload) != crc:
            raise SnapshotMismatchError(
                f"snapshot {path}: payload CRC mismatch at byte {offset}"
            )
        try:
            return pickle.loads(payload)
        except Exception as exc:
            raise SnapshotMismatchError(
                f"snapshot {path}: undecodable payload ({exc})"
            ) from exc

    def oldest_retained_hour(self) -> Optional[int]:
        """The hour of the oldest snapshot still on disk, from its
        filename -- the WAL compaction horizon: every hour before it is
        folded into every snapshot recovery could still fall back to."""
        paths = self.snapshot_paths()
        if not paths:
            return None
        stem = paths[0].stem  # snapshot-<hour zero-padded>
        try:
            return int(stem.split("-", 1)[1])
        except (IndexError, ValueError):  # pragma: no cover - foreign file
            return None

    def latest(self) -> Optional[Tuple[int, dict, List[Path]]]:
        """The newest loadable snapshot as ``(hour, payload, skipped)``.

        ``skipped`` lists newer snapshot files that failed integrity
        checks and were passed over; ``None`` when no valid snapshot
        exists at all.
        """
        skipped: List[Path] = []
        for path in reversed(self.snapshot_paths()):
            try:
                payload = self.load(path)
            except SnapshotMismatchError:
                skipped.append(path)
                continue
            return int(payload["hour_index"]), payload, skipped
        return None


# ----------------------------------------------------------------------
# State digest (the recovery-parity fingerprint, in CRC form)
# ----------------------------------------------------------------------
def state_summary(sage) -> tuple:
    """Everything the accounting contract makes durable, in picklable form.

    Mirrors the parity fingerprint the protocol tests compare: store
    totals/live/counts bytes, reservation matrix and free pool bytes, the
    charge log, and per-pipeline session state (status, schedule, spend,
    attempt records, release times).  Pending lazy retirement is
    refreshed first so both sides of any comparison normalize the live
    mask the same way.
    """
    accountant = sage.access.accountant
    accountant.retired_blocks()  # persist pending lazy retirement
    store = accountant.store
    table = sage.reservation_table
    return (
        float(sage.clock_hours),
        store.totals.tobytes(),
        store.live.tobytes(),
        store.charge_counts.tobytes(),
        table.matrix.tobytes(),
        table.free_epsilon.tobytes(),
        tuple(
            (record.budget.epsilon, record.budget.delta, record.block_keys, record.label)
            for record in accountant.charges
        ),
        tuple(
            (
                entry.name,
                entry.status,
                entry.settled_attempts,
                entry.release_time_hours,
                entry.session.epsilon,
                entry.session.window_blocks,
                entry.session.total_spent.epsilon,
                entry.session.total_spent.delta,
                tuple(
                    (
                        a.attempt,
                        tuple(a.window),
                        a.budget.epsilon,
                        a.budget.delta,
                        str(a.outcome),
                        a.train_size,
                    )
                    for a in entry.session.attempts
                ),
            )
            for entry in sage.pipelines
        ),
    )


def _digest_value(crc: int, obj) -> int:
    """Fold one summary value into a CRC, canonically.

    Deliberately *not* one ``pickle.dumps`` over the whole summary:
    pickle memoizes shared object references, so two states that compare
    equal value-by-value can pickle differently just because one run
    shares a tuple object where the other holds equal copies (recovery
    rebuilds values, not identity graphs).  Scalars hash via ``repr``
    (exact round-trip text for floats), containers recurse with
    delimiters.
    """
    if isinstance(obj, tuple):
        crc = zlib.crc32(b"(", crc)
        for item in obj:
            crc = _digest_value(crc, item)
        return zlib.crc32(b")", crc)
    if isinstance(obj, bytes):
        return zlib.crc32(obj, zlib.crc32(b"b", crc))
    return zlib.crc32(repr(obj).encode("utf-8"), zlib.crc32(b"s", crc))


def state_digest(sage) -> int:
    """Canonical CRC32 of :func:`state_summary` -- the compact parity form
    the WAL commit markers and snapshots carry.  Two platforms have equal
    digests iff their summaries are value-equal (same floats bit-for-bit,
    same bytes, same structure)."""
    return _digest_value(0, state_summary(sage))


# ----------------------------------------------------------------------
# Snapshot payload build/restore (public platform surfaces only)
# ----------------------------------------------------------------------
def _attempt_tuples(attempts) -> tuple:
    return tuple(
        (a.attempt, tuple(a.window), a.budget, a.outcome, a.train_size)
        for a in attempts
    )


def build_snapshot_payload(sage, hours_committed: int) -> dict:
    """Capture a platform's full recoverable state as one picklable dict."""
    accountant = sage.access.accountant
    accountant.retired_blocks()  # snapshot the normalized live mask
    table = sage.reservation_table
    entries = tuple(
        {
            "name": entry.name,
            "submit_time_hours": entry.submit_time_hours,
            "release_time_hours": entry.release_time_hours,
            "settled_attempts": entry.settled_attempts,
            "status": entry.session.status,
            "epsilon": entry.session.epsilon,
            "epsilon_floor": entry.session.epsilon_floor,
            "delta": entry.session.delta,
            "window_blocks": entry.session.window_blocks,
            "total_spent": entry.session.total_spent,
            "attempts": _attempt_tuples(entry.session.attempts),
        }
        for entry in sage.pipelines
    )
    return {
        "hour_index": int(hours_committed),
        "clock_hours": float(sage.clock_hours),
        "epsilon_global": sage.epsilon_global,
        "delta_global": sage.delta_global,
        "accountant": accountant.export_state(),
        "table_matrix": table.matrix.copy(),
        "table_free": table.free_epsilon.copy(),
        "entries": entries,
        "database": sage.database,
        "rng_state": sage.rng.bit_generator.state,
        "digest": state_digest(sage),
    }


def restore_entry_state(entry, state: dict) -> None:
    """Restore one submitted pipeline's session/bookkeeping from a
    snapshot entry dict (model artifacts are not recovered -- see the
    module docstring's limitations)."""
    session = entry.session
    session.status = state["status"]
    session.epsilon = state["epsilon"]
    session.epsilon_floor = state["epsilon_floor"]
    session.delta = state["delta"]
    session.window_blocks = state["window_blocks"]
    session.total_spent = state["total_spent"]
    session.attempts = [
        AttemptRecord(
            attempt=attempt,
            window=window,
            budget=budget,
            outcome=outcome,
            train_size=train_size,
        )
        for attempt, window, budget, outcome, train_size in state["attempts"]
    ]
    session.final_run = None
    entry.submit_time_hours = state["submit_time_hours"]
    entry.release_time_hours = state["release_time_hours"]
    entry.settled_attempts = state["settled_attempts"]
    entry.bundle = None


def restore_snapshot_payload(sage, payload: dict) -> None:
    """Restore a platform from a snapshot payload.

    The caller (``Sage.recover``) has already re-submitted the snapshot's
    pipelines in order; this validates configuration compatibility,
    restores database/accountant/table/sessions/RNG/clock, and verifies
    the snapshot's state digest.
    """
    if (
        payload["epsilon_global"] != sage.epsilon_global
        or payload["delta_global"] != sage.delta_global
    ):
        raise SnapshotMismatchError(
            f"snapshot global budget ({payload['epsilon_global']}, "
            f"{payload['delta_global']}) does not match platform "
            f"({sage.epsilon_global}, {sage.delta_global})"
        )
    entries = sage.pipelines
    states = payload["entries"]
    if len(entries) != len(states):
        raise RecoveryError(
            f"snapshot holds {len(states)} pipelines but {len(entries)} "
            "were submitted for recovery"
        )
    for entry, state in zip(entries, states):
        if entry.name != state["name"]:
            raise RecoveryError(
                f"pipeline order mismatch: snapshot recorded {state['name']!r} "
                f"where {entry.name!r} was submitted"
            )
    sage.database.adopt_state(payload["database"])
    sage.ingestor.clock_hours = payload["clock_hours"]
    sage.access.accountant.restore_state(payload["accountant"])
    matrix = payload["table_matrix"]
    if matrix.shape[0] != len(entries) or matrix.shape[1] != len(
        sage.access.accountant.store
    ):
        raise RecoveryError(
            f"snapshot reservation matrix shape {matrix.shape} does not "
            f"match restored platform ({len(entries)} pipelines, "
            f"{len(sage.access.accountant.store)} blocks)"
        )
    sage.reservation_table.restore(matrix, payload["table_free"])
    for entry, state in zip(entries, states):
        restore_entry_state(entry, state)
    sage.rng.bit_generator.state = payload["rng_state"]
    digest = state_digest(sage)
    if digest != payload["digest"]:
        raise RecoveryError(
            f"snapshot hour {payload['hour_index']}: restored state digest "
            f"{digest} does not match recorded {payload['digest']}"
        )


@dataclass
class RecoveryReport:
    """What :meth:`~repro.core.platform.Sage.recover` reconstructed."""

    snapshot_hour: Optional[int]
    snapshots_skipped: int
    replayed_hours: int
    hours_committed: int
    clock_hours: float
    wal_records: int
    truncated_tail: bool
    # Supplied pipelines the log never mentioned (submitted in the crashed
    # run but durable in no committed hour): re-submitted fresh at the end
    # of recovery, their sessions starting over.
    fresh_pipelines: int
    # Replayed hours whose WAL commit digest was present and verified (an
    # hour replayed from a marker-less record contributes 0).
    digests_verified: int = 0

    def describe(self, telemetry=None) -> str:
        base = "recovered from scratch" if self.snapshot_hour is None else (
            f"recovered from snapshot hour {self.snapshot_hour}"
        )
        parts = [
            base,
            f"replayed {self.replayed_hours} WAL hour(s)",
            f"{self.hours_committed} hour(s) committed",
            f"clock at {self.clock_hours}h",
        ]
        if self.snapshots_skipped:
            parts.append(f"skipped {self.snapshots_skipped} corrupt snapshot(s)")
        if self.truncated_tail:
            parts.append("repaired a torn WAL tail")
        if self.fresh_pipelines:
            parts.append(
                f"{self.fresh_pipelines} supplied pipeline(s) not in the log "
                "were re-submitted fresh"
            )
        if self.digests_verified:
            parts.append(f"verified {self.digests_verified} commit digest(s)")
        text = "; ".join(parts)
        if telemetry is not None:
            telemetry.probe.event(
                "recover.report",
                snapshot_hour=self.snapshot_hour,
                replayed_hours=self.replayed_hours,
                hours_committed=self.hours_committed,
                digests_verified=self.digests_verified,
                fresh_pipelines=self.fresh_pipelines,
            )
            telemetry.metrics.observe_recovery(self)
        return text
