"""Privacy-adaptive training (§3.3) as a two-phase propose/settle protocol.

Wraps a DP pipeline in the escalation loop that addresses the
privacy-utility tradeoff: start with a small budget (epsilon_0) on a minimal
window of recent blocks; on RETRY, double the privacy budget while the
pipeline's allocation allows, otherwise double the data window; stop on
ACCEPT, REJECT, or timeout.

The doubling schedule gives the paper's conservation guarantee: failed
iterations together cost at most the final accepted budget, and the final
budget overshoots the smallest sufficient one by at most 2x -- so the whole
search costs at most 4x the optimum (§3.3).

Propose/settle lifecycle
------------------------
A session never executes its own privacy charges.  The contract with
whoever drives it (the platform, a trainer, a test) is two-phase:

1. :meth:`AdaptiveSession.propose` picks the next attempt's window and
   budget **without touching the accountant** and returns a
   :class:`ChargeProposal` (or ``None``, leaving the session ``TIMEOUT`` /
   ``NEED_DATA``).  Escalation state is *not* mutated at propose time --
   in particular the aggressive strategy's epsilon commitment rides along
   in ``ChargeProposal.epsilon_after`` until the charge is known granted.
2. The driver decides the proposal: it charges the accountant itself
   (immediately via ``SageAccessControl.request``, or staged into the
   platform's hourly ``request_many`` batch), assembles the training
   window, and hands the session a :class:`ChargeDecision`.
3. :meth:`AdaptiveSession.complete` consumes the decision: a granted
   charge commits escalation state, runs the pipeline, records the
   :class:`AttemptRecord`, and either finishes or escalates so the next
   ``propose()`` asks for more; a denial leaves every piece of session
   state untouched and blocks the session on ``NEED_DATA``.

:meth:`AdaptiveSession.step` and :meth:`AdaptiveSession.resume` remain as
thin compatibility shims: they drive exactly this propose -> request ->
complete loop with immediate charges, reproducing the historical one-call
behavior float-for-float.  :class:`PrivacyAdaptiveTrainer` is the one-shot
convenience wrapper used on static databases (Fig. 6 experiments), driving
the same protocol explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.access_control import SageAccessControl
from repro.core.pipeline import PipelineRun
from repro.core.validation.outcomes import Outcome
from repro.data.database import GrowingDatabase
from repro.dp.budget import PrivacyBudget, ZERO_BUDGET
from repro.errors import PipelineError

__all__ = [
    "AdaptiveConfig",
    "AttemptRecord",
    "ChargeProposal",
    "ChargeDecision",
    "SessionStatus",
    "AdaptiveSession",
    "PrivacyAdaptiveTrainer",
]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Escalation policy knobs.

    ``epsilon_start``/``epsilon_cap`` bound the doubling search; ``delta`` is
    the per-attempt delta -- ``None`` (the default) rations the share of the
    stream's delta_global not reserved by its filter's own analysis evenly
    across ``max_attempts`` so repeated attempts on the
    same blocks can never delta-exhaust them; ``strategy`` is "conserve"
    (the Sage default) or "aggressive" (use everything available at once,
    the §5.4 ablation).
    """

    epsilon_start: float = 1.0 / 16.0
    epsilon_cap: float = 1.0
    delta: Optional[float] = None
    min_window_blocks: int = 1
    max_attempts: int = 32
    strategy: str = "conserve"
    # Smallest epsilon worth attempting with.  Under heavy contention the
    # platform's even split can allocate less than epsilon_start per block;
    # rather than deadlock, the session attempts with whatever it has down
    # to this floor (compensating with data, the paper's exchange rate).
    epsilon_floor: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0 < self.epsilon_start <= self.epsilon_cap:
            raise PipelineError(
                f"need 0 < epsilon_start <= epsilon_cap, got "
                f"{self.epsilon_start}, {self.epsilon_cap}"
            )
        if self.epsilon_floor is not None and not 0 < self.epsilon_floor <= self.epsilon_start:
            raise PipelineError(
                f"need 0 < epsilon_floor <= epsilon_start, got {self.epsilon_floor}"
            )
        if self.delta is not None and not 0.0 <= self.delta < 1.0:
            raise PipelineError(f"delta must be in [0, 1), got {self.delta}")
        if self.min_window_blocks <= 0:
            raise PipelineError("min_window_blocks must be > 0")
        if self.max_attempts <= 0:
            raise PipelineError("max_attempts must be > 0")
        if self.strategy not in ("conserve", "aggressive"):
            raise PipelineError(f"unknown strategy {self.strategy!r}")


@dataclass
class AttemptRecord:
    """One training attempt inside a session."""

    attempt: int
    window: Tuple
    budget: PrivacyBudget
    outcome: Outcome
    train_size: int


class SessionStatus:
    """Terminal and blocked states of an adaptive session."""

    RUNNING = "running"
    ACCEPTED = "accepted"
    REJECTED = "rejected"
    TIMEOUT = "timeout"
    NEED_DATA = "need_data"  # blocked: not enough usable blocks / budget yet


@dataclass(frozen=True)
class ChargeProposal:
    """Phase one of an attempt: what the session wants to charge.

    Produced by :meth:`AdaptiveSession.propose` without touching the
    accountant or any session state beyond status.  ``epsilon_after`` is the
    escalation epsilon the session will commit to *iff* the charge is
    granted (the aggressive strategy raises it to everything available;
    conserve leaves it at the current schedule) -- deferring this mutation
    to the grant is what keeps a denied attempt side-effect free.
    """

    session: "AdaptiveSession" = field(repr=False)
    attempt: int
    window: Tuple
    budget: PrivacyBudget
    epsilon_after: float
    label: str = ""


@dataclass(frozen=True)
class ChargeDecision:
    """Phase two: the driver's verdict on a proposal.

    ``granted`` means the proposal's budget was charged (immediately or
    staged into an hourly batch) and ``batch`` carries the assembled
    training window (``None`` lets the session assemble it itself).  A
    denial carries no batch; the session blocks on NEED_DATA with all
    escalation state untouched.
    """

    proposal: ChargeProposal
    granted: bool
    batch: Optional[object] = None


class AdaptiveSession:
    """The per-pipeline escalation state machine.

    Parameters
    ----------
    epsilon_limit_fn:
        Optional hook ``(window_keys) -> float`` giving the largest epsilon
        this pipeline may spend on that window right now -- the platform
        passes its per-pipeline allocation here; standalone use defaults to
        whatever the blocks themselves can absorb.
    row_budget_fn:
        Vectorized form of the same allocation hook: ``(store_rows) ->
        per-row epsilon`` available to this pipeline, aligned to the
        accountant's ledger-store rows.  When given it supersedes
        ``epsilon_limit_fn`` and lets window selection filter candidate
        blocks in one NumPy pass instead of a per-key Python callback.
    """

    def __init__(
        self,
        pipeline,
        access: SageAccessControl,
        database: GrowingDatabase,
        config: AdaptiveConfig,
        rng: np.random.Generator,
        epsilon_limit_fn: Optional[Callable[[List[object]], float]] = None,
        new_block_epsilon_fn: Optional[Callable[[], float]] = None,
        row_budget_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        self.pipeline = pipeline
        self.access = access
        self.database = database
        self.config = config
        self.rng = rng
        self._epsilon_limit_fn = epsilon_limit_fn
        self._row_budget_fn = row_budget_fn
        # Epsilon this pipeline can expect to hold on a brand-new block
        # (the platform's allocation rate); drives the §3.3 escalation
        # choice between doubling budget and doubling data.
        self._new_block_epsilon_fn = new_block_epsilon_fn
        if config.delta is not None:
            self.delta = config.delta
        else:
            # Ration the per-attempt delta out of the share the stream's
            # filter leaves to queries: strong composition reserves its
            # slack and Renyi accounting its conversion delta, and attempts
            # charged against the reserved share would be refused long
            # before the attempt budget ran out.
            available = max(
                0.0,
                access.accountant.delta_global - access.accountant.delta_reserved,
            )
            self.delta = available / config.max_attempts
        self.epsilon = config.epsilon_start
        self.epsilon_floor = (
            config.epsilon_floor
            if config.epsilon_floor is not None
            else config.epsilon_start / 16.0
        )
        self.window_blocks = config.min_window_blocks
        self.status = SessionStatus.RUNNING
        self.attempts: List[AttemptRecord] = []
        self.final_run: Optional[PipelineRun] = None
        self.total_spent: PrivacyBudget = ZERO_BUDGET

    # ------------------------------------------------------------------
    def _candidate_window(self, budget: PrivacyBudget) -> Optional[List[object]]:
        """The most recent ``window_blocks`` blocks that can fund ``budget``.

        A block qualifies when its ledger can absorb the charge AND this
        pipeline's own allocation on it covers the epsilon; blocks reserved
        for other pipelines are skipped rather than vetoing the window.

        Ledger admissibility is decided by the accountant's single batched
        filter pass over the whole live-block store; the allocation filter
        below only ever runs on blocks that already passed it -- as one
        vectorized row pass when the platform supplied ``row_budget_fn``,
        falling back to the scalar per-key callback otherwise.
        """
        key_filter = None
        row_filter = None
        if self._row_budget_fn is not None:
            row_filter = (
                lambda rows: self._row_budget_fn(rows) + 1e-12 >= budget.epsilon
            )
        elif self._epsilon_limit_fn is not None:
            key_filter = (
                lambda key: self._epsilon_limit_fn([key]) + 1e-12 >= budget.epsilon
            )
        window = self.access.offer_recent_blocks(
            budget, self.window_blocks, key_filter=key_filter, row_filter=row_filter
        )
        if len(window) < self.window_blocks:
            return None
        return window

    def _new_block_rate(self) -> float:
        """Epsilon this session can expect on a freshly created block."""
        rate = self.access.accountant.epsilon_global
        if self._new_block_epsilon_fn is not None:
            rate = min(rate, self._new_block_epsilon_fn())
        return min(rate, self.config.epsilon_cap)

    def _select_attempt(self):
        """Pick (window, epsilon) for the next attempt, or (None, None).

        An attempt fires only when a window of the committed size can fund
        the committed budget; otherwise the session waits for fresh blocks.
        (Attempting early at whatever is affordable would skim budget off
        the freshest blocks, so no window could ever afford the committed
        epsilon again.)  The one exception is allocation contention -- the
        schedule still at epsilon_start but the platform granting less --
        where the attempt runs at the granted level, compensating with data.
        """
        window = self._candidate_window(PrivacyBudget(self.epsilon, self.delta))
        if window is not None:
            available = self._epsilon_limit(window)
            if available + 1e-12 >= self.epsilon:
                return window, self.epsilon
        # Contention fallback: when the schedule has not escalated yet, or
        # the allocation rate has since dropped below the committed epsilon
        # (more pipelines arrived), run with whatever is granted instead of
        # stalling -- compensating with data per the exchange rate.
        under_contention = (
            self.epsilon <= self.config.epsilon_start + 1e-12
            or self._new_block_rate() < self.epsilon - 1e-12
        )
        if under_contention:
            window = self._candidate_window(
                PrivacyBudget(self.epsilon_floor, self.delta)
            )
            if window is not None:
                available = self._epsilon_limit(window)
                if available + 1e-12 >= self.epsilon_floor:
                    return window, min(available, self.epsilon)
        return None, None

    def _epsilon_limit(self, window: List[object]) -> float:
        """Largest epsilon this session may spend on the window right now:
        whatever the blocks can absorb, intersected with the platform's
        per-pipeline allocation (both strategies honour the even split of
        §5.4; they differ in how much of it each attempt consumes)."""
        limit = self.access.max_epsilon(window, self.delta)
        if self._row_budget_fn is not None:
            rows = self.access.accountant.rows_for_keys(window)
            held = self._row_budget_fn(rows)
            limit = min(limit, float(held.min()) if held.size else 0.0)
        elif self._epsilon_limit_fn is not None:
            limit = min(limit, self._epsilon_limit_fn(window))
        return min(limit, self.config.epsilon_cap)

    # ------------------------------------------------------------------
    # The two-phase protocol
    # ------------------------------------------------------------------
    def propose_peek(self) -> Tuple[Optional[ChargeProposal], str]:
        """Preview :meth:`propose` without mutating *any* session state.

        Returns ``(proposal, status_after)``: exactly the proposal a
        woken-then-``propose()``-ed session would produce and the status it
        would transition to -- but computed as a pure read (a blocked
        NEED_DATA session is evaluated as if :meth:`wake` had run).  This
        is the entry point of the platform's parallel propose drive:
        because nothing is written, any number of sessions can be peeked
        concurrently against a fixed accountant snapshot, and the driver
        later either adopts the result (when the snapshot provably still
        holds) or discards it and calls :meth:`propose` for real.
        """
        status = self.status
        if status == SessionStatus.NEED_DATA:
            status = SessionStatus.RUNNING  # what wake() would do
        if status != SessionStatus.RUNNING:
            return None, status
        if len(self.attempts) >= self.config.max_attempts:
            return None, SessionStatus.TIMEOUT
        window, eps_attempt = self._select_attempt()
        if window is None:
            return None, SessionStatus.NEED_DATA
        epsilon_after = self.epsilon
        if self.config.strategy == "aggressive":
            # Spend everything available on this window right away -- but
            # only commit the raised schedule once the charge is granted.
            eps_attempt = max(eps_attempt, self._epsilon_limit(window))
            epsilon_after = max(self.epsilon, eps_attempt)
        proposal = ChargeProposal(
            session=self,
            attempt=len(self.attempts) + 1,
            window=tuple(window),
            budget=PrivacyBudget(eps_attempt, self.delta),
            epsilon_after=epsilon_after,
            label=self.pipeline.name,
        )
        return proposal, SessionStatus.RUNNING

    def propose(self) -> Optional[ChargeProposal]:
        """Phase one: pick the next attempt without touching the accountant.

        Returns the :class:`ChargeProposal` the driver should decide, or
        ``None`` when the session cannot attempt -- after transitioning to
        TIMEOUT (attempt budget exhausted) or NEED_DATA (no affordable
        window; :meth:`wake` unblocks once new data lands).  No escalation
        state is mutated here: even the aggressive strategy's epsilon grab
        is merely *carried* on the proposal until the charge is granted.
        """
        if self.status != SessionStatus.RUNNING:
            return None
        proposal, status_after = self.propose_peek()
        self.status = status_after
        return proposal

    def complete(self, decision: ChargeDecision) -> str:
        """Phase two: consume the driver's decision on our proposal.

        Granted: commit the proposal's escalation state, run the pipeline
        on the assembled window, record the attempt, and finish or escalate
        (the next :meth:`propose` continues the search).  Denied: leave
        epsilon, window size, attempts, and total_spent untouched and block
        on NEED_DATA until the platform wakes the session.
        """
        proposal = decision.proposal
        if proposal.session is not self:
            raise PipelineError(
                f"decision for session of {proposal.label!r} handed to "
                f"{self.pipeline.name!r}"
            )
        if self.status != SessionStatus.RUNNING:
            raise PipelineError(f"cannot complete a {self.status} session")
        if proposal.attempt != len(self.attempts) + 1:
            raise PipelineError(
                f"stale proposal: attempt {proposal.attempt} but "
                f"{len(self.attempts)} attempts already recorded"
            )
        if not decision.granted:
            self.status = SessionStatus.NEED_DATA
            return self.status

        self.epsilon = proposal.epsilon_after
        window = list(proposal.window)
        budget = proposal.budget
        self.total_spent = self.total_spent + budget
        batch = decision.batch
        if batch is None:
            batch = self.database.assemble(window)
        run = self.pipeline.run(batch, budget, self.rng)
        self.attempts.append(
            AttemptRecord(
                attempt=proposal.attempt,
                window=proposal.window,
                budget=budget,
                outcome=run.outcome,
                train_size=len(batch),
            )
        )
        if run.outcome is Outcome.ACCEPT:
            self.final_run = run
            self.status = SessionStatus.ACCEPTED
        elif run.outcome is Outcome.REJECT:
            self.final_run = run
            self.status = SessionStatus.REJECTED
        else:
            self._escalate(window)
        return self.status

    def wake(self) -> str:
        """Unblock a NEED_DATA session (the platform calls this when new
        blocks have landed) so :meth:`propose` evaluates again."""
        if self.status == SessionStatus.NEED_DATA:
            self.status = SessionStatus.RUNNING
        return self.status

    # ------------------------------------------------------------------
    # Compatibility shims (one-call drivers over the two-phase protocol)
    # ------------------------------------------------------------------
    def step(self) -> str:
        """Run attempts until ACCEPT/REJECT/timeout or until blocked on data.

        A self-driving loop over the two-phase protocol with immediate
        charges: every proposal is executed via ``access.request`` and
        completed as granted -- float-identical to the historical
        imperative loop.  The platform path does NOT use this; it stages
        proposals into one hourly ``request_many`` batch instead.
        """
        while self.status == SessionStatus.RUNNING:
            proposal = self.propose()
            if proposal is None:
                break
            self.access.request(
                list(proposal.window), proposal.budget, label=self.pipeline.name
            )
            self.complete(ChargeDecision(proposal=proposal, granted=True))
        return self.status

    def _escalate(self, window: List[object]) -> None:
        """RETRY: double the budget if the allocation rate allows, else
        double the window (§3.3's exact escalation rule).

        The budget-doubling test asks whether *freshly arriving* blocks can
        fund the doubled epsilon for this pipeline -- not whether the
        just-spent window can (it never can once epsilon exceeds half the
        block budget).  Committing here and waiting for qualifying blocks is
        what lets the schedule actually reach epsilon_cap.
        """
        doubled = 2.0 * self.epsilon
        if doubled <= self.config.epsilon_cap + 1e-12 and doubled <= self._new_block_rate() + 1e-12:
            self.epsilon = doubled
            return
        self.window_blocks *= 2
        # Epsilon never shrinks across escalations (§3.3's doubling argument).

    def resume(self) -> str:
        """Compatibility hook: unblock after new data arrived, step again."""
        self.wake()
        return self.step()

    @property
    def is_terminal(self) -> bool:
        return self.status in (
            SessionStatus.ACCEPTED,
            SessionStatus.REJECTED,
            SessionStatus.TIMEOUT,
        )


@dataclass
class AdaptiveResult:
    """Outcome of a one-shot privacy-adaptive training run."""

    status: str
    run: Optional[PipelineRun]
    attempts: List[AttemptRecord] = field(default_factory=list)
    total_spent: PrivacyBudget = ZERO_BUDGET

    @property
    def accepted(self) -> bool:
        return self.status == SessionStatus.ACCEPTED


class PrivacyAdaptiveTrainer:
    """One-shot adaptive training on a (currently static) database."""

    def __init__(
        self,
        access: SageAccessControl,
        database: GrowingDatabase,
        config: Optional[AdaptiveConfig] = None,
    ) -> None:
        self.access = access
        self.database = database
        self.config = config or AdaptiveConfig()

    def train(self, pipeline, rng: np.random.Generator) -> AdaptiveResult:
        session = AdaptiveSession(
            pipeline, self.access, self.database, self.config, rng
        )
        # Drive the two-phase protocol directly: propose, execute the charge,
        # assemble the window, complete.  (On a static database a denial
        # cannot un-block, so every proposal is executed immediately.)
        while session.status == SessionStatus.RUNNING:
            proposal = session.propose()
            if proposal is None:
                break
            window = list(proposal.window)
            self.access.request(window, proposal.budget, label=pipeline.name)
            session.complete(
                ChargeDecision(
                    proposal=proposal,
                    granted=True,
                    batch=self.database.assemble(window),
                )
            )
        return AdaptiveResult(
            status=session.status,
            run=session.final_run,
            attempts=session.attempts,
            total_spent=session.total_spent,
        )
