"""Differential-privacy primitives substrate.

Everything the Sage platform layer (``repro.core``) and the ML substrate
(``repro.ml``) need from DP theory: budgets, mechanisms, sensitivity
handling, composition theorems (basic / strong / adaptive-filter), an RDP
accountant for DP-SGD, and the DP point queries used by training pipelines.
"""

from repro.dp.budget import PrivacyBudget, ZERO_BUDGET, sum_budgets
from repro.dp.composition import (
    advanced_composition,
    basic_composition,
    optimal_composition_homogeneous,
    rogers_filter_admits,
    rogers_filter_epsilon,
    rogers_filter_epsilon_from_sums,
    rogers_filter_epsilon_from_sums_batch,
    strong_composition_heterogeneous,
)
from repro.dp.mechanisms import (
    GaussianMechanism,
    LaplaceMechanism,
    gaussian_noise,
    gaussian_sigma,
    laplace_noise,
    laplace_scale,
    make_rng,
)
from repro.dp.partition import PartitionedQuery, parallel_composition, partition_indices
from repro.dp.queries import (
    dp_count,
    dp_group_by_count,
    dp_group_by_mean,
    dp_group_by_sum,
    dp_histogram,
    dp_mean,
    dp_quantile,
    dp_sum,
    dp_variance,
)
from repro.dp.rdp import (
    DEFAULT_ORDERS,
    GaussianMechanismBudget,
    calibrate_sigma,
    compute_epsilon,
    compute_rdp,
    gaussian_mechanism_budget,
    gaussian_rdp,
    pure_dp_rdp,
    rdp_epsilon_penalties,
    rdp_to_epsilon,
    sampled_gaussian_rdp,
)
from repro.dp.selection import (
    dp_argmax_count,
    exponential_mechanism,
    report_noisy_max,
)
from repro.dp.sensitivity import (
    clip_rows_l2,
    clip_values,
    count_sensitivity,
    l2_clip_factor,
    mean_sensitivity_numerator,
    sum_sensitivity,
)

__all__ = [
    "PrivacyBudget",
    "ZERO_BUDGET",
    "sum_budgets",
    "basic_composition",
    "advanced_composition",
    "strong_composition_heterogeneous",
    "optimal_composition_homogeneous",
    "rogers_filter_epsilon",
    "rogers_filter_admits",
    "rogers_filter_epsilon_from_sums",
    "rogers_filter_epsilon_from_sums_batch",
    "LaplaceMechanism",
    "GaussianMechanism",
    "laplace_noise",
    "gaussian_noise",
    "laplace_scale",
    "gaussian_sigma",
    "make_rng",
    "PartitionedQuery",
    "parallel_composition",
    "partition_indices",
    "dp_count",
    "dp_sum",
    "dp_mean",
    "dp_variance",
    "dp_histogram",
    "dp_group_by_count",
    "dp_group_by_sum",
    "dp_group_by_mean",
    "dp_quantile",
    "exponential_mechanism",
    "report_noisy_max",
    "dp_argmax_count",
    "DEFAULT_ORDERS",
    "GaussianMechanismBudget",
    "gaussian_mechanism_budget",
    "pure_dp_rdp",
    "rdp_epsilon_penalties",
    "gaussian_rdp",
    "sampled_gaussian_rdp",
    "compute_rdp",
    "rdp_to_epsilon",
    "compute_epsilon",
    "calibrate_sigma",
    "clip_values",
    "clip_rows_l2",
    "l2_clip_factor",
    "count_sensitivity",
    "sum_sensitivity",
    "mean_sensitivity_numerator",
]
