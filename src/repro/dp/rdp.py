"""Renyi differential privacy (RDP) accountant for the (subsampled) Gaussian
mechanism.

This is the "moments accountant" privacy analysis that DP-SGD [Abadi et al.
2016] relies on, in the RDP formulation of Mironov (2017) and Mironov, Talwar
& Zhang (2019).  Sage's training pipelines (Table 1) all use DP-SGD, so this
module is the substrate that turns ("noise multiplier sigma, sampling rate q,
steps T") into an (epsilon, delta) guarantee -- and back, via binary-search
calibration.

Only integer Renyi orders are used.  For the sampled Gaussian mechanism with
Poisson sampling rate ``q`` and noise multiplier ``sigma``, the per-step RDP
at integer order ``alpha >= 2`` is

    RDP(alpha) = 1/(alpha-1) * log( sum_{i=0}^{alpha} C(alpha, i)
                   * (1-q)^{alpha-i} * q^i * exp((i^2 - i) / (2 sigma^2)) )

computed in log-space for stability.  RDP composes additively over steps.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.errors import CalibrationError

__all__ = [
    "DEFAULT_ORDERS",
    "gaussian_rdp",
    "sampled_gaussian_rdp",
    "compute_rdp",
    "rdp_to_epsilon",
    "compute_epsilon",
    "calibrate_sigma",
]

DEFAULT_ORDERS: Tuple[int, ...] = tuple(range(2, 65)) + (80, 96, 128, 192, 256, 512)


def gaussian_rdp(sigma: float, order: int) -> float:
    """RDP of the (unsampled) Gaussian mechanism: alpha / (2 sigma^2)."""
    if sigma <= 0:
        raise CalibrationError(f"sigma must be > 0, got {sigma}")
    if order < 2:
        raise CalibrationError(f"order must be >= 2, got {order}")
    return order / (2.0 * sigma ** 2)


def _log_binom(n: int, k: int) -> float:
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def sampled_gaussian_rdp(q: float, sigma: float, order: int) -> float:
    """Per-step RDP of the Poisson-sampled Gaussian mechanism at an integer order."""
    if not 0.0 <= q <= 1.0:
        raise CalibrationError(f"sampling rate q must be in [0, 1], got {q}")
    if sigma <= 0:
        raise CalibrationError(f"sigma must be > 0, got {sigma}")
    if order < 2 or int(order) != order:
        raise CalibrationError(f"order must be an integer >= 2, got {order}")
    order = int(order)
    if q == 0.0:
        return 0.0
    if q == 1.0:
        return gaussian_rdp(sigma, order)
    # log-space sum of the binomial expansion
    log_terms = np.empty(order + 1)
    log_q = math.log(q)
    log_1q = math.log1p(-q)
    for i in range(order + 1):
        log_terms[i] = (
            _log_binom(order, i)
            + i * log_q
            + (order - i) * log_1q
            + (i * i - i) / (2.0 * sigma ** 2)
        )
    m = float(np.max(log_terms))
    log_sum = m + math.log(float(np.sum(np.exp(log_terms - m))))
    return max(0.0, log_sum / (order - 1))


def compute_rdp(
    q: float, sigma: float, steps: int, orders: Sequence[int] = DEFAULT_ORDERS
) -> np.ndarray:
    """Total RDP after ``steps`` compositions, one entry per order."""
    if steps < 0:
        raise CalibrationError(f"steps must be >= 0, got {steps}")
    per_step = np.array([sampled_gaussian_rdp(q, sigma, a) for a in orders])
    return steps * per_step


def rdp_to_epsilon(
    rdp: Iterable[float],
    orders: Sequence[int],
    delta: float,
    improved: bool = True,
) -> Tuple[float, int]:
    """Convert RDP values to the best (epsilon, delta) guarantee.

    With ``improved=True`` uses the conversion of Balle et al. (2020) /
    Canonne-Kamath-Steinke:

        eps(alpha) = rdp(alpha) + log((alpha-1)/alpha)
                     - (log delta + log alpha) / (alpha - 1)

    otherwise the classic Mironov conversion
    ``eps(alpha) = rdp(alpha) + log(1/delta)/(alpha-1)``.

    Returns ``(epsilon, best_order)`` minimizing over orders.
    """
    if not 0 < delta < 1:
        raise CalibrationError(f"delta must be in (0, 1), got {delta}")
    rdp = list(rdp)
    orders = list(orders)
    if len(rdp) != len(orders):
        raise CalibrationError("rdp and orders must have equal length")
    best_eps = math.inf
    best_order = orders[0]
    for value, alpha in zip(rdp, orders):
        if improved:
            eps = (
                value
                + math.log((alpha - 1.0) / alpha)
                - (math.log(delta) + math.log(alpha)) / (alpha - 1.0)
            )
        else:
            eps = value + math.log(1.0 / delta) / (alpha - 1.0)
        if eps < best_eps:
            best_eps = eps
            best_order = alpha
    return max(0.0, best_eps), best_order


def compute_epsilon(
    q: float,
    sigma: float,
    steps: int,
    delta: float,
    orders: Sequence[int] = DEFAULT_ORDERS,
) -> float:
    """(epsilon) such that ``steps`` DP-SGD steps are (epsilon, delta)-DP."""
    rdp = compute_rdp(q, sigma, steps, orders)
    epsilon, _ = rdp_to_epsilon(rdp, orders, delta)
    return epsilon


def calibrate_sigma(
    q: float,
    steps: int,
    epsilon: float,
    delta: float,
    orders: Sequence[int] = DEFAULT_ORDERS,
    sigma_min: float = 0.3,
    sigma_max: float = 2000.0,
    tol: float = 1e-3,
) -> float:
    """Smallest noise multiplier giving (epsilon, delta)-DP after ``steps`` steps.

    Binary search on the monotone map sigma -> epsilon.  Raises
    :class:`CalibrationError` when even ``sigma_max`` cannot reach the target
    (epsilon too small for the requested number of steps).
    """
    if epsilon <= 0:
        raise CalibrationError(f"epsilon must be > 0, got {epsilon}")
    if steps <= 0:
        raise CalibrationError(f"steps must be > 0, got {steps}")
    if compute_epsilon(q, sigma_max, steps, delta, orders) > epsilon:
        raise CalibrationError(
            f"cannot reach epsilon={epsilon} with sigma <= {sigma_max} "
            f"(q={q}, steps={steps})"
        )
    if compute_epsilon(q, sigma_min, steps, delta, orders) <= epsilon:
        return sigma_min
    lo, hi = sigma_min, sigma_max
    while hi - lo > tol * lo:
        mid = math.sqrt(lo * hi)  # geometric split: sigma spans decades
        if compute_epsilon(q, mid, steps, delta, orders) > epsilon:
            lo = mid
        else:
            hi = mid
    return hi
