"""Renyi differential privacy (RDP) accountant for the (subsampled) Gaussian
mechanism.

This is the "moments accountant" privacy analysis that DP-SGD [Abadi et al.
2016] relies on, in the RDP formulation of Mironov (2017) and Mironov, Talwar
& Zhang (2019).  Sage's training pipelines (Table 1) all use DP-SGD, so this
module is the substrate that turns ("noise multiplier sigma, sampling rate q,
steps T") into an (epsilon, delta) guarantee -- and back, via binary-search
calibration.

Only integer Renyi orders are used.  For the sampled Gaussian mechanism with
Poisson sampling rate ``q`` and noise multiplier ``sigma``, the per-step RDP
at integer order ``alpha >= 2`` is

    RDP(alpha) = 1/(alpha-1) * log( sum_{i=0}^{alpha} C(alpha, i)
                   * (1-q)^{alpha-i} * q^i * exp((i^2 - i) / (2 sigma^2)) )

computed in log-space for stability.  RDP composes additively over steps.

Vectorized evaluation
---------------------
The accountant's hot path is ``calibrate_sigma``'s bisection, which evaluates
the expansion above for *every* order on *every* probe sigma.  Instead of a
per-order Python loop, :func:`sampled_gaussian_rdp_orders` evaluates all
orders at once as a 2-D log-space binomial expansion: rows are orders,
columns are the expansion index ``i``, and the ``lgamma`` triangle of
log-binomial coefficients is cached per orders tuple (it depends on the
orders alone, not on ``q`` or ``sigma``).  ``compute_rdp`` additionally
memoizes the per-step RDP vector per ``(q, sigma, orders)``, so a bisection's
repeated endpoint evaluations -- and ``dpsgd_train``'s final
``compute_epsilon`` at the calibrated sigma -- are cache hits.  The scalar
:func:`sampled_gaussian_rdp` is kept as the independent reference the parity
tests pin the vectorized path against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.dp.budget import PrivacyBudget
from repro.errors import CalibrationError

__all__ = [
    "DEFAULT_ORDERS",
    "PRUNED_ORDERS",
    "GaussianMechanismBudget",
    "gaussian_mechanism_budget",
    "gaussian_rdp",
    "pure_dp_rdp",
    "sampled_gaussian_rdp",
    "sampled_gaussian_rdp_orders",
    "compute_rdp",
    "rdp_epsilon_penalties",
    "rdp_to_epsilon",
    "compute_epsilon",
    "calibrate_sigma",
    "clear_rdp_cache",
]

DEFAULT_ORDERS: Tuple[int, ...] = tuple(range(2, 65)) + (80, 96, 128, 192, 256, 512)

# A ~16-order grid spanning the same range as DEFAULT_ORDERS with roughly
# geometric spacing.  The optimal conversion order varies slowly (the
# per-order epsilon curve is flat near its minimum), so a pruned grid gives
# up only a few percent of tightness while shrinking every per-order
# structure -- most importantly the Renyi block filter's ledger-store rows
# (4 + len(orders) columns) and with them the scan constant of the whole
# accounting hot path.  The tightness loss versus DEFAULT_ORDERS is bounded
# by tests on representative Gaussian-mechanism and pure-DP workloads.
PRUNED_ORDERS: Tuple[int, ...] = (
    2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, 48, 64, 96, 128, 256, 512,
)


def gaussian_rdp(sigma: float, order: int) -> float:
    """RDP of the (unsampled) Gaussian mechanism: alpha / (2 sigma^2)."""
    if sigma <= 0:
        raise CalibrationError(f"sigma must be > 0, got {sigma}")
    if order < 2:
        raise CalibrationError(f"order must be >= 2, got {order}")
    return order / (2.0 * sigma ** 2)


def _log_binom(n: int, k: int) -> float:
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def sampled_gaussian_rdp(q: float, sigma: float, order: int) -> float:
    """Per-step RDP of the Poisson-sampled Gaussian mechanism at an integer order."""
    if not 0.0 <= q <= 1.0:
        raise CalibrationError(f"sampling rate q must be in [0, 1], got {q}")
    if sigma <= 0:
        raise CalibrationError(f"sigma must be > 0, got {sigma}")
    if order < 2 or int(order) != order:
        raise CalibrationError(f"order must be an integer >= 2, got {order}")
    order = int(order)
    if q == 0.0:
        return 0.0
    if q == 1.0:
        return gaussian_rdp(sigma, order)
    # log-space sum of the binomial expansion
    log_terms = np.empty(order + 1)
    log_q = math.log(q)
    log_1q = math.log1p(-q)
    for i in range(order + 1):
        log_terms[i] = (
            _log_binom(order, i)
            + i * log_q
            + (order - i) * log_1q
            + (i * i - i) / (2.0 * sigma ** 2)
        )
    m = float(np.max(log_terms))
    log_sum = m + math.log(float(np.sum(np.exp(log_terms - m))))
    return max(0.0, log_sum / (order - 1))


@lru_cache(maxsize=32)
def _validated_orders(orders: Tuple[int, ...]) -> Tuple[int, ...]:
    validated = []
    for order in orders:
        if order < 2 or int(order) != order:
            raise CalibrationError(f"order must be an integer >= 2, got {order}")
        validated.append(int(order))
    return tuple(validated)


@lru_cache(maxsize=32)
def _expansion_tables(orders: Tuple[int, ...]):
    """Cached ragged-flat expansion tables for a fixed orders tuple.

    The binomial expansion for order ``alpha`` has ``alpha + 1`` terms; the
    tables concatenate every order's terms into flat float64 vectors (the
    ``lgamma`` triangle of log-binomials, the index ``i``, the remainder
    ``alpha - i``, and the Gaussian exponent numerator ``i^2 - i``) plus the
    per-order segment starts for ``reduceat``.  Depends on the orders alone,
    so one set of tables serves every ``(q, sigma)`` the accountant probes.
    """
    o = np.asarray(orders, dtype=np.int64)
    counts = o + 1
    starts = np.zeros(len(orders), dtype=np.intp)
    np.cumsum(counts[:-1], out=starts[1:])
    i = np.concatenate([np.arange(a + 1) for a in orders])
    order_flat = np.repeat(o, counts)
    # G[k] = lgamma(k + 1) = log k!
    log_fact = np.array([math.lgamma(k + 1.0) for k in range(int(o.max()) + 1)])
    log_binom = log_fact[order_flat] - log_fact[i] - log_fact[order_flat - i]
    return (
        starts,
        counts,
        i.astype(np.float64),
        (order_flat - i).astype(np.float64),
        log_binom,
        (i * i - i).astype(np.float64),
    )


# Sigma-independent part of the log-space terms, keyed by (q, orders): a
# calibration bisection probes many sigmas at one q, and only the Gaussian
# exponent term depends on sigma.
_Q_BASE_CACHE: Dict[Tuple[float, Tuple[int, ...]], np.ndarray] = {}
_Q_BASE_CACHE_LIMIT = 512


def _q_base_terms(q: float, orders: Tuple[int, ...]) -> np.ndarray:
    key = (q, orders)
    cached = _Q_BASE_CACHE.get(key)
    if cached is None:
        if len(_Q_BASE_CACHE) >= _Q_BASE_CACHE_LIMIT:
            _Q_BASE_CACHE.clear()
        _, _, i_flat, rem_flat, log_binom, _ = _expansion_tables(orders)
        cached = log_binom + i_flat * math.log(q) + rem_flat * math.log1p(-q)
        _Q_BASE_CACHE[key] = cached
    return cached


def sampled_gaussian_rdp_orders(
    q: float, sigma: float, orders: Sequence[int] = DEFAULT_ORDERS
) -> np.ndarray:
    """Per-step RDP at *every* order at once (vectorized expansion).

    One flat log-space binomial expansion with ``reduceat`` row reductions
    replaces ``len(orders)`` scalar calls (each a Python loop of up to
    ``order + 1`` terms).  Values agree with :func:`sampled_gaussian_rdp` up
    to float summation order (about 1e-16 absolute; the parity tests pin
    1e-10 relative with a 1e-14 absolute floor for values at float-noise
    scale, where the log-sum cancels against the leading term).
    """
    if not 0.0 <= q <= 1.0:
        raise CalibrationError(f"sampling rate q must be in [0, 1], got {q}")
    if sigma <= 0:
        raise CalibrationError(f"sigma must be > 0, got {sigma}")
    orders = _validated_orders(tuple(orders))
    order_row = np.asarray(orders, dtype=np.float64)
    if q == 0.0:
        return np.zeros(len(orders))
    if q == 1.0:
        return order_row / (2.0 * sigma ** 2)
    starts, counts, _, _, _, gauss_num = _expansion_tables(orders)
    log_terms = _q_base_terms(q, orders) + gauss_num / (2.0 * sigma ** 2)
    peak = np.maximum.reduceat(log_terms, starts)
    sums = np.add.reduceat(np.exp(log_terms - np.repeat(peak, counts)), starts)
    return np.maximum(0.0, (peak + np.log(sums)) / (order_row - 1.0))


# Memoized per-step RDP vectors keyed by (q, sigma, orders): the calibration
# bisection re-evaluates its endpoints and dpsgd_train re-evaluates the final
# sigma, so identical expansions should never be recomputed.
_PER_STEP_CACHE: Dict[Tuple[float, float, Tuple[int, ...]], np.ndarray] = {}
_PER_STEP_CACHE_LIMIT = 4096


def clear_rdp_cache() -> None:
    """Drop the memoized per-step RDP vectors (tests / benchmarks)."""
    _PER_STEP_CACHE.clear()
    _Q_BASE_CACHE.clear()


def _per_step_rdp(q: float, sigma: float, orders: Tuple[int, ...]) -> np.ndarray:
    key = (q, sigma, orders)
    cached = _PER_STEP_CACHE.get(key)
    if cached is None:
        if len(_PER_STEP_CACHE) >= _PER_STEP_CACHE_LIMIT:
            _PER_STEP_CACHE.clear()
        cached = sampled_gaussian_rdp_orders(q, sigma, orders)
        cached.setflags(write=False)  # cache entries are shared; never mutate
        _PER_STEP_CACHE[key] = cached
    return cached


def compute_rdp(
    q: float, sigma: float, steps: int, orders: Sequence[int] = DEFAULT_ORDERS
) -> np.ndarray:
    """Total RDP after ``steps`` compositions, one entry per order."""
    if steps < 0:
        raise CalibrationError(f"steps must be >= 0, got {steps}")
    per_step = _per_step_rdp(float(q), float(sigma), tuple(orders))
    return steps * per_step


def pure_dp_rdp(
    epsilon: float, orders: Sequence[int] = DEFAULT_ORDERS
) -> np.ndarray:
    """RDP curve of an ``epsilon``-DP mechanism, one entry per order.

    An epsilon-DP mechanism is ``epsilon^2/2``-zCDP (Bun & Steinke 2016),
    i.e. satisfies ``(alpha, alpha * epsilon^2 / 2)``-RDP for every alpha;
    and the Renyi divergence never exceeds the max divergence, so
    ``epsilon`` itself is always an upper bound too.  The curve used here is
    the pointwise minimum of the two.  This is the generic reduction the
    :class:`~repro.core.filters.RenyiCompositionFilter` applies to charges
    that carry only an ``(epsilon, delta)`` budget (the delta part is
    accounted additively, outside the RDP curve, as in the moments
    accountant's treatment of non-Gaussian mechanisms).
    """
    if epsilon < 0:
        raise CalibrationError(f"epsilon must be >= 0, got {epsilon}")
    alpha = np.asarray(_validated_orders(tuple(orders)), dtype=np.float64)
    eps = float(epsilon)
    return np.minimum(eps, 0.5 * eps * eps * alpha)


@dataclass(frozen=True)
class GaussianMechanismBudget(PrivacyBudget):
    """A charge whose privacy cost is a (subsampled) Gaussian RDP curve.

    Carries the mechanism parameters ``(q, sigma, steps)`` alongside the
    converted ``(epsilon, delta)`` pair, so it is a fully valid
    :class:`~repro.dp.budget.PrivacyBudget` for every filter and ledger --
    basic/strong composition see the converted pair -- while RDP-aware
    filters (:class:`~repro.core.filters.RenyiCompositionFilter`) detect
    :meth:`rdp_vector` and charge the exact per-order curve instead of the
    generic pure-DP reduction.  Build instances through
    :func:`gaussian_mechanism_budget` so the pair and the curve agree.
    """

    q: float = 0.0
    sigma: float = 1.0
    steps: int = 0

    def rdp_vector(self, orders: Sequence[int]) -> np.ndarray:
        """Exact total RDP of this charge's mechanism at every order."""
        return compute_rdp(self.q, self.sigma, self.steps, orders)


def gaussian_mechanism_budget(
    q: float,
    sigma: float,
    steps: int,
    delta: float,
    orders: Sequence[int] = DEFAULT_ORDERS,
) -> GaussianMechanismBudget:
    """Budget for ``steps`` subsampled-Gaussian steps, with its (epsilon,
    delta) pair derived from the same RDP curve RDP-aware filters charge."""
    epsilon = compute_epsilon(q, sigma, steps, delta, orders)
    return GaussianMechanismBudget(
        epsilon, delta, q=float(q), sigma=float(sigma), steps=int(steps)
    )


def rdp_epsilon_penalties(
    orders: Sequence[int], delta: float, improved: bool = True
) -> np.ndarray:
    """Per-order additive penalty of the RDP -> (epsilon, delta) conversion.

    ``eps(alpha) = rdp(alpha) + penalty(alpha)`` with the penalty depending
    only on ``(orders, delta)``: Balle et al. (2020) / Canonne-Kamath-
    Steinke when ``improved`` (the default), classic Mironov otherwise.
    :func:`rdp_to_epsilon` and the Renyi block filter both build their
    conversions from this one helper so their admit boundaries agree
    bit-for-bit.  Both conversions are valid for *any* real order > 1
    (only the binomial-expansion paths require integers), so fractional
    orders are accepted here.
    """
    if not 0 < delta < 1:
        raise CalibrationError(f"delta must be in (0, 1), got {delta}")
    alpha = np.asarray(tuple(orders), dtype=np.float64)
    if (alpha <= 1.0).any():
        raise CalibrationError(f"orders must be > 1, got {tuple(orders)}")
    if improved:
        return np.log((alpha - 1.0) / alpha) - (
            math.log(delta) + np.log(alpha)
        ) / (alpha - 1.0)
    return np.full(alpha.shape, math.log(1.0 / delta)) / (alpha - 1.0)


def rdp_to_epsilon(
    rdp: Iterable[float],
    orders: Sequence[int],
    delta: float,
    improved: bool = True,
) -> Tuple[float, int]:
    """Convert RDP values to the best (epsilon, delta) guarantee.

    With ``improved=True`` uses the conversion of Balle et al. (2020) /
    Canonne-Kamath-Steinke:

        eps(alpha) = rdp(alpha) + log((alpha-1)/alpha)
                     - (log delta + log alpha) / (alpha - 1)

    otherwise the classic Mironov conversion
    ``eps(alpha) = rdp(alpha) + log(1/delta)/(alpha-1)``.

    Returns ``(epsilon, best_order)`` minimizing over orders.
    """
    orders = list(orders)
    rdp_arr = np.asarray(list(rdp), dtype=np.float64)
    alpha = np.asarray(orders, dtype=np.float64)
    if rdp_arr.shape != alpha.shape:
        raise CalibrationError("rdp and orders must have equal length")
    eps = rdp_arr + rdp_epsilon_penalties(tuple(orders), delta, improved)
    best = int(np.argmin(eps))  # first minimum, like the scalar scan
    return max(0.0, float(eps[best])), orders[best]


def compute_epsilon(
    q: float,
    sigma: float,
    steps: int,
    delta: float,
    orders: Sequence[int] = DEFAULT_ORDERS,
) -> float:
    """(epsilon) such that ``steps`` DP-SGD steps are (epsilon, delta)-DP."""
    rdp = compute_rdp(q, sigma, steps, orders)
    epsilon, _ = rdp_to_epsilon(rdp, orders, delta)
    return epsilon


def calibrate_sigma(
    q: float,
    steps: int,
    epsilon: float,
    delta: float,
    orders: Sequence[int] = DEFAULT_ORDERS,
    sigma_min: float = 0.3,
    sigma_max: float = 2000.0,
    tol: float = 1e-3,
) -> float:
    """Smallest noise multiplier giving (epsilon, delta)-DP after ``steps`` steps.

    Binary search on the monotone map sigma -> epsilon.  Raises
    :class:`CalibrationError` when even ``sigma_max`` cannot reach the target
    (epsilon too small for the requested number of steps).
    """
    if epsilon <= 0:
        raise CalibrationError(f"epsilon must be > 0, got {epsilon}")
    if steps <= 0:
        raise CalibrationError(f"steps must be > 0, got {steps}")
    if compute_epsilon(q, sigma_max, steps, delta, orders) > epsilon:
        raise CalibrationError(
            f"cannot reach epsilon={epsilon} with sigma <= {sigma_max} "
            f"(q={q}, steps={steps})"
        )
    if compute_epsilon(q, sigma_min, steps, delta, orders) <= epsilon:
        return sigma_min
    lo, hi = sigma_min, sigma_max
    while hi - lo > tol * lo:
        mid = math.sqrt(lo * hi)  # geometric split: sigma spans decades
        if compute_epsilon(q, mid, steps, delta, orders) > epsilon:
            lo = mid
        else:
            hi = mid
    return hi
