"""Parallel composition over disjoint partitions [McSherry, PINQ 2009].

When a dataset is partitioned by a key (each record belongs to exactly one
partition) and an (epsilon, delta)-DP query runs on *each* partition, the
combined release is still (epsilon, delta)-DP: a single record can only
influence one partition.  Sage's ``dp_group_by_*`` queries rely on this; the
:class:`PartitionedQuery` helper makes the pattern available for arbitrary
per-partition computations (e.g. per-country statistics, one of §4.4's
motivating workloads).

Note the contrast with *block composition* (``repro.core``): parallel
composition is non-adaptive and requires a static partition of one dataset,
while block composition supports adaptively chosen, overlapping block sets
on a growing database.  This module is the classic baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

import numpy as np

from repro.dp.budget import PrivacyBudget
from repro.errors import DataError

__all__ = ["parallel_composition", "partition_indices", "PartitionedQuery"]


def parallel_composition(budgets: Iterable[PrivacyBudget]) -> PrivacyBudget:
    """Composed guarantee of DP queries on disjoint partitions: the max."""
    eps, delta = 0.0, 0.0
    for budget in budgets:
        eps = max(eps, budget.epsilon)
        delta = max(delta, budget.delta)
    return PrivacyBudget(eps, delta)


def partition_indices(keys: np.ndarray, nkeys: int) -> List[np.ndarray]:
    """Index arrays of each partition, one per key in [0, nkeys)."""
    keys = np.asarray(keys).astype(np.int64)
    if nkeys <= 0:
        raise DataError(f"nkeys must be > 0, got {nkeys}")
    if keys.size and (keys.min() < 0 or keys.max() >= nkeys):
        raise DataError("keys must lie in [0, nkeys)")
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.searchsorted(sorted_keys, np.arange(nkeys + 1))
    return [order[boundaries[k]: boundaries[k + 1]] for k in range(nkeys)]


class PartitionedQuery:
    """Run a per-partition DP function and account via parallel composition.

    Parameters
    ----------
    fn:
        Callable ``fn(partition_rows, rng) -> result`` that must itself be
        ``budget``-DP with respect to its partition.
    budget:
        The (epsilon, delta) guarantee each per-partition invocation satisfies.
    """

    def __init__(self, fn: Callable, budget: PrivacyBudget) -> None:
        self._fn = fn
        self._budget = budget

    @property
    def budget(self) -> PrivacyBudget:
        """Total charge for one :meth:`run` -- the per-partition budget."""
        return self._budget

    def run(
        self,
        rows: np.ndarray,
        keys: np.ndarray,
        nkeys: int,
        rng: np.random.Generator,
    ) -> Dict[int, object]:
        """Apply ``fn`` to each partition; returns {key: result}."""
        rows = np.asarray(rows)
        if rows.shape[0] != np.asarray(keys).shape[0]:
            raise DataError("rows and keys must agree on the first dimension")
        results: Dict[int, object] = {}
        for key, idx in enumerate(partition_indices(keys, nkeys)):
            results[key] = self._fn(rows[idx], rng)
        return results
