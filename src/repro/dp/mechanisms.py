"""Noise mechanisms: Laplace and Gaussian.

These are the two mechanisms Sage's pipelines and validators use.  Both are
exposed in two styles:

* functional -- ``laplace_noise(rng, scale, size)`` /
  ``gaussian_noise(rng, sigma, size)`` for callers that manage their own
  calibration (e.g. Listing 2's validators add ``laplace(2/epsilon)``), and
* object -- :class:`LaplaceMechanism` / :class:`GaussianMechanism`, which
  calibrate noise from a sensitivity and a :class:`~repro.dp.budget.PrivacyBudget`
  and record the budget they consume.

Every caller passes an explicit ``numpy.random.Generator`` so experiments are
reproducible end-to-end; no module-level RNG state exists in this package.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.dp.budget import PrivacyBudget
from repro.errors import CalibrationError, InvalidBudgetError

__all__ = [
    "laplace_noise",
    "gaussian_noise",
    "laplace_scale",
    "gaussian_sigma",
    "LaplaceMechanism",
    "GaussianMechanism",
    "make_rng",
]

ArrayLike = Union[float, np.ndarray]


def make_rng(seed: Optional[Union[int, np.random.Generator]] = None) -> np.random.Generator:
    """Return a numpy Generator from a seed, an existing Generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
def laplace_scale(sensitivity: float, epsilon: float) -> float:
    """Laplace scale b = sensitivity / epsilon for (epsilon, 0)-DP."""
    if sensitivity < 0:
        raise CalibrationError(f"sensitivity must be >= 0, got {sensitivity}")
    if epsilon <= 0:
        raise CalibrationError(f"Laplace mechanism needs epsilon > 0, got {epsilon}")
    return sensitivity / epsilon


def gaussian_sigma(sensitivity: float, epsilon: float, delta: float) -> float:
    """Classic Gaussian-mechanism sigma for (epsilon, delta)-DP.

    sigma = sensitivity * sqrt(2 ln(1.25/delta)) / epsilon, valid for
    epsilon <= 1 (the regime Sage operates in; we allow epsilon > 1 but the
    guarantee is then conservative per Dwork & Roth Thm 3.22).
    """
    if sensitivity < 0:
        raise CalibrationError(f"sensitivity must be >= 0, got {sensitivity}")
    if epsilon <= 0:
        raise CalibrationError(f"Gaussian mechanism needs epsilon > 0, got {epsilon}")
    if not 0 < delta < 1:
        raise CalibrationError(f"Gaussian mechanism needs delta in (0, 1), got {delta}")
    return sensitivity * math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon


# ----------------------------------------------------------------------
# Raw noise draws
# ----------------------------------------------------------------------
def laplace_noise(rng: np.random.Generator, scale: float, size=None) -> ArrayLike:
    """Draw Laplace(0, scale) noise; ``scale == 0`` returns exact zeros."""
    if scale < 0:
        raise CalibrationError(f"Laplace scale must be >= 0, got {scale}")
    if scale == 0:
        return 0.0 if size is None else np.zeros(size)
    return rng.laplace(0.0, scale, size=size)


def gaussian_noise(rng: np.random.Generator, sigma: float, size=None) -> ArrayLike:
    """Draw N(0, sigma^2) noise; ``sigma == 0`` returns exact zeros."""
    if sigma < 0:
        raise CalibrationError(f"Gaussian sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return 0.0 if size is None else np.zeros(size)
    return rng.normal(0.0, sigma, size=size)


# ----------------------------------------------------------------------
# Mechanism objects
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LaplaceMechanism:
    """(epsilon, 0)-DP additive Laplace noise for a given L1 sensitivity."""

    sensitivity: float
    epsilon: float

    def __post_init__(self) -> None:
        laplace_scale(self.sensitivity, self.epsilon)  # validates

    @property
    def scale(self) -> float:
        return laplace_scale(self.sensitivity, self.epsilon)

    @property
    def budget(self) -> PrivacyBudget:
        return PrivacyBudget(self.epsilon, 0.0)

    def randomize(self, value: ArrayLike, rng: np.random.Generator) -> ArrayLike:
        value = np.asarray(value, dtype=float)
        noise = laplace_noise(rng, self.scale, size=value.shape if value.ndim else None)
        out = value + noise
        return float(out) if value.ndim == 0 else out

    def tail_bound(self, eta: float) -> float:
        """Magnitude exceeded by |noise| with probability at most ``eta``.

        P(|Laplace(b)| > b * ln(1/eta)) = eta.  This is the quantity the
        SLAed validators use to correct DP estimates for worst-case noise.
        """
        if not 0 < eta < 1:
            raise InvalidBudgetError(f"eta must be in (0, 1), got {eta}")
        return self.scale * math.log(1.0 / eta)


@dataclass(frozen=True)
class GaussianMechanism:
    """(epsilon, delta)-DP additive Gaussian noise for a given L2 sensitivity."""

    sensitivity: float
    epsilon: float
    delta: float

    def __post_init__(self) -> None:
        gaussian_sigma(self.sensitivity, self.epsilon, self.delta)  # validates

    @property
    def sigma(self) -> float:
        return gaussian_sigma(self.sensitivity, self.epsilon, self.delta)

    @property
    def budget(self) -> PrivacyBudget:
        return PrivacyBudget(self.epsilon, self.delta)

    def randomize(self, value: ArrayLike, rng: np.random.Generator) -> ArrayLike:
        value = np.asarray(value, dtype=float)
        noise = gaussian_noise(rng, self.sigma, size=value.shape if value.ndim else None)
        out = value + noise
        return float(out) if value.ndim == 0 else out

    def tail_bound(self, eta: float) -> float:
        """Magnitude exceeded by |noise| with probability at most ``eta``.

        Uses the Gaussian tail bound P(|N(0, s^2)| > s * sqrt(2 ln(2/eta))) <= eta.
        """
        if not 0 < eta < 1:
            raise InvalidBudgetError(f"eta must be in (0, 1), got {eta}")
        return self.sigma * math.sqrt(2.0 * math.log(2.0 / eta))
