"""Differentially private point queries.

These are the building blocks Sage training pipelines call inside their
``preprocessing_fn`` (Listing 1 of the paper): DP counts, sums, means,
variances, histograms, per-key group-by aggregates, and a DP quantile via
the exponential mechanism.

Conventions shared by every query here:

* value ranges are explicit (``lower``/``upper``); inputs are clipped before
  aggregation so the stated sensitivity is enforced, not assumed;
* each query documents how it splits the epsilon it is handed;
* each query takes an explicit ``rng`` (`numpy.random.Generator`);
* all queries are pure-epsilon (Laplace / exponential mechanism) as in the
  paper's pipelines, which reserve delta for DP-SGD training.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dp.mechanisms import laplace_noise, laplace_scale, make_rng
from repro.dp.sensitivity import clip_values, sum_sensitivity
from repro.errors import CalibrationError, DataError

__all__ = [
    "dp_count",
    "dp_sum",
    "dp_mean",
    "dp_variance",
    "dp_histogram",
    "dp_group_by_sum",
    "dp_group_by_count",
    "dp_group_by_mean",
    "dp_quantile",
]


def _check_epsilon(epsilon: float) -> None:
    if epsilon <= 0:
        raise CalibrationError(f"epsilon must be > 0, got {epsilon}")


def dp_count(n: int, epsilon: float, rng: Optional[np.random.Generator] = None) -> float:
    """(epsilon, 0)-DP count: n + Laplace(1/epsilon)."""
    _check_epsilon(epsilon)
    rng = make_rng(rng)
    return float(n + laplace_noise(rng, laplace_scale(1.0, epsilon)))


def dp_sum(
    values: np.ndarray,
    lower: float,
    upper: float,
    epsilon: float,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """(epsilon, 0)-DP sum of values clipped to [lower, upper]."""
    _check_epsilon(epsilon)
    rng = make_rng(rng)
    clipped = clip_values(values, lower, upper)
    scale = laplace_scale(sum_sensitivity(lower, upper), epsilon)
    return float(np.sum(clipped) + laplace_noise(rng, scale))


def dp_mean(
    values: np.ndarray,
    lower: float,
    upper: float,
    epsilon: float,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """(epsilon, 0)-DP mean via noisy-sum / noisy-count, epsilon split evenly.

    The noisy count is floored at 1 so the ratio stays finite; the result is
    clipped back into [lower, upper] (post-processing, free of charge).
    """
    _check_epsilon(epsilon)
    rng = make_rng(rng)
    values = np.asarray(values, dtype=float)
    noisy_sum = dp_sum(values, lower, upper, epsilon / 2.0, rng)
    noisy_count = max(1.0, dp_count(values.size, epsilon / 2.0, rng))
    return float(np.clip(noisy_sum / noisy_count, lower, upper))


def dp_variance(
    values: np.ndarray,
    lower: float,
    upper: float,
    epsilon: float,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """(epsilon, 0)-DP variance: DP mean-of-squares minus squared DP mean.

    Epsilon is split three ways (count, sum, sum of squares).  The output is
    clamped at 0 (post-processing).
    """
    _check_epsilon(epsilon)
    rng = make_rng(rng)
    values = clip_values(values, lower, upper)
    width_sq = max(abs(lower), abs(upper)) ** 2
    eps_each = epsilon / 3.0
    noisy_count = max(1.0, dp_count(values.size, eps_each, rng))
    noisy_sum = float(
        np.sum(values) + laplace_noise(rng, laplace_scale(sum_sensitivity(lower, upper), eps_each))
    )
    noisy_sum_sq = float(
        np.sum(values ** 2) + laplace_noise(rng, laplace_scale(width_sq, eps_each))
    )
    mean = noisy_sum / noisy_count
    return float(max(0.0, noisy_sum_sq / noisy_count - mean ** 2))


def dp_histogram(
    keys: np.ndarray,
    nkeys: int,
    epsilon: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """(epsilon, 0)-DP histogram over integer keys in [0, nkeys).

    Each record lands in exactly one bin, so by parallel composition
    [McSherry 2009] the per-bin Laplace(1/epsilon) noise yields an overall
    (epsilon, 0)-DP histogram -- this is the Criteo "Counts x26" pipeline of
    Table 1.
    """
    _check_epsilon(epsilon)
    if nkeys <= 0:
        raise DataError(f"nkeys must be > 0, got {nkeys}")
    rng = make_rng(rng)
    keys = np.asarray(keys)
    if keys.size and (keys.min() < 0 or keys.max() >= nkeys):
        raise DataError("keys must lie in [0, nkeys)")
    counts = np.bincount(keys.astype(np.int64), minlength=nkeys).astype(float)
    return counts + laplace_noise(rng, laplace_scale(1.0, epsilon), size=nkeys)


def dp_group_by_count(
    keys: np.ndarray,
    nkeys: int,
    epsilon: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Alias of :func:`dp_histogram` under the group-by naming of Listing 1."""
    return dp_histogram(keys, nkeys, epsilon, rng)


def dp_group_by_sum(
    keys: np.ndarray,
    values: np.ndarray,
    nkeys: int,
    value_range: float,
    epsilon: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """(epsilon, 0)-DP per-key sums of values clipped to [0, value_range].

    One record contributes to exactly one key, so parallel composition gives
    the full epsilon to each key's sum.
    """
    _check_epsilon(epsilon)
    if nkeys <= 0:
        raise DataError(f"nkeys must be > 0, got {nkeys}")
    if value_range <= 0:
        raise DataError(f"value_range must be > 0, got {value_range}")
    rng = make_rng(rng)
    keys = np.asarray(keys).astype(np.int64)
    values = clip_values(values, 0.0, value_range)
    if keys.shape != values.shape:
        raise DataError("keys and values must have the same shape")
    if keys.size and (keys.min() < 0 or keys.max() >= nkeys):
        raise DataError("keys must lie in [0, nkeys)")
    sums = np.bincount(keys, weights=values, minlength=nkeys)
    return sums + laplace_noise(rng, laplace_scale(value_range, epsilon), size=nkeys)


def dp_group_by_mean(
    keys: np.ndarray,
    values: np.ndarray,
    nkeys: int,
    epsilon: float,
    value_range: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Listing 1's ``sage.dp_group_by_mean``: per-key DP means.

    Splits epsilon between a DP per-key count (Laplace scale ``2/epsilon``)
    and a DP per-key sum (Laplace scale ``value_range * 2/epsilon``), exactly
    as lines 33-42 of the paper.  Counts are floored at 1 and the means are
    clipped into [0, value_range] by post-processing.  Returns the per-key
    means (length ``nkeys``); use ``means[keys]`` to gather per-record values
    as Listing 1 does.
    """
    counts = dp_group_by_count(keys, nkeys, epsilon / 2.0, rng)
    sums = dp_group_by_sum(keys, values, nkeys, value_range, epsilon / 2.0, rng)
    means = sums / np.maximum(counts, 1.0)
    return np.clip(means, 0.0, value_range)


def dp_quantile(
    values: np.ndarray,
    quantile: float,
    lower: float,
    upper: float,
    epsilon: float,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """(epsilon, 0)-DP quantile via the exponential mechanism [Smith 2011].

    Candidate outputs are the gaps between sorted (clipped) data points; a
    gap's utility is minus the rank distance from the target quantile, and a
    gap is selected with probability proportional to
    ``len(gap) * exp(-epsilon/2 * |rank - target|)``; the output is uniform
    inside the chosen gap.
    """
    _check_epsilon(epsilon)
    if not 0.0 <= quantile <= 1.0:
        raise DataError(f"quantile must be in [0, 1], got {quantile}")
    if lower >= upper:
        raise DataError(f"need lower < upper, got [{lower}, {upper}]")
    rng = make_rng(rng)
    data = np.sort(clip_values(values, lower, upper))
    edges = np.concatenate(([lower], data, [upper]))
    widths = np.diff(edges)
    n = data.size
    target_rank = quantile * n
    ranks = np.arange(n + 1, dtype=float)
    utilities = -np.abs(ranks - target_rank)
    # Sensitivity of rank utility is 1; exponential mechanism exponent eps/2.
    log_weights = (epsilon / 2.0) * utilities + np.log(np.maximum(widths, 1e-300))
    log_weights -= log_weights.max()
    weights = np.exp(log_weights)
    weights /= weights.sum()
    idx = int(rng.choice(n + 1, p=weights))
    return float(rng.uniform(edges[idx], max(edges[idx], edges[idx + 1])))
