"""DP selection via the exponential mechanism [McSherry-Talwar].

The paper's pipeline ecosystem needs private *choices*, not just private
numbers: picking the best hyperparameter configuration, the best of several
candidate models (citation [50], DP model selection), or the argmax bucket
of a histogram.  The exponential mechanism covers all of these: given
per-candidate utility scores with known sensitivity, it samples a candidate
with probability proportional to ``exp(eps * u / (2 * sensitivity))`` and
is (eps, 0)-DP.

Also provides :func:`report_noisy_max`, the Laplace-noise argmax that is
(eps, 0)-DP with *no* dependence on the number of candidates -- handy for
choosing among many models scored on a validation split.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.dp.mechanisms import laplace_noise, make_rng
from repro.errors import CalibrationError, DataError

__all__ = ["exponential_mechanism", "report_noisy_max", "dp_argmax_count"]


def exponential_mechanism(
    utilities: Sequence[float],
    epsilon: float,
    sensitivity: float,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """(epsilon, 0)-DP index selection, exponentially biased toward high
    utility.

    ``sensitivity`` is the max change of any single utility when one record
    is added/removed (e.g. B/n for a mean loss on n points).
    """
    if epsilon <= 0:
        raise CalibrationError(f"epsilon must be > 0, got {epsilon}")
    if sensitivity <= 0:
        raise CalibrationError(f"sensitivity must be > 0, got {sensitivity}")
    utilities = np.asarray(utilities, dtype=float)
    if utilities.ndim != 1 or utilities.size == 0:
        raise DataError("utilities must be a non-empty 1-D sequence")
    rng = make_rng(rng)
    logits = epsilon * utilities / (2.0 * sensitivity)
    logits -= logits.max()
    probs = np.exp(logits)
    probs /= probs.sum()
    return int(rng.choice(utilities.size, p=probs))


def report_noisy_max(
    utilities: Sequence[float],
    epsilon: float,
    sensitivity: float,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """(epsilon, 0)-DP argmax: add Laplace(2*sensitivity/epsilon) to every
    utility and report the argmax index (the noisy-max mechanism)."""
    if epsilon <= 0:
        raise CalibrationError(f"epsilon must be > 0, got {epsilon}")
    if sensitivity <= 0:
        raise CalibrationError(f"sensitivity must be > 0, got {sensitivity}")
    utilities = np.asarray(utilities, dtype=float)
    if utilities.ndim != 1 or utilities.size == 0:
        raise DataError("utilities must be a non-empty 1-D sequence")
    rng = make_rng(rng)
    noisy = utilities + laplace_noise(
        rng, 2.0 * sensitivity / epsilon, size=utilities.size
    )
    return int(np.argmax(noisy))


def dp_argmax_count(
    keys: np.ndarray,
    nkeys: int,
    epsilon: float,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """(epsilon, 0)-DP most-frequent key (count utilities have sensitivity 1)."""
    keys = np.asarray(keys).astype(np.int64)
    if nkeys <= 0:
        raise DataError(f"nkeys must be > 0, got {nkeys}")
    if keys.size and (keys.min() < 0 or keys.max() >= nkeys):
        raise DataError("keys must lie in [0, nkeys)")
    counts = np.bincount(keys, minlength=nkeys).astype(float)
    return report_noisy_max(counts, epsilon, 1.0, rng)
