"""Privacy budget value type.

A :class:`PrivacyBudget` is an immutable ``(epsilon, delta)`` pair with the
arithmetic the rest of the platform needs: addition (basic composition),
subtraction (charging a ledger), scalar division (splitting a stage budget
across sub-queries, as Listing 1 of the paper does for ``dp_group_by_mean``),
and partial-order comparisons (feasibility checks in access control).

The paper's convention is followed throughout: ``epsilon >= 0`` and
``delta in [0, 1]``.  ``ZERO`` is the additive identity -- the budget of a
brand-new block.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import InvalidBudgetError

__all__ = ["PrivacyBudget", "ZERO_BUDGET", "sum_budgets"]

_REL_TOL = 1e-9
_ABS_TOL = 1e-12


def _validate(epsilon: float, delta: float) -> None:
    if not (isinstance(epsilon, (int, float)) and math.isfinite(epsilon)):
        raise InvalidBudgetError(f"epsilon must be a finite number, got {epsilon!r}")
    if not (isinstance(delta, (int, float)) and math.isfinite(delta)):
        raise InvalidBudgetError(f"delta must be a finite number, got {delta!r}")
    if epsilon < 0:
        raise InvalidBudgetError(f"epsilon must be >= 0, got {epsilon}")
    if not 0.0 <= delta <= 1.0:
        raise InvalidBudgetError(f"delta must be in [0, 1], got {delta}")


@dataclass(frozen=True, order=False)
class PrivacyBudget:
    """An immutable (epsilon, delta) differential-privacy budget.

    Supports::

        a + b          # basic sequential composition
        a - b          # remaining budget after a charge
        a / k, a * k   # even splits / scaling of epsilon AND delta
        a <= b         # component-wise feasibility (can `a` be charged to `b`?)

    Comparisons are component-wise with a small floating-point tolerance so
    that budgets assembled by repeated halving/doubling still compare equal
    to their closed forms.
    """

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        _validate(self.epsilon, self.delta)
        # Normalize -0.0 and ints so equality/hashing behave predictably.
        object.__setattr__(self, "epsilon", float(self.epsilon) + 0.0)
        object.__setattr__(self, "delta", float(self.delta) + 0.0)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "PrivacyBudget") -> "PrivacyBudget":
        if not isinstance(other, PrivacyBudget):
            return NotImplemented
        return PrivacyBudget(self.epsilon + other.epsilon, min(1.0, self.delta + other.delta))

    def __sub__(self, other: "PrivacyBudget") -> "PrivacyBudget":
        if not isinstance(other, PrivacyBudget):
            return NotImplemented
        eps = self.epsilon - other.epsilon
        delta = self.delta - other.delta
        # Tolerate tiny negative residue from float arithmetic.
        if eps < 0 and eps > -_ABS_TOL - _REL_TOL * self.epsilon:
            eps = 0.0
        if delta < 0 and delta > -_ABS_TOL - _REL_TOL * self.delta:
            delta = 0.0
        if eps < 0 or delta < 0:
            raise InvalidBudgetError(
                f"cannot subtract {other} from {self}: result would be negative"
            )
        return PrivacyBudget(eps, delta)

    def __mul__(self, k: float) -> "PrivacyBudget":
        if not isinstance(k, (int, float)):
            return NotImplemented
        if k < 0:
            raise InvalidBudgetError(f"cannot scale a budget by negative factor {k}")
        return PrivacyBudget(self.epsilon * k, min(1.0, self.delta * k))

    __rmul__ = __mul__

    def __truediv__(self, k: float) -> "PrivacyBudget":
        if not isinstance(k, (int, float)):
            return NotImplemented
        if k <= 0:
            raise InvalidBudgetError(f"cannot divide a budget by non-positive {k}")
        return PrivacyBudget(self.epsilon / k, self.delta / k)

    # ------------------------------------------------------------------
    # Comparison (component-wise partial order with tolerance)
    # ------------------------------------------------------------------
    def approx_eq(self, other: "PrivacyBudget") -> bool:
        """True when both components match up to floating-point tolerance."""
        return math.isclose(
            self.epsilon, other.epsilon, rel_tol=_REL_TOL, abs_tol=_ABS_TOL
        ) and math.isclose(self.delta, other.delta, rel_tol=_REL_TOL, abs_tol=_ABS_TOL)

    def fits_within(self, other: "PrivacyBudget") -> bool:
        """True when charging ``self`` against a remaining budget ``other`` is legal.

        Component-wise ``<=`` with tolerance; this is the check Sage's access
        control performs per block (Theorem 4.3's two inequalities).
        """
        eps_ok = self.epsilon <= other.epsilon + _ABS_TOL + _REL_TOL * other.epsilon
        delta_ok = self.delta <= other.delta + _ABS_TOL + _REL_TOL * other.delta
        return eps_ok and delta_ok

    def __le__(self, other: "PrivacyBudget") -> bool:
        return self.fits_within(other)

    def __lt__(self, other: "PrivacyBudget") -> bool:
        return self.fits_within(other) and not self.approx_eq(other)

    def __ge__(self, other: "PrivacyBudget") -> bool:
        return other.fits_within(self)

    def __gt__(self, other: "PrivacyBudget") -> bool:
        return other.fits_within(self) and not self.approx_eq(other)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def is_zero(self) -> bool:
        return self.epsilon == 0.0 and self.delta == 0.0

    @property
    def is_pure(self) -> bool:
        """True for (epsilon, 0)-DP budgets."""
        return self.delta == 0.0

    def split(self, parts: int) -> Iterator["PrivacyBudget"]:
        """Yield ``parts`` equal shares whose basic composition is ``self``."""
        if parts < 1:
            raise InvalidBudgetError(f"parts must be >= 1, got {parts}")
        share = self / parts
        for _ in range(parts):
            yield share

    def as_tuple(self) -> tuple:
        return (self.epsilon, self.delta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PrivacyBudget(epsilon={self.epsilon:g}, delta={self.delta:g})"


ZERO_BUDGET = PrivacyBudget(0.0, 0.0)


def sum_budgets(budgets: Iterable[PrivacyBudget]) -> PrivacyBudget:
    """Basic sequential composition of an iterable of budgets."""
    total = ZERO_BUDGET
    for budget in budgets:
        total = total + budget
    return total
