"""Query-level DP composition theorems.

These are the classic results Sage's block accounting builds on:

* **basic composition** [Dwork et al. 2006]: budgets add component-wise;
* **advanced ("strong") composition** [Dwork, Rothblum, Vadhan 2010,
  Thm 3.20]: k repetitions of an (eps, delta) mechanism are
  (eps', k*delta + delta_slack)-DP with eps' growing as sqrt(k);
* **heterogeneous strong composition** (paper Theorem A.1): the same bound
  for a fixed sequence of different (eps_i, delta_i);
* **Kairouz-Oh-Viswanath optimal composition** for homogeneous budgets; and
* the **Rogers et al. privacy-filter bound** (paper Theorem A.2) which makes
  strong composition valid even when each query's budget is chosen
  *adaptively* -- the regime Sage's block composition operates in.

Every function returns the composed guarantee as a
:class:`~repro.dp.budget.PrivacyBudget` (or the filter's effective epsilon),
so callers can compare accounting regimes directly.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.dp.budget import PrivacyBudget, sum_budgets
from repro.errors import InvalidBudgetError

__all__ = [
    "basic_composition",
    "advanced_composition",
    "strong_composition_heterogeneous",
    "optimal_composition_homogeneous",
    "rogers_filter_epsilon",
    "rogers_filter_epsilon_from_sums",
    "rogers_filter_epsilon_from_sums_batch",
    "rogers_filter_admits",
]

# Constant from Rogers et al. (NeurIPS 2016), Theorem 5.1, as used verbatim in
# the paper's Theorem A.2.
_ROGERS_CONSTANT = 28.04

# Shared drift slack for admissibility comparisons (absolute floor plus a
# relative share of the global budget), so a budget split k ways always
# recomposes within tolerance.  repro.core.filters imports these so the
# per-block filters and rogers_filter_admits agree at the boundary.
EPS_DRIFT_ABS = 1e-12
DELTA_DRIFT_ABS = 1e-15
DRIFT_REL = 1e-12


def basic_composition(budgets: Iterable[PrivacyBudget]) -> PrivacyBudget:
    """Sum of budgets: the (sum eps_i, sum delta_i)-DP guarantee."""
    return sum_budgets(budgets)


def advanced_composition(
    epsilon: float, delta: float, k: int, delta_slack: float
) -> PrivacyBudget:
    """DRV'10 strong composition of ``k`` copies of an (epsilon, delta) mechanism.

    Returns (eps', k*delta + delta_slack) with
    eps' = k*eps*(e^eps - 1) + eps*sqrt(2k ln(1/delta_slack)).
    """
    if k < 0:
        raise InvalidBudgetError(f"k must be >= 0, got {k}")
    if not 0 < delta_slack < 1:
        raise InvalidBudgetError(f"delta_slack must be in (0, 1), got {delta_slack}")
    if k == 0:
        return PrivacyBudget(0.0, 0.0)
    eps_prime = k * epsilon * (math.expm1(epsilon)) + epsilon * math.sqrt(
        2.0 * k * math.log(1.0 / delta_slack)
    )
    return PrivacyBudget(eps_prime, min(1.0, k * delta + delta_slack))


def strong_composition_heterogeneous(
    budgets: Sequence[PrivacyBudget], delta_slack: float
) -> PrivacyBudget:
    """Heterogeneous strong composition (paper Theorem A.1, fixed sequence).

    eps_g = sum_i (e^{eps_i} - 1) * eps_i + sqrt(2 * sum_i eps_i^2 * ln(1/delta_slack))
    delta_g = delta_slack + sum_i delta_i
    """
    if not 0 < delta_slack < 1:
        raise InvalidBudgetError(f"delta_slack must be in (0, 1), got {delta_slack}")
    budgets = list(budgets)
    if not budgets:
        return PrivacyBudget(0.0, 0.0)
    sum_sq = sum(b.epsilon ** 2 for b in budgets)
    linear = sum(math.expm1(b.epsilon) * b.epsilon for b in budgets)
    eps_g = linear + math.sqrt(2.0 * sum_sq * math.log(1.0 / delta_slack))
    delta_g = min(1.0, delta_slack + sum(b.delta for b in budgets))
    return PrivacyBudget(eps_g, delta_g)


def optimal_composition_homogeneous(
    epsilon: float, delta: float, k: int, delta_slack: float
) -> PrivacyBudget:
    """Kairouz-Oh-Viswanath (ICML 2015) optimal homogeneous composition.

    Takes the best of the three bounds in KOV Theorem 3.3 (which includes the
    basic and DRV bounds as special cases), so the result is never worse than
    either :func:`basic_composition` or :func:`advanced_composition`.
    """
    if k < 0:
        raise InvalidBudgetError(f"k must be >= 0, got {k}")
    if not 0 < delta_slack < 1:
        raise InvalidBudgetError(f"delta_slack must be in (0, 1), got {delta_slack}")
    if k == 0:
        return PrivacyBudget(0.0, 0.0)
    tanh_term = k * epsilon * math.expm1(epsilon) / (math.exp(epsilon) + 1.0)
    candidates = [
        k * epsilon,
        tanh_term
        + epsilon
        * math.sqrt(
            2.0 * k * math.log(math.e + epsilon * math.sqrt(k) / delta_slack)
        ),
        tanh_term + epsilon * math.sqrt(2.0 * k * math.log(1.0 / delta_slack)),
    ]
    return PrivacyBudget(min(candidates), min(1.0, k * delta + delta_slack))


def rogers_filter_epsilon(
    epsilons: Sequence[float], epsilon_global: float, delta_slack: float
) -> float:
    """Effective epsilon of the Rogers et al. privacy filter (paper Thm A.2).

    Given the (adaptively chosen) per-query epsilons already charged to one
    block plus a candidate, returns the left-hand side K of Theorem A.2's
    inequality; the sequence remains within the filter iff
    ``K <= epsilon_global``.

    K = sum_i (e^{eps_i}-1)*eps_i/2
        + sqrt( 2*(sum_i eps_i^2 + eps_g^2/(28.04*ln(1/delta_slack)))
                * (1 + 0.5*ln(28.04*ln(1/delta_slack)*sum_i eps_i^2/eps_g^2 + 1))
                * ln(1/delta_slack) )
    """
    if epsilon_global <= 0:
        raise InvalidBudgetError(f"epsilon_global must be > 0, got {epsilon_global}")
    if not 0 < delta_slack < 1:
        raise InvalidBudgetError(f"delta_slack must be in (0, 1), got {delta_slack}")
    epsilons = [float(e) for e in epsilons]
    if any(e < 0 for e in epsilons):
        raise InvalidBudgetError("per-query epsilons must be >= 0")
    if not epsilons:
        return 0.0
    sum_sq = sum(e ** 2 for e in epsilons)
    linear = sum(math.expm1(e) * e / 2.0 for e in epsilons)
    return rogers_filter_epsilon_from_sums(sum_sq, linear, epsilon_global, delta_slack)


def rogers_filter_epsilon_from_sums(
    sum_sq: float, linear: float, epsilon_global: float, delta_slack: float
) -> float:
    """Theorem A.2's K from precomputed ``sum eps_i^2`` and
    ``sum (e^{eps_i}-1) eps_i / 2`` -- the O(1) form ledgers use."""
    if sum_sq < 0 or linear < 0:
        raise InvalidBudgetError("sums must be non-negative")
    if sum_sq == 0.0:
        return 0.0
    log_term = math.log(1.0 / delta_slack)
    inflation = epsilon_global ** 2 / (_ROGERS_CONSTANT * log_term)
    # np.log, not math.log: libm's and NumPy's log can disagree in the last
    # ulp, and this scalar form must be bit-identical to the batched one so
    # per-ledger and whole-store scans reach the same admit/deny boundary
    # (sqrt is correctly rounded by IEEE 754, so it needs no such care).
    inner_log = 1.0 + 0.5 * float(
        np.log(_ROGERS_CONSTANT * log_term * sum_sq / epsilon_global ** 2 + 1.0)
    )
    return linear + math.sqrt(2.0 * (sum_sq + inflation) * inner_log * log_term)


def rogers_filter_epsilon_from_sums_batch(
    sum_sq: np.ndarray, linear: np.ndarray, epsilon_global: float, delta_slack: float
) -> np.ndarray:
    """Vectorized :func:`rogers_filter_epsilon_from_sums` over aligned arrays.

    Operation order mirrors the scalar form exactly so batched filter scans
    reach the same admit/deny boundary as per-ledger evaluation.
    """
    if epsilon_global <= 0:
        raise InvalidBudgetError(f"epsilon_global must be > 0, got {epsilon_global}")
    if not 0 < delta_slack < 1:
        raise InvalidBudgetError(f"delta_slack must be in (0, 1), got {delta_slack}")
    sum_sq = np.asarray(sum_sq, dtype=np.float64)
    linear = np.asarray(linear, dtype=np.float64)
    if (sum_sq < 0).any() or (linear < 0).any():
        raise InvalidBudgetError("sums must be non-negative")
    log_term = math.log(1.0 / delta_slack)
    inflation = epsilon_global ** 2 / (_ROGERS_CONSTANT * log_term)
    inner_log = 1.0 + 0.5 * np.log(
        _ROGERS_CONSTANT * log_term * sum_sq / epsilon_global ** 2 + 1.0
    )
    value = linear + np.sqrt(2.0 * (sum_sq + inflation) * inner_log * log_term)
    return np.where(sum_sq == 0.0, 0.0, value)


def rogers_filter_admits(
    epsilons: Sequence[float],
    deltas: Sequence[float],
    epsilon_global: float,
    delta_global: float,
    delta_slack: float,
) -> bool:
    """True iff the whole adaptive sequence stays within (eps_g, delta_g).

    The delta side is basic composition plus the slack consumed by the
    filter itself: ``delta_slack + sum_i delta_i <= delta_global``.
    """
    if len(epsilons) != len(deltas):
        raise InvalidBudgetError("epsilons and deltas must have equal length")
    eps_ok = (
        rogers_filter_epsilon(epsilons, epsilon_global, delta_slack)
        <= epsilon_global + EPS_DRIFT_ABS + DRIFT_REL * epsilon_global
    )
    delta_ok = (
        delta_slack + sum(deltas)
        <= delta_global + DELTA_DRIFT_ABS + DRIFT_REL * delta_global
    )
    return eps_ok and delta_ok
