"""Sensitivity bookkeeping helpers.

Differential privacy mechanisms are calibrated to the *sensitivity* of the
query: the largest change in its output when one record is added to or
removed from the dataset (the paper measures dataset distance with the
symmetric difference, Appendix A.1).  This module centralizes the standard
sensitivities the platform relies on and the clipping operators that enforce
them on raw data.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError

__all__ = [
    "count_sensitivity",
    "sum_sensitivity",
    "mean_sensitivity_numerator",
    "clip_values",
    "clip_rows_l2",
    "l2_clip_factor",
]


def count_sensitivity() -> float:
    """Adding/removing one record changes a count by exactly 1."""
    return 1.0


def sum_sensitivity(lower: float, upper: float) -> float:
    """Sensitivity of a sum of values clipped to [lower, upper].

    Under add/remove-one neighbouring (symmetric difference <= 1), the sum
    moves by at most max(|lower|, |upper|).
    """
    if lower > upper:
        raise DataError(f"empty clipping range [{lower}, {upper}]")
    return max(abs(lower), abs(upper))


def mean_sensitivity_numerator(lower: float, upper: float) -> float:
    """Sensitivity of the numerator when a mean is computed as noisy-sum/noisy-count."""
    return sum_sensitivity(lower, upper)


def clip_values(values: np.ndarray, lower: float, upper: float) -> np.ndarray:
    """Clip scalar values into [lower, upper] (bounded-range enforcement)."""
    if lower > upper:
        raise DataError(f"empty clipping range [{lower}, {upper}]")
    return np.clip(np.asarray(values, dtype=float), lower, upper)


def l2_clip_factor(rows: np.ndarray, max_norm: float) -> np.ndarray:
    """Per-row multipliers in (0, 1] that bring each row's L2 norm under ``max_norm``.

    Rows already within the bound get factor 1.0 (they are never scaled up).
    This is the clipping rule of DP-SGD [Abadi et al. 2016].
    """
    if max_norm <= 0:
        raise DataError(f"max_norm must be > 0, got {max_norm}")
    rows = np.asarray(rows, dtype=float)
    norms = np.linalg.norm(rows.reshape(rows.shape[0], -1), axis=1)
    # Avoid division by zero for all-zero rows; their factor is 1.
    safe = np.maximum(norms, 1e-32)
    return np.minimum(1.0, max_norm / safe)


def clip_rows_l2(rows: np.ndarray, max_norm: float) -> np.ndarray:
    """Return a copy of ``rows`` with every row's L2 norm clipped to ``max_norm``."""
    rows = np.asarray(rows, dtype=float)
    factors = l2_clip_factor(rows, max_norm)
    shape = (rows.shape[0],) + (1,) * (rows.ndim - 1)
    return rows * factors.reshape(shape)
