"""Legacy setup shim.

This repository targets offline environments that ship setuptools but not
``wheel``; PEP 660 editable installs are unavailable there, so ``pip install
-e .`` falls back to this classic path.  All metadata lives in pyproject.toml
(setuptools >= 61 reads it from here too).
"""

from setuptools import setup

setup()
