"""The crash-point registry, and the durable drive's rollback property.

The rollback property (the exception half of the durability contract): an
exception raised at *any* pre-commit crash point of a durable hour leaves
the in-memory platform -- accountant store, staged batch, reservation
table, sessions, model store -- byte-identical to its pre-hour state, and
the WAL untouched; the hour simply never happened.  Post-commit points
raise through to the caller but leave the already-committed hour intact.
"""

import pytest

from repro.core import durability, faults
from repro.core.adaptive import AdaptiveConfig
from repro.core.platform import Sage
from repro.workload.oracle import CountStreamSource, OraclePipeline

PRE_COMMIT_POINTS = (
    "hour.opened",
    "settle.mid_session",
    "wal.before_append",
    "wal.after_append",
    "charge.between_validate_and_commit",
)
POST_COMMIT_POINTS = ("hour.after_commit", "snapshot.mid_write")


def _build(wal_dir=None, snapshot_every=0):
    return Sage(
        CountStreamSource(4000, scale=1000),
        seed=5,
        wal_dir=wal_dir,
        snapshot_every=snapshot_every,
    )


def _pipes():
    return [
        (OraclePipeline(name=f"p{i}", n_at_eps1=c), AdaptiveConfig(max_attempts=16))
        for i, c in enumerate((3_000.0, 12_000.0, 50_000.0))
    ]


def _clean_digests(hours, snapshot_every=0):
    sage = _build()
    for pipeline, config in _pipes():
        sage.submit(pipeline, config)
    digests = [durability.state_digest(sage)]
    for _ in range(hours):
        sage.advance(1.0)
        digests.append(durability.state_digest(sage))
    sage.close()
    return digests


@pytest.fixture(autouse=True)
def _clean_fault_registry():
    faults.clear()
    yield
    faults.clear()


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_trip_is_noop_when_nothing_armed(self):
        faults.trip("hour.opened")  # must not raise

    def test_unknown_point_rejected_at_arm_time(self):
        with pytest.raises(faults.FaultConfigError):
            faults.arm_error("no.such.point")
        with pytest.raises(faults.FaultConfigError):
            faults.is_armed("no.such.point")
        # trip() stays permissive: it is the production hot path and must
        # cost one dict probe, not a membership check per call.
        faults.trip("no.such.point")

    def test_armed_error_fires_once_and_disarms(self):
        with faults.armed_error("hour.opened"):
            assert faults.is_armed("hour.opened")
            with pytest.raises(faults.InjectedFault) as err:
                faults.trip("hour.opened")
            assert err.value.point == "hour.opened"
        assert not faults.is_armed("hour.opened")
        faults.trip("hour.opened")  # disarmed again: no-op

    def test_skip_counts_down_before_firing(self):
        with faults.armed_error("hour.opened", skip=2):
            faults.trip("hour.opened")
            faults.trip("hour.opened")
            with pytest.raises(faults.InjectedFault):
                faults.trip("hour.opened")

    def test_crash_is_not_an_exception_subclass(self):
        # The whole point: `except Exception` handlers (rollback paths)
        # must not see a simulated process death.
        assert not issubclass(faults.InjectedCrash, Exception)
        assert issubclass(faults.InjectedCrash, BaseException)
        assert issubclass(faults.InjectedFault, Exception)

    def test_clear_disarms_everything(self):
        faults.arm_error("hour.opened")
        faults.arm_crash("settle.mid_session")
        faults.clear()
        assert not faults.is_armed("hour.opened")
        assert not faults.is_armed("settle.mid_session")


# ----------------------------------------------------------------------
# The rollback property (satellite: exception-safety of Sage.advance)
# ----------------------------------------------------------------------
class TestDurableRollback:
    @pytest.mark.parametrize("point", PRE_COMMIT_POINTS)
    @pytest.mark.parametrize("skip", [0, 1])
    def test_pre_commit_fault_restores_pre_hour_state(self, point, skip, tmp_path):
        digests = _clean_digests(hours=8)
        sage = _build(wal_dir=tmp_path)
        for pipeline, config in _pipes():
            sage.submit(pipeline, config)
        wal_file = durability.wal_path(tmp_path)
        # Some points fire only on hours that commit charges: advance
        # with the fault armed until it actually fires.
        fail_hour = None
        with faults.armed_error(point, skip=skip):
            for hour in range(6):
                pre_digest = durability.state_digest(sage)
                pre_store_len = len(sage.access.accountant.store)
                # Before any hour the log is at most its 8-byte magic
                # (creating the empty file never rolls back).
                pre_wal_size = (
                    wal_file.stat().st_size
                    if wal_file.exists()
                    else len(durability.WAL_MAGIC)
                )
                try:
                    sage.advance(1.0)
                except faults.InjectedFault:
                    fail_hour = hour
                    break
        assert fail_hour is not None, f"{point} never fired"
        # The hour never happened: accountant, table, sessions, WAL.
        assert durability.state_digest(sage) == pre_digest
        assert pre_digest == digests[fail_hour]
        assert len(sage.access.accountant.store) == pre_store_len
        assert not sage.access.staging_active
        assert sage.hours_committed == fail_hour
        assert wal_file.stat().st_size == pre_wal_size
        # The platform keeps working, in lockstep with the clean run:
        # the rollback rewound clock, RNG, and database tail, so the
        # retried hour re-ingests the very same stream slice.
        for hour in range(fail_hour + 1, fail_hour + 3):
            sage.advance(1.0)
            assert durability.state_digest(sage) == digests[hour]
        sage.close()

    @pytest.mark.parametrize("point", POST_COMMIT_POINTS)
    def test_post_commit_fault_keeps_the_committed_hour(self, point, tmp_path):
        digests = _clean_digests(hours=6)
        snapshot_every = 2 if point == "snapshot.mid_write" else 0
        sage = _build(wal_dir=tmp_path, snapshot_every=snapshot_every)
        for pipeline, config in _pipes():
            sage.submit(pipeline, config)
        sage.advance(1.0)
        with pytest.raises(faults.InjectedFault):
            with faults.armed_error(point):
                sage.advance(1.0)
        # The hour landed before the fault: no rollback.
        assert sage.hours_committed == 2
        assert durability.state_digest(sage) == digests[2]
        sage.advance(1.0)
        assert durability.state_digest(sage) == digests[3]
        sage.close()

    def test_fault_then_crash_then_recover(self, tmp_path):
        """A rolled-back hour must not poison later recovery: the
        rollback leaves no trace, and replay re-ingests under the
        recorded clock/RNG state either way."""
        digests = _clean_digests(hours=6)
        sage = _build(wal_dir=tmp_path)
        for pipeline, config in _pipes():
            sage.submit(pipeline, config)
        sage.advance(1.0)
        with pytest.raises(faults.InjectedFault):
            with faults.armed_error("settle.mid_session"):
                sage.advance(1.0)
        sage.advance(1.0)
        sage.advance(1.0)
        assert durability.state_digest(sage) == digests[3]
        with pytest.raises(faults.InjectedCrash):
            with faults.armed_crash("hour.opened"):
                sage.advance(1.0)
        recovered = _build(wal_dir=tmp_path)
        report = recovered.recover(_pipes())
        assert report.hours_committed == 3
        assert durability.state_digest(recovered) == digests[3]
        recovered.advance(1.0)
        assert durability.state_digest(recovered) == digests[4]
        recovered.close()
        sage.close()

    def test_volatile_platform_keeps_commit_on_fault_semantics(self):
        """Without a wal_dir the seed semantics stand: a mid-hour
        exception still commits whatever was staged (no rollback)."""
        sage = _build()
        for pipeline, config in _pipes():
            sage.submit(pipeline, config)
        with pytest.raises(faults.InjectedFault):
            with faults.armed_error("settle.mid_session"):
                sage.advance(1.0)
        # The first session's charges landed before the fault.
        assert len(sage.access.accountant.charges) > 0
        assert not sage.access.staging_active
        sage.close()
