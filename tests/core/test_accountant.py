"""BlockAccountant: atomic charges, retirement, the stream-wide bound."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.accountant import TOT_DELTA, TOT_EPS, BlockAccountant, BlockLedger
from repro.core.filters import (
    BasicCompositionFilter,
    PrivacyFilter,
    StrongCompositionFilter,
)
from repro.dp.budget import PrivacyBudget
from repro.errors import BlockRetiredError, BudgetExceededError, InvalidBudgetError


@pytest.fixture
def accountant():
    acc = BlockAccountant(1.0, 1e-6)
    acc.register_blocks([0, 1, 2, 3])
    return acc


class TestRegistration:
    def test_new_blocks_have_full_budget(self, accountant):
        assert accountant.max_epsilon([0], 0.0) == pytest.approx(1.0)

    def test_duplicate_registration_rejected(self, accountant):
        with pytest.raises(InvalidBudgetError):
            accountant.register_block(0)

    def test_unknown_block_rejected(self, accountant):
        with pytest.raises(InvalidBudgetError):
            accountant.charge([99], PrivacyBudget(0.1))

    def test_contains(self, accountant):
        assert 0 in accountant
        assert 99 not in accountant


class TestCharging:
    def test_charge_hits_every_named_block(self, accountant):
        accountant.charge([0, 1], PrivacyBudget(0.4, 0.0))
        assert accountant.max_epsilon([0], 0.0) == pytest.approx(0.6)
        assert accountant.max_epsilon([1], 0.0) == pytest.approx(0.6)
        assert accountant.max_epsilon([2], 0.0) == pytest.approx(1.0)

    def test_charge_is_atomic(self, accountant):
        """A failure on one block must leave all the others untouched."""
        accountant.charge([0], PrivacyBudget(0.9, 0.0))
        with pytest.raises(BudgetExceededError):
            accountant.charge([0, 1], PrivacyBudget(0.4, 0.0))
        assert accountant.max_epsilon([1], 0.0) == pytest.approx(1.0)

    def test_empty_charge_rejected(self, accountant):
        with pytest.raises(InvalidBudgetError):
            accountant.charge([], PrivacyBudget(0.1))

    def test_duplicate_keys_in_charge_rejected(self, accountant):
        with pytest.raises(InvalidBudgetError):
            accountant.charge([0, 0], PrivacyBudget(0.1))

    def test_charge_records_label(self, accountant):
        accountant.charge([0], PrivacyBudget(0.1), label="taxi-lr")
        assert accountant.charges[-1].label == "taxi-lr"
        assert accountant.charges[-1].block_keys == (0,)

    def test_can_charge_mirror(self, accountant):
        assert accountant.can_charge([0, 1], PrivacyBudget(1.0, 1e-6))
        accountant.charge([0], PrivacyBudget(0.7, 0.0))
        assert not accountant.can_charge([0, 1], PrivacyBudget(0.5, 0.0))
        assert not accountant.can_charge([], PrivacyBudget(0.1))


class TestRetirement:
    def test_exhausted_block_retires(self, accountant):
        accountant.charge([0], PrivacyBudget(1.0, 1e-6))
        assert 0 in accountant.retired_blocks()
        assert 0 not in accountant.usable_blocks()

    def test_retired_block_raises_block_retired(self, accountant):
        accountant.charge([0], PrivacyBudget(1.0, 1e-6))
        with pytest.raises(BlockRetiredError):
            accountant.charge([0], PrivacyBudget(0.01, 0.0))

    def test_retirement_is_permanent(self, accountant):
        """Privacy loss never decreases; a retired block stays retired."""
        accountant.charge([0], PrivacyBudget(1.0, 1e-6))
        for _ in range(3):
            assert 0 in accountant.retired_blocks()

    def test_usable_blocks_with_floor(self, accountant):
        accountant.charge([0], PrivacyBudget(0.95, 0.0))
        usable = accountant.usable_blocks(PrivacyBudget(0.1, 0.0))
        assert usable == [1, 2, 3]


class TestStreamBound:
    def test_bound_is_max_over_blocks(self, accountant):
        accountant.charge([0], PrivacyBudget(0.5, 0.0))
        accountant.charge([1], PrivacyBudget(0.3, 1e-7))
        bound = accountant.stream_loss_bound()
        assert bound.epsilon == pytest.approx(0.5)

    def test_bound_never_exceeds_global(self):
        """The paper's core claim (Theorem 4.3), exercised randomly."""
        rng = np.random.default_rng(0)
        acc = BlockAccountant(1.0, 1e-6)
        acc.register_blocks(range(10))
        for _ in range(300):
            keys = list(rng.choice(10, size=rng.integers(1, 4), replace=False))
            budget = PrivacyBudget(float(rng.uniform(0.01, 0.4)), float(rng.uniform(0, 2e-7)))
            if acc.can_charge(keys, budget):
                acc.charge(keys, budget)
        bound = acc.stream_loss_bound()
        assert bound.epsilon <= 1.0 + 1e-9
        assert bound.delta <= 1e-6 + 1e-15

    def test_strong_filter_variant(self):
        acc = BlockAccountant(
            1.0, 1e-6, filter_factory=StrongCompositionFilter
        )
        acc.register_blocks([0])
        for _ in range(12):
            if acc.can_charge([0], PrivacyBudget(0.05, 0.0)):
                acc.charge([0], PrivacyBudget(0.05, 0.0))
        bound = acc.stream_loss_bound()
        assert bound.epsilon <= 1.0 + 1e-9

    def test_bound_dominates_every_block_componentwise(self, accountant):
        """Regression: Thm 4.2 needs a bound dominating every block in BOTH
        components.  A lexicographic (eps, delta) max reported delta=0 here
        because the worst-epsilon block carries no delta."""
        accountant.charge([0], PrivacyBudget(0.5, 0.0))
        accountant.charge([1], PrivacyBudget(0.4, 5e-7))
        bound = accountant.stream_loss_bound()
        assert bound.epsilon == pytest.approx(0.5)
        assert bound.delta == pytest.approx(5e-7)

    def test_componentwise_bound_under_strong_filter(self):
        acc = BlockAccountant(1.0, 1e-6, filter_factory=StrongCompositionFilter)
        acc.register_blocks([0, 1])
        acc.charge([0], PrivacyBudget(0.3, 0.0))
        acc.charge([1], PrivacyBudget(0.1, 4e-7))
        bound = acc.stream_loss_bound()
        per_block = [acc.ledger(k).loss_bound() for k in (0, 1)]
        assert bound.epsilon >= max(b.epsilon for b in per_block) - 1e-12
        assert bound.delta >= max(b.delta for b in per_block) - 1e-18

    def test_strong_stream_bound_matches_per_ledger_loop(self):
        """The vectorized Theorem A.2 stream bound must equal the
        component-wise max of per-ledger loss bounds, and uncharged blocks
        must contribute zero (not the filter's delta slack)."""
        rng = np.random.default_rng(5)
        acc = BlockAccountant(1.0, 1e-6, filter_factory=StrongCompositionFilter)
        acc.register_blocks(range(20))  # blocks 15-19 never charged
        for _ in range(60):
            keys = [int(k) for k in rng.choice(15, size=2, replace=False)]
            budget = PrivacyBudget(float(rng.uniform(0.005, 0.05)), 1e-9)
            if acc.can_charge(keys, budget):
                acc.charge(keys, budget)
        bound = acc.stream_loss_bound()
        bounds = [acc.ledger(k).loss_bound() for k in range(20)]
        assert bound.epsilon == pytest.approx(max(b.epsilon for b in bounds), abs=1e-15)
        assert bound.delta == pytest.approx(max(b.delta for b in bounds), abs=1e-18)
        empty = BlockAccountant(1.0, 1e-6, filter_factory=StrongCompositionFilter)
        empty.register_blocks([0])
        assert empty.stream_loss_bound().is_zero


class TestTailScan:
    def test_tail_returns_newest_first_in_chrono_order(self, accountant):
        tail = accountant.usable_blocks_tail(PrivacyBudget(0.1, 0.0), 2)
        assert tail == [2, 3]

    def test_tail_skips_drained_blocks(self, accountant):
        accountant.charge([3], PrivacyBudget(1.0, 1e-6))
        tail = accountant.usable_blocks_tail(PrivacyBudget(0.5, 0.0), 2)
        assert tail == [1, 2]

    def test_tail_respects_key_filter(self, accountant):
        tail = accountant.usable_blocks_tail(
            PrivacyBudget(0.1, 0.0), 3, key_filter=lambda k: k % 2 == 0
        )
        assert tail == [0, 2]

    def test_tail_short_when_not_enough(self, accountant):
        tail = accountant.usable_blocks_tail(PrivacyBudget(0.1, 0.0), 99)
        assert tail == [0, 1, 2, 3]

    def test_tail_zero_count_is_empty(self, accountant):
        assert accountant.usable_blocks_tail(PrivacyBudget(0.1, 0.0), 0) == []
        assert accountant.usable_blocks_tail(None, -1) == []

    def test_ledger_totals_cache_matches_slow_path(self, accountant):
        """The O(1) admits path must agree with a fresh recomputation."""
        from repro.core.filters import BasicCompositionFilter

        ledger = accountant.ledger(0)
        for eps in (0.1, 0.2, 0.3):
            ledger.charge(PrivacyBudget(eps, 1e-8))
        fresh = BasicCompositionFilter(1.0, 1e-6)
        for candidate in (PrivacyBudget(0.39, 0.0), PrivacyBudget(0.41, 0.0)):
            assert ledger.admits(candidate) == fresh.admits(ledger.history, candidate)


class TestLedgerStore:
    """The struct-of-arrays store must mirror every ledger mutation."""

    def test_rows_track_charges(self, accountant):
        accountant.charge([1, 3], PrivacyBudget(0.2, 1e-8))
        totals = accountant.store.totals
        assert totals.shape == (4, 4)
        assert totals[1, TOT_EPS] == pytest.approx(0.2)
        assert totals[3, TOT_DELTA] == pytest.approx(1e-8)
        assert totals[0, TOT_EPS] == 0.0

    def test_direct_ledger_charge_stays_in_sync(self, accountant):
        """Charges landing on a ledger (not through the accountant) must
        still be visible to the vectorized scans."""
        accountant.ledger(2).charge(PrivacyBudget(0.97, 0.0))
        assert 2 not in accountant.usable_blocks(PrivacyBudget(0.1, 0.0))
        assert accountant.store.totals[2, TOT_EPS] == pytest.approx(0.97)

    def test_store_grows_past_initial_capacity(self):
        acc = BlockAccountant(1.0, 1e-6)
        acc.register_blocks(range(200))
        acc.charge([150], PrivacyBudget(0.4, 0.0))
        assert len(acc.store) == 200
        assert acc.store.totals[150, TOT_EPS] == pytest.approx(0.4)
        assert acc.store.live.all()

    def test_retired_rows_leave_live_mask(self, accountant):
        accountant.charge([0], PrivacyBudget(1.0, 1e-6))
        accountant.usable_blocks()
        assert not accountant.store.live[0]
        assert accountant.store.live[1:].all()

    def test_accumulate_does_not_import_per_charge(self):
        """Regression: `import math` used to run inside _accumulate on every
        committed charge of every block (a per-charge local import)."""
        assert "math" not in BlockLedger._accumulate.__code__.co_varnames


class TestBatchedScansMatchScalar:
    """The vectorized paths must reproduce per-ledger decisions exactly."""

    @pytest.mark.parametrize(
        "factory", [BasicCompositionFilter, StrongCompositionFilter]
    )
    def test_randomized_histories(self, factory):
        rng = np.random.default_rng(7)
        acc = BlockAccountant(1.0, 1e-6, filter_factory=factory)
        acc.register_blocks(range(30))
        for _ in range(400):
            keys = [int(k) for k in rng.choice(30, size=rng.integers(1, 5), replace=False)]
            budget = PrivacyBudget(float(rng.uniform(0.005, 0.3)), 0.0)
            batched = acc.can_charge(keys, budget)
            scalar = all(acc.ledger(k).admits(budget) for k in keys)
            assert batched == scalar
            if batched:
                acc.charge(keys, budget)
        probe = PrivacyBudget(0.05, 0.0)
        batched_mask = list(acc.admits_keys(acc.block_keys, probe))
        scalar_mask = [acc.ledger(k).admits(probe) for k in acc.block_keys]
        assert batched_mask == scalar_mask

    def test_usable_blocks_matches_per_ledger_loop(self):
        rng = np.random.default_rng(11)
        acc = BlockAccountant(1.0, 1e-6)
        acc.register_blocks(range(50))
        for key in range(50):
            spend = float(rng.uniform(0.0, 1.0))
            if spend > 0.0:
                acc.ledger(key).record(PrivacyBudget(spend, 0.0))
        floor = PrivacyBudget(0.25, 0.0)
        expected = [
            k
            for k in range(50)
            if not acc.ledger(k).is_retired(acc.retirement_budget)
            and acc.ledger(k).admits(floor)
        ]
        assert acc.usable_blocks(floor) == expected

    def test_history_based_custom_filter_still_enforced(self):
        """A custom filter that keeps the base-class admits_batch decides
        from the real charge history: batched scans must not hand it an
        empty history (which would silently admit everything)."""

        class AtMostThreeCharges(PrivacyFilter):
            def admits(self, history, candidate, totals=None):
                return len(history) < 3

            def max_epsilon(self, history, delta):
                return self.epsilon_global if len(history) < 3 else 0.0

        acc = BlockAccountant(1.0, 1e-6, filter_factory=AtMostThreeCharges)
        acc.register_blocks([0, 1])
        for _ in range(3):
            acc.charge([0], PrivacyBudget(0.01, 0.0))
        assert not acc.can_charge([0], PrivacyBudget(0.01, 0.0))
        assert acc.can_charge([1], PrivacyBudget(0.01, 0.0))
        assert acc.usable_blocks() == [1]
        assert acc.retired_blocks() == [0]
        assert acc.max_epsilon([0]) == 0.0
        with pytest.raises(BlockRetiredError):
            acc.charge([0], PrivacyBudget(0.01, 0.0))

    def test_subclass_overriding_admits_only_still_enforced(self):
        """A subclass that tightens the scalar admits rule but inherits a
        concrete admits_batch must not be scanned through the inherited
        batch path (it would silently admit what the override refuses)."""

        class AtMostTwoCharges(BasicCompositionFilter):
            def admits(self, history, candidate, totals=None):
                return len(history) < 2 and super().admits(
                    history, candidate, totals=totals
                )

        acc = BlockAccountant(1.0, 1e-6, filter_factory=AtMostTwoCharges)
        acc.register_blocks([0, 1])
        acc.charge([0], PrivacyBudget(0.1, 0.0))
        acc.charge([0], PrivacyBudget(0.1, 0.0))
        assert not acc.can_charge([0], PrivacyBudget(0.1, 0.0))
        with pytest.raises(BlockRetiredError):
            acc.charge([0], PrivacyBudget(0.1, 0.0))
        assert acc.usable_blocks() == [1]

    def test_subclass_overriding_max_epsilon_only_still_enforced(self):
        """Tightening only the scalar max_epsilon must force the scalar
        scan path too -- the base batch bisection would ignore the cap."""

        class CappedMax(StrongCompositionFilter):
            def max_epsilon(self, history, delta):
                return min(0.05, super().max_epsilon(history, delta))

        acc = BlockAccountant(1.0, 1e-6, filter_factory=CappedMax)
        acc.register_blocks([0])
        assert acc.max_epsilon([0]) == pytest.approx(0.05)
        assert acc.max_epsilon([0]) == acc.ledger(0).max_epsilon(0.0)

    def test_legacy_loss_bound_signature_supported(self):
        """Custom filters overriding loss_bound with the pre-refactor
        (self, history) signature must keep working (no totals kwarg)."""

        class LegacyFilter(BasicCompositionFilter):
            def loss_bound(self, history):
                return PrivacyBudget(2.0 * sum(b.epsilon for b in history), 0.0)

        acc = BlockAccountant(1.0, 1e-6, filter_factory=LegacyFilter)
        acc.register_blocks([0])
        acc.charge([0], PrivacyBudget(0.2, 0.0))
        assert acc.ledger(0).loss_bound().epsilon == pytest.approx(0.4)
        assert acc.stream_loss_bound().epsilon == pytest.approx(0.4)

    def test_custom_filter_tail_scan(self):
        class AtMostOne(PrivacyFilter):
            def admits(self, history, candidate, totals=None):
                return len(history) < 1

            def max_epsilon(self, history, delta):
                return self.epsilon_global if not history else 0.0

        acc = BlockAccountant(1.0, 1e-6, filter_factory=AtMostOne)
        acc.register_blocks(range(6))
        acc.charge([4, 5], PrivacyBudget(0.1, 0.0))
        tail = acc.usable_blocks_tail(PrivacyBudget(0.1, 0.0), 3)
        assert tail == [1, 2, 3]
        assert acc.usable_blocks_tail(
            PrivacyBudget(0.1, 0.0), 2, key_filter=lambda k: k % 2 == 0
        ) == [0, 2]

    def test_max_epsilon_matches_scalar_min(self):
        for factory in (BasicCompositionFilter, StrongCompositionFilter):
            acc = BlockAccountant(1.0, 1e-6, filter_factory=factory)
            acc.register_blocks(range(5))
            acc.charge([0, 2], PrivacyBudget(0.3, 0.0))
            acc.charge([2, 4], PrivacyBudget(0.2, 0.0))
            keys = [0, 2, 4]
            scalar = min(acc.ledger(k).max_epsilon(0.0) for k in keys)
            assert acc.max_epsilon(keys, 0.0) == pytest.approx(scalar, abs=1e-9)


def _store_state(acc):
    return (
        acc.store.totals.copy(),
        acc.store.live.copy(),
        acc.store.charge_counts.copy(),
        {k: list(acc.ledger(k).history) for k in acc.block_keys},
        len(acc.charges),
    )


def _assert_store_equal(a, b):
    assert np.array_equal(a[0], b[0])  # totals, byte-for-byte
    assert np.array_equal(a[1], b[1])  # live mask
    assert np.array_equal(a[2], b[2])  # charge counts
    assert a[3] == b[3]  # histories
    assert a[4] == b[4]  # charge log length


class TestChargeMany:
    """The batched settlement path: sequential equivalence + atomicity."""

    @pytest.mark.parametrize(
        "factory", [BasicCompositionFilter, StrongCompositionFilter]
    )
    def test_committed_batch_matches_sequential(self, factory):
        rng = np.random.default_rng(21)
        batched = BlockAccountant(1.0, 1e-6, filter_factory=factory)
        sequential = BlockAccountant(1.0, 1e-6, filter_factory=factory)
        for acc in (batched, sequential):
            acc.register_blocks(range(12))
        requests = []
        for j in range(20):
            keys = [int(k) for k in rng.choice(12, size=rng.integers(1, 5), replace=False)]
            requests.append(
                (keys, PrivacyBudget(float(rng.uniform(0.001, 0.04)), 1e-9), f"r{j}")
            )
        records = batched.charge_many(requests)
        for keys, budget, label in requests:
            sequential.charge(keys, budget, label=label)
        _assert_store_equal(_store_state(batched), _store_state(sequential))
        assert [r.label for r in records] == [f"r{j}" for j in range(20)]
        assert batched.charges[-1].block_keys == sequential.charges[-1].block_keys

    def test_intra_batch_accumulation(self, accountant):
        """Two charges on one block in a batch are checked combined: the
        pair must be refused even though each alone would be admitted."""
        budget = PrivacyBudget(0.6, 0.0)
        assert accountant.can_charge([0], budget)
        with pytest.raises(BudgetExceededError):
            accountant.charge_many([([0], budget), ([0, 1], budget)])
        assert not accountant.can_charge_many([([0], budget), ([0, 1], budget)])
        assert accountant.can_charge_many([([0], budget), ([1], budget)])

    def test_mid_batch_rejection_rolls_everything_back(self, accountant):
        accountant.charge([2], PrivacyBudget(0.8, 0.0))  # pre-existing spend
        before = _store_state(accountant)
        with pytest.raises(BudgetExceededError):
            accountant.charge_many(
                [
                    ([0, 1], PrivacyBudget(0.3, 0.0)),
                    ([1, 3], PrivacyBudget(0.2, 1e-8)),
                    ([2, 3], PrivacyBudget(0.5, 0.0)),  # block 2 refuses
                ]
            )
        _assert_store_equal(_store_state(accountant), before)

    def test_retired_block_error_type(self, accountant):
        accountant.charge([1], PrivacyBudget(1.0, 1e-6))
        before = _store_state(accountant)
        with pytest.raises(BlockRetiredError):
            accountant.charge_many(
                [([0], PrivacyBudget(0.1, 0.0)), ([1], PrivacyBudget(0.1, 0.0))]
            )
        _assert_store_equal(_store_state(accountant), before)

    def test_malformed_requests_rejected(self, accountant):
        with pytest.raises(InvalidBudgetError):
            accountant.charge_many([([], PrivacyBudget(0.1))])
        with pytest.raises(InvalidBudgetError):
            accountant.charge_many([([0, 0], PrivacyBudget(0.1))])
        with pytest.raises(InvalidBudgetError):
            accountant.charge_many([([99], PrivacyBudget(0.1))])
        empty = accountant.charge_many([])
        assert empty == []
        assert accountant.can_charge_many([])

    def test_scalar_filter_routes_through_per_ledger_path(self):
        """Custom history-deciding filters must get exact sequential
        semantics (apply + rollback), not the vectorized pass."""

        class AtMostThreeCharges(PrivacyFilter):
            def admits(self, history, candidate, totals=None):
                return len(history) < 3

            def max_epsilon(self, history, delta):
                return self.epsilon_global if len(history) < 3 else 0.0

        acc = BlockAccountant(1.0, 1e-6, filter_factory=AtMostThreeCharges)
        acc.register_blocks([0, 1])
        budget = PrivacyBudget(0.01, 0.0)
        acc.charge_many([([0], budget), ([0, 1], budget)])
        assert len(acc.ledger(0).history) == 2
        before = _store_state(acc)
        # Third request pushes block 0 to its 4th charge mid-batch: refused,
        # and the first two requests of the batch roll back too.
        with pytest.raises(BlockRetiredError):
            acc.charge_many([([0], budget), ([1], budget), ([0, 1], budget)])
        _assert_store_equal(_store_state(acc), before)
        assert not acc.can_charge_many([([0], budget), ([0], budget)])
        assert acc.can_charge_many([([0], budget), ([1], budget)])
        _assert_store_equal(_store_state(acc), before)  # can-check is pure

    @given(
        st.lists(
            st.tuples(
                st.lists(
                    st.integers(min_value=0, max_value=5),
                    min_size=1,
                    max_size=4,
                    unique=True,
                ),
                st.floats(min_value=0.01, max_value=0.6),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_batch_observationally_identical(self, raw):
        """charge_many commits iff the same charges applied sequentially via
        charge all commit; a committed batch leaves identical state and a
        refused batch leaves the accountant byte-for-byte untouched."""
        requests = [(keys, PrivacyBudget(eps, 0.0)) for keys, eps in raw]
        batched = BlockAccountant(1.0, 1e-6)
        sequential = BlockAccountant(1.0, 1e-6)
        for acc in (batched, sequential):
            acc.register_blocks(range(6))
        before = _store_state(batched)
        try:
            batched.charge_many(requests)
            batch_error = None
        except (BudgetExceededError, BlockRetiredError) as exc:
            batch_error = exc
        seq_error = None
        for keys, budget in requests:
            try:
                sequential.charge(keys, budget)
            except (BudgetExceededError, BlockRetiredError) as exc:
                seq_error = exc
                break
        assert (batch_error is None) == (seq_error is None)
        if batch_error is None:
            _assert_store_equal(_store_state(batched), _store_state(sequential))
        else:
            assert type(batch_error) is type(seq_error)
            assert batch_error.block_id == seq_error.block_id
            _assert_store_equal(_store_state(batched), before)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.floats(min_value=0.01, max_value=0.5),
        ),
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_no_block_ever_exceeds_global(charges):
    """Whatever the charge sequence, per-block spend stays within eps_g."""
    acc = BlockAccountant(1.0, 1e-6)
    acc.register_blocks(range(5))
    for key, eps in charges:
        budget = PrivacyBudget(eps, 0.0)
        if acc.can_charge([key], budget):
            acc.charge([key], budget)
    for key in range(5):
        spent = sum(b.epsilon for b in acc.ledger(key).history)
        assert spent <= 1.0 + 1e-9


class TestKeyRowCache:
    """rows_for_keys memoizes window -> row translations (the hourly
    drive's per-proposal lookup hot path)."""

    def test_repeat_lookup_returns_cached_array(self, accountant):
        first = accountant.rows_for_keys([1, 3])
        second = accountant.rows_for_keys([1, 3])
        assert second is first  # memoized, not rebuilt
        assert not first.flags.writeable  # shared, so frozen
        assert first.tolist() == [1, 3]

    def test_distinct_windows_distinct_rows(self, accountant):
        assert accountant.rows_for_keys([0, 2]).tolist() == [0, 2]
        assert accountant.rows_for_keys([2, 0]).tolist() == [2, 0]
        assert accountant.rows_for_keys([]).tolist() == []

    def test_cache_survives_new_registrations(self, accountant):
        rows = accountant.rows_for_keys([1, 3])
        accountant.register_block(99)
        # Rows never move, so the cached translation stays valid...
        assert accountant.rows_for_keys([1, 3]) is rows
        # ... and the new key resolves to the appended row.
        assert accountant.rows_for_keys([99]).tolist() == [4]

    def test_unregistered_key_still_raises(self, accountant):
        with pytest.raises(InvalidBudgetError):
            accountant.rows_for_keys([1, 77])
        # The failed lookup must not poison the cache.
        accountant.register_block(77)
        assert accountant.rows_for_keys([1, 77]).tolist() == [1, 4]

    def test_cache_bound_clears_not_breaks(self, accountant):
        from repro.core import accountant as accountant_mod

        old_limit = accountant_mod._ROW_CACHE_LIMIT
        accountant_mod._ROW_CACHE_LIMIT = 4
        try:
            for i in range(10):
                assert accountant.rows_for_keys([i % 4]).tolist() == [i % 4]
        finally:
            accountant_mod._ROW_CACHE_LIMIT = old_limit
        assert accountant.rows_for_keys([0, 1]).tolist() == [0, 1]
