"""BlockAccountant: atomic charges, retirement, the stream-wide bound."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.accountant import BlockAccountant
from repro.core.filters import StrongCompositionFilter
from repro.dp.budget import PrivacyBudget
from repro.errors import BlockRetiredError, BudgetExceededError, InvalidBudgetError


@pytest.fixture
def accountant():
    acc = BlockAccountant(1.0, 1e-6)
    acc.register_blocks([0, 1, 2, 3])
    return acc


class TestRegistration:
    def test_new_blocks_have_full_budget(self, accountant):
        assert accountant.max_epsilon([0], 0.0) == pytest.approx(1.0)

    def test_duplicate_registration_rejected(self, accountant):
        with pytest.raises(InvalidBudgetError):
            accountant.register_block(0)

    def test_unknown_block_rejected(self, accountant):
        with pytest.raises(InvalidBudgetError):
            accountant.charge([99], PrivacyBudget(0.1))

    def test_contains(self, accountant):
        assert 0 in accountant
        assert 99 not in accountant


class TestCharging:
    def test_charge_hits_every_named_block(self, accountant):
        accountant.charge([0, 1], PrivacyBudget(0.4, 0.0))
        assert accountant.max_epsilon([0], 0.0) == pytest.approx(0.6)
        assert accountant.max_epsilon([1], 0.0) == pytest.approx(0.6)
        assert accountant.max_epsilon([2], 0.0) == pytest.approx(1.0)

    def test_charge_is_atomic(self, accountant):
        """A failure on one block must leave all the others untouched."""
        accountant.charge([0], PrivacyBudget(0.9, 0.0))
        with pytest.raises(BudgetExceededError):
            accountant.charge([0, 1], PrivacyBudget(0.4, 0.0))
        assert accountant.max_epsilon([1], 0.0) == pytest.approx(1.0)

    def test_empty_charge_rejected(self, accountant):
        with pytest.raises(InvalidBudgetError):
            accountant.charge([], PrivacyBudget(0.1))

    def test_duplicate_keys_in_charge_rejected(self, accountant):
        with pytest.raises(InvalidBudgetError):
            accountant.charge([0, 0], PrivacyBudget(0.1))

    def test_charge_records_label(self, accountant):
        accountant.charge([0], PrivacyBudget(0.1), label="taxi-lr")
        assert accountant.charges[-1].label == "taxi-lr"
        assert accountant.charges[-1].block_keys == (0,)

    def test_can_charge_mirror(self, accountant):
        assert accountant.can_charge([0, 1], PrivacyBudget(1.0, 1e-6))
        accountant.charge([0], PrivacyBudget(0.7, 0.0))
        assert not accountant.can_charge([0, 1], PrivacyBudget(0.5, 0.0))
        assert not accountant.can_charge([], PrivacyBudget(0.1))


class TestRetirement:
    def test_exhausted_block_retires(self, accountant):
        accountant.charge([0], PrivacyBudget(1.0, 1e-6))
        assert 0 in accountant.retired_blocks()
        assert 0 not in accountant.usable_blocks()

    def test_retired_block_raises_block_retired(self, accountant):
        accountant.charge([0], PrivacyBudget(1.0, 1e-6))
        with pytest.raises(BlockRetiredError):
            accountant.charge([0], PrivacyBudget(0.01, 0.0))

    def test_retirement_is_permanent(self, accountant):
        """Privacy loss never decreases; a retired block stays retired."""
        accountant.charge([0], PrivacyBudget(1.0, 1e-6))
        for _ in range(3):
            assert 0 in accountant.retired_blocks()

    def test_usable_blocks_with_floor(self, accountant):
        accountant.charge([0], PrivacyBudget(0.95, 0.0))
        usable = accountant.usable_blocks(PrivacyBudget(0.1, 0.0))
        assert usable == [1, 2, 3]


class TestStreamBound:
    def test_bound_is_max_over_blocks(self, accountant):
        accountant.charge([0], PrivacyBudget(0.5, 0.0))
        accountant.charge([1], PrivacyBudget(0.3, 1e-7))
        bound = accountant.stream_loss_bound()
        assert bound.epsilon == pytest.approx(0.5)

    def test_bound_never_exceeds_global(self):
        """The paper's core claim (Theorem 4.3), exercised randomly."""
        rng = np.random.default_rng(0)
        acc = BlockAccountant(1.0, 1e-6)
        acc.register_blocks(range(10))
        for _ in range(300):
            keys = list(rng.choice(10, size=rng.integers(1, 4), replace=False))
            budget = PrivacyBudget(float(rng.uniform(0.01, 0.4)), float(rng.uniform(0, 2e-7)))
            if acc.can_charge(keys, budget):
                acc.charge(keys, budget)
        bound = acc.stream_loss_bound()
        assert bound.epsilon <= 1.0 + 1e-9
        assert bound.delta <= 1e-6 + 1e-15

    def test_strong_filter_variant(self):
        acc = BlockAccountant(
            1.0, 1e-6, filter_factory=StrongCompositionFilter
        )
        acc.register_blocks([0])
        for _ in range(12):
            if acc.can_charge([0], PrivacyBudget(0.05, 0.0)):
                acc.charge([0], PrivacyBudget(0.05, 0.0))
        bound = acc.stream_loss_bound()
        assert bound.epsilon <= 1.0 + 1e-9


class TestTailScan:
    def test_tail_returns_newest_first_in_chrono_order(self, accountant):
        tail = accountant.usable_blocks_tail(PrivacyBudget(0.1, 0.0), 2)
        assert tail == [2, 3]

    def test_tail_skips_drained_blocks(self, accountant):
        accountant.charge([3], PrivacyBudget(1.0, 1e-6))
        tail = accountant.usable_blocks_tail(PrivacyBudget(0.5, 0.0), 2)
        assert tail == [1, 2]

    def test_tail_respects_key_filter(self, accountant):
        tail = accountant.usable_blocks_tail(
            PrivacyBudget(0.1, 0.0), 3, key_filter=lambda k: k % 2 == 0
        )
        assert tail == [0, 2]

    def test_tail_short_when_not_enough(self, accountant):
        tail = accountant.usable_blocks_tail(PrivacyBudget(0.1, 0.0), 99)
        assert tail == [0, 1, 2, 3]

    def test_ledger_totals_cache_matches_slow_path(self, accountant):
        """The O(1) admits path must agree with a fresh recomputation."""
        from repro.core.filters import BasicCompositionFilter

        ledger = accountant.ledger(0)
        for eps in (0.1, 0.2, 0.3):
            ledger.charge(PrivacyBudget(eps, 1e-8))
        fresh = BasicCompositionFilter(1.0, 1e-6)
        for candidate in (PrivacyBudget(0.39, 0.0), PrivacyBudget(0.41, 0.0)):
            assert ledger.admits(candidate) == fresh.admits(ledger.history, candidate)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.floats(min_value=0.01, max_value=0.5),
        ),
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_no_block_ever_exceeds_global(charges):
    """Whatever the charge sequence, per-block spend stays within eps_g."""
    acc = BlockAccountant(1.0, 1e-6)
    acc.register_blocks(range(5))
    for key, eps in charges:
        budget = PrivacyBudget(eps, 0.0)
        if acc.can_charge([key], budget):
            acc.charge([key], budget)
    for key in range(5):
        spent = sum(b.epsilon for b in acc.ledger(key).history)
        assert spent <= 1.0 + 1e-9
