"""Concentration bounds used by SLAed validators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.validation.bounds import (
    bernstein_upper_bound,
    binomial_lower_bound,
    binomial_upper_bound,
    empirical_bernstein_upper_bound,
    hoeffding_deviation,
)
from repro.errors import ValidationError


class TestBernstein:
    def test_decreases_with_n(self):
        bounds = [bernstein_upper_bound(0.1, n, 0.05, 1.0) for n in (100, 1000, 10_000)]
        assert bounds == sorted(bounds, reverse=True)

    def test_above_the_mean(self):
        assert bernstein_upper_bound(0.1, 1000, 0.05, 1.0) > 0.1

    def test_tightens_with_eta(self):
        assert bernstein_upper_bound(0.1, 1000, 0.2, 1.0) < bernstein_upper_bound(
            0.1, 1000, 0.01, 1.0
        )

    def test_scales_with_B(self):
        small = bernstein_upper_bound(0.1, 1000, 0.05, 1.0)
        large = bernstein_upper_bound(0.1, 1000, 0.05, 10.0)
        assert large > small

    def test_negative_mean_clamped(self):
        # DP noise can push the estimate below 0; the bound must stay sane.
        assert bernstein_upper_bound(-0.5, 1000, 0.05, 1.0) >= 0.0

    def test_invalid_args(self):
        with pytest.raises(ValidationError):
            bernstein_upper_bound(0.1, 0, 0.05, 1.0)
        with pytest.raises(ValidationError):
            bernstein_upper_bound(0.1, 10, 1.5, 1.0)

    def test_coverage_simulation(self):
        """The bound holds with frequency >= 1 - eta on Bernoulli losses."""
        rng = np.random.default_rng(0)
        p, n, eta = 0.05, 2000, 0.1
        misses = 0
        trials = 400
        for _ in range(trials):
            sample = (rng.random(n) < p).astype(float)
            bound = bernstein_upper_bound(float(sample.mean()), n, eta, 1.0)
            misses += bound < p
        assert misses / trials <= eta

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=2, max_value=10_000),
    )
    @settings(max_examples=50)
    def test_empirical_bernstein_dominates_mean(self, mean, n):
        bound = empirical_bernstein_upper_bound(mean, 0.25, n, 0.05, 1.0)
        assert bound >= mean


class TestHoeffding:
    def test_shrinks_with_n(self):
        assert hoeffding_deviation(10_000, 0.05, 1.0) < hoeffding_deviation(100, 0.05, 1.0)

    def test_paper_form(self):
        import math
        assert hoeffding_deviation(100, 0.05, 2.0) == pytest.approx(
            2.0 * math.sqrt(math.log(20.0) / 100.0)
        )


class TestBinomial:
    def test_bracket_the_rate(self):
        lower = binomial_lower_bound(70, 100, 0.05)
        upper = binomial_upper_bound(70, 100, 0.05)
        assert lower < 0.7 < upper

    def test_extremes(self):
        assert binomial_lower_bound(0, 100, 0.05) == 0.0
        assert binomial_upper_bound(100, 100, 0.05) == 1.0
        assert binomial_upper_bound(5, 0, 0.05) == 1.0
        assert binomial_lower_bound(5, 0, 0.05) == 0.0

    def test_noninteger_counts_accepted(self):
        # DP-noised counts are real-valued.
        assert 0.0 < binomial_lower_bound(69.4, 100.2, 0.05) < 0.7

    def test_out_of_range_counts_clamped(self):
        assert binomial_upper_bound(150, 100, 0.05) == 1.0
        assert binomial_lower_bound(-3, 100, 0.05) == 0.0

    def test_coverage_simulation(self):
        """Clopper-Pearson lower bound covers the true p >= 1 - eta often."""
        rng = np.random.default_rng(1)
        p, n, eta = 0.75, 500, 0.1
        misses = 0
        trials = 400
        for _ in range(trials):
            k = rng.binomial(n, p)
            misses += binomial_lower_bound(k, n, eta) > p
        assert misses / trials <= eta

    def test_tightens_with_n(self):
        narrow = binomial_lower_bound(7000, 10_000, 0.05)
        wide = binomial_lower_bound(70, 100, 0.05)
        assert narrow > wide
