"""SageAccessControl: ACLs, contexts, the offer/request protocol."""

import pytest

from repro.core.access_control import SageAccessControl
from repro.dp.budget import PrivacyBudget
from repro.errors import AccessDeniedError, BudgetExceededError


@pytest.fixture
def access():
    ac = SageAccessControl(1.0, 1e-6)
    for key in range(3):
        ac.register_block(key)
    return ac


class TestOfferRequest:
    def test_offer_lists_usable_blocks(self, access):
        assert access.offer_blocks() == [0, 1, 2]

    def test_request_charges(self, access):
        access.request([0, 1], PrivacyBudget(0.6, 0.0))
        assert access.max_epsilon([0], 0.0) == pytest.approx(0.4)

    def test_offer_excludes_exhausted(self, access):
        access.request([0], PrivacyBudget(1.0, 1e-6))
        assert access.offer_blocks() == [1, 2]

    def test_offer_with_floor(self, access):
        access.request([1], PrivacyBudget(0.8, 0.0))
        assert access.offer_blocks(min_budget=PrivacyBudget(0.5, 0.0)) == [0, 2]

    def test_over_request_raises(self, access):
        with pytest.raises(BudgetExceededError):
            access.request([0], PrivacyBudget(1.5, 0.0))

    def test_stream_loss_bound_tracks(self, access):
        access.request([2], PrivacyBudget(0.4, 0.0))
        assert access.stream_loss_bound().epsilon == pytest.approx(0.4)


class TestACLs:
    def test_unauthorized_principal_denied(self):
        ac = SageAccessControl(1.0, 1e-6, authorized_principals=["fraud-team"])
        ac.register_block(0)
        with pytest.raises(AccessDeniedError):
            ac.offer_blocks(principal="ads-team")
        with pytest.raises(AccessDeniedError):
            ac.request([0], PrivacyBudget(0.1), principal="ads-team")

    def test_authorized_principal_allowed(self):
        ac = SageAccessControl(1.0, 1e-6, authorized_principals=["fraud-team"])
        ac.register_block(0)
        assert ac.offer_blocks(principal="fraud-team") == [0]

    def test_no_acl_means_open(self, access):
        assert access.offer_blocks(principal=None) == [0, 1, 2]


class TestContexts:
    def test_context_has_separate_ceiling(self, access):
        access.add_context("dev-a", 0.5, 1e-6)
        access.request([0], PrivacyBudget(0.4, 0.0), context="dev-a")
        # dev-a may only take 0.1 more on block 0; the stream allows 0.6.
        assert not access.can_request([0], PrivacyBudget(0.2, 0.0), context="dev-a")
        assert access.can_request([0], PrivacyBudget(0.2, 0.0))

    def test_context_denial_leaves_stream_untouched(self, access):
        access.add_context("dev-a", 0.3, 1e-6)
        with pytest.raises(AccessDeniedError):
            access.request([0], PrivacyBudget(0.4, 0.0), context="dev-a")
        assert access.max_epsilon([0], 0.0) == pytest.approx(1.0)

    def test_blocks_registered_after_context_creation(self, access):
        access.add_context("dev-a", 0.5, 1e-6)
        access.register_block(7)
        access.request([7], PrivacyBudget(0.2, 0.0), context="dev-a")

    def test_unknown_context_rejected(self, access):
        with pytest.raises(AccessDeniedError):
            access.request([0], PrivacyBudget(0.1), context="nope")

    def test_unknown_context_rejected_even_with_no_usable_blocks(self):
        ac = SageAccessControl(1.0, 1e-6)  # no blocks registered at all
        with pytest.raises(AccessDeniedError):
            ac.offer_blocks(context="nope")

    def test_duplicate_context_rejected(self, access):
        access.add_context("dev-a", 0.5, 1e-6)
        with pytest.raises(AccessDeniedError):
            access.add_context("dev-a", 0.5, 1e-6)

    def test_max_epsilon_respects_context(self, access):
        access.add_context("dev-a", 0.25, 1e-6)
        assert access.max_epsilon([0], 0.0, context="dev-a") == pytest.approx(0.25)

    def test_batch_registration_reaches_every_ledger_set(self, access):
        access.add_context("dev-a", 0.5, 1e-6)
        access.register_blocks([10, 11, 12])
        assert access.offer_blocks() == [0, 1, 2, 10, 11, 12]
        access.request([10, 11], PrivacyBudget(0.2, 0.0), context="dev-a")
        assert access.max_epsilon([10], 0.0, context="dev-a") == pytest.approx(0.3)

    def test_failed_batch_registration_keeps_ledger_sets_consistent(self, access):
        """A mid-batch duplicate must not leave blocks registered in the
        stream accountant but missing from the contexts."""
        from repro.errors import InvalidBudgetError

        access.add_context("dev-a", 0.5, 1e-6)
        with pytest.raises(InvalidBudgetError):
            access.register_blocks([10, 11, 11])
        offered = access.offer_blocks(context="dev-a")  # must not crash
        assert offered == [0, 1, 2, 10, 11]

    def test_context_offer_uses_batched_filter(self, access):
        """The context filter in offer_blocks is one batched admit pass and
        must agree with per-ledger scalar decisions."""
        access.add_context("dev-a", 0.5, 1e-6)
        access.request([0], PrivacyBudget(0.45, 0.0), context="dev-a")
        floor = PrivacyBudget(0.1, 0.0)
        offered = access.offer_blocks(min_budget=floor, context="dev-a")
        ctx = access._require_context("dev-a")
        expected = [
            k for k in access.offer_blocks(min_budget=floor)
            if ctx.ledger(k).admits(floor)
        ]
        assert offered == expected == [1, 2]
