"""Sharded block accounting: byte-parity with the single store + the
parallel propose drive.

The headline properties:

* a :class:`ShardedBlockAccountant` (hash- and range-partitioned, N in
  {1, 2, 7}) is **byte-identical** to the single-store accountant across
  seeded charge workloads -- committed totals, charge counts, live masks,
  scans, staged hours, cross-shard ``charge_many`` rollback, and
  Renyi-width stores;
* a sharded ``Sage`` deployment with the parallel propose drive produces
  byte-identical trajectories to the single-store sequential drive;
* cross-shard aggregate reads (``loss_dashboard``, ``stream_loss_bound``)
  agree with the single store.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.accountant import BlockAccountant
from repro.core.adaptive import AdaptiveConfig
from repro.core.filters import RenyiCompositionFilter, StrongCompositionFilter
from repro.core.odometer import loss_dashboard
from repro.core.platform import Sage
from repro.core.sharding import (
    HashPartitioner,
    RangePartitioner,
    ShardedBlockAccountant,
    ShardedLedgerStore,
    ShardedStagedBatch,
    sharded_accountant_factory,
)
from repro.dp.budget import PrivacyBudget
from repro.dp.rdp import gaussian_mechanism_budget
from repro.errors import (
    BlockRetiredError,
    BudgetExceededError,
    InvalidBudgetError,
)
from repro.workload.oracle import CountStreamSource, OraclePipeline
from repro.workload.simulator import WorkloadConfig, WorkloadSimulator

PARTITIONERS = [
    HashPartitioner(1),
    HashPartitioner(2),
    HashPartitioner(7),
    RangePartitioner(2, span=3),
    RangePartitioner(7, span=1),
]


def _accountant_fingerprint(acc: BlockAccountant):
    return (
        acc.store.totals.tobytes(),
        acc.store.live.tobytes(),
        acc.store.charge_counts.tobytes(),
        [(r.budget.epsilon, r.budget.delta, r.block_keys, r.label) for r in acc.charges],
        [tuple(acc.ledger(k).totals) for k in acc.block_keys],
        [len(acc.ledger(k).history) for k in acc.block_keys],
    )


def _random_requests(rng, n_blocks, n_requests, wide=False):
    requests = []
    for j in range(n_requests):
        size = int(rng.integers(1, max(2, n_blocks // 2)))
        keys = sorted(rng.choice(n_blocks, size=size, replace=False).tolist())
        if wide and j % 3 == 0:
            budget = gaussian_mechanism_budget(
                0.01, float(rng.uniform(2.0, 6.0)), int(rng.integers(10, 80)), 1e-9
            )
        else:
            budget = PrivacyBudget(float(rng.uniform(0.01, 0.2)), 1e-9)
        requests.append((keys, budget, f"r{j}"))
    return requests


class TestShardedLedgerStore:
    def test_global_row_space_and_shard_maps(self):
        store = ShardedLedgerStore(3, width=4)
        rows = [store.append(i % 3) for i in range(10)]
        assert rows == list(range(10))
        assert len(store) == 10
        sids = store.shard_of_rows(np.arange(10))
        assert sids.tolist() == [i % 3 for i in range(10)]
        for shard in range(3):
            globals_ = store.shard_rows(shard)
            assert globals_.tolist() == [i for i in range(10) if i % 3 == shard]
            back = store.global_rows(shard, np.arange(len(globals_)))
            assert np.array_equal(back, globals_)

    def test_dual_write_row_and_rows(self):
        store = ShardedLedgerStore(2, width=4)
        for i in range(6):
            store.append(i % 2)
        store.write_row(3, [1.0, 2.0, 3.0, 4.0], 5)
        assert store.totals[3].tolist() == [1.0, 2.0, 3.0, 4.0]
        local = store.local_rows([3])[0]
        assert store.shard_store(1).totals[local].tolist() == [1.0, 2.0, 3.0, 4.0]
        assert store.shard_store(1).charge_counts[local] == 5
        rows = np.array([0, 3, 4])
        store.write_rows(rows, np.full((3, 4), 7.0), np.array([1, 2, 3]))
        for row, count in zip(rows, (1, 2, 3)):
            shard = store.shard_of_rows([row])[0]
            local = store.local_rows([row])[0]
            assert store.shard_store(shard).totals[local].tolist() == [7.0] * 4
            assert store.shard_store(shard).charge_counts[local] == count
            assert store.charge_counts[row] == count

    def test_retire_propagates_to_shards(self):
        store = ShardedLedgerStore(2, width=4)
        for i in range(4):
            store.append(i % 2)
        store.retire(np.array([1, 2]))
        assert store.live.tolist() == [True, False, False, True]
        assert store.shard_store(0).live.tolist() == [True, False]
        assert store.shard_store(1).live.tolist() == [False, True]

    def test_growth_beyond_initial_capacity(self):
        store = ShardedLedgerStore(3, width=4, capacity=2)
        for i in range(300):
            store.append(i % 3)
        assert len(store) == 300
        assert store.shard_sizes().tolist() == [100, 100, 100]
        assert store.global_rows(1, [99]) == [298]

    def test_bad_shard_rejected(self):
        store = ShardedLedgerStore(2)
        with pytest.raises(InvalidBudgetError):
            store.append(2)
        with pytest.raises(InvalidBudgetError):
            ShardedLedgerStore(0)


class TestPartitioners:
    def test_hash_is_stable_and_in_range(self):
        part = HashPartitioner(5)
        keys = list(range(50)) + [("user", i) for i in range(10)] + ["a", "b"]
        shards = [part.shard_of(k, i) for i, k in enumerate(keys)]
        assert shards == [part.shard_of(k, 0) for k in keys]  # index-free
        assert all(0 <= s < 5 for s in shards)
        assert len(set(shards)) > 1  # spreads

    def test_range_stripes_contiguous_runs(self):
        part = RangePartitioner(3, span=4)
        shards = [part.shard_of(None, i) for i in range(24)]
        assert shards == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2] * 2

    def test_invalid_params(self):
        with pytest.raises(InvalidBudgetError):
            HashPartitioner(0)
        with pytest.raises(InvalidBudgetError):
            RangePartitioner(2, span=0)
        with pytest.raises(InvalidBudgetError):
            sharded_accountant_factory(2, policy="modulo")


class TestShardedAccountantParity:
    """Byte parity of every accountant surface against the single store."""

    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    @pytest.mark.parametrize("filter_factory", [None, StrongCompositionFilter])
    def test_charge_many_byte_parity(self, partitioner, filter_factory):
        rng = np.random.default_rng(
            partitioner.n_shards * 10 + (1 if filter_factory else 0)
        )
        single = BlockAccountant(1.0, 1e-6, filter_factory=filter_factory)
        sharded = ShardedBlockAccountant(
            1.0, 1e-6, filter_factory=filter_factory, partitioner=partitioner
        )
        for acc in (single, sharded):
            acc.register_blocks(range(24))
        requests = _random_requests(rng, 24, 12)
        single.charge_many(requests)
        sharded.charge_many(requests)
        assert _accountant_fingerprint(sharded) == _accountant_fingerprint(single)
        # Scans agree too.
        probe = PrivacyBudget(0.05, 1e-9)
        assert sharded.usable_blocks(probe) == single.usable_blocks(probe)
        assert sharded.usable_blocks_tail(probe, 5) == single.usable_blocks_tail(probe, 5)
        assert sharded.max_epsilon(list(range(10)), 1e-9) == single.max_epsilon(
            list(range(10)), 1e-9
        )
        assert np.array_equal(
            sharded.admits_keys(list(range(24)), probe),
            single.admits_keys(list(range(24)), probe),
        )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_shards=st.sampled_from([1, 2, 7]),
        policy=st.sampled_from(["hash", "range"]),
        wide=st.booleans(),
    )
    def test_seeded_workloads_byte_identical(self, seed, n_shards, policy, wide):
        """Hash- and range-partitioned accountants reproduce the single
        store byte-for-byte on random charge workloads, including
        Renyi-width stores and refused batches."""
        rng = np.random.default_rng(seed)
        filter_factory = RenyiCompositionFilter if wide else None
        partitioner = (
            HashPartitioner(n_shards)
            if policy == "hash"
            else RangePartitioner(n_shards, span=int(rng.integers(1, 5)))
        )
        single = BlockAccountant(1.0, 1e-6, filter_factory=filter_factory)
        sharded = ShardedBlockAccountant(
            1.0, 1e-6, filter_factory=filter_factory, partitioner=partitioner
        )
        n_blocks = int(rng.integers(4, 20))
        for acc in (single, sharded):
            acc.register_blocks(range(n_blocks))
        for round_ in range(3):
            requests = _random_requests(rng, n_blocks, int(rng.integers(1, 8)), wide)
            outcomes = []
            for acc in (single, sharded):
                try:
                    acc.charge_many(list(requests))
                    outcomes.append(("ok", None))
                except (BudgetExceededError, BlockRetiredError) as exc:
                    outcomes.append((type(exc).__name__, str(exc)))
            assert outcomes[0] == outcomes[1]
            assert _accountant_fingerprint(sharded) == _accountant_fingerprint(single)

    @pytest.mark.parametrize("partitioner", [HashPartitioner(2), RangePartitioner(7, span=2)])
    def test_staged_hour_byte_parity(self, partitioner):
        """Staged hours: stage, read through the overlay, commit -- all
        byte-identical; refusals stage nothing on either side."""
        single = BlockAccountant(1.0, 1e-6)
        sharded = ShardedBlockAccountant(1.0, 1e-6, partitioner=partitioner)
        requests = [
            ([0, 1, 2, 3], PrivacyBudget(0.3, 1e-9), "a"),
            ([2, 3, 4, 5], PrivacyBudget(0.4, 1e-9), "b"),
            ([0, 5, 9], PrivacyBudget(0.25, 0.0), "c"),
        ]
        for acc in (single, sharded):
            acc.register_blocks(range(10))
            acc.begin_staging()
            for keys, budget, label in requests:
                acc.stage_charge(keys, budget, label)
            with pytest.raises(BudgetExceededError):
                acc.stage_charge([2], PrivacyBudget(0.5, 0.0))
            # Overlay reads see the staged spend identically.
        probe = PrivacyBudget(0.2, 0.0)
        assert sharded.usable_blocks(probe) == single.usable_blocks(probe)
        assert sharded.max_epsilon([2, 3]) == single.max_epsilon([2, 3])
        for acc in (single, sharded):
            acc.charge_many(acc.pop_staged())
        assert _accountant_fingerprint(sharded) == _accountant_fingerprint(single)

    @pytest.mark.parametrize("partitioner", [HashPartitioner(3), RangePartitioner(2, span=2)])
    def test_trusted_staged_commit_byte_parity(self, partitioner):
        single = BlockAccountant(1.0, 1e-6)
        sharded = ShardedBlockAccountant(1.0, 1e-6, partitioner=partitioner)
        for acc in (single, sharded):
            acc.register_blocks(range(8))
            acc.begin_staging()
            acc.stage_charge([0, 1, 5], PrivacyBudget(0.25, 1e-9), "a")
            acc.stage_charge([1, 6, 7], PrivacyBudget(0.5, 1e-9), "b")
            acc.commit_staged_trusted()
        assert _accountant_fingerprint(sharded) == _accountant_fingerprint(single)

    def test_cross_shard_rollback_leaves_everything_untouched(self):
        """A batch whose last request refuses must roll back across *all*
        shards -- stores, ledgers, histories, charge log."""
        sharded = ShardedBlockAccountant(1.0, 1e-6, partitioner=HashPartitioner(4))
        sharded.register_blocks(range(12))
        sharded.charge_many([(list(range(12)), PrivacyBudget(0.5, 1e-9), "warm")])
        before = _accountant_fingerprint(sharded)
        batch = [
            ([0, 1, 2], PrivacyBudget(0.2, 1e-9), "ok-1"),
            ([3, 4, 5, 6, 7], PrivacyBudget(0.3, 1e-9), "ok-2"),
            ([8, 9, 10, 11, 0], PrivacyBudget(0.45, 0.0), "boom"),
        ]
        with pytest.raises(BudgetExceededError):
            sharded.charge_many(batch)
        assert _accountant_fingerprint(sharded) == before
        assert sharded.can_charge_many(batch) is False
        assert _accountant_fingerprint(sharded) == before

    def test_refusal_error_matches_single_store(self):
        """The globally-first refusing (request, key) raises the same
        error, whichever shard owns it."""
        for partitioner in (HashPartitioner(5), RangePartitioner(3, span=1)):
            single = BlockAccountant(1.0, 1e-6)
            sharded = ShardedBlockAccountant(1.0, 1e-6, partitioner=partitioner)
            for acc in (single, sharded):
                acc.register_blocks(range(9))
                acc.charge([4], PrivacyBudget(0.9, 0.0))
                acc.charge([7], PrivacyBudget(1.0, 0.0))  # retired
            batch = [
                ([0, 1], PrivacyBudget(0.3, 0.0), "a"),
                ([2, 4, 7, 3], PrivacyBudget(0.3, 0.0), "b"),
            ]
            errors = []
            for acc in (single, sharded):
                with pytest.raises((BudgetExceededError, BlockRetiredError)) as exc:
                    acc.charge_many([list(r) for r in batch])
                errors.append((type(exc.value).__name__, str(exc.value)))
            assert errors[0] == errors[1]

    def test_commit_workers_identical_results(self):
        serial = ShardedBlockAccountant(1.0, 1e-6, partitioner=HashPartitioner(6))
        pooled = ShardedBlockAccountant(
            1.0, 1e-6, partitioner=HashPartitioner(6), commit_workers=3
        )
        rng = np.random.default_rng(11)
        requests = _random_requests(rng, 30, 15)
        for acc in (serial, pooled):
            acc.register_blocks(range(30))
            acc.charge_many(requests)
        assert _accountant_fingerprint(pooled) == _accountant_fingerprint(serial)

    def test_scalar_filter_falls_back_to_exact_path(self):
        from repro.core.filters import BasicCompositionFilter

        class ScalarOnlyFilter(BasicCompositionFilter):
            def admits(self, history, candidate, totals=None):
                return super().admits(history, candidate, totals=totals)

        single = BlockAccountant(1.0, 1e-6, filter_factory=ScalarOnlyFilter)
        sharded = ShardedBlockAccountant(
            1.0, 1e-6, filter_factory=ScalarOnlyFilter, partitioner=HashPartitioner(3)
        )
        assert not sharded.staging_supported
        requests = [([0, 1], PrivacyBudget(0.4, 0.0), "a"), ([1, 2], PrivacyBudget(0.5, 0.0), "b")]
        for acc in (single, sharded):
            acc.register_blocks(range(4))
            acc.charge_many(list(requests))
        assert _accountant_fingerprint(sharded) == _accountant_fingerprint(single)
        # The scalar early-stopping tail walk (with its per-row retire
        # persistence) agrees too.
        for acc in (single, sharded):
            acc.charge([3], PrivacyBudget(1.0, 0.0))  # retire block 3
        probe = PrivacyBudget(0.2, 0.0)
        assert sharded.usable_blocks_tail(probe, 3) == single.usable_blocks_tail(probe, 3)
        assert sharded.store.live.tolist() == single.store.live.tolist()
        for shard in range(sharded.n_shards):
            rows = sharded.store.shard_rows(shard)
            assert np.array_equal(
                sharded.store.shard_store(shard).live,
                single.store.live[rows],
            )


class TestShardedStagedSpend:
    def test_staged_spend_tracked_per_shard(self):
        part = RangePartitioner(2, span=2)
        acc = ShardedBlockAccountant(1.0, 1e-6, partitioner=part)
        acc.register_blocks(range(4))  # rows 0,1 -> shard 0; 2,3 -> shard 1
        assert np.array_equal(acc.staged_spend_by_shard(), np.zeros(2))
        batch = acc.begin_staging()
        assert isinstance(batch, ShardedStagedBatch)
        acc.stage_charge([0, 1], PrivacyBudget(0.25, 0.0))
        acc.stage_charge([1, 2], PrivacyBudget(0.5, 0.0))
        spend = acc.staged_spend_by_shard()
        assert spend[0] == pytest.approx(0.25 * 2 + 0.5)  # rows 0,1 + row 1
        assert spend[1] == pytest.approx(0.5)  # row 2
        request_counts, row_touches, _ = batch.shard_footprint()
        assert request_counts.tolist() == [2, 1]
        assert row_touches.tolist() == [3, 1]
        acc.pop_staged()
        assert np.array_equal(acc.staged_spend_by_shard(), np.zeros(2))


class TestCrossShardAggregates:
    """loss_dashboard and stream-wide bounds across shards (regression:
    aggregate reads must see every shard, in global block order)."""

    def _charged_pair(self, filter_factory=None, partitioner=None):
        single = BlockAccountant(1.0, 1e-6, filter_factory=filter_factory)
        sharded = ShardedBlockAccountant(
            1.0,
            1e-6,
            filter_factory=filter_factory,
            partitioner=partitioner or HashPartitioner(3),
        )
        rng = np.random.default_rng(7)
        requests = _random_requests(rng, 16, 9)
        for acc in (single, sharded):
            acc.register_blocks(range(16))
            acc.charge_many(list(requests))
        return single, sharded

    @pytest.mark.parametrize("strong", [False, True])
    def test_loss_dashboard_matches_single_store(self, strong):
        factory = StrongCompositionFilter if strong else None
        single, sharded = self._charged_pair(filter_factory=factory)
        dash_single = loss_dashboard(single, strong=strong)
        dash_sharded = loss_dashboard(sharded, strong=strong)
        assert list(dash_sharded) == list(dash_single)  # global block order
        for key in dash_single:
            assert dash_sharded[key] == dash_single[key]

    def test_stream_loss_bound_matches_single_store(self):
        for factory in (None, StrongCompositionFilter, RenyiCompositionFilter):
            single, sharded = self._charged_pair(filter_factory=factory)
            assert sharded.stream_loss_bound() == single.stream_loss_bound()

    def test_shard_loss_bounds_aggregate_to_stream_bound(self):
        single, sharded = self._charged_pair()
        bounds = sharded.shard_loss_bounds()
        assert len(bounds) == sharded.n_shards
        eps = max(b.epsilon for b in bounds)
        delta = max(b.delta for b in bounds)
        stream = single.stream_loss_bound()
        assert eps == pytest.approx(stream.epsilon, rel=1e-12)
        assert delta == pytest.approx(stream.delta, rel=1e-12)
        # No single shard's bound may stand in for the stream bound unless
        # it happens to own the worst block.
        assert all(b.epsilon <= stream.epsilon * (1 + 1e-12) for b in bounds)

    def test_retired_blocks_across_shards(self):
        single, sharded = self._charged_pair()
        exhaust = PrivacyBudget(1.0, 0.0)
        for acc in (single, sharded):
            for key in (1, 5, 11):
                if acc.can_charge([key], exhaust):
                    acc.charge([key], exhaust)
        assert sharded.retired_blocks() == single.retired_blocks()


class _TrajectoryMixin:
    @staticmethod
    def fingerprint(sage: Sage):
        sage.access.accountant.retired_blocks()
        return {
            "attempts": [
                [
                    (a.attempt, a.window, a.budget.epsilon, a.budget.delta,
                     a.outcome, a.train_size)
                    for a in e.session.attempts
                ]
                for e in sage.pipelines
            ],
            "statuses": [e.status for e in sage.pipelines],
            "releases": [e.release_time_hours for e in sage.pipelines],
            "totals": sage.access.accountant.store.totals.tobytes(),
            "live": sage.access.accountant.store.live.tobytes(),
            "reservations": sage.reservation_table.matrix.tobytes(),
            "free": sage.reservation_table.free_epsilon.tobytes(),
            "charges": [
                (r.budget.epsilon, r.budget.delta, r.block_keys, r.label)
                for r in sage.access.accountant.charges
            ],
        }


class TestShardedPlatformParity(_TrajectoryMixin):
    """The acceptance property: a sharded accountant (hash and range,
    N >= 2) drives full batched Sage.advance hours byte-identically to the
    single-store sequential drive, with and without parallel propose."""

    def _drive(self, factory=None, workers=0, batched=True, strategy="conserve"):
        sage = Sage(
            CountStreamSource(4000, scale=1000),
            seed=3,
            accountant_factory=factory,
            propose_workers=workers,
            batched_advance=batched,
        )
        for i, c in enumerate((2_000.0, 10_000.0, 40_000.0, 1e9)):
            sage.submit(
                OraclePipeline(name=f"p{i}", n_at_eps1=c),
                AdaptiveConfig(max_attempts=16, strategy=strategy),
            )
        for _ in range(40):
            sage.advance(1.0)
        return sage

    @pytest.mark.parametrize("strategy", ["conserve", "aggressive"])
    def test_sharded_parallel_drive_matches_single_sequential(self, strategy):
        reference = self.fingerprint(
            self._drive(factory=None, workers=0, batched=False, strategy=strategy)
        )
        for policy, n_shards, workers in (
            ("hash", 4, 0),
            ("range", 2, 0),
            ("hash", 7, 4),
            ("range", 4, 3),
        ):
            sage = self._drive(
                factory=sharded_accountant_factory(n_shards, policy=policy, span=5),
                workers=workers,
                strategy=strategy,
            )
            assert self.fingerprint(sage) == reference, (
                f"sharded {policy} N={n_shards} workers={workers} diverged"
            )

    def test_simulator_workload_sharded_parallel_identical(self):
        """Seeded end-to-end simulator runs across shard counts/policies."""
        fingerprints = []
        for n_shards, policy, workers in ((0, "hash", 0), (4, "hash", 4), (2, "range", 2)):
            cfg = WorkloadConfig(
                strategy="block-conserve",
                arrival_rate=0.4,
                horizon_hours=50.0,
                points_per_hour=4_000,
                max_attempts=16,
                n_shards=n_shards,
                shard_policy=policy,
                propose_workers=workers,
            )
            sim = WorkloadSimulator(cfg, seed=17)
            report = sim.run()
            fingerprints.append(
                (report.release_times, report.censored_times,
                 self.fingerprint(sim.last_platform))
            )
        assert fingerprints[1] == fingerprints[0]
        assert fingerprints[2] == fingerprints[0]

    def test_renyi_sharded_platform_drive(self):
        """Renyi-width sharded stores drive the batched hour identically,
        with both the dense and pruned order grids."""
        for orders in (None, "pruned"):
            def filter_factory(eps, delta, _orders=orders):
                return (
                    RenyiCompositionFilter(eps, delta)
                    if _orders is None
                    else RenyiCompositionFilter(eps, delta, orders=_orders)
                )

            fps = []
            for factory, workers in ((None, 0), (sharded_accountant_factory(3), 2)):
                sage = Sage(
                    CountStreamSource(4000, scale=1000),
                    seed=9,
                    filter_factory=filter_factory,
                    accountant_factory=factory,
                    propose_workers=workers,
                )
                assert sage.access.supports_staged_requests
                for i, c in enumerate((3_000.0, 20_000.0)):
                    sage.submit(
                        OraclePipeline(name=f"p{i}", n_at_eps1=c),
                        AdaptiveConfig(max_attempts=12),
                    )
                for _ in range(25):
                    sage.advance(1.0)
                fps.append(self.fingerprint(sage))
            assert fps[0] == fps[1], f"orders={orders} diverged"


class TestParallelProposeDrive(_TrajectoryMixin):
    def test_speculations_adopted_in_quiet_hours(self):
        """Starved sessions (no staged charges) adopt every speculation."""
        sage = Sage(CountStreamSource(1000, scale=1000), seed=0, propose_workers=4)
        sage.advance(30.0)
        config = AdaptiveConfig(epsilon_start=0.5, epsilon_floor=0.5, max_attempts=4)
        for i in range(8):
            sage.submit(OraclePipeline(name=f"p{i}", n_at_eps1=1e12), config)
        sage.advance(1.0)  # allocation hour
        sage.advance(1.0)
        adopted, invalidated = sage.last_hour_speculations
        assert adopted == 8 and invalidated == 0

    def test_sequential_hours_report_no_speculations(self):
        """With the parallel phase off there are no speculations, so both
        counters stay zero -- ordinary proposes are counted in neither."""
        sage = Sage(CountStreamSource(4000, scale=1000), seed=3, propose_workers=0)
        for i in range(4):
            sage.submit(
                OraclePipeline(name=f"p{i}", n_at_eps1=2_000.0),
                AdaptiveConfig(max_attempts=8),
            )
        for _ in range(6):
            sage.advance(1.0)
            assert sage.last_hour_speculations == (0, 0)
        assert any(e.session.attempts for e in sage.pipelines)

    def test_speculations_invalidated_after_staged_charges(self):
        """Once an earlier session stages a charge, later sessions'
        speculations are invalidated (the token catches the moved
        snapshot) -- and only token misses count as invalidated, so every
        speculation lands in exactly one counter."""
        sage = Sage(CountStreamSource(4000, scale=1000), seed=3, propose_workers=4)
        for i in range(4):
            sage.submit(
                OraclePipeline(name=f"p{i}", n_at_eps1=2_000.0),
                AdaptiveConfig(max_attempts=8),
            )
        hours_with_invalidation = 0
        for _ in range(12):
            n_waiting = sum(1 for e in sage.pipelines if e.waiting)
            sage.advance(1.0)
            adopted, invalidated = sage.last_hour_speculations
            # Every waiting session is speculated exactly once and lands
            # in exactly one counter -- except single-session hours, where
            # _speculate_proposals skips speculation (nothing to share).
            assert adopted + invalidated == (n_waiting if n_waiting >= 2 else 0)
            if invalidated:
                # Something moved the snapshot: a staged charge or a
                # session leaving the waiting set mid-hour.
                terminated = n_waiting - sum(
                    1 for e in sage.pipelines if e.waiting
                )
                assert sage.last_hour_charges or terminated
            if sage.last_hour_charges and invalidated:
                hours_with_invalidation += 1
        assert hours_with_invalidation > 0

    def test_scan_memo_requires_frozen_overlay(self):
        acc = BlockAccountant(1.0, 1e-6)
        acc.register_blocks(range(4))
        with pytest.raises(InvalidBudgetError):
            acc.begin_scan_memo()
        acc.begin_staging()
        acc.begin_scan_memo()
        floor = PrivacyBudget(0.1, 0.0)
        first = acc.usable_blocks(floor)
        assert acc.usable_blocks(floor) == first  # memo hit, same answer
        # Staging a charge drops the memo: the scan must see the new spend.
        acc.stage_charge([0], PrivacyBudget(1.0, 0.0))
        assert acc.usable_blocks(floor) == [1, 2, 3]
        acc.pop_staged()

    def test_scan_memo_dropped_on_mid_batch_registration(self):
        """Registering a block while the memo is open (legal: the overlay
        supports post-open rows) must invalidate memoized scans."""
        acc = BlockAccountant(1.0, 1e-6)
        acc.register_blocks(["a"])
        acc.begin_staging()
        acc.begin_scan_memo()
        assert acc.usable_blocks() == ["a"]
        acc.register_block("b")
        assert acc.usable_blocks() == ["a", "b"]
        acc.pop_staged()

    def test_close_releases_pools_and_is_idempotent(self):
        sage = Sage(
            CountStreamSource(1000, scale=1000),
            seed=0,
            accountant_factory=sharded_accountant_factory(3, commit_workers=2),
            propose_workers=2,
        )
        sage.advance(5.0)
        for i in range(3):
            sage.submit(OraclePipeline(name=f"p{i}", n_at_eps1=2_000.0))
        sage.advance(1.0)
        sage.close()
        sage.close()  # idempotent
        sage.advance(1.0)  # pools re-create on demand
        sage.close()

    def test_propose_peek_mutates_nothing(self):
        sage = Sage(CountStreamSource(4000, scale=1000), seed=5)
        entry = sage.submit(
            OraclePipeline(name="p", n_at_eps1=3_000.0),
            AdaptiveConfig(max_attempts=8),
        )
        sage.advance(1.0)
        session = entry.session
        state = (
            session.status, session.epsilon, session.window_blocks,
            len(session.attempts), session.total_spent,
        )
        proposal, status_after = session.propose_peek()
        assert (
            session.status, session.epsilon, session.window_blocks,
            len(session.attempts), session.total_spent,
        ) == state
        # Peeking agrees with a real wake+propose.
        session.wake()
        real = session.propose()
        if proposal is None:
            assert real is None and session.status == status_after
        else:
            assert real is not None
            assert (real.window, real.budget, real.epsilon_after) == (
                proposal.window, proposal.budget, proposal.epsilon_after
            )
