"""Privacy odometers (pay-as-you-go loss tracking)."""

import pytest

from repro.core.accountant import BlockAccountant
from repro.core.odometer import BasicOdometer, StrongOdometer, loss_dashboard
from repro.dp.budget import PrivacyBudget
from repro.errors import InvalidBudgetError


class TestBasicOdometer:
    def test_exact_running_totals(self):
        odo = BasicOdometer()
        odo.record_all([PrivacyBudget(0.1, 1e-8), PrivacyBudget(0.3, 2e-8)])
        assert odo.loss.epsilon == pytest.approx(0.4)
        assert odo.loss.delta == pytest.approx(3e-8)

    def test_empty_is_zero(self):
        assert BasicOdometer().loss.is_zero


class TestStrongOdometer:
    def test_invalid_params(self):
        with pytest.raises(InvalidBudgetError):
            StrongOdometer(epsilon_unit=0.0)
        with pytest.raises(InvalidBudgetError):
            StrongOdometer(delta_slack_per_level=0.0)

    def test_empty_is_zero(self):
        assert StrongOdometer().loss.is_zero

    def test_bound_is_valid_at_every_prefix(self):
        """The odometer must upper-bound basic composition's *intent*: it may
        be loose but never claims less than zero and never decreases."""
        odo = StrongOdometer()
        previous = 0.0
        for _ in range(50):
            odo.record(PrivacyBudget(0.02, 0.0))
            current = odo.loss.epsilon
            assert current >= previous - 1e-12
            previous = current

    def test_sublinear_for_many_small_queries(self):
        """The point of the strong odometer: after many tiny queries its
        bound is far below the basic sum."""
        odo = StrongOdometer()
        for _ in range(2000):
            odo.record(PrivacyBudget(0.002, 0.0))
        basic = odo.basic_loss.epsilon  # 4.0
        strong = odo.loss.epsilon
        assert basic == pytest.approx(4.0)
        assert strong < 0.75 * basic

    def test_never_above_basic(self):
        """For few large queries the reported bound falls back to basic."""
        odo = StrongOdometer()
        odo.record(PrivacyBudget(0.5, 0.0))
        assert odo.loss.epsilon <= odo.basic_loss.epsilon + 1e-12

    def test_delta_accounts_slack_levels(self):
        odo = StrongOdometer(delta_slack_per_level=1e-9)
        for _ in range(100):
            odo.record(PrivacyBudget(0.05, 1e-9))
        assert odo.loss.delta >= 100 * 1e-9  # query deltas plus slack

    def test_saturated_envelope_falls_back_to_basic(self):
        """Regression: driving the spend past the top doubling envelope
        (epsilon_unit * 2^max_levels) used to keep evaluating Thm A.2 at the
        saturated envelope, reporting a bound BELOW the provable basic loss
        -- an invalid high-probability claim."""
        odo = StrongOdometer(epsilon_unit=1.0 / 16.0, max_levels=2)  # top = 0.25
        for _ in range(2000):
            odo.record(PrivacyBudget(0.002, 0.0))
        assert odo.basic_loss.epsilon == pytest.approx(4.0)
        assert odo.saturated
        # The only valid bound without an envelope is exact basic composition.
        assert odo.loss.epsilon == pytest.approx(odo.basic_loss.epsilon)

    def test_not_saturated_within_envelope(self):
        odo = StrongOdometer(epsilon_unit=1.0 / 16.0, max_levels=10)
        for _ in range(50):
            odo.record(PrivacyBudget(0.02, 0.0))
        assert not odo.saturated
        assert odo.loss.epsilon <= odo.basic_loss.epsilon + 1e-12

    def test_load_totals_equals_replay(self):
        budgets = [PrivacyBudget(0.03, 1e-9)] * 40
        replayed = StrongOdometer()
        replayed.record_all(budgets)
        import math

        loaded = StrongOdometer().load_totals(
            sum(b.epsilon for b in budgets),
            sum(b.delta for b in budgets),
            sum(b.epsilon ** 2 for b in budgets),
            sum(math.expm1(b.epsilon) * b.epsilon / 2.0 for b in budgets),
        )
        assert loaded.loss.epsilon == pytest.approx(replayed.loss.epsilon)
        assert loaded.loss.delta == pytest.approx(replayed.loss.delta)


class TestDashboard:
    def test_per_block_losses(self):
        acc = BlockAccountant(1.0, 1e-6)
        acc.register_blocks([0, 1])
        acc.charge([0], PrivacyBudget(0.25, 0.0))
        acc.charge([0, 1], PrivacyBudget(0.1, 0.0))
        dash = loss_dashboard(acc)
        assert dash[0].epsilon == pytest.approx(0.35)
        assert dash[1].epsilon == pytest.approx(0.1)

    def test_strong_dashboard_runs(self):
        acc = BlockAccountant(1.0, 1e-6)
        acc.register_blocks([0])
        for _ in range(20):
            acc.charge([0], PrivacyBudget(0.01, 0.0))
        dash = loss_dashboard(acc, strong=True)
        assert 0.0 < dash[0].epsilon <= 0.2 + 1e-9

    def test_dashboard_reads_totals_not_history(self, monkeypatch):
        """Regression: every dashboard refresh used to replay each block's
        full charge history through an odometer (O(total charges)); it must
        read the ledgers' precomputed running totals instead."""
        acc = BlockAccountant(1.0, 1e-6)
        acc.register_blocks([0, 1])
        for _ in range(10):
            acc.charge([0], PrivacyBudget(0.02, 1e-8))
        replays = []
        monkeypatch.setattr(
            BasicOdometer, "record", lambda self, b: replays.append(b)
        )
        monkeypatch.setattr(
            StrongOdometer, "record", lambda self, b: replays.append(b)
        )
        basic_dash = loss_dashboard(acc)
        strong_dash = loss_dashboard(acc, strong=True)
        assert replays == []  # no per-charge replay
        assert basic_dash[0].epsilon == pytest.approx(0.2)
        assert basic_dash[0].delta == pytest.approx(1e-7)
        assert basic_dash[1].epsilon == 0.0
        assert strong_dash[0].epsilon > 0.0
