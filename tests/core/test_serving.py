"""Serving infrastructure: prediction servers + continuous evaluation."""

import numpy as np
import pytest

from repro.core.model_store import ModelFeatureStore
from repro.core.serving import ContinuousEvaluator, PredictionServer
from repro.core.validation.outcomes import Outcome, ValidationResult
from repro.dp.budget import PrivacyBudget
from repro.errors import PipelineError
from repro.ml.linear import RidgeRegression


@pytest.fixture
def bundle(rng):
    X = rng.normal(size=(2000, 3))
    y = X @ np.array([1.0, -0.5, 0.2])
    model = RidgeRegression(1e-6).fit(X, y)
    store = ModelFeatureStore()
    return store.release(
        "m", model, {}, ValidationResult(Outcome.ACCEPT, PrivacyBudget(0.5)),
        PrivacyBudget(0.5), [0],
    )


class TestPredictionServer:
    def test_serves_and_counts(self, bundle, rng):
        server = PredictionServer(bundle, region="eu")
        out = server.predict(rng.normal(size=(10, 3)))
        assert out.shape == (10,)
        assert server.requests_served == 10

    def test_rollout_newer_version(self, bundle, rng):
        store = ModelFeatureStore()
        v1 = store.release(
            "m", bundle.model, {}, ValidationResult(Outcome.ACCEPT, PrivacyBudget(0.1)),
            PrivacyBudget(0.1), [0],
        )
        v2 = store.release(
            "m", bundle.model, {}, ValidationResult(Outcome.ACCEPT, PrivacyBudget(0.1)),
            PrivacyBudget(0.1), [1],
        )
        server = PredictionServer(v1)
        server.rollout(v2)
        assert server.bundle.version == 2
        with pytest.raises(PipelineError):
            server.rollout(v1)  # no rollback

    def test_rollout_name_mismatch(self, bundle):
        store = ModelFeatureStore()
        other = store.release(
            "other", bundle.model, {},
            ValidationResult(Outcome.ACCEPT, PrivacyBudget(0.1)),
            PrivacyBudget(0.1), [0],
        )
        with pytest.raises(PipelineError):
            PredictionServer(bundle).rollout(other)


class TestContinuousEvaluator:
    def test_healthy_model_not_flagged(self, bundle, rng):
        server = PredictionServer(bundle)
        evaluator = ContinuousEvaluator(server, target=0.05, loss_bound=0.5)
        X = rng.normal(size=(5000, 3))
        y = X @ np.array([1.0, -0.5, 0.2])  # same distribution: near-zero loss
        for hour in range(3):
            tick = evaluator.tick(X, y, epsilon=0.5, clock_hours=float(hour), rng=rng)
            assert not tick.regressed
        assert not evaluator.regression_flagged

    def test_drifted_traffic_flags_regression(self, bundle, rng):
        server = PredictionServer(bundle)
        evaluator = ContinuousEvaluator(server, target=0.01, loss_bound=0.5)
        X = rng.normal(size=(5000, 3))
        y_drifted = X @ np.array([-1.0, 0.5, 0.2])  # the world changed
        for hour in range(2):
            evaluator.tick(X, y_drifted, epsilon=1.0, clock_hours=float(hour), rng=rng)
        assert evaluator.regression_flagged

    def test_single_bad_tick_is_debounced(self, bundle, rng):
        server = PredictionServer(bundle)
        evaluator = ContinuousEvaluator(server, target=0.01, loss_bound=0.5)
        X = rng.normal(size=(3000, 3))
        evaluator.tick(X, X @ np.array([-1.0, 0.5, 0.2]), 1.0, 0.0, rng)
        assert not evaluator.regression_flagged  # needs two in a row

    def test_dp_metric_reported(self, bundle, rng):
        server = PredictionServer(bundle)
        evaluator = ContinuousEvaluator(server, target=0.05)
        X = rng.normal(size=(2000, 3))
        y = X @ np.array([1.0, -0.5, 0.2])
        tick = evaluator.tick(X, y, epsilon=1.0, clock_hours=0.0, rng=rng)
        assert tick.dp_metric >= 0.0
        assert tick.samples == 2000

    def test_invalid_params(self, bundle):
        server = PredictionServer(bundle)
        with pytest.raises(PipelineError):
            ContinuousEvaluator(server, target=0.0)
        with pytest.raises(PipelineError):
            ContinuousEvaluator(server, target=0.1, tolerance=0.5)
