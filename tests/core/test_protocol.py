"""The propose/settle platform protocol: batching equivalence + staging.

The headline property: driving ``Sage.advance`` through the staged hourly
batch (one ``request_many`` per hour) produces **byte-identical** attempt
streams, reservations, ledger totals, charge logs, and release times to the
legacy per-session sequential loop, across seeded simulator workloads.
"""

import numpy as np
import pytest

from repro.core.access_control import SageAccessControl
from repro.core.accountant import TOT_EPS, BlockAccountant
from repro.core.adaptive import AdaptiveConfig
from repro.core.platform import Sage
from repro.dp.budget import PrivacyBudget
from repro.errors import (
    AccessDeniedError,
    BudgetExceededError,
    InvalidBudgetError,
)
from repro.workload.oracle import CountStreamSource, OraclePipeline
from repro.workload.simulator import WorkloadConfig, WorkloadSimulator


def _fingerprint(sage: Sage):
    """Everything the protocol could perturb, in comparable form.

    Retirement persistence is a lazily-updated scan cache (both paths defer
    it differently within an hour), so refresh it first; the decisions
    themselves come from the totals, which must match bytewise.
    """
    sage.access.accountant.retired_blocks()  # persist pending retirement
    entries = sage.pipelines
    return {
        "attempts": [
            [
                (a.attempt, a.window, a.budget.epsilon, a.budget.delta,
                 a.outcome, a.train_size)
                for a in e.session.attempts
            ]
            for e in entries
        ],
        "statuses": [e.status for e in entries],
        "release_times": [e.release_time_hours for e in entries],
        "settled": [e.settled_attempts for e in entries],
        "totals": sage.access.accountant.store.totals.tobytes(),
        "live": sage.access.accountant.store.live.tobytes(),
        "reservations": sage.reservation_table.matrix.tobytes(),
        "free": sage.reservation_table.free_epsilon.tobytes(),
        "charges": [
            (r.budget.epsilon, r.budget.delta, r.block_keys, r.label)
            for r in sage.access.accountant.charges
        ],
        "spent": [
            (e.session.total_spent.epsilon, e.session.total_spent.delta)
            for e in entries
        ],
    }


class TestBatchedAdvanceEquivalence:
    @pytest.mark.parametrize("strategy", ["block-conserve", "block-aggressive"])
    @pytest.mark.parametrize("seed,rate", [(11, 0.3), (23, 0.6)])
    def test_simulator_workloads_identical(self, strategy, seed, rate):
        """Seeded simulator workloads: batched vs sequential byte-parity."""
        platforms = []
        for batched in (True, False):
            cfg = WorkloadConfig(
                strategy=strategy,
                arrival_rate=rate,
                horizon_hours=60.0,
                points_per_hour=4_000,
                max_attempts=16,
                batched_advance=batched,
            )
            sim = WorkloadSimulator(cfg, seed=seed)
            report = sim.run()
            platforms.append((report, sim.last_platform))
        (rep_b, sage_b), (rep_s, sage_s) = platforms
        assert rep_b.release_times == rep_s.release_times
        assert rep_b.censored_times == rep_s.censored_times
        fp_b, fp_s = _fingerprint(sage_b), _fingerprint(sage_s)
        for field in fp_b:
            assert fp_b[field] == fp_s[field], f"{field} diverged"

    def test_run_until_quiet_identical(self):
        sages = []
        for batched in (True, False):
            sage = Sage(
                CountStreamSource(4000, scale=1000), seed=5,
                batched_advance=batched,
            )
            for i, c in enumerate((3_000.0, 12_000.0, 50_000.0)):
                sage.submit(
                    OraclePipeline(name=f"p{i}", n_at_eps1=c),
                    AdaptiveConfig(max_attempts=16),
                )
            sage.run_until_quiet(max_hours=60)
            sages.append(sage)
        fp_b, fp_s = _fingerprint(sages[0]), _fingerprint(sages[1])
        for field in fp_b:
            assert fp_b[field] == fp_s[field], f"{field} diverged"


class TestOneBatchPerHour:
    def test_advance_issues_exactly_one_request_many(self):
        """The acceptance invariant: no per-session access.request calls on
        the platform path, and at most one request_many per hour (exactly
        one on hours that commit charges)."""
        sage = Sage(CountStreamSource(4000, scale=1000), seed=3)
        for i, c in enumerate((2_000.0, 10_000.0, 1e9)):
            sage.submit(
                OraclePipeline(name=f"p{i}", n_at_eps1=c),
                AdaptiveConfig(max_attempts=8),
            )
        counts = {"request": 0, "request_many": 0}
        orig_request = sage.access.request
        orig_many = sage.access.request_many

        def counting_request(*args, **kwargs):
            counts["request"] += 1
            return orig_request(*args, **kwargs)

        def counting_many(*args, **kwargs):
            counts["request_many"] += 1
            return orig_many(*args, **kwargs)

        sage.access.request = counting_request
        sage.access.request_many = counting_many
        for _ in range(20):
            before_many = counts["request_many"]
            charges_before = len(sage.access.accountant.charges)
            sage.advance(1.0)
            committed = len(sage.access.accountant.charges) - charges_before
            many_calls = counts["request_many"] - before_many
            assert counts["request"] == 0
            assert many_calls == (1 if committed else 0)
            assert sage.last_hour_charges == committed

    def test_sequential_fallback_for_scalar_filters(self):
        """A custom scalar-only filter forces the exact per-proposal path;
        trajectories still come out of the same propose/complete drive."""
        from repro.core.filters import BasicCompositionFilter

        class ScalarOnlyFilter(BasicCompositionFilter):
            def admits(self, history, candidate, totals=None):
                return super().admits(history, candidate, totals=totals)

        sage = Sage(
            CountStreamSource(4000, scale=1000), seed=3,
            filter_factory=ScalarOnlyFilter,
        )
        assert not sage.access.supports_staged_requests
        entry = sage.submit(
            OraclePipeline(name="p", n_at_eps1=2_000.0),
            AdaptiveConfig(max_attempts=8),
        )
        sage.run_until_quiet(max_hours=30)
        assert entry.status == "accepted"


class TestStagedBatch:
    """The accountant's staged-batch overlay underneath the protocol."""

    def _accountant(self, n_blocks=6, epsilon=1.0):
        acc = BlockAccountant(epsilon, 1e-6)
        acc.register_blocks(range(n_blocks))
        return acc

    def test_stage_then_commit_matches_sequential(self):
        staged_acc, seq_acc = self._accountant(), self._accountant()
        requests = [
            ([0, 1, 2], PrivacyBudget(0.25, 1e-9), "a"),
            ([1, 2, 3], PrivacyBudget(0.5, 1e-9), "b"),
            ([4, 5], PrivacyBudget(0.75, 0.0), "c"),
        ]
        staged_acc.begin_staging()
        for keys, budget, label in requests:
            staged_acc.stage_charge(keys, budget, label)
        # Nothing committed while staged...
        assert staged_acc.charges == []
        # ... but reads see the staged spend.
        assert not staged_acc.can_charge([1], PrivacyBudget(0.5, 0.0))
        staged_acc.charge_many(staged_acc.pop_staged())
        for keys, budget, label in requests:
            seq_acc.charge(keys, budget, label=label)
        assert np.array_equal(staged_acc.store.totals, seq_acc.store.totals)
        assert [r.block_keys for r in staged_acc.charges] == [
            r.block_keys for r in seq_acc.charges
        ]

    def test_stage_refusal_stages_nothing(self):
        acc = self._accountant()
        acc.begin_staging()
        acc.stage_charge([0, 1], PrivacyBudget(0.8, 0.0))
        with pytest.raises(BudgetExceededError):
            acc.stage_charge([1, 2], PrivacyBudget(0.5, 0.0))
        # The refused request is absent; the earlier one still commits.
        records = acc.charge_many(acc.pop_staged())
        assert len(records) == 1
        assert acc.can_charge([2], PrivacyBudget(0.5, 0.0))

    def test_staged_reads_see_intra_batch_accumulation(self):
        acc = self._accountant()
        acc.begin_staging()
        assert acc.max_epsilon([0]) == pytest.approx(1.0)
        acc.stage_charge([0], PrivacyBudget(0.6, 0.0))
        assert acc.max_epsilon([0]) == pytest.approx(0.4)
        assert acc.usable_blocks(PrivacyBudget(0.5, 0.0)) == [1, 2, 3, 4, 5]
        acc.pop_staged()
        # Aborting restores the committed view.
        assert acc.max_epsilon([0]) == pytest.approx(1.0)

    def test_charging_while_staged_is_an_error(self):
        acc = self._accountant()
        acc.begin_staging()
        with pytest.raises(InvalidBudgetError):
            acc.charge([0], PrivacyBudget(0.1, 0.0))
        with pytest.raises(InvalidBudgetError):
            acc.charge_many([([0], PrivacyBudget(0.1, 0.0))])
        with pytest.raises(InvalidBudgetError):
            acc.begin_staging()
        acc.pop_staged()
        acc.charge([0], PrivacyBudget(0.1, 0.0))

    def test_staging_requires_vectorized_filter(self):
        from repro.core.filters import BasicCompositionFilter

        class ScalarOnlyFilter(BasicCompositionFilter):
            def admits(self, history, candidate, totals=None):
                return super().admits(history, candidate, totals=totals)

        acc = BlockAccountant(1.0, 1e-6, filter_factory=ScalarOnlyFilter)
        assert not acc.staging_supported
        with pytest.raises(InvalidBudgetError):
            acc.begin_staging()

    def test_staged_retirement_not_persisted_until_commit(self):
        acc = self._accountant(n_blocks=2)
        acc.begin_staging()
        acc.stage_charge([0], PrivacyBudget(1.0, 0.0))  # exhausts block 0
        # Scans filter the staged-retired block out...
        assert acc.usable_blocks() == [1]
        # ... but nothing is persisted as retired yet.
        assert bool(acc.store.live.all())
        acc.charge_many(acc.pop_staged())
        assert acc.retired_blocks() == [0]

    def test_access_control_staging_surface(self):
        access = SageAccessControl(1.0, 1e-6)
        access.register_blocks(range(4))
        assert access.supports_staged_requests
        access.begin_staging()
        access.stage_request([0, 1], PrivacyBudget(0.5, 0.0), label="x")
        records = access.commit_staged()
        assert len(records) == 1 and records[0].label == "x"
        reclosed = access.commit_staged()
        assert reclosed == []  # nothing open: no-op
        # Contexts disable staging (their charges validate per-request).
        access.add_context("dev", 0.5, 1e-7)
        assert not access.supports_staged_requests
        with pytest.raises(AccessDeniedError):
            access.begin_staging()

    def test_trusted_commit_byte_parity_with_validating_commit(self):
        """The trusted bulk-write commit must leave the accountant in the
        byte-identical state charge_many's re-validating commit produces."""
        trusted_acc, validating_acc = self._accountant(), self._accountant()
        requests = [
            ([0, 1, 2], PrivacyBudget(0.25, 1e-9), "a"),
            ([1, 2, 3], PrivacyBudget(0.5, 1e-9), "b"),
            ([4, 5], PrivacyBudget(0.75, 0.0), "c"),
            ([0], PrivacyBudget(0.5, 0.0), "d"),
        ]
        for acc in (trusted_acc, validating_acc):
            acc.begin_staging()
            for keys, budget, label in requests:
                acc.stage_charge(keys, budget, label)
        trusted_records = trusted_acc.commit_staged_trusted()
        validating_acc.charge_many(validating_acc.pop_staged())
        assert not trusted_acc.staging_active
        assert trusted_acc.store.totals.tobytes() == validating_acc.store.totals.tobytes()
        assert trusted_acc.store.charge_counts.tobytes() == (
            validating_acc.store.charge_counts.tobytes()
        )
        assert [r.block_keys for r in trusted_records] == [
            r.block_keys for r in validating_acc.charges
        ]
        for key in trusted_acc.block_keys:
            assert trusted_acc.ledger(key).history == validating_acc.ledger(key).history
            assert trusted_acc.ledger(key).totals == validating_acc.ledger(key).totals

    def test_trusted_commit_with_block_registered_mid_batch(self):
        acc = self._accountant(n_blocks=2)
        acc.begin_staging()
        acc.stage_charge([0], PrivacyBudget(0.25, 0.0))
        acc.register_block(99)  # lands mid-hour, after the overlay opened
        acc.stage_charge([99, 1], PrivacyBudget(0.5, 0.0))
        acc.commit_staged_trusted()
        assert acc.store.totals[acc.rows_for_keys([99])[0], TOT_EPS] == pytest.approx(0.5)
        assert len(acc.charges) == 2

    def test_trusted_commit_empty_batch_is_noop(self):
        acc = self._accountant()
        unopened = acc.commit_staged_trusted()
        assert unopened == []  # nothing open
        acc.begin_staging()
        empty = acc.commit_staged_trusted()
        assert empty == []  # open but empty
        assert not acc.staging_active

    def test_access_flag_routes_commit_to_trusted_path(self):
        access = SageAccessControl(1.0, 1e-6, trusted_staged_commit=True)
        access.register_blocks(range(3))
        calls = {"request_many": 0}
        orig = access.request_many

        def counting(*args, **kwargs):
            calls["request_many"] += 1
            return orig(*args, **kwargs)

        access.request_many = counting
        access.begin_staging()
        access.stage_request([0, 1], PrivacyBudget(0.5, 0.0), label="x")
        records = access.commit_staged()
        assert [r.label for r in records] == ["x"]
        assert calls["request_many"] == 0  # bulk write, no re-validation
        assert access.accountant.store.totals[0, TOT_EPS] == pytest.approx(0.5)

    def test_trusted_commit_still_checks_committer_principal(self):
        access = SageAccessControl(
            1.0,
            1e-6,
            authorized_principals=["alice"],
            trusted_staged_commit=True,
        )
        access.register_blocks(range(2))
        access.begin_staging()
        access.stage_request([0], PrivacyBudget(0.25, 0.0), principal="alice")
        with pytest.raises(AccessDeniedError):
            access.commit_staged(principal="mallory")
        assert access.staging_active
        committed = access.commit_staged(principal="alice")
        assert len(committed) == 1

    def test_platform_trusted_hour_identical_to_validating_hour(self):
        """End to end: a Sage deployment with the trusted commit produces
        byte-identical trajectories to the validating one."""
        fingerprints = []
        for trusted in (False, True):
            sage = Sage(
                CountStreamSource(4000, scale=1000),
                seed=7,
                trusted_staged_commit=trusted,
            )
            for i, c in enumerate((3_000.0, 20_000.0)):
                sage.submit(
                    OraclePipeline(name=f"p{i}", n_at_eps1=c),
                    AdaptiveConfig(max_attempts=12),
                )
            sage.run_until_quiet(max_hours=40)
            fingerprints.append(_fingerprint(sage))
        validating, trusted = fingerprints
        for field in validating:
            assert validating[field] == trusted[field], f"{field} diverged"

    def test_commit_staged_on_acl_stream(self):
        """Regression: the hourly commit must honor stream-level ACLs
        without dropping the staged batch on a refused principal."""
        access = SageAccessControl(1.0, 1e-6, authorized_principals=["alice"])
        access.register_blocks(range(2))
        access.begin_staging()
        access.stage_request(
            [0], PrivacyBudget(0.25, 0.0), label="x", principal="alice"
        )
        # An unauthorized committer is refused *before* the batch closes...
        with pytest.raises(AccessDeniedError):
            access.commit_staged(principal="mallory")
        assert access.staging_active
        # ... and the authorized platform principal commits it intact.
        records = access.commit_staged(principal="alice")
        assert [r.label for r in records] == ["x"]
