"""Privacy-adaptive training: escalation, conservation, terminal states."""

import numpy as np
import pytest

from repro.core.access_control import SageAccessControl
from repro.core.adaptive import (
    AdaptiveConfig,
    AdaptiveSession,
    ChargeDecision,
    PrivacyAdaptiveTrainer,
    SessionStatus,
)
from repro.core.pipeline import PipelineRun
from repro.core.validation.outcomes import Outcome, ValidationResult
from repro.data.database import GrowingDatabase, StreamIngestor
from repro.data.stream import TimePartitioner
from repro.data.taxi import TaxiGenerator
from repro.dp.budget import PrivacyBudget
from repro.errors import PipelineError


class ThresholdPipeline:
    """Accepts when n * epsilon crosses a threshold (a pure test double)."""

    def __init__(self, name="oracle", threshold=4000.0):
        self.name = name
        self.threshold = threshold
        self.calls = []

    def run(self, batch, budget, rng, correct_for_dp=True):
        self.calls.append((len(batch), budget))
        score = len(batch) * budget.epsilon
        outcome = Outcome.ACCEPT if score >= self.threshold else Outcome.RETRY
        return PipelineRun(
            name=self.name,
            outcome=outcome,
            validation=ValidationResult(outcome, PrivacyBudget(budget.epsilon, 0.0)),
            budget_charged=budget,
        )


def build_world(hours=20, points_per_hour=1000, epsilon_global=1.0):
    db = GrowingDatabase()
    ingestor = StreamIngestor(
        TaxiGenerator(points_per_hour=points_per_hour), db,
        TimePartitioner(1.0), rng=np.random.default_rng(0),
    )
    access = SageAccessControl(epsilon_global, 1e-6)
    for block in ingestor.advance(hours):
        access.register_block(block.key)
    return db, access


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon_start": 0.0},
            {"epsilon_start": 2.0, "epsilon_cap": 1.0},
            {"delta": 1.5},
            {"min_window_blocks": 0},
            {"max_attempts": 0},
            {"strategy": "yolo"},
            {"epsilon_floor": 0.5, "epsilon_start": 0.25},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(PipelineError):
            AdaptiveConfig(**kwargs)

    def test_delta_defaults_to_rationed_share(self):
        db, access = build_world(hours=2)
        session = AdaptiveSession(
            ThresholdPipeline(), access, db,
            AdaptiveConfig(max_attempts=10), np.random.default_rng(0),
        )
        assert session.delta == pytest.approx(1e-6 / 10)


class TestEscalation:
    def test_accepts_after_doubling(self):
        db, access = build_world()
        pipeline = ThresholdPipeline(threshold=900.0)  # needs eps ~0.9 on 1 block
        session = AdaptiveSession(
            pipeline, access, db, AdaptiveConfig(), np.random.default_rng(0)
        )
        status = session.step()
        assert status == SessionStatus.ACCEPTED
        # epsilon escalated by doubling from 1/16
        epsilons = [b.epsilon for _, b in pipeline.calls]
        assert epsilons == sorted(epsilons)
        assert epsilons[0] == pytest.approx(1.0 / 16.0)

    def test_budget_doubles_before_window(self):
        db, access = build_world()
        pipeline = ThresholdPipeline(threshold=1e12)  # never accepts
        session = AdaptiveSession(
            pipeline, access, db,
            AdaptiveConfig(max_attempts=6), np.random.default_rng(0),
        )
        session.step()
        epsilons = [b.epsilon for _, b in pipeline.calls]
        # First escalations double epsilon toward the cap.
        assert epsilons[:5] == [1 / 16, 1 / 8, 1 / 4, 1 / 2, 1.0]

    def test_window_grows_after_budget_cap(self):
        db, access = build_world()
        pipeline = ThresholdPipeline(threshold=1e12)
        session = AdaptiveSession(
            pipeline, access, db,
            AdaptiveConfig(max_attempts=8), np.random.default_rng(0),
        )
        session.step()
        sizes = [n for n, _ in pipeline.calls]
        assert sizes[-1] > sizes[0]

    def test_per_block_spend_never_exceeds_global(self):
        db, access = build_world()
        pipeline = ThresholdPipeline(threshold=1e12)
        session = AdaptiveSession(
            pipeline, access, db,
            AdaptiveConfig(max_attempts=30), np.random.default_rng(0),
        )
        session.step()
        for key in access.accountant.block_keys:
            spent = sum(b.epsilon for b in access.accountant.ledger(key).history)
            assert spent <= 1.0 + 1e-9

    def test_conservation_bound_per_block(self):
        """Doubling guarantee: any single block's failed-attempt spend is at
        most ~2x the final accepted budget on it (so <= 4x optimal)."""
        db, access = build_world()
        pipeline = ThresholdPipeline(threshold=950.0)
        session = AdaptiveSession(
            pipeline, access, db, AdaptiveConfig(), np.random.default_rng(0)
        )
        status = session.step()
        assert status == SessionStatus.ACCEPTED
        final_eps = session.attempts[-1].budget.epsilon
        for key in access.accountant.block_keys:
            spent = sum(b.epsilon for b in access.accountant.ledger(key).history)
            assert spent <= 2.0 * final_eps + 1e-9

    def test_timeout(self):
        db, access = build_world()
        session = AdaptiveSession(
            ThresholdPipeline(threshold=1e12), access, db,
            AdaptiveConfig(max_attempts=3), np.random.default_rng(0),
        )
        status = session.step()
        assert status == SessionStatus.TIMEOUT

    def test_need_data_when_database_empty(self):
        db = GrowingDatabase()
        access = SageAccessControl(1.0, 1e-6)
        session = AdaptiveSession(
            ThresholdPipeline(), access, db, AdaptiveConfig(), np.random.default_rng(0)
        )
        status = session.step()
        assert status == SessionStatus.NEED_DATA

    def test_resume_after_new_data(self):
        db = GrowingDatabase()
        ingestor = StreamIngestor(
            TaxiGenerator(points_per_hour=1000), db,
            TimePartitioner(1.0), rng=np.random.default_rng(0),
        )
        access = SageAccessControl(1.0, 1e-6)
        pipeline = ThresholdPipeline(threshold=900.0)
        session = AdaptiveSession(
            pipeline, access, db, AdaptiveConfig(), np.random.default_rng(0)
        )
        status = session.step()
        assert status == SessionStatus.NEED_DATA
        for block in ingestor.advance(3.0):
            access.register_block(block.key)
        resumed = session.resume()
        assert resumed == SessionStatus.ACCEPTED

    def test_aggressive_spends_everything_available(self):
        db, access = build_world()
        pipeline = ThresholdPipeline(threshold=900.0)
        session = AdaptiveSession(
            pipeline, access, db,
            AdaptiveConfig(strategy="aggressive"), np.random.default_rng(0),
        )
        status = session.step()
        assert status == SessionStatus.ACCEPTED
        # First attempt already used the full block budget.
        assert pipeline.calls[0][1].epsilon == pytest.approx(1.0, rel=1e-6)

    def test_allocation_hook_respected(self):
        db, access = build_world()
        pipeline = ThresholdPipeline(threshold=1e12)
        session = AdaptiveSession(
            pipeline, access, db,
            AdaptiveConfig(max_attempts=6), np.random.default_rng(0),
            epsilon_limit_fn=lambda window: 0.25,
        )
        session.step()
        assert max(b.epsilon for _, b in pipeline.calls) <= 0.25 + 1e-12

    def test_row_budget_hook_matches_scalar_hook(self):
        """The vectorized allocation hook must reproduce the scalar one:
        same attempts, same budgets, same terminal state."""
        runs = []
        for hook in ("scalar", "rows"):
            db, access = build_world()
            pipeline = ThresholdPipeline(threshold=1e12)
            kwargs = (
                {"epsilon_limit_fn": lambda window: 0.25}
                if hook == "scalar"
                else {"row_budget_fn": lambda rows: np.full(rows.shape, 0.25)}
            )
            session = AdaptiveSession(
                pipeline, access, db,
                AdaptiveConfig(max_attempts=6), np.random.default_rng(0),
                **kwargs,
            )
            status = session.step()
            runs.append((status, [(n, b.epsilon) for n, b in pipeline.calls]))
        assert runs[0] == runs[1]
        assert max(eps for _, eps in runs[1][1]) <= 0.25 + 1e-12


class TestProtocol:
    """The two-phase propose/complete contract."""

    def test_propose_touches_no_accountant_state(self):
        db, access = build_world()
        session = AdaptiveSession(
            ThresholdPipeline(), access, db, AdaptiveConfig(), np.random.default_rng(0)
        )
        before = access.accountant.store.totals.tobytes()
        proposal = session.propose()
        assert proposal is not None
        assert access.accountant.store.totals.tobytes() == before
        assert access.accountant.charges == []
        assert session.attempts == []
        assert session.total_spent.epsilon == 0.0

    def test_propose_complete_matches_step(self):
        """Driving the protocol by hand reproduces step() float-for-float."""
        trajectories = []
        for mode in ("step", "manual"):
            db, access = build_world()
            pipeline = ThresholdPipeline(threshold=900.0)
            session = AdaptiveSession(
                pipeline, access, db, AdaptiveConfig(), np.random.default_rng(0)
            )
            if mode == "step":
                session.step()
            else:
                while session.status == SessionStatus.RUNNING:
                    proposal = session.propose()
                    if proposal is None:
                        break
                    access.request(
                        list(proposal.window), proposal.budget, label=proposal.label
                    )
                    session.complete(ChargeDecision(proposal=proposal, granted=True))
            trajectories.append(
                (
                    session.status,
                    [(n, b.epsilon, b.delta) for n, b in pipeline.calls],
                    [(a.attempt, a.window, a.outcome) for a in session.attempts],
                    access.accountant.store.totals.tobytes(),
                )
            )
        assert trajectories[0] == trajectories[1]

    def test_denied_decision_blocks_without_state_change(self):
        db, access = build_world()
        session = AdaptiveSession(
            ThresholdPipeline(), access, db, AdaptiveConfig(), np.random.default_rng(0)
        )
        proposal = session.propose()
        eps, window_blocks = session.epsilon, session.window_blocks
        status = session.complete(ChargeDecision(proposal=proposal, granted=False))
        assert status == SessionStatus.NEED_DATA
        assert session.epsilon == eps
        assert session.window_blocks == window_blocks
        assert session.attempts == []
        assert session.total_spent.epsilon == 0.0
        # wake() lets the next propose try again.
        woken = session.wake()
        assert woken == SessionStatus.RUNNING
        retry = session.propose()
        assert retry is not None

    def test_denied_aggressive_attempt_leaves_state_unchanged(self):
        """Regression: the aggressive strategy's epsilon grab must not stick
        when the charge is denied (it used to mutate before the charge)."""
        db, access = build_world()
        session = AdaptiveSession(
            ThresholdPipeline(threshold=1e12), access, db,
            AdaptiveConfig(strategy="aggressive"), np.random.default_rng(0),
        )
        proposal = session.propose()
        # The aggressive proposal asks for far more than the schedule...
        assert proposal.budget.epsilon > session.epsilon
        assert proposal.epsilon_after == proposal.budget.epsilon
        # ... but a denial must leave the schedule and window untouched.
        session.complete(ChargeDecision(proposal=proposal, granted=False))
        assert session.epsilon == pytest.approx(1.0 / 16.0)
        assert session.window_blocks == 1
        assert session.attempts == []
        assert session.total_spent.epsilon == 0.0
        assert session.status == SessionStatus.NEED_DATA

    def test_granted_aggressive_attempt_commits_epsilon(self):
        db, access = build_world()
        session = AdaptiveSession(
            ThresholdPipeline(threshold=1e12), access, db,
            AdaptiveConfig(strategy="aggressive", max_attempts=1),
            np.random.default_rng(0),
        )
        proposal = session.propose()
        access.request(list(proposal.window), proposal.budget)
        session.complete(ChargeDecision(proposal=proposal, granted=True))
        assert session.epsilon == proposal.epsilon_after

    def test_stale_proposal_rejected(self):
        db, access = build_world()
        session = AdaptiveSession(
            ThresholdPipeline(threshold=1e12), access, db,
            AdaptiveConfig(), np.random.default_rng(0),
        )
        stale = session.propose()
        fresh = session.propose()
        access.request(list(fresh.window), fresh.budget)
        session.complete(ChargeDecision(proposal=fresh, granted=True))
        with pytest.raises(PipelineError):
            session.complete(ChargeDecision(proposal=stale, granted=True))

    def test_foreign_proposal_rejected(self):
        db, access = build_world()
        mine = AdaptiveSession(
            ThresholdPipeline("a"), access, db, AdaptiveConfig(), np.random.default_rng(0)
        )
        other = AdaptiveSession(
            ThresholdPipeline("b"), access, db, AdaptiveConfig(), np.random.default_rng(0)
        )
        proposal = other.propose()
        with pytest.raises(PipelineError):
            mine.complete(ChargeDecision(proposal=proposal, granted=True))

    def test_propose_timeout(self):
        db, access = build_world()
        session = AdaptiveSession(
            ThresholdPipeline(threshold=1e12), access, db,
            AdaptiveConfig(max_attempts=1), np.random.default_rng(0),
        )
        proposal = session.propose()
        access.request(list(proposal.window), proposal.budget)
        session.complete(ChargeDecision(proposal=proposal, granted=True))
        follow_up = session.propose()
        assert follow_up is None
        assert session.status == SessionStatus.TIMEOUT

    def test_propose_on_terminal_session_returns_none(self):
        db, access = build_world()
        session = AdaptiveSession(
            ThresholdPipeline(threshold=900.0), access, db,
            AdaptiveConfig(), np.random.default_rng(0),
        )
        proposal = session.propose()
        status = session.step()
        assert status == SessionStatus.ACCEPTED
        follow_up = session.propose()
        assert follow_up is None
        with pytest.raises(PipelineError):
            session.complete(ChargeDecision(proposal=proposal, granted=False))


class TestTrainerWrapper:
    def test_one_shot_accept(self):
        db, access = build_world()
        trainer = PrivacyAdaptiveTrainer(access, db)
        result = trainer.train(ThresholdPipeline(threshold=900.0), np.random.default_rng(0))
        assert result.accepted
        assert result.run is not None
        assert result.total_spent.epsilon > 0

    def test_reject_terminal(self):
        class RejectingPipeline(ThresholdPipeline):
            def run(self, batch, budget, rng, correct_for_dp=True):
                run = super().run(batch, budget, rng)
                return PipelineRun(
                    name=self.name, outcome=Outcome.REJECT,
                    validation=ValidationResult(Outcome.REJECT, budget),
                    budget_charged=budget,
                )

        db, access = build_world()
        trainer = PrivacyAdaptiveTrainer(access, db)
        result = trainer.train(RejectingPipeline(), np.random.default_rng(0))
        assert result.status == SessionStatus.REJECTED
