"""Training, statistic, and histogram pipelines."""

import numpy as np
import pytest

from repro.core.pipeline import HistogramPipeline, StatisticPipeline, TrainingPipeline
from repro.core.validation.accuracy import DPAccuracyValidator
from repro.core.validation.loss import DPLossValidator
from repro.core.validation.outcomes import Outcome
from repro.data.stream import StreamBatch
from repro.dp.budget import PrivacyBudget
from repro.errors import PipelineError
from repro.ml.linear import RidgeRegression


def ridge_trainer(X, y, budget, rng):
    # Stands in for a DP trainer in pipeline-flow tests.
    return RidgeRegression(regularization=1e-3).fit(X, y)


def regression_batch(rng, n=20_000, noise=0.01):
    X = rng.normal(size=(n, 4))
    y = X @ np.array([0.2, -0.1, 0.05, 0.0]) + noise * rng.normal(size=n)
    return StreamBatch(
        X=X, y=y,
        timestamps=np.sort(rng.uniform(0, 1, n)),
        user_ids=rng.integers(0, 100, n),
        extras={
            "speed": rng.uniform(10, 50, n),
            "hour": rng.integers(0, 4, n),
        },
    )


class TestTrainingPipeline:
    def test_metric_validator_consistency_enforced(self):
        with pytest.raises(PipelineError):
            TrainingPipeline("p", ridge_trainer, DPAccuracyValidator(0.7), metric="mse")
        with pytest.raises(PipelineError):
            TrainingPipeline("p", ridge_trainer, DPLossValidator(0.1), metric="accuracy")

    def test_unknown_metric(self):
        with pytest.raises(PipelineError):
            TrainingPipeline("p", ridge_trainer, DPLossValidator(0.1), metric="auc")

    def test_accepts_learnable_task(self, rng):
        # Target sized so the B=1 worst-case DP corrections (which dominate
        # at 2K test points and eps/3 validation) still clear it.
        pipeline = TrainingPipeline(
            "p", ridge_trainer, DPLossValidator(target=0.05), metric="mse"
        )
        run = pipeline.run(regression_batch(rng), PrivacyBudget(1.0, 1e-6), rng)
        assert run.outcome is Outcome.ACCEPT
        assert run.model is not None
        assert run.train_size + run.test_size == 20_000

    def test_budget_split_without_preprocessing(self, rng):
        pipeline = TrainingPipeline(
            "p", ridge_trainer, DPLossValidator(0.01), metric="mse"
        )
        eps_pre, train_budget, eps_val = pipeline._stage_budgets(PrivacyBudget(0.9, 1e-6))
        assert eps_pre == 0.0
        assert train_budget.epsilon == pytest.approx(0.6)
        assert train_budget.delta == 1e-6
        assert eps_val == pytest.approx(0.3)

    def test_budget_split_with_preprocessing(self, rng):
        def identity_pre(batch, epsilon, rng):
            return batch.X, batch.y, {"used_eps": epsilon}

        pipeline = TrainingPipeline(
            "p", ridge_trainer, DPLossValidator(0.01), metric="mse",
            preprocessing_fn=identity_pre,
        )
        eps_pre, train_budget, eps_val = pipeline._stage_budgets(PrivacyBudget(0.9, 1e-6))
        assert eps_pre == pytest.approx(0.3)
        assert train_budget.epsilon == pytest.approx(0.3)
        run = pipeline.run(regression_batch(rng), PrivacyBudget(0.9, 1e-6), rng)
        assert run.features["used_eps"] == pytest.approx(0.3)

    def test_reject_with_erm(self, rng):
        batch = regression_batch(rng, noise=0.5)  # irreducible noise
        def erm(X, y):
            model = RidgeRegression(1e-6).fit(X, y)
            return (y - model.predict(X)) ** 2

        pipeline = TrainingPipeline(
            "p", ridge_trainer, DPLossValidator(target=0.001), metric="mse", erm_fn=erm
        )
        run = pipeline.run(batch, PrivacyBudget(1.0, 1e-6), rng)
        assert run.outcome is Outcome.REJECT

    def test_accuracy_metric_path(self, rng):
        def trainer(X, y, budget, rng_):
            from repro.ml.estimators import MLPClassifierEstimator
            from repro.ml.sgd import SGDConfig
            est = MLPClassifierEstimator((), SGDConfig(learning_rate=0.5, epochs=2, batch_size=128))
            return est.fit(X, y, rng_)

        rng2 = np.random.default_rng(0)
        X = rng2.normal(size=(10_000, 3))
        y = (X[:, 0] > 0).astype(float)
        batch = StreamBatch(
            X=X, y=y, timestamps=np.sort(rng2.uniform(0, 1, 10_000)),
            user_ids=np.zeros(10_000, dtype=int),
        )
        pipeline = TrainingPipeline(
            "clf", trainer, DPAccuracyValidator(0.9), metric="accuracy"
        )
        run = pipeline.run(batch, PrivacyBudget(1.0, 1e-6), rng2)
        assert run.outcome is Outcome.ACCEPT


class TestStatisticPipeline:
    def test_accepts_and_releases_group_means(self, rng):
        batch = regression_batch(rng, n=40_000)
        pipeline = StatisticPipeline(
            "speed", key_column="hour", value_column="speed",
            nkeys=4, value_range=60.0, target=5.0,
        )
        run = pipeline.run(batch, PrivacyBudget(1.0, 0.0), rng)
        assert run.outcome is Outcome.ACCEPT
        assert run.model.shape == (4,)
        # Released means should be near the true per-key means (~30).
        assert np.all(np.abs(run.model - 30.0) < 5.0)

    def test_retry_when_key_missing(self, rng):
        batch = regression_batch(rng, n=1000)
        pipeline = StatisticPipeline(
            "speed", key_column="hour", value_column="speed",
            nkeys=10, value_range=60.0, target=5.0,  # keys 4..9 never occur
        )
        run = pipeline.run(batch, PrivacyBudget(1.0, 0.0), rng)
        assert run.outcome is Outcome.RETRY

    def test_invalid_nkeys(self):
        with pytest.raises(PipelineError):
            StatisticPipeline("s", "hour", "speed", 0, 60.0, 5.0)


class TestHistogramPipeline:
    def test_accepts_on_large_data(self, rng):
        batch = regression_batch(rng, n=50_000)
        pipeline = HistogramPipeline("h", key_column="hour", nkeys=4, target=0.05)
        run = pipeline.run(batch, PrivacyBudget(1.0, 0.0), rng)
        assert run.outcome is Outcome.ACCEPT
        freqs = run.model
        assert freqs.shape == (4,)
        assert np.all(np.abs(freqs - 0.25) < 0.05)

    def test_retries_on_small_data(self, rng):
        batch = regression_batch(rng, n=300)
        pipeline = HistogramPipeline("h", key_column="hour", nkeys=4, target=0.01)
        run = pipeline.run(batch, PrivacyBudget(0.5, 0.0), rng)
        assert run.outcome is Outcome.RETRY

    def test_invalid_target(self):
        with pytest.raises(PipelineError):
            HistogramPipeline("h", "hour", 4, 0.0)
